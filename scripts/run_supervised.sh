#!/usr/bin/env bash
# Crash-tolerant supervisor for wtr_ckpt_harness: start the run, and as long
# as it dies mid-flight (SIGKILL'd by the OOM killer, machine reboot mapped
# to a restart, Ctrl-C'd into a graceful exit-3 stop, ...) restart it with
# --resume from the last durable checkpoint until it completes. Resume is
# deterministic, so the supervised run's outputs are byte-identical to a
# never-interrupted run.
#
# Usage: scripts/run_supervised.sh <harness-binary> <out-dir> [harness args...]
#   e.g. scripts/run_supervised.sh build/tests/wtr_ckpt_harness /tmp/run \
#            --scenario mno --devices 2000 --ckpt-hours 6 --threads 4
#
# Exit codes: 0 = run completed; 2 = usage; 4 = snapshot rejected on resume
# (corruption — manual intervention required); 5 = restart budget exhausted.
#
# Hang detection (WTR_SUPERVISE_HANG_TIMEOUT_S=<seconds>, default 0 = off):
# the harness is passed --heartbeat <out-dir>/heartbeat.json and run in the
# background while the supervisor polls the heartbeat file's mtime. A child
# that is merely slow keeps rewriting the heartbeat and is left alone; a
# child whose heartbeat goes stale for longer than the timeout is presumed
# hung (deadlock, livelock, D-state I/O), killed with SIGKILL and restarted
# from the last checkpoint immediately — a hang is not a crash loop, so no
# backoff is applied.

set -uo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <harness-binary> <out-dir> [harness args...]" >&2
  exit 2
fi

harness="$1"
out_dir="$2"
shift 2

max_restarts="${WTR_SUPERVISE_MAX_RESTARTS:-50}"
backoff_base_s="${WTR_SUPERVISE_BACKOFF_BASE_S:-1}"
backoff_cap_s="${WTR_SUPERVISE_BACKOFF_CAP_S:-60}"
hang_timeout_s="${WTR_SUPERVISE_HANG_TIMEOUT_S:-0}"
mkdir -p "$out_dir"
ckpt="$out_dir/ckpt.bin"
heartbeat="$out_dir/heartbeat.json"

# Age in whole seconds of the child's most recent sign of life: the
# heartbeat file's mtime when it exists, the child's start time before the
# first beat lands.
heartbeat_age_s() {
  local now mtime
  now=$(date +%s)
  mtime=$(stat -c %Y "$heartbeat" 2>/dev/null) || mtime="$1"
  echo $((now - mtime))
}

attempt=0
while :; do
  args=("--out" "$out_dir" "$@")
  if [[ $attempt -gt 0 && -f "$ckpt" ]]; then
    # A previous attempt left a durable checkpoint: resume from it. The
    # harness truncates records.txt back to the checkpointed offset itself.
    args+=("--resume")
  fi

  hung=0
  if [[ $hang_timeout_s -gt 0 ]]; then
    args+=("--heartbeat" "$heartbeat")
    rm -f "$heartbeat"
    start_ts=$(date +%s)
    "$harness" "${args[@]}" &
    child=$!
    while kill -0 "$child" 2>/dev/null; do
      sleep 1
      kill -0 "$child" 2>/dev/null || break
      if [[ $(heartbeat_age_s "$start_ts") -ge $hang_timeout_s ]]; then
        echo "run_supervised: heartbeat stale for >=${hang_timeout_s}s;" \
             "killing hung child $child" >&2
        kill -9 "$child" 2>/dev/null
        hung=1
        break
      fi
    done
    wait "$child"
    status=$?
  else
    "$harness" "${args[@]}"
    status=$?
  fi

  case $status in
    0)
      echo "run_supervised: completed after $attempt restart(s)" >&2
      exit 0
      ;;
    2 | 4)
      # Usage error or rejected snapshot: retrying cannot help.
      exit "$status"
      ;;
    *)
      # Interrupted (3) or killed outright (129+): restart and resume.
      attempt=$((attempt + 1))
      if [[ $attempt -gt $max_restarts ]]; then
        echo "run_supervised: giving up after $max_restarts restarts" >&2
        exit 5
      fi
      echo "run_supervised: harness exited $status; restart #$attempt" >&2
      if [[ ! -f "$ckpt" ]]; then
        echo "run_supervised: no checkpoint yet; restarting from scratch" >&2
      fi
      if [[ $hung -eq 1 ]]; then
        # A hang is not a crash loop: the machine is healthy and the child
        # was making no progress, so waiting before the restart only adds
        # dead time. Restart immediately.
        echo "run_supervised: hang restart; skipping backoff" >&2
        continue
      fi
      # A crash-looping harness (bad disk, exhausted memory, broken binary)
      # would otherwise hot-spin: exponential backoff with jitter so restarts
      # back off to $backoff_cap_s and don't synchronize with other
      # supervisors sharing the machine.
      delay=$((backoff_base_s * (1 << (attempt - 1 < 30 ? attempt - 1 : 30))))
      if [[ $delay -gt $backoff_cap_s || $delay -le 0 ]]; then
        delay=$backoff_cap_s
      fi
      delay=$((delay + RANDOM % (delay + 1)))
      echo "run_supervised: backing off ${delay}s before restart" >&2
      sleep "$delay"
      ;;
  esac
done
