#!/usr/bin/env python3
"""Validate a flight-recorder Chrome trace-event JSON export.

Usage:
    scripts/validate_trace.py TRACE.json [--min-shards N]
        [--require-span NAME ...] [--heartbeat HEARTBEAT.json]

Checks that the file parses as JSON, carries a traceEvents list in the
Chrome trace-event format Perfetto loads (https://ui.perfetto.dev), that
every event has the mandatory ph/pid/tid/name fields, that complete ("X")
spans carry numeric non-negative ts/dur, and optionally that at least
--min-shards distinct shard tracks emitted events and that specific span
names (e.g. merge, ckpt_write) are present. --heartbeat additionally
validates a heartbeat/progress file: a single line of JSON with the keys
run_supervised.sh reads for hang detection.

Exits 0 when the trace is valid, 1 with a diagnostic otherwise. Used by the
scripts/check.sh trace lane; handy standalone after any traced run.
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "B", "E", "i", "I", "M", "C"}
HEARTBEAT_REQUIRED_KEYS = {
    "pid",
    "phase",
    "sim_time_s",
    "horizon_s",
    "progress",
    "wakes",
    "records",
    "unix_time",
}


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_heartbeat(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        fail(f"cannot read heartbeat {path}: {exc}")
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) != 1:
        fail(f"heartbeat {path} has {len(lines)} non-empty lines, expected 1")
    try:
        beat = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        fail(f"heartbeat {path} is not valid JSON: {exc}")
    if not isinstance(beat, dict):
        fail(f"heartbeat {path} is not a JSON object")
    missing = HEARTBEAT_REQUIRED_KEYS - beat.keys()
    if missing:
        fail(f"heartbeat {path} missing keys: {sorted(missing)}")
    if not isinstance(beat["phase"], str) or not beat["phase"]:
        fail(f"heartbeat {path} has empty/non-string phase")
    for key in ("sim_time_s", "horizon_s", "progress", "unix_time"):
        if not isinstance(beat[key], (int, float)):
            fail(f"heartbeat {path} key {key!r} is not numeric")
    print(
        f"validate_trace: heartbeat OK (phase={beat['phase']!r}, "
        f"progress={beat['progress']:.3f})"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument(
        "--min-shards",
        type=int,
        default=0,
        help="require at least this many distinct shard_* thread-name tracks",
    )
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one complete span with this name (repeatable)",
    )
    parser.add_argument(
        "--heartbeat",
        default=None,
        help="also validate a heartbeat/progress file",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        fail(f"cannot read {args.trace}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{args.trace} is not valid JSON: {exc}")

    if not isinstance(data, dict) or "traceEvents" not in data:
        fail(f"{args.trace} has no traceEvents key")
    events = data["traceEvents"]
    if not isinstance(events, list):
        fail(f"{args.trace} traceEvents is not a list")

    span_names = set()
    track_names = {}  # tid -> thread_name
    spans = 0
    instants = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{index}] is not an object")
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                fail(f"traceEvents[{index}] missing {key!r}: {event}")
        ph = event["ph"]
        if ph not in VALID_PHASES:
            fail(f"traceEvents[{index}] has unknown phase {ph!r}")
        if ph == "X":
            spans += 1
            span_names.add(event["name"])
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)):
                    fail(f"traceEvents[{index}] {key!r} is not numeric: {event}")
                if value < 0:
                    fail(f"traceEvents[{index}] {key!r} is negative: {event}")
        elif ph in ("i", "I"):
            instants += 1
            if not isinstance(event.get("ts"), (int, float)):
                fail(f"traceEvents[{index}] 'ts' is not numeric: {event}")
        elif ph == "M" and event["name"] == "thread_name":
            track_names[event["tid"]] = event.get("args", {}).get("name", "")

    shard_tracks = sum(1 for name in track_names.values() if name.startswith("shard_"))
    if args.min_shards > 0 and shard_tracks < args.min_shards:
        fail(
            f"only {shard_tracks} shard track(s) emitted events, "
            f"expected >= {args.min_shards} (tracks: {sorted(track_names.values())})"
        )
    for name in args.require_span:
        if name not in span_names:
            fail(
                f"required span {name!r} not found "
                f"(spans present: {sorted(span_names)})"
            )

    print(
        f"validate_trace: OK ({len(events)} events: {spans} spans, "
        f"{instants} instants, {shard_tracks} shard track(s))"
    )
    if args.heartbeat:
        validate_heartbeat(args.heartbeat)
    return 0


if __name__ == "__main__":
    sys.exit(main())
