#!/usr/bin/env bash
# Sanitizer gate: configure a separate ASan+UBSan build tree, build
# everything, and run the full test suite under the sanitizers. Use this
# before merging changes that touch the simulator core or the parsers —
# the plain `build/` tree stays untouched.
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-asan}"

cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$build_dir" -j "$(nproc)"

# halt_on_error so CI fails loudly on the first UB report.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=0"

ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
echo "check.sh: all tests passed under ASan/UBSan"
