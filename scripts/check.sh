#!/usr/bin/env bash
# Four gates:
#
#  1. Sanitizer gate — configure a separate ASan+UBSan build tree (UBSan
#     includes float-cast-overflow, so a NaN reaching a float->int bin cast
#     is a hard failure, not a silent garbage bucket), build everything, and
#     run the full test suite under the sanitizers. The plain `build/` tree
#     stays untouched. The checkpoint crash-recovery suite (SIGKILL
#     injection against wtr_ckpt_harness + snapshot corruption rejection +
#     the event-queue differential fuzz + binary-trace corruption/bit-flip
#     tests) then re-runs as its own serial lane so kill timing isn't
#     skewed by parallel load.
#  2. Thread-sanitizer gate — a second sanitizer tree (TSan cannot be
#     combined with ASan) building the sharded-engine determinism suite and
#     running it under TSan: the shard loops run on real threads there, so
#     any data race in the parallel engine fails the gate. The storm lane
#     rides this tree: the closed-loop congestion suite (shard-private
#     ledgers merging at engine barriers) runs under TSan too, then the
#     ASan tree drives kill injection through an overload window
#     (KillInjectionStorm*) as its own serial lane.
#  3. Perf gate — build bench_p1_pipeline_perf in the plain `build/` tree
#     (no sanitizers; timings must be real), run its instrumented pipeline
#     (--manifest-only), drop BENCH_p1.json in the repo root, and fail on a
#     >25% phase-timer or records/sec regression against the checked-in
#     baseline (bench/baselines/BENCH_p1_baseline.json). The baseline is
#     always recorded at threads=1 (see EXPERIMENTS.md): --rebaseline never
#     sets WTR_BENCH_THREADS, so thread-count experiments cannot skew the
#     gate.
#
# Usage: scripts/check.sh [--rebaseline] [build-dir]   (default: build-asan)
#   --rebaseline  refresh the checked-in perf baseline from this machine's
#                 run instead of gating against it (commit the result).

set -euo pipefail

cd "$(dirname "$0")/.."

rebaseline=0
if [[ "${1:-}" == "--rebaseline" ]]; then
  rebaseline=1
  shift
fi
build_dir="${1:-build-asan}"

cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined,float-cast-overflow -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined,float-cast-overflow"
cmake --build "$build_dir" -j "$(nproc)"

# halt_on_error so CI fails loudly on the first UB report.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=0"

ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
echo "check.sh: all tests passed under ASan/UBSan"

# --- Crash-recovery gate (kill injection under ASan) -----------------------
# Re-run the checkpoint/restore suite as its own named lane: it SIGKILLs the
# sanitized wtr_ckpt_harness child at randomized instants and asserts the
# resumed output set is byte-identical to an uninterrupted run, then checks
# torn/bit-flipped snapshots are rejected loudly. The binary-trace
# corruption suite rides along: truncations, bit flips, dangling dictionary
# indices, and oversized block lengths must all surface as BinaryTraceError,
# never as a sanitizer report. Serial on purpose — kill timing is
# wall-clock sensitive and must not share cores with other tests.
ctest --test-dir "$build_dir" --output-on-failure -R 'CheckpointRecovery|EventQueueProp|BinaryTrace'
echo "check.sh: crash-recovery gate passed (kill injection + queue fuzz + trace corruption under ASan)"

# --- TSan gate (separate tree: TSan and ASan cannot share a build) ---------
tsan_dir="build-tsan"
cmake -B "$tsan_dir" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$tsan_dir" -j "$(nproc)" --target test_parallel_engine test_congestion

TSAN_OPTIONS="halt_on_error=1" "$tsan_dir/tests/test_parallel_engine"
echo "check.sh: sharded engine race-free under TSan"

# --- Storm lane -------------------------------------------------------------
# The congestion model's shard-private attempt ledgers merge on the engine's
# merge thread at window barriers; run the whole congestion suite (including
# its threads=1-vs-N byte-identity and resume-through-storm tests) on real
# threads under TSan, then kill-inject through an actual overload window in
# the ASan tree — serial, same wall-clock-sensitivity argument as above.
TSAN_OPTIONS="halt_on_error=1" "$tsan_dir/tests/test_congestion"
ctest --test-dir "$build_dir" --output-on-failure -R 'CheckpointRecovery.KillInjectionStorm'
echo "check.sh: storm lane passed (congestion suite under TSan + kill injection mid-storm)"

# --- Trace lane -------------------------------------------------------------
# The flight recorder writes per-shard span rings from real shard threads;
# run its suite (ring wrap, trace-on/off byte-identity, concurrent phase
# timers) under TSan, then drive a short traced storm through the ASan
# harness and validate the Chrome trace-event export + heartbeat with the
# Python checker. Finally, prove the supervisor's hang detection tells a
# hung child (stale heartbeat -> SIGKILL + restart) from a slow one (fresh
# heartbeats -> left alone) using stub children.
cmake --build "$tsan_dir" -j "$(nproc)" --target test_trace
TSAN_OPTIONS="halt_on_error=1" "$tsan_dir/tests/test_trace"
echo "check.sh: flight recorder + phase timers race-free under TSan"

trace_tmp=$(mktemp -d)
trap 'rm -rf "$trace_tmp"' EXIT

mkdir -p "$trace_tmp/storm"
"$build_dir/tests/wtr_ckpt_harness" --out "$trace_tmp/storm" --scenario storm \
  --devices 400 --ckpt-hours 24 --threads 4 \
  --trace "$trace_tmp/storm/trace.json" \
  --heartbeat "$trace_tmp/storm/heartbeat.json" --heartbeat-interval 0
python3 scripts/validate_trace.py "$trace_tmp/storm/trace.json" \
  --min-shards 4 --require-span shard_window --require-span merge \
  --require-span ckpt_write --heartbeat "$trace_tmp/storm/heartbeat.json"
echo "check.sh: traced storm run exports Perfetto-loadable JSON + live heartbeat"

# Hung child: beats once, then stalls forever on attempt 1; attempt 2 (after
# the supervisor SIGKILLs it) exits clean. The supervisor must detect the
# stale heartbeat, kill, restart without backoff, and exit 0.
cat > "$trace_tmp/hung_child.sh" <<'EOF'
#!/usr/bin/env bash
out=""; heartbeat=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out) out="$2"; shift 2 ;;
    --heartbeat) heartbeat="$2"; shift 2 ;;
    *) shift ;;
  esac
done
if [[ -f "$out/attempted" ]]; then exit 0; fi
touch "$out/attempted"
echo '{"phase":"run"}' > "$heartbeat"
sleep 600
EOF
chmod +x "$trace_tmp/hung_child.sh"
if ! WTR_SUPERVISE_HANG_TIMEOUT_S=2 scripts/run_supervised.sh \
    "$trace_tmp/hung_child.sh" "$trace_tmp/hung" 2> "$trace_tmp/hung.log"; then
  echo "check.sh: FAIL: supervisor did not recover the hung child" >&2
  cat "$trace_tmp/hung.log" >&2
  exit 1
fi
if ! grep -q "killing hung child" "$trace_tmp/hung.log"; then
  echo "check.sh: FAIL: supervisor exited 0 without detecting the hang" >&2
  cat "$trace_tmp/hung.log" >&2
  exit 1
fi

# Slow child: keeps beating every second for longer than the hang timeout,
# then exits clean. The supervisor must leave it alone (no kill, 0 restarts).
cat > "$trace_tmp/slow_child.sh" <<'EOF'
#!/usr/bin/env bash
heartbeat=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --heartbeat) heartbeat="$2"; shift 2 ;;
    *) shift ;;
  esac
done
for _ in 1 2 3 4; do
  echo '{"phase":"run"}' > "$heartbeat"
  sleep 1
done
exit 0
EOF
chmod +x "$trace_tmp/slow_child.sh"
if ! WTR_SUPERVISE_HANG_TIMEOUT_S=2 scripts/run_supervised.sh \
    "$trace_tmp/slow_child.sh" "$trace_tmp/slow" 2> "$trace_tmp/slow.log"; then
  echo "check.sh: FAIL: supervisor failed on a merely-slow child" >&2
  cat "$trace_tmp/slow.log" >&2
  exit 1
fi
if grep -q "killing hung child" "$trace_tmp/slow.log"; then
  echo "check.sh: FAIL: supervisor killed a child with fresh heartbeats" >&2
  cat "$trace_tmp/slow.log" >&2
  exit 1
fi
echo "check.sh: trace lane passed (TSan suite + validated export + hang-vs-slow supervision)"

# --- Scale-smoke lane (100k agents through the wheel + arena) ---------------
# A short-horizon 100k-device MNO run is big enough to cycle the timing
# wheel through hundreds of buckets and leave part of the staggered fleet
# dormant in the agent arena, yet small enough for sanitizer builds. The
# records/metrics/probe dumps must be byte-identical between threads=1 and
# threads=4 within each tree (never compared across trees — different
# instrumentation, same-tree identity is the invariant).
cmake --build "$tsan_dir" -j "$(nproc)" --target wtr_ckpt_harness
scale_devices=100000
scale_days=2
for tree in "$build_dir" "$tsan_dir"; do
  name=$(basename "$tree")
  for t in 1 4; do
    mkdir -p "$trace_tmp/scale-$name-t$t"
    TSAN_OPTIONS="halt_on_error=1" "$tree/tests/wtr_ckpt_harness" \
      --out "$trace_tmp/scale-$name-t$t" \
      --devices "$scale_devices" --days "$scale_days" --threads "$t"
  done
  for f in records.txt metrics.txt probe.txt; do
    if ! cmp -s "$trace_tmp/scale-$name-t1/$f" "$trace_tmp/scale-$name-t4/$f"; then
      echo "check.sh: FAIL: scale smoke ($name): $f differs between threads=1 and threads=4" >&2
      exit 1
    fi
  done
done
echo "check.sh: scale-smoke lane passed (${scale_devices} agents, threads=1 == threads=4 under ASan and TSan)"

# --- Perf gate (plain build: sanitizer overhead would swamp the timers) ----
baseline="bench/baselines/BENCH_p1_baseline.json"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target bench_p1_pipeline_perf

WTR_BENCH_MANIFEST_DIR=. ./build/bench/bench_p1_pipeline_perf --manifest-only

if [[ "$rebaseline" == 1 ]]; then
  mkdir -p "$(dirname "$baseline")"
  cp BENCH_p1.json "$baseline"
  echo "check.sh: perf baseline refreshed at $baseline (commit it)"
elif [[ -f "$baseline" ]]; then
  python3 scripts/compare_manifest.py "$baseline" BENCH_p1.json
  echo "check.sh: perf gate passed (phase timers within 25% of baseline)"
else
  echo "check.sh: no perf baseline at $baseline; run with --rebaseline to create one" >&2
  exit 1
fi
