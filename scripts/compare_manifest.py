#!/usr/bin/env python3
"""Compare two wtr-run-manifest JSON files for performance regressions.

Usage:
    scripts/compare_manifest.py BASELINE.json CANDIDATE.json \
        [--max-regress 0.25] [--noise-floor 0.05]

Compares per-phase wall times and the records_per_sec headline between a
checked-in baseline manifest and a freshly produced candidate. Exits 1 when
any phase above the noise floor slowed down by more than --max-regress
(default 25%), or when records_per_sec dropped by more than the same factor.
Phases below the noise floor (default 0.05 s in the baseline) are reported
but never gate: their wall time is dominated by scheduler jitter.

Counter-type sanity is also checked: a schema mismatch or a missing phases
section is an error, because it means the manifest writer changed shape and
the baseline must be refreshed (scripts/check.sh --rebaseline).
"""

import argparse
import json
import sys

SCHEMA = "wtr-run-manifest/1"

# Parallel-execution metadata recorded by the benches (thread counts, shard
# wake splits, merge timings, measured speedups). These describe how a run
# was executed, not what it produced — output is byte-identical at any
# thread count — so they never participate in the comparison and a baseline
# recorded at threads=1 gates a candidate recorded at any thread count.
THREAD_METADATA_KEYS = frozenset(
    {
        "engine_threads",
        "engine_shards",
        "engine_merge_wall_s",
        "engine_shard_wakes",
        "engine_speedup",
        "end_to_end_speedup",
    }
)

# Checkpoint/restore bookkeeping. Like the thread metadata these describe
# how a run was executed — whether it was resumed, how many snapshots were
# cut and what they cost — not what it produced (resume is deterministic and
# cadence-off runs skip the subsystem entirely), so they never gate either.
CHECKPOINT_METADATA_KEYS = frozenset(
    {
        "resumed_from",
        "checkpoints_written",
        "checkpoint_wall_s",
        "checkpoint_guard",
    }
)

# Trace-format A/B metadata from the CSV-vs-binary replay guard. Byte sizes
# and replay walls depend on the guard's scenario scale and the machine, and
# the guard already hard-fails the bench binary itself when the two formats
# disagree, so these are informational here and never gate.
TRACE_FORMAT_METADATA_KEYS = frozenset(
    {
        "trace_bytes_csv",
        "trace_bytes_binary",
        "replay_wall_s_csv",
        "replay_wall_s_binary",
        "replay_speedup",
        "trace_format_guard",
    }
)

# Process-level memory ceiling stamped by bench::write_manifest. Peak RSS
# varies with scale, allocator and machine, so it is informational only.
MEMORY_METADATA_KEYS = frozenset({"peak_rss_bytes"})

# Population scale-sweep telemetry from bench_t2_population: throughput and
# per-agent residency depend on the machine and on WTR_BENCH_POPULATIONS,
# and the sweep's determinism guards (threads=1 vs N, interrupt+resume)
# already gate through the bench exit status. Headline records_per_s /
# bytes_per_agent are the same numbers re-published under stable names.
SCALE_SWEEP_KEYS = frozenset({"records_per_s", "bytes_per_agent"})

IGNORED_RESULT_KEYS = (
    THREAD_METADATA_KEYS
    | CHECKPOINT_METADATA_KEYS
    | TRACE_FORMAT_METADATA_KEYS
    | MEMORY_METADATA_KEYS
    | SCALE_SWEEP_KEYS
)

# Closed-loop overload telemetry from bench_s3_overload_storm. Reject
# counts, peak overload factors and congested-window lengths scale with the
# configured capacity and fleet size, and the bench binary already encodes
# its own verdict in the exit status, so these are informational across
# commits and never gate. Matched by prefix: the key set grows with the
# model. The trace_/heartbeat_ prefixes cover the flight-recorder telemetry
# (overhead percentages, event counts, shard-balance fractions): the bench
# binary's own overhead guard gates those, and the values are wall-clock
# derived so they would make every comparison machine-sensitive.
IGNORED_RESULT_PREFIXES = ("congestion_", "storm_", "trace_", "heartbeat_",
                           "population_")


def ignored_result(key):
    return key in IGNORED_RESULT_KEYS or key.startswith(IGNORED_RESULT_PREFIXES)


def load_manifest(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"compare_manifest: cannot read {path}: {exc}")
    if data.get("schema") != SCHEMA:
        sys.exit(
            f"compare_manifest: {path} has schema {data.get('schema')!r}, "
            f"expected {SCHEMA!r} (refresh the baseline?)"
        )
    if "phases" not in data:
        sys.exit(f"compare_manifest: {path} has no phases section")
    return data


def phase_map(manifest):
    return {p["name"]: p for p in manifest.get("phases", [])}


def fmt_delta(ratio):
    return f"{(ratio - 1.0) * 100.0:+7.1f}%"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.25,
        help="fail when a gated metric regresses by more than this fraction",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=0.05,
        help="baseline phases shorter than this many seconds never gate",
    )
    args = parser.parse_args()

    base = load_manifest(args.baseline)
    cand = load_manifest(args.candidate)

    base_phases = phase_map(base)
    cand_phases = phase_map(cand)

    failures = []
    rows = []

    for name, bp in base_phases.items():
        cp = cand_phases.get(name)
        if cp is None:
            rows.append((name, bp["wall_s"], None, "MISSING", True))
            failures.append(f"phase {name!r} missing from candidate")
            continue
        base_s, cand_s = bp["wall_s"], cp["wall_s"]
        gated = base_s >= args.noise_floor
        ratio = (cand_s / base_s) if base_s > 0 else 1.0
        bad = gated and ratio > 1.0 + args.max_regress
        rows.append((name, base_s, cand_s, fmt_delta(ratio), gated))
        if bad:
            failures.append(
                f"phase {name!r} regressed {fmt_delta(ratio).strip()} "
                f"({base_s:.3f}s -> {cand_s:.3f}s)"
            )
    for name in cand_phases:
        if name not in base_phases:
            rows.append((name, None, cand_phases[name]["wall_s"], "NEW", False))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'phase':<{width}}  {'base_s':>9}  {'cand_s':>9}  {'delta':>9}  gate")
    for name, base_s, cand_s, delta, gated in rows:
        bs = f"{base_s:9.3f}" if base_s is not None else "        -"
        cs = f"{cand_s:9.3f}" if cand_s is not None else "        -"
        print(f"{name:<{width}}  {bs}  {cs}  {delta:>9}  {'yes' if gated else 'no'}")

    base_results = {
        k: v for k, v in base.get("results", {}).items() if not ignored_result(k)
    }
    cand_results = {
        k: v for k, v in cand.get("results", {}).items() if not ignored_result(k)
    }
    base_threads = base.get("results", {}).get("engine_threads", 1)
    cand_threads = cand.get("results", {}).get("engine_threads", 1)
    if base_threads != cand_threads:
        print(
            f"\nnote: baseline ran at engine_threads={base_threads}, candidate at "
            f"engine_threads={cand_threads} (ignored: output is thread-invariant, "
            "only wall times move)"
        )

    base_rps = base_results.get("records_per_sec")
    cand_rps = cand_results.get("records_per_sec")
    if isinstance(base_rps, (int, float)) and isinstance(cand_rps, (int, float)):
        if base_rps > 0:
            ratio = cand_rps / base_rps
            print(
                f"\nrecords_per_sec: {base_rps:,.0f} -> {cand_rps:,.0f} "
                f"({fmt_delta(ratio).strip()})"
            )
            if ratio < 1.0 - args.max_regress:
                failures.append(
                    f"records_per_sec dropped {fmt_delta(ratio).strip()} "
                    f"({base_rps:,.0f} -> {cand_rps:,.0f})"
                )

    if failures:
        print("\ncompare_manifest: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(
            "  (intentional? refresh with scripts/check.sh --rebaseline)",
            file=sys.stderr,
        )
        return 1
    print("\ncompare_manifest: OK (no phase regressed beyond the gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
