// Smart-meter audit: the §7 workflow an operator would run — compare the
// SMIP-native meter fleet (dedicated IMSI range) against inbound-roaming
// meters on global IoT SIMs, and trace the roaming fleet's provenance.

#include <iostream>

#include "core/catalog_builder.hpp"
#include "core/smip_analysis.hpp"
#include "io/table.hpp"
#include "tracegen/smip_scenario.hpp"

int main(int argc, char** argv) {
  using namespace wtr;

  tracegen::SmipScenarioConfig config;
  config.seed = 31;
  config.total_devices = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 4'000;
  tracegen::SmipScenario scenario{config};
  std::cout << "Simulating " << scenario.device_count() << " smart meters over "
            << config.days << " days (October window)\n";

  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        {scenario.observer_plmn()}}};
  scenario.run({&accumulator});
  const auto catalog = accumulator.finalize();
  const auto summaries = core::summarize(catalog);
  const auto analysis =
      core::analyze_smip(summaries, scenario.native_meters(), scenario.roaming_meters(),
                         config.days, scenario.tac_catalog());

  io::Table table{{"", "SMIP native", "SMIP roaming"}};
  table.add_row({"meters observed", io::format_count(analysis.native.devices),
                 io::format_count(analysis.roaming.devices)});
  table.add_row({"active whole period",
                 io::format_percent(analysis.native.fraction_full_period),
                 io::format_percent(analysis.roaming.fraction_full_period)});
  table.add_row({"median active days",
                 io::format_fixed(analysis.native.active_days.median(), 0),
                 io::format_fixed(analysis.roaming.active_days.median(), 0)});
  table.add_row({"signaling msgs/device/day (mean)",
                 io::format_fixed(analysis.native.mean_signaling_per_day, 1),
                 io::format_fixed(analysis.roaming.mean_signaling_per_day, 1)});
  table.add_row({"devices with failed procedures",
                 io::format_percent(analysis.native.fraction_with_failures),
                 io::format_percent(analysis.roaming.fraction_with_failures)});
  table.add_row({"dominant RAT usage",
                 std::string(analysis.native.rat_usage.sorted().front().first),
                 std::string(analysis.roaming.rat_usage.sorted().front().first)});
  std::cout << '\n' << table.render();

  std::cout << "\nRoaming meters hit the HSS "
            << io::format_fixed(analysis.signaling_ratio(), 1)
            << "x harder than native ones (paper: ~10x).\n";

  std::cout << "\nProvenance of the roaming fleet:\n";
  for (const auto& [plmn, count] : analysis.roaming_home_operators.sorted()) {
    std::cout << "  home operator " << plmn << ": " << io::format_count(count)
              << " SIMs\n";
  }
  for (const auto& [vendor, count] : analysis.roaming_vendors.sorted()) {
    std::cout << "  module vendor " << vendor << ": " << io::format_count(count)
              << " devices\n";
  }
  std::cout << "(paper §4.4: one Dutch operator; Gemalto and Telit modules only)\n";
  return 0;
}
