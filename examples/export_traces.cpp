// Trace export: run a small scenario and write the three raw record streams
// (radio signaling, CDRs, xDRs) as CSV — the wire formats the paper's
// datasets use — then read a file back to show the parsing API.

#include <fstream>
#include <iostream>

#include "io/csv.hpp"
#include "records/cdr.hpp"
#include "records/xdr.hpp"
#include "sim/device_agent.hpp"
#include "tracegen/mno_scenario.hpp"

namespace {

using namespace wtr;

/// A sink that streams every record straight to CSV files.
class CsvExportSink final : public sim::RecordSink {
 public:
  CsvExportSink(const std::string& prefix)
      : signaling_file_(prefix + "_signaling.csv"),
        cdr_file_(prefix + "_cdr.csv"),
        xdr_file_(prefix + "_xdr.csv"),
        signaling_(signaling_file_),
        cdrs_(cdr_file_),
        xdrs_(xdr_file_) {
    signaling_.write_row(signaling::csv_header());
    cdrs_.write_row(records::cdr_csv_header());
    xdrs_.write_row(records::xdr_csv_header());
  }

  void on_signaling(const signaling::SignalingTransaction& txn, bool) override {
    signaling_.write_row(signaling::to_csv_fields(txn));
  }
  void on_cdr(const records::Cdr& cdr) override {
    cdrs_.write_row(records::to_csv_fields(cdr));
  }
  void on_xdr(const records::Xdr& xdr) override {
    xdrs_.write_row(records::to_csv_fields(xdr));
  }

  [[nodiscard]] std::size_t rows() const {
    return signaling_.rows_written() + cdrs_.rows_written() + xdrs_.rows_written();
  }

 private:
  std::ofstream signaling_file_;
  std::ofstream cdr_file_;
  std::ofstream xdr_file_;
  io::CsvWriter signaling_;
  io::CsvWriter cdrs_;
  io::CsvWriter xdrs_;
};

}  // namespace

int main() {
  tracegen::MnoScenarioConfig config;
  config.seed = 99;
  config.total_devices = 400;
  config.days = 3;
  tracegen::MnoScenario scenario{config};

  CsvExportSink exporter{"wtr_trace"};
  scenario.run({&exporter});
  std::cout << "Exported " << exporter.rows() << " rows to wtr_trace_signaling.csv, "
            << "wtr_trace_cdr.csv, wtr_trace_xdr.csv\n";

  // Read a few rows back: parse the xDR APNs and decode home operators.
  std::ifstream in{"wtr_trace_xdr.csv"};
  std::string line;
  std::getline(in, line);  // header
  int shown = 0;
  while (shown < 5 && std::getline(in, line)) {
    const auto fields = io::csv_decode_row(line);
    if (!fields || fields->size() < 8) continue;
    const auto apn = cellnet::Apn::parse((*fields)[6]);
    std::cout << "  device " << (*fields)[0] << " on APN '" << apn.network_id() << "'";
    if (const auto op = apn.operator_id()) {
      std::cout << " (home operator " << op->to_string() << ")";
    }
    std::cout << ", " << (*fields)[3] << " visited, " << (*fields)[7] << "\n";
    ++shown;
  }
  return 0;
}
