// Quickstart: simulate a small visited-MNO population, build the daily
// devices-catalog, label roaming status, run the M2M classifier, and print
// the headline population shares — the §4–5 pipeline end to end.

#include <cstdio>
#include <iostream>

#include "core/census.hpp"
#include "core/classifier_validation.hpp"
#include "io/table.hpp"
#include "tracegen/mno_scenario.hpp"

int main() {
  using namespace wtr;

  // 1. Simulate: a scaled-down UK MNO population over 22 days.
  tracegen::MnoScenarioConfig config;
  config.seed = 7;
  config.total_devices = 6'000;
  tracegen::MnoScenario scenario{config};
  std::cout << "Simulating " << scenario.device_count() << " devices over "
            << config.days << " days...\n";

  // 2. Observe: the MNO's probes build the devices-catalog on the fly.
  core::CatalogAccumulator accumulator{{
      .observer_plmn = scenario.observer_plmn(),
      .family_plmns = scenario.family_plmns(),
  }};
  scenario.run({&accumulator});
  const auto catalog = accumulator.finalize();
  std::cout << "Catalog: " << catalog.size() << " device-day records, "
            << catalog.distinct_devices() << " distinct devices\n";

  // 3. Analyze: label roaming status and classify devices.
  const auto population =
      core::run_census(catalog, scenario.observer_plmn(), scenario.mvno_plmns(),
                       scenario.tac_catalog());

  io::Table classes{{"class", "devices", "share"}};
  for (const auto label : {core::ClassLabel::kSmart, core::ClassLabel::kFeat,
                           core::ClassLabel::kM2M, core::ClassLabel::kM2MMaybe}) {
    classes.add_row({std::string(core::class_label_name(label)),
                     std::to_string(population.classification.count_of(label)),
                     io::format_percent(population.classification.share_of(label))});
  }
  std::cout << "\nDevice classes (paper: smart 62%, feat 8%, m2m 26%, maybe 4%):\n"
            << classes.render();

  std::size_t inbound = 0;
  std::size_t inbound_m2m = 0;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population.is_inbound(i)) continue;
    ++inbound;
    if (population.classes[i] == core::ClassLabel::kM2M) ++inbound_m2m;
  }
  std::cout << "\nInbound roamers: " << inbound << " devices, of which "
            << io::format_percent(inbound == 0 ? 0.0
                                                : static_cast<double>(inbound_m2m) /
                                                      static_cast<double>(inbound))
            << " are M2M (paper: 71.1%)\n";

  // 4. Validate against simulator ground truth (impossible on real traces).
  const auto report = core::validate_classification(
      population, tracegen::class_truth(scenario.ground_truth()));
  std::cout << "\nClassifier vs ground truth: lenient accuracy "
            << io::format_percent(report.lenient_accuracy) << ", m2m precision "
            << io::format_percent(report.m2m_precision) << ", m2m recall "
            << io::format_percent(report.m2m_recall) << "\n";
  return 0;
}
