// wtr_cli — drive the library from the command line: pick a scenario, a
// scale and a report. The closest thing in this repository to the tool an
// operator would run against real (replayed) traces.
//
//   wtr_cli --scenario mno --devices 8000 --seed 7 --report census
//   wtr_cli --scenario platform --report platform
//   wtr_cli --scenario smip --report smip
//   wtr_cli --scenario mno --report revenue,silent,clearing
//   wtr_cli --replay-dir traces/ --report census   (CSV/binary replay mode)

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/census.hpp"
#include "core/clearing.hpp"
#include "core/platform_analysis.hpp"
#include "core/revenue.hpp"
#include "core/smip_analysis.hpp"
#include "core/trace_replay.hpp"
#include "io/bintrace.hpp"
#include "io/table.hpp"
#include "tracegen/m2m_platform_scenario.hpp"
#include "tracegen/mno_scenario.hpp"
#include "tracegen/smip_scenario.hpp"

namespace {

using namespace wtr;

struct Options {
  std::string scenario = "mno";
  std::size_t devices = 8'000;
  std::uint64_t seed = 7;
  std::vector<std::string> reports{"census"};
  std::string replay_dir;
};

void usage() {
  std::cout <<
      "wtr_cli [--scenario mno|platform|smip] [--devices N] [--seed S]\n"
      "        [--report census,platform,smip,revenue,silent,clearing]\n"
      "        [--replay-dir DIR]   replay DIR/{signaling,cdr,xdr}.csv through\n"
      "                             the census instead of simulating (each file\n"
      "                             may be CSV or WTRTRC1 binary, auto-detected)\n";
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream{text};
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scenario") {
      const char* v = value();
      if (!v) return false;
      options.scenario = v;
    } else if (arg == "--devices") {
      const char* v = value();
      if (!v) return false;
      options.devices = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--report") {
      const char* v = value();
      if (!v) return false;
      options.reports = split_commas(v);
    } else if (arg == "--replay-dir") {
      const char* v = value();
      if (!v) return false;
      options.replay_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

void print_census(const core::ClassifiedPopulation& population) {
  io::Table classes{{"class", "devices", "share"}};
  for (const auto label : {core::ClassLabel::kSmart, core::ClassLabel::kFeat,
                           core::ClassLabel::kM2M, core::ClassLabel::kM2MMaybe}) {
    classes.add_row({std::string(core::class_label_name(label)),
                     io::format_count(population.classification.count_of(label)),
                     io::format_percent(population.classification.share_of(label))});
  }
  std::cout << "\nDevice classes:\n" << classes.render();

  const auto heatmap = core::class_vs_label(population);
  io::Table labels{{"label", "devices", "m2m share"}};
  for (const auto label : core::observable_labels()) {
    const std::string name{core::roaming_label_name(label)};
    const auto total = heatmap.col_total(name);
    if (total == 0) continue;
    labels.add_row({name, io::format_count(total),
                    io::format_percent(heatmap.col_share("m2m", name))});
  }
  std::cout << "\nRoaming labels:\n" << labels.render();
}

int run_replay(const Options& options) {
  // Operator mode: consume schema-compatible traces — CSV or WTRTRC1
  // binary, auto-detected per file from the first byte.
  core::CatalogAccumulator accumulator{{cellnet::Plmn{234, 1, 2},
                                        {cellnet::Plmn{234, 1, 2}}}};
  core::ReplayStats totals;
  bool corrupt = false;
  auto feed = [&](const std::string& name, auto replay) {
    std::ifstream in{options.replay_dir + "/" + name, std::ios::binary};
    if (!in) {
      std::cerr << "missing " << options.replay_dir << "/" << name << "\n";
      return;
    }
    try {
      totals += replay(in, accumulator, nullptr);
    } catch (const io::BinaryTraceError& e) {
      // A failed CRC poisons everything after it; report and stop trusting
      // this run rather than skip-and-count like malformed CSV rows.
      std::cerr << options.replay_dir << "/" << name << ": " << e.what() << "\n";
      corrupt = true;
    }
  };
  feed("signaling.csv", core::replay_signaling_trace);
  feed("cdr.csv", core::replay_cdr_trace);
  feed("xdr.csv", core::replay_xdr_trace);
  if (corrupt) return 3;
  std::cout << "replayed " << totals.delivered << "/" << totals.rows << " rows ("
            << totals.bad_csv << " bad CSV, " << totals.bad_fields
            << " bad fields)\n";

  const auto catalog = accumulator.finalize();
  const cellnet::TacCatalog empty_catalog;  // no GSMA data in replay mode
  const auto population = core::run_census(catalog, cellnet::Plmn{234, 1, 2}, {},
                                           empty_catalog);
  print_census(population);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    usage();
    return 2;
  }
  if (!options.replay_dir.empty()) return run_replay(options);

  auto has_report = [&](const char* name) {
    return std::find(options.reports.begin(), options.reports.end(), name) !=
           options.reports.end();
  };

  if (options.scenario == "platform") {
    tracegen::M2MPlatformConfig config;
    config.seed = options.seed;
    config.total_devices = options.devices;
    tracegen::M2MPlatformScenario scenario{config};
    core::PlatformTraceAccumulator probes{{scenario.hmno_plmns()}};
    scenario.run({&probes});
    const auto stats = probes.finalize();
    io::Table table{{"HMNO", "devices", "records", "countries", "VMNOs"}};
    for (const auto& hmno : stats.per_hmno) {
      table.add_row({hmno.home_iso, io::format_count(hmno.devices),
                     io::format_count(hmno.records),
                     std::to_string(hmno.visited_countries),
                     std::to_string(hmno.visited_networks)});
    }
    std::cout << table.render();
    return 0;
  }

  if (options.scenario == "smip") {
    tracegen::SmipScenarioConfig config;
    config.seed = options.seed;
    config.total_devices = options.devices;
    tracegen::SmipScenario scenario{config};
    core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                          {scenario.observer_plmn()}}};
    scenario.run({&accumulator});
    const auto catalog = accumulator.finalize();
    const auto summaries = core::summarize(catalog);
    const auto analysis =
        core::analyze_smip(summaries, scenario.native_meters(),
                           scenario.roaming_meters(), config.days,
                           scenario.tac_catalog());
    io::Table table{{"group", "meters", "full period", "msgs/day"}};
    table.add_row({"native", io::format_count(analysis.native.devices),
                   io::format_percent(analysis.native.fraction_full_period),
                   io::format_fixed(analysis.native.mean_signaling_per_day, 1)});
    table.add_row({"roaming", io::format_count(analysis.roaming.devices),
                   io::format_percent(analysis.roaming.fraction_full_period),
                   io::format_fixed(analysis.roaming.mean_signaling_per_day, 1)});
    std::cout << table.render();
    return 0;
  }

  // Default: the MNO scenario, with composable reports.
  tracegen::MnoScenarioConfig config;
  config.seed = options.seed;
  config.total_devices = options.devices;
  tracegen::MnoScenario scenario{config};
  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        scenario.family_plmns()}};
  core::ClearingHouse clearing{{.self = scenario.observer_plmn(),
                                .family = scenario.family_plmns(),
                                .side = core::ClearingHouse::Side::kVisited}};
  scenario.run({&accumulator, &clearing});
  const auto catalog = accumulator.finalize();
  const auto population = core::run_census(catalog, scenario.observer_plmn(),
                                           scenario.mvno_plmns(),
                                           scenario.tac_catalog());
  std::cout << "simulated " << scenario.device_count() << " devices; observed "
            << population.size() << "\n";

  if (has_report("census")) print_census(population);
  if (has_report("revenue")) {
    const auto groups = core::revenue_by_group(population);
    io::Table table{{"group", "revenue/device-day", "revenue/load"}};
    for (const auto& [key, breakdown] : groups) {
      table.add_row({key, io::format_fixed(breakdown.revenue_per_device_day(), 3),
                     io::format_fixed(breakdown.revenue_to_load(), 1)});
    }
    std::cout << "\nRevenue:\n" << table.render();
  }
  if (has_report("silent")) {
    const auto stats = core::silent_roamers(population);
    std::cout << "\nSilent roamers: " << stats.silent << " of "
              << stats.inbound_devices << " inbound ("
              << io::format_percent(stats.share()) << ")\n";
  }
  if (has_report("clearing")) {
    io::Table table{{"partner", "devices", "amount"}};
    int rank = 0;
    for (const auto& statement : clearing.statements()) {
      if (++rank > 10) break;
      table.add_row({statement.partner.to_string(),
                     io::format_count(statement.devices),
                     io::format_fixed(statement.amount, 1)});
    }
    std::cout << "\nClearing (top partners):\n" << table.render();
  }
  return 0;
}
