// Platform footprint: the §3 analysis end to end — simulate the global M2M
// platform, capture its probe view, and report how each HMNO's IoT SIMs
// spread across visited countries and networks.

#include <iostream>

#include "core/platform_analysis.hpp"
#include "io/table.hpp"
#include "tracegen/m2m_platform_scenario.hpp"

int main(int argc, char** argv) {
  using namespace wtr;

  tracegen::M2MPlatformConfig config;
  config.seed = 11;
  config.total_devices = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 4'000;
  tracegen::M2MPlatformScenario scenario{config};
  std::cout << "Simulating the M2M platform: " << scenario.device_count()
            << " IoT SIMs across 4 HMNOs, " << config.days << " days\n";

  // The platform's probes: HMNO-side 4G control plane only.
  core::PlatformTraceAccumulator probes{{scenario.hmno_plmns()}};
  scenario.run({&probes});
  std::cout << "Probes captured " << io::format_count(probes.captured_records())
            << " transactions\n\n";

  const auto stats = probes.finalize();
  io::Table table{{"HMNO", "devices", "share", "signaling", "roaming devices",
                   "countries", "VMNOs"}};
  for (const auto& hmno : stats.per_hmno) {
    table.add_row({hmno.home_iso, io::format_count(hmno.devices),
                   io::format_percent(hmno.device_share(stats.total_devices)),
                   io::format_count(hmno.records),
                   io::format_percent(hmno.devices == 0
                                          ? 0.0
                                          : static_cast<double>(hmno.roaming_devices) /
                                                static_cast<double>(hmno.devices)),
                   std::to_string(hmno.visited_countries),
                   std::to_string(hmno.visited_networks)});
  }
  std::cout << table.render();

  std::cout << "\nSpanish HMNO highlights (the platform's workhorse):\n";
  io::Table es{{"metric", "value"}};
  es.add_row({"share of all signaling", io::format_percent(stats.es_signaling_share)});
  es.add_row({"of which emitted while roaming",
              io::format_percent(stats.es_roaming_signaling_share)});
  es.add_row({"devices that never roam", io::format_percent(stats.es_nonroaming_device_share)});
  es.add_row({"devices failing every 4G procedure",
              io::format_percent(stats.es_fraction_failed_only)});
  es.add_row({"signaling per device (mean / p50 / max)",
              io::format_fixed(stats.records_all.mean(), 0) + " / " +
                  io::format_fixed(stats.records_all.median(), 0) + " / " +
                  io::format_fixed(stats.records_all.max(), 0)});
  std::cout << es.render();

  std::cout << "\nRoaming dynamics: "
            << io::format_percent(stats.vmnos_per_roaming_device.fraction_at_most(1.0))
            << " of roaming SIMs camp on a single VMNO; the most promiscuous"
               " pure-failure device tried "
            << stats.max_vmnos_failed_only << " networks.\n";
  return 0;
}
