#pragma once

// Roaming labels <X:Y> (§4.2). X describes the SIM relative to the
// observing MNO: H (its own), V (one of its MVNOs), N (another MNO of the
// same country), I (foreign). Y describes where the device is attached:
// H (the observer's network) or A (abroad / another network). The observer
// can only ever see six of the eight combinations — records of foreign
// SIMs outside its network never reach it.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cellnet/plmn.hpp"

namespace wtr::core {

enum class SimSide : std::uint8_t { kHome, kVirtual, kNational, kInternational };
enum class NetSide : std::uint8_t { kHome, kAbroad };

struct RoamingLabel {
  SimSide sim = SimSide::kHome;
  NetSide net = NetSide::kHome;

  friend constexpr bool operator==(RoamingLabel, RoamingLabel) noexcept = default;
};

/// "H:H", "I:H", "V:A", ...
[[nodiscard]] std::string_view roaming_label_name(RoamingLabel label) noexcept;

/// The six labels an observer can produce, in the paper's display order.
[[nodiscard]] std::span<const RoamingLabel> observable_labels() noexcept;

inline constexpr RoamingLabel kNativeLabel{SimSide::kHome, NetSide::kHome};
inline constexpr RoamingLabel kInboundRoamerLabel{SimSide::kInternational, NetSide::kHome};

class RoamingLabeler {
 public:
  /// `observer` is the studied MNO's PLMN; `mvnos` the PLMNs of MVNOs
  /// hosted on it.
  RoamingLabeler(cellnet::Plmn observer, std::vector<cellnet::Plmn> mvnos);

  /// Label from a SIM PLMN and the set of visited PLMNs the record saw that
  /// period (Y = H when any visited network is the observer's).
  [[nodiscard]] RoamingLabel label(cellnet::Plmn sim,
                                   std::span<const cellnet::Plmn> visited) const;

  [[nodiscard]] SimSide sim_side(cellnet::Plmn sim) const;
  [[nodiscard]] cellnet::Plmn observer() const noexcept { return observer_; }

 private:
  cellnet::Plmn observer_;
  std::vector<cellnet::Plmn> mvnos_;
};

}  // namespace wtr::core
