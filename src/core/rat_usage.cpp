#include "core/rat_usage.hpp"

namespace wtr::core {

RatUsageFigure rat_usage_figure(const ClassifiedPopulation& population) {
  RatUsageFigure figure;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const auto device_class = population.classes[i];
    if (device_class == ClassLabel::kM2MMaybe) continue;
    const auto& summary = population.summaries[i];
    const std::string row{class_label_name(device_class)};
    figure.connectivity.add(row, std::string(cellnet::rat_mask_label(summary.radio_flags)));
    figure.data.add(row, std::string(cellnet::rat_mask_label(summary.data_rats)));
    figure.voice.add(row, std::string(cellnet::rat_mask_label(summary.voice_rats)));
  }
  return figure;
}

double class_mask_share(const stats::Heatmap& panel, ClassLabel device_class,
                        std::string_view mask_label) {
  return panel.row_share(std::string(class_label_name(device_class)),
                         std::string(mask_label));
}

}  // namespace wtr::core
