#pragma once

// Trace replay: feed exported (or schema-compatible external) CSV traces
// back through any RecordSink — the bridge between this reproduction and
// real operator logs. An operator with radio/CDR/xDR extracts in the wire
// format of records/*.hpp can run the paper's full §4–7 pipeline on them
// by replaying into a CatalogAccumulator.

#include <istream>

#include "sim/device_agent.hpp"

namespace wtr::obs {
class MetricsRegistry;
}  // namespace wtr::obs

namespace wtr::core {

struct ReplayStats {
  std::uint64_t rows = 0;          // data rows seen (excl. header)
  std::uint64_t delivered = 0;     // parsed and delivered to the sink
  std::uint64_t bad_csv = 0;       // skipped: structurally malformed CSV
                                   // (unterminated quote, stray quote)
  std::uint64_t bad_fields = 0;    // skipped: wrong arity or a field that
                                   // failed its strict parse (numerics, enums)

  [[nodiscard]] std::uint64_t malformed() const noexcept {
    return bad_csv + bad_fields;
  }
  [[nodiscard]] bool clean() const noexcept { return malformed() == 0; }

  ReplayStats& operator+=(const ReplayStats& other) noexcept {
    rows += other.rows;
    delivered += other.delivered;
    bad_csv += other.bad_csv;
    bad_fields += other.bad_fields;
    return *this;
  }
};

/// Each function expects a header line first (validated against the
/// canonical header) and tolerates blank lines. Malformed rows are counted
/// and skipped, never fatal — real exports have dirty tails.
ReplayStats replay_signaling_csv(std::istream& in, sim::RecordSink& sink);
ReplayStats replay_cdr_csv(std::istream& in, sim::RecordSink& sink);
ReplayStats replay_xdr_csv(std::istream& in, sim::RecordSink& sink);

/// Instrumented overloads: additionally mirror the ReplayStats into
/// "replay.<stream>.{rows,delivered,bad_csv,bad_fields}" counters of
/// `metrics` (null behaves exactly like the plain overload). The separate
/// signatures keep the plain functions' addresses usable as
/// `ReplayStats(*)(std::istream&, sim::RecordSink&)` function pointers.
ReplayStats replay_signaling_csv(std::istream& in, sim::RecordSink& sink,
                                 obs::MetricsRegistry* metrics);
ReplayStats replay_cdr_csv(std::istream& in, sim::RecordSink& sink,
                           obs::MetricsRegistry* metrics);
ReplayStats replay_xdr_csv(std::istream& in, sim::RecordSink& sink,
                           obs::MetricsRegistry* metrics);

}  // namespace wtr::core
