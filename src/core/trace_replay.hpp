#pragma once

// Trace replay: feed exported (or schema-compatible external) traces back
// through any RecordSink — the bridge between this reproduction and real
// operator logs. An operator with radio/CDR/xDR extracts in the wire format
// of records/*.hpp can run the paper's full §4–7 pipeline on them by
// replaying into a CatalogAccumulator. Two interchange formats are spoken:
// line-oriented CSV (lenient: dirty rows are counted and skipped) and the
// WTRTRC1 binary columnar format (io/bintrace.hpp; CRC-guarded, ~an order
// of magnitude faster to replay). The replay_*_trace entry points sniff the
// magic byte and pick the decoder, so every harness accepts either file.

#include <istream>
#include <ostream>

#include "io/csv.hpp"
#include "sim/device_agent.hpp"

namespace wtr::obs {
class MetricsRegistry;
}  // namespace wtr::obs

namespace wtr::core {

struct ReplayStats {
  std::uint64_t rows = 0;          // data rows seen (excl. header)
  std::uint64_t delivered = 0;     // parsed and delivered to the sink
  std::uint64_t bad_csv = 0;       // skipped: structurally malformed CSV
                                   // (unterminated quote, stray quote)
  std::uint64_t bad_fields = 0;    // skipped: wrong arity or a field that
                                   // failed its strict parse (numerics, enums)

  [[nodiscard]] std::uint64_t malformed() const noexcept {
    return bad_csv + bad_fields;
  }
  [[nodiscard]] bool clean() const noexcept { return malformed() == 0; }

  ReplayStats& operator+=(const ReplayStats& other) noexcept {
    rows += other.rows;
    delivered += other.delivered;
    bad_csv += other.bad_csv;
    bad_fields += other.bad_fields;
    return *this;
  }
};

/// Each function expects a header line first (validated against the
/// canonical header) and tolerates blank lines. Malformed rows are counted
/// and skipped, never fatal — real exports have dirty tails.
ReplayStats replay_signaling_csv(std::istream& in, sim::RecordSink& sink);
ReplayStats replay_cdr_csv(std::istream& in, sim::RecordSink& sink);
ReplayStats replay_xdr_csv(std::istream& in, sim::RecordSink& sink);

/// Instrumented overloads: additionally mirror the ReplayStats into
/// "replay.<stream>.{rows,delivered,bad_csv,bad_fields}" counters of
/// `metrics` (null behaves exactly like the plain overload). The separate
/// signatures keep the plain functions' addresses usable as
/// `ReplayStats(*)(std::istream&, sim::RecordSink&)` function pointers.
ReplayStats replay_signaling_csv(std::istream& in, sim::RecordSink& sink,
                                 obs::MetricsRegistry* metrics);
ReplayStats replay_cdr_csv(std::istream& in, sim::RecordSink& sink,
                           obs::MetricsRegistry* metrics);
ReplayStats replay_xdr_csv(std::istream& in, sim::RecordSink& sink,
                           obs::MetricsRegistry* metrics);

/// Format-agnostic entry points: peek the first byte — the WTRTRC1 magic
/// (0x89) cannot open a CSV line — and dispatch to the matching decoder.
/// The stream name only labels the mirrored metrics. A binary stream may
/// carry any record family regardless of which wrapper opened it (binary
/// traces are usually written per family, like the CSV exports); structural
/// corruption in a binary stream throws io::BinaryTraceError instead of
/// the CSV skip-and-count, because nothing after a failed CRC can be
/// trusted.
ReplayStats replay_signaling_trace(std::istream& in, sim::RecordSink& sink,
                                   obs::MetricsRegistry* metrics = nullptr);
ReplayStats replay_cdr_trace(std::istream& in, sim::RecordSink& sink,
                             obs::MetricsRegistry* metrics = nullptr);
ReplayStats replay_xdr_trace(std::istream& in, sim::RecordSink& sink,
                             obs::MetricsRegistry* metrics = nullptr);

/// Replay a WTRTRC1 binary trace (all families it carries) into `sink`.
/// Throws io::BinaryTraceError on structural corruption.
ReplayStats replay_binary_trace(std::istream& in, sim::RecordSink& sink,
                                obs::MetricsRegistry* metrics = nullptr,
                                const char* stream = "binary");

/// RecordSink that exports the three replayable families as canonical CSV
/// (header + one row per record) — the inverse of the replay_*_csv
/// functions and the producer side of the CSV-vs-binary A/B harnesses.
/// Dwell callbacks are ignored (dwell has no CSV stream).
class CsvTraceExportSink final : public sim::RecordSink {
 public:
  /// Writes the three headers immediately.
  CsvTraceExportSink(std::ostream& signaling, std::ostream& cdr, std::ostream& xdr);

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override;
  void on_cdr(const records::Cdr& cdr) override;
  void on_xdr(const records::Xdr& xdr) override;

 private:
  io::CsvWriter signaling_;
  io::CsvWriter cdr_;
  io::CsvWriter xdr_;
};

}  // namespace wtr::core
