#pragma once

// Devices-catalog construction (§4.1): a streaming RecordSink that joins
// the three raw sources — radio events, CDRs/xDRs and the TAC identity —
// into one DailyDeviceRecord per (device, day), applying the observing
// MNO's visibility rules:
//   * radio events are seen only when the device used the observer's radio
//     network (outbound roamers' radio signaling stays abroad);
//   * CDRs/xDRs are seen for the observer's radio network AND for the
//     observer's own/MVNO SIMs abroad (roaming reconciliation records);
//   * sector dwell (mobility) exists only on the observer's own sectors.
//
// Also defines DeviceSummary, the per-device rollup every §5–7 analysis
// consumes.

#include <unordered_map>
#include <vector>

#include "core/mobility_metrics.hpp"
#include "records/devices_catalog.hpp"
#include "sim/device_agent.hpp"

namespace wtr::core {

class CatalogAccumulator final : public sim::RecordSink {
 public:
  struct Config {
    cellnet::Plmn observer_plmn{};               // the MNO under study
    std::vector<cellnet::Plmn> family_plmns;     // observer + its MVNOs
  };

  explicit CatalogAccumulator(Config config);

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override;
  void on_cdr(const records::Cdr& cdr) override;
  void on_xdr(const records::Xdr& xdr) override;
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override;

  /// Number of raw records accepted (after visibility filtering).
  [[nodiscard]] std::uint64_t accepted_records() const noexcept { return accepted_; }

  /// Drain into a catalog. The accumulator is empty afterwards.
  [[nodiscard]] records::DevicesCatalog finalize();

 private:
  struct Partial {
    signaling::DeviceHash device = 0;
    std::int32_t day = 0;
    cellnet::Plmn sim_plmn{};
    std::vector<cellnet::Plmn> visited_plmns;
    std::uint64_t signaling_events = 0;
    std::uint64_t failed_events = 0;
    std::uint32_t calls = 0;
    double call_seconds = 0.0;
    std::uint64_t bytes = 0;
    std::vector<std::string> apns;
    cellnet::Tac tac = 0;
    cellnet::RatMask radio_flags{};
    cellnet::RatMask data_rats{};
    cellnet::RatMask voice_rats{};
    GyrationAccumulator gyration;
  };

  [[nodiscard]] bool in_family(cellnet::Plmn plmn) const noexcept;
  Partial& partial_for(signaling::DeviceHash device, std::int32_t day,
                       cellnet::Plmn sim_plmn);

  Config config_;
  std::unordered_map<std::uint64_t, Partial> partials_;
  std::uint64_t accepted_ = 0;
};

/// Per-device rollup across the whole observation window.
struct DeviceSummary {
  signaling::DeviceHash device = 0;
  cellnet::Plmn sim_plmn{};
  std::vector<cellnet::Plmn> visited_plmns;  // unique
  std::vector<std::string> apns;             // unique full APN strings
  cellnet::Tac tac = 0;

  std::uint32_t active_days = 0;
  std::int32_t first_day = 0;
  std::int32_t last_day = 0;

  std::uint64_t signaling_events = 0;
  std::uint64_t failed_events = 0;
  std::uint32_t calls = 0;
  double call_seconds = 0.0;
  std::uint64_t bytes = 0;

  cellnet::RatMask radio_flags{};
  cellnet::RatMask data_rats{};
  cellnet::RatMask voice_rats{};

  double mean_daily_gyration_m = 0.0;
  bool has_position = false;

  [[nodiscard]] double signaling_per_day() const noexcept {
    return active_days == 0 ? 0.0
                            : static_cast<double>(signaling_events) / active_days;
  }
  [[nodiscard]] double calls_per_day() const noexcept {
    return active_days == 0 ? 0.0 : static_cast<double>(calls) / active_days;
  }
  [[nodiscard]] double bytes_per_day() const noexcept {
    return active_days == 0 ? 0.0 : static_cast<double>(bytes) / active_days;
  }
  [[nodiscard]] bool attached_to(cellnet::Plmn plmn) const noexcept;
};

/// Roll the catalog up to one summary per device, ordered by device hash
/// (deterministic).
[[nodiscard]] std::vector<DeviceSummary> summarize(const records::DevicesCatalog& catalog);

}  // namespace wtr::core
