#pragma once

// Spatio-temporal population dynamics (§5.3): active-days distributions
// (Fig. 7) and radius-of-gyration distributions (Fig. 8), grouped by device
// class and roaming status.

#include <map>
#include <string>

#include "core/census.hpp"
#include "stats/ecdf.hpp"

namespace wtr::core {

/// Fig. 7: ECDF of the number of active days, for m2m and smartphones,
/// split inbound-roaming (left panel) vs native (right panel).
struct ActiveDaysFigure {
  stats::Ecdf inbound_m2m;
  stats::Ecdf inbound_smart;
  stats::Ecdf native_m2m;
  stats::Ecdf native_smart;
};

[[nodiscard]] ActiveDaysFigure active_days_figure(const ClassifiedPopulation& population);

/// Fig. 8: ECDF of the mean daily radius of gyration per group. Keys are
/// "<class>/<inbound|native>"; devices without position data are skipped.
[[nodiscard]] std::map<std::string, stats::Ecdf> gyration_figure(
    const ClassifiedPopulation& population);

/// Share of a group's devices with gyration above a threshold (the paper
/// quotes "only 20% of inbound M2M devices above 1 km").
[[nodiscard]] double gyration_share_above(const ClassifiedPopulation& population,
                                          ClassLabel device_class, bool inbound,
                                          double threshold_m);

}  // namespace wtr::core
