#include "core/mobility_metrics.hpp"

#include <cmath>

namespace wtr::core {

namespace {
constexpr double kEarthRadiusM = 6'371'000.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}  // namespace

void GyrationAccumulator::to_local(const cellnet::GeoPoint& p, double& east_m,
                                   double& north_m) const noexcept {
  north_m = (p.lat - ref_.lat) * kDegToRad * kEarthRadiusM;
  east_m = (p.lon - ref_.lon) * kDegToRad * kEarthRadiusM * cos_ref_lat_;
}

void GyrationAccumulator::add(const cellnet::GeoPoint& location, double weight) noexcept {
  if (weight <= 0.0) return;
  if (!has_ref_) {
    has_ref_ = true;
    ref_ = location;
    cos_ref_lat_ = std::cos(ref_.lat * kDegToRad);
    if (std::abs(cos_ref_lat_) < 1e-9) cos_ref_lat_ = 1e-9;
  }
  double east_m = 0.0;
  double north_m = 0.0;
  to_local(location, east_m, north_m);
  total_weight_ += weight;
  sum_e_ += weight * east_m;
  sum_n_ += weight * north_m;
  sum_sq_ += weight * (east_m * east_m + north_m * north_m);
}

void GyrationAccumulator::merge(const GyrationAccumulator& other) noexcept {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  // Re-express the other accumulator's moments in this frame. The frames
  // differ by a translation (and a negligible scale difference in east).
  double de = 0.0;
  double dn = 0.0;
  to_local(other.ref_, de, dn);
  total_weight_ += other.total_weight_;
  sum_e_ += other.sum_e_ + other.total_weight_ * de;
  sum_n_ += other.sum_n_ + other.total_weight_ * dn;
  // |p + d|^2 = |p|^2 + 2 p·d + |d|^2 summed with weights.
  sum_sq_ += other.sum_sq_ + 2.0 * (other.sum_e_ * de + other.sum_n_ * dn) +
             other.total_weight_ * (de * de + dn * dn);
}

cellnet::GeoPoint GyrationAccumulator::centroid() const noexcept {
  if (empty()) return ref_;
  const double mean_e = sum_e_ / total_weight_;
  const double mean_n = sum_n_ / total_weight_;
  return cellnet::offset_m(ref_, mean_e, mean_n);
}

double GyrationAccumulator::gyration_m() const noexcept {
  if (empty()) return 0.0;
  const double mean_e = sum_e_ / total_weight_;
  const double mean_n = sum_n_ / total_weight_;
  const double mean_sq = sum_sq_ / total_weight_;
  const double variance = mean_sq - (mean_e * mean_e + mean_n * mean_n);
  return variance <= 0.0 ? 0.0 : std::sqrt(variance);
}

}  // namespace wtr::core
