#include "core/clearing.hpp"

#include <algorithm>
#include <cmath>

namespace wtr::core {

ClearingHouse::ClearingHouse(Config config) : config_(std::move(config)) {
  if (config_.family.empty()) config_.family.push_back(config_.self);
}

bool ClearingHouse::in_family(cellnet::Plmn plmn) const {
  return std::find(config_.family.begin(), config_.family.end(), plmn) !=
         config_.family.end();
}

cellnet::Plmn ClearingHouse::partner_for(cellnet::Plmn sim,
                                         cellnet::Plmn visited) const {
  switch (config_.side) {
    case Side::kVisited:
      // I carried the traffic: bill the (international) home operator.
      // Family SIMs (self + hosted MVNOs, which may sit on a different MCC
      // like the UK's 234/235 split) and national partners settle through
      // other channels.
      if (visited != config_.self) return {};
      if (in_family(sim)) return {};
      if (sim.mcc() == config_.self.mcc()) return {};  // national roaming
      return sim;
    case Side::kHome:
      // My SIM roamed elsewhere: accrue the visited network's invoice.
      if (!in_family(sim)) return {};
      if (visited.mcc() == config_.self.mcc()) return {};  // at home
      return visited;
  }
  return {};
}

void ClearingHouse::on_cdr(const records::Cdr& cdr) {
  const auto partner = partner_for(cdr.sim_plmn, cdr.visited_plmn);
  if (!partner.valid()) return;
  auto& books = books_[partner];
  books.devices.insert(cdr.device);
  books.voice_minutes += cdr.duration_s / 60.0;
}

void ClearingHouse::on_xdr(const records::Xdr& xdr) {
  const auto partner = partner_for(xdr.sim_plmn, xdr.visited_plmn);
  if (!partner.valid()) return;
  auto& books = books_[partner];
  books.devices.insert(xdr.device);
  books.data_mb += static_cast<double>(xdr.bytes_total()) / (1024.0 * 1024.0);
}

std::vector<SettlementStatement> ClearingHouse::statements() const {
  std::vector<SettlementStatement> out;
  out.reserve(books_.size());
  for (const auto& [partner, books] : books_) {
    SettlementStatement statement;
    statement.partner = partner;
    statement.devices = books.devices.size();
    statement.data_mb = books.data_mb;
    statement.voice_minutes = books.voice_minutes;
    statement.amount = books.data_mb * config_.tariffs.wholesale_data_per_mb +
                       books.voice_minutes * config_.tariffs.wholesale_voice_per_minute;
    out.push_back(statement);
  }
  std::sort(out.begin(), out.end(),
            [](const SettlementStatement& a, const SettlementStatement& b) {
              if (a.amount != b.amount) return a.amount > b.amount;
              return a.partner < b.partner;
            });
  return out;
}

double ClearingHouse::total_billed() const {
  double total = 0.0;
  for (const auto& statement : statements()) total += statement.amount;
  return total;
}

const SettlementStatement* find_statement(
    std::span<const SettlementStatement> statements, cellnet::Plmn partner) {
  const auto it = std::find_if(
      statements.begin(), statements.end(),
      [&](const SettlementStatement& s) { return s.partner == partner; });
  return it == statements.end() ? nullptr : &*it;
}

ReconciliationReport reconcile_pair(std::span<const SettlementStatement> vmno_claims,
                                    cellnet::Plmn home,
                                    std::span<const SettlementStatement> hmno_accruals,
                                    cellnet::Plmn visited) {
  ReconciliationReport report;
  const auto* claim = find_statement(vmno_claims, home);
  const auto* accrual = find_statement(hmno_accruals, visited);
  if (claim == nullptr || accrual == nullptr) return report;
  report.both_sides_present = true;
  report.claim_amount = claim->amount;
  report.accrual_amount = accrual->amount;
  report.amount_gap = std::abs(claim->amount - accrual->amount);
  report.device_gap = claim->devices > accrual->devices
                          ? claim->devices - accrual->devices
                          : accrual->devices - claim->devices;
  return report;
}

}  // namespace wtr::core
