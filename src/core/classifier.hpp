#pragma once

// The multi-step M2M device classifier (§4.3) — the paper's central
// methodological contribution. Stages:
//
//   1. Keyword → APN validation. A small keyword vocabulary (the paper
//      curates 26 from the top APNs) marks APN strings as M2M-vertical.
//   2. Devices using a validated APN are m2m.
//   3. Device-property propagation: every equipment type (TAC) observed on
//      a stage-2 m2m device extends the m2m class to all devices with the
//      same properties — this is what catches the ~21% of devices exposing
//      no APN at all.
//   4. Phones: a major smartphone OS ⇒ smart; a GSMA feature-phone label or
//      a consumer APN ⇒ feat.
//   5. Whatever remains that is neither phone-like nor APN-bearing is
//      m2m-maybe (voice-only devices whose class cannot be finalized).

#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "cellnet/apn.hpp"
#include "cellnet/tac_catalog.hpp"
#include "core/catalog_builder.hpp"

namespace wtr::core {

enum class ClassLabel : std::uint8_t { kSmart, kFeat, kM2M, kM2MMaybe };

inline constexpr int kClassLabelCount = 4;

[[nodiscard]] std::string_view class_label_name(ClassLabel label) noexcept;

/// The default M2M keyword vocabulary (kept in sync with the vertical
/// company catalog in devices/verticals.cpp — a test cross-checks; the
/// companies with empty keywords there are deliberately missing here).
[[nodiscard]] std::span<const std::string_view> default_m2m_keywords() noexcept;

/// Consumer-APN keywords ("payandgo", "internet", ...).
[[nodiscard]] std::span<const std::string_view> default_consumer_keywords() noexcept;

struct ClassifierConfig {
  std::vector<std::string> m2m_keywords;       // empty = defaults
  std::vector<std::string> consumer_keywords;  // empty = defaults
  bool propagate_device_properties = true;     // stage 3 (ablation A1 switch)
  /// §8 extension: NB-IoT is a dedicated LPWA platform, so the RAT alone
  /// identifies a device as M2M ("NB-IoT will enable visited MNOs to easily
  /// detect the inbound roaming IoT devices"). Stage 0 of the pipeline.
  bool use_nbiot_rat_rule = true;
};

struct ClassificationResult {
  std::vector<ClassLabel> labels;  // parallel to the input summaries

  // Pipeline introspection, mirroring the numbers the paper reports.
  std::size_t distinct_apns = 0;          // 4,603 in the paper
  std::size_t validated_m2m_apns = 0;     // 1,719
  std::size_t consumer_apns = 0;          // 2,178
  std::size_t m2m_tacs_propagated = 0;    // stage-3 property set size
  std::size_t devices_without_apn = 0;    // ~21% of the population
  std::size_t m2m_by_apn = 0;             // classified in stage 2
  std::size_t m2m_by_propagation = 0;     // added by stage 3
  std::size_t m2m_by_nbiot_rat = 0;       // stage 0 (NB-IoT RAT rule, §8)

  [[nodiscard]] std::size_t count_of(ClassLabel label) const;
  [[nodiscard]] double share_of(ClassLabel label) const;
};

class DeviceClassifier {
 public:
  explicit DeviceClassifier(const cellnet::TacCatalog& catalog,
                            ClassifierConfig config = {});

  [[nodiscard]] ClassificationResult classify(
      std::span<const DeviceSummary> devices) const;

  /// Stage-1 primitives, exposed for tests.
  [[nodiscard]] bool apn_matches_m2m(const cellnet::Apn& apn) const;
  [[nodiscard]] bool apn_matches_consumer(const cellnet::Apn& apn) const;

 private:
  const cellnet::TacCatalog* catalog_;
  std::vector<std::string> m2m_keywords_;
  std::vector<std::string> consumer_keywords_;
  bool propagate_;
  bool nbiot_rule_;
};

}  // namespace wtr::core
