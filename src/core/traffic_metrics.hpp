#pragma once

// Traffic volume analysis (§6.2, Fig. 10): per-device daily signaling
// events, voice calls and data bytes, grouped by class × roaming status.
// This is where the paper's revenue argument lives: M2M devices occupy
// radio resources but move almost no chargeable traffic.

#include <map>
#include <string>

#include "core/census.hpp"
#include "stats/ecdf.hpp"

namespace wtr::core {

/// Keys are "<class>/<inbound|native>" for class ∈ {smart, feat, m2m}.
struct TrafficFigure {
  std::map<std::string, stats::Ecdf> signaling_per_day;  // Fig. 10-left
  std::map<std::string, stats::Ecdf> calls_per_day;      // Fig. 10-center
  std::map<std::string, stats::Ecdf> bytes_per_day;      // Fig. 10-right
};

[[nodiscard]] TrafficFigure traffic_figure(const ClassifiedPopulation& population);

/// Group key helper shared with the harnesses.
[[nodiscard]] std::string traffic_group_key(ClassLabel device_class, bool inbound);

}  // namespace wtr::core
