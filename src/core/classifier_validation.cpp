#include "core/classifier_validation.hpp"

namespace wtr::core {

namespace {

bool lenient_match(devices::DeviceClass truth, ClassLabel predicted) {
  switch (truth) {
    case devices::DeviceClass::kSmartphone: return predicted == ClassLabel::kSmart;
    case devices::DeviceClass::kFeaturePhone: return predicted == ClassLabel::kFeat;
    case devices::DeviceClass::kM2M:
      return predicted == ClassLabel::kM2M || predicted == ClassLabel::kM2MMaybe;
  }
  return false;
}

bool strict_match(devices::DeviceClass truth, ClassLabel predicted) {
  switch (truth) {
    case devices::DeviceClass::kSmartphone: return predicted == ClassLabel::kSmart;
    case devices::DeviceClass::kFeaturePhone: return predicted == ClassLabel::kFeat;
    case devices::DeviceClass::kM2M: return predicted == ClassLabel::kM2M;
  }
  return false;
}

struct PrCounts {
  std::uint64_t true_positive = 0;
  std::uint64_t predicted = 0;
  std::uint64_t actual = 0;

  [[nodiscard]] double precision() const {
    return predicted == 0 ? 0.0
                          : static_cast<double>(true_positive) /
                                static_cast<double>(predicted);
  }
  [[nodiscard]] double recall() const {
    return actual == 0 ? 0.0
                       : static_cast<double>(true_positive) /
                             static_cast<double>(actual);
  }
};

}  // namespace

ValidationReport validate_classification(const ClassifiedPopulation& population,
                                         const GroundTruth& truth) {
  ValidationReport report;
  std::uint64_t strict_hits = 0;
  std::uint64_t lenient_hits = 0;
  PrCounts m2m;
  PrCounts smart;
  PrCounts feat;

  for (std::size_t i = 0; i < population.size(); ++i) {
    const auto it = truth.find(population.summaries[i].device);
    if (it == truth.end()) {
      ++report.unmatched;
      continue;
    }
    ++report.matched;
    const devices::DeviceClass actual = it->second;
    const ClassLabel predicted = population.classes[i];
    ++report.confusion[static_cast<std::size_t>(actual)]
                      [static_cast<std::size_t>(predicted)];
    if (strict_match(actual, predicted)) ++strict_hits;
    if (lenient_match(actual, predicted)) ++lenient_hits;

    const bool predicted_m2m =
        predicted == ClassLabel::kM2M || predicted == ClassLabel::kM2MMaybe;
    if (predicted_m2m) ++m2m.predicted;
    if (actual == devices::DeviceClass::kM2M) {
      ++m2m.actual;
      if (predicted_m2m) ++m2m.true_positive;
    }
    if (predicted == ClassLabel::kSmart) ++smart.predicted;
    if (actual == devices::DeviceClass::kSmartphone) {
      ++smart.actual;
      if (predicted == ClassLabel::kSmart) ++smart.true_positive;
    }
    if (predicted == ClassLabel::kFeat) ++feat.predicted;
    if (actual == devices::DeviceClass::kFeaturePhone) {
      ++feat.actual;
      if (predicted == ClassLabel::kFeat) ++feat.true_positive;
    }
  }

  if (report.matched > 0) {
    report.strict_accuracy =
        static_cast<double>(strict_hits) / static_cast<double>(report.matched);
    report.lenient_accuracy =
        static_cast<double>(lenient_hits) / static_cast<double>(report.matched);
  }
  report.m2m_precision = m2m.precision();
  report.m2m_recall = m2m.recall();
  report.smart_precision = smart.precision();
  report.smart_recall = smart.recall();
  report.feat_precision = feat.precision();
  report.feat_recall = feat.recall();
  return report;
}

}  // namespace wtr::core
