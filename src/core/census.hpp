#pragma once

// Population census from the visited MNO's perspective (§4–5): rolls the
// devices-catalog up to per-device summaries, assigns roaming labels,
// runs the classifier, and derives the population figures (Fig. 5 home
// countries, Fig. 6 class-vs-label, and the in-text shares).

#include <map>
#include <string>
#include <vector>

#include "core/catalog_builder.hpp"
#include "core/classifier.hpp"
#include "core/roaming_labeler.hpp"
#include "records/devices_catalog.hpp"
#include "stats/heatmap.hpp"
#include "stats/histogram.hpp"

namespace wtr::core {

struct ClassifiedPopulation {
  std::vector<DeviceSummary> summaries;
  std::vector<RoamingLabel> labels;   // parallel to summaries
  std::vector<ClassLabel> classes;    // parallel to summaries
  ClassificationResult classification;
  RoamingLabeler labeler;

  [[nodiscard]] std::size_t size() const noexcept { return summaries.size(); }
  [[nodiscard]] bool is_inbound(std::size_t i) const noexcept {
    return labels[i] == kInboundRoamerLabel;
  }
  [[nodiscard]] bool is_native_or_mvno(std::size_t i) const noexcept {
    return labels[i].net == NetSide::kHome &&
           (labels[i].sim == SimSide::kHome || labels[i].sim == SimSide::kVirtual);
  }
};

/// Build the census: summarize → label → classify.
[[nodiscard]] ClassifiedPopulation run_census(const records::DevicesCatalog& catalog,
                                              cellnet::Plmn observer,
                                              std::vector<cellnet::Plmn> mvno_plmns,
                                              const cellnet::TacCatalog& tac_catalog,
                                              ClassifierConfig config = {});

/// Per-day roaming-label shares (§4.2's "48% / 33% / 18% per day" table):
/// every (device, day) record contributes one count to its label.
[[nodiscard]] stats::CategoryCounter daily_label_shares(
    const records::DevicesCatalog& catalog, const RoamingLabeler& labeler);

/// Fig. 5-top: inbound roamers per home country (ISO), descending.
[[nodiscard]] stats::CategoryCounter inbound_home_countries(
    const ClassifiedPopulation& population);

/// Fig. 5-bottom: rows = device class, cols = home country ISO, counts over
/// inbound roamers only (normalize per row to reproduce the figure).
[[nodiscard]] stats::Heatmap inbound_home_country_by_class(
    const ClassifiedPopulation& population);

/// Fig. 6: rows = device class, cols = roaming label. Row-normalize for the
/// left panel, column-normalize for the right panel.
[[nodiscard]] stats::Heatmap class_vs_label(const ClassifiedPopulation& population);

/// "Silent roamers" (§8's regulatory footnote): inbound devices that occupy
/// the signaling plane without generating any chargeable usage — no data
/// bytes and no calls across the whole window.
struct SilentRoamerStats {
  std::size_t inbound_devices = 0;
  std::size_t silent = 0;
  std::map<std::string, std::size_t> silent_by_class;  // class-name keyed

  [[nodiscard]] double share() const noexcept {
    return inbound_devices == 0
               ? 0.0
               : static_cast<double>(silent) / static_cast<double>(inbound_devices);
  }
};

[[nodiscard]] SilentRoamerStats silent_roamers(const ClassifiedPopulation& population);

}  // namespace wtr::core
