#include "core/traffic_metrics.hpp"

namespace wtr::core {

std::string traffic_group_key(ClassLabel device_class, bool inbound) {
  return std::string(class_label_name(device_class)) + "/" +
         (inbound ? "inbound" : "native");
}

TrafficFigure traffic_figure(const ClassifiedPopulation& population) {
  TrafficFigure figure;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const bool inbound = population.is_inbound(i);
    const bool native = population.is_native_or_mvno(i);
    if (!inbound && !native) continue;
    const auto device_class = population.classes[i];
    if (device_class == ClassLabel::kM2MMaybe) continue;  // excluded in §4.3
    const auto& summary = population.summaries[i];
    const std::string key = traffic_group_key(device_class, inbound);
    figure.signaling_per_day[key].add(summary.signaling_per_day());
    figure.calls_per_day[key].add(summary.calls_per_day());
    figure.bytes_per_day[key].add(summary.bytes_per_day());
  }
  return figure;
}

}  // namespace wtr::core
