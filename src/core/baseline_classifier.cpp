#include "core/baseline_classifier.hpp"

#include <algorithm>

namespace wtr::core {

std::vector<std::string> default_m2m_vendor_list() {
  // The paper's big three first; the tail is what a Shafiq-style manual
  // pass over module vendors would add.
  return {"Gemalto",  "Telit",  "Sierra Wireless", "u-blox", "Quectel",
          "SIMCom",   "Cinterion", "Fibocom",      "Neoway", "MeiG"};
}

BaselineVendorClassifier::BaselineVendorClassifier(const cellnet::TacCatalog& catalog,
                                                   BaselineClassifierConfig config)
    : catalog_(&catalog),
      vendors_(config.m2m_vendors.empty() ? default_m2m_vendor_list()
                                          : std::move(config.m2m_vendors)) {}

bool BaselineVendorClassifier::is_m2m_vendor(std::string_view vendor) const {
  return std::any_of(vendors_.begin(), vendors_.end(),
                     [&](const std::string& v) { return v == vendor; });
}

ClassificationResult BaselineVendorClassifier::classify(
    std::span<const DeviceSummary> devices) const {
  ClassificationResult result;
  result.labels.assign(devices.size(), ClassLabel::kM2MMaybe);

  for (std::size_t i = 0; i < devices.size(); ++i) {
    const auto& device = devices[i];
    if (device.apns.empty()) ++result.devices_without_apn;
    const cellnet::TacInfo* info =
        device.tac != 0 ? catalog_->lookup(device.tac) : nullptr;
    if (info == nullptr) {
      result.labels[i] = ClassLabel::kM2MMaybe;  // no evidence at all
      continue;
    }
    // Rule 1: curated vendor list.
    if (is_m2m_vendor(info->vendor)) {
      result.labels[i] = ClassLabel::kM2M;
      continue;
    }
    // Rule 2: GSMA label / OS heuristics.
    if (cellnet::is_major_smartphone_os(info->os) ||
        info->label == cellnet::GsmaLabel::kSmartphone) {
      result.labels[i] = ClassLabel::kSmart;
    } else if (info->label == cellnet::GsmaLabel::kFeaturePhone) {
      result.labels[i] = ClassLabel::kFeat;
    } else if (info->label == cellnet::GsmaLabel::kModem ||
               info->label == cellnet::GsmaLabel::kModule) {
      // The paper's caveat: these labels "might not necessarily imply an
      // M2M/IoT application", but the baseline takes them at face value.
      result.labels[i] = ClassLabel::kM2M;
    } else {
      result.labels[i] = ClassLabel::kM2MMaybe;
    }
  }
  return result;
}

}  // namespace wtr::core
