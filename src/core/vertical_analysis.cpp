#include "core/vertical_analysis.hpp"

namespace wtr::core {

std::optional<devices::Vertical> vertical_from_apn(const cellnet::Apn& apn) {
  for (int v = 1; v < devices::kVerticalCount; ++v) {
    const auto vertical = static_cast<devices::Vertical>(v);
    for (const auto& company : devices::companies_of(vertical)) {
      if (!company.keyword.empty() && apn.contains_keyword(company.keyword)) {
        return vertical;
      }
    }
  }
  return std::nullopt;
}

std::optional<devices::Vertical> vertical_of_device(const DeviceSummary& summary) {
  for (const auto& apn_string : summary.apns) {
    if (const auto vertical = vertical_from_apn(cellnet::Apn::parse(apn_string))) {
      return vertical;
    }
  }
  return std::nullopt;
}

VerticalFigure vertical_figure(const ClassifiedPopulation& population) {
  VerticalFigure figure;
  auto add = [&](const std::string& key, const DeviceSummary& summary) {
    if (summary.has_position) figure.gyration_m[key].add(summary.mean_daily_gyration_m);
    figure.signaling_per_day[key].add(summary.signaling_per_day());
    figure.bytes_per_day[key].add(summary.bytes_per_day());
  };

  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population.is_inbound(i)) continue;
    const auto& summary = population.summaries[i];
    if (population.classes[i] == ClassLabel::kSmart) {
      add("smartphone", summary);
      continue;
    }
    if (population.classes[i] != ClassLabel::kM2M) continue;
    if (const auto vertical = vertical_of_device(summary)) {
      add(std::string(devices::vertical_name(*vertical)), summary);
    }
  }
  return figure;
}

}  // namespace wtr::core
