#pragma once

// Inter-operator wholesale clearing (§2.1): "The roaming partners must each
// record the activity of roaming clients in a given VMNO. Then, by
// exchanging and comparing these records, the VMNO can claim revenue from
// the partner HMNO." §9 lists "data and financial clearing" among the
// stress M2M puts on the interconnection ecosystem.
//
// ClearingHouse is a streaming RecordSink that builds TAP-like settlement
// statements per partner operator, from either side of the relationship:
//   * the visited side bills each home operator for its inbound roamers;
//   * the home side accrues the invoices it expects from each visited
//     network carrying its outbound roamers.
// reconcile() then plays the §2.1 record-comparison step.

#include <map>
#include <set>
#include <span>
#include <vector>

#include "core/revenue.hpp"
#include "sim/device_agent.hpp"

namespace wtr::core {

struct SettlementStatement {
  cellnet::Plmn partner{};     // the operator on the other side
  std::size_t devices = 0;     // distinct roaming devices covered
  double data_mb = 0.0;
  double voice_minutes = 0.0;
  double amount = 0.0;         // at wholesale rates

  friend bool operator==(const SettlementStatement&,
                         const SettlementStatement&) = default;
};

class ClearingHouse final : public sim::RecordSink {
 public:
  enum class Side {
    kVisited,  // I am the VMNO: bill home operators for inbound usage
    kHome,     // I am the HMNO: accrue expected invoices per visited network
  };

  struct Config {
    cellnet::Plmn self{};                  // the operator running the books
    std::vector<cellnet::Plmn> family;     // self + MVNOs (home side only)
    Side side = Side::kVisited;
    TariffSchedule tariffs{};
  };

  explicit ClearingHouse(Config config);

  void on_cdr(const records::Cdr& cdr) override;
  void on_xdr(const records::Xdr& xdr) override;

  /// Statements per partner, largest amount first. Deterministic order.
  [[nodiscard]] std::vector<SettlementStatement> statements() const;

  [[nodiscard]] double total_billed() const;

 private:
  struct Books {
    std::set<signaling::DeviceHash> devices;
    double data_mb = 0.0;
    double voice_minutes = 0.0;
  };

  /// Which partner a record settles against, or invalid PLMN if the record
  /// is out of scope for this side.
  [[nodiscard]] cellnet::Plmn partner_for(cellnet::Plmn sim,
                                          cellnet::Plmn visited) const;
  [[nodiscard]] bool in_family(cellnet::Plmn plmn) const;

  Config config_;
  std::map<cellnet::Plmn, Books> books_;
};

struct ReconciliationReport {
  bool both_sides_present = false;
  double claim_amount = 0.0;    // what the visited side bills
  double accrual_amount = 0.0;  // what the home side expected
  double amount_gap = 0.0;      // |claim − accrual|
  std::size_t device_gap = 0;   // |devices_claimed − devices_expected|

  [[nodiscard]] bool clean() const noexcept {
    return both_sides_present && amount_gap < 1e-6 && device_gap == 0;
  }
};

/// Find the statement against a given partner; nullptr when absent.
[[nodiscard]] const SettlementStatement* find_statement(
    std::span<const SettlementStatement> statements, cellnet::Plmn partner);

/// The §2.1 record-comparison step for one V↔H pair: the VMNO's claim
/// against home operator H versus H's accrual for the VMNO V. Both record
/// streams are derived from the same usage, so in a lossless exchange the
/// report is clean; discrepancies mean records were dropped or double
/// counted somewhere between the partners.
[[nodiscard]] ReconciliationReport reconcile_pair(
    std::span<const SettlementStatement> vmno_claims, cellnet::Plmn home,
    std::span<const SettlementStatement> hmno_accruals, cellnet::Plmn visited);

}  // namespace wtr::core
