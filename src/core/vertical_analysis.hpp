#pragma once

// Per-vertical traffic analysis (§7.2, Fig. 12): the exposed APN keywords
// let the MNO separate inbound-roaming IoT devices into verticals; the
// paper contrasts connected cars (mobile, chatty) against smart meters
// (stationary, quiet), with inbound-roaming smartphones as reference.

#include <map>
#include <optional>
#include <string>

#include "core/census.hpp"
#include "devices/verticals.hpp"
#include "stats/ecdf.hpp"

namespace wtr::core {

/// Map an APN to a vertical via the company keyword catalog; nullopt when
/// no vertical keyword matches.
[[nodiscard]] std::optional<devices::Vertical> vertical_from_apn(const cellnet::Apn& apn);

/// First recognizable vertical across a device's APNs.
[[nodiscard]] std::optional<devices::Vertical> vertical_of_device(
    const DeviceSummary& summary);

struct VerticalFigure {
  // Keys: vertical names ("connected-car", "smart-meter", ...) plus
  // "smartphone" for the inbound-smartphone reference group.
  std::map<std::string, stats::Ecdf> gyration_m;         // Fig. 12-left
  std::map<std::string, stats::Ecdf> signaling_per_day;  // Fig. 12-center
  std::map<std::string, stats::Ecdf> bytes_per_day;      // Fig. 12-right
};

/// Restricted to inbound roamers, as in the paper.
[[nodiscard]] VerticalFigure vertical_figure(const ClassifiedPopulation& population);

}  // namespace wtr::core
