#include "core/classifier.hpp"

#include <algorithm>
#include <array>

namespace wtr::core {

std::string_view class_label_name(ClassLabel label) noexcept {
  switch (label) {
    case ClassLabel::kSmart: return "smart";
    case ClassLabel::kFeat: return "feat";
    case ClassLabel::kM2M: return "m2m";
    case ClassLabel::kM2MMaybe: return "m2m-maybe";
  }
  return "?";
}

std::span<const std::string_view> default_m2m_keywords() noexcept {
  // The 26-keyword vocabulary. Energy, automotive, logistics, wearables,
  // payments, vending, security, telematics, e-readers, plus the generic
  // platform markers ("intelligent.m2m", "iotsim", "m2m-platform").
  static constexpr std::array<std::string_view, 26> kKeywords{
      "centrica",     "rwe",          "elster",       "generalelectric",
      "bglobal",      "scania",       "carnet",       "connecteddrive",
      "psa-connect",  "trackunit",    "geotrack",     "assetflux",
      "wearlink",     "kidwatch",     "paynet",       "cardstream",
      "vendtelemetry","snackwire",    "alarmnet",     "liftline",
      "fleetmatics",  "tachonet",     "whisperlink",  "intelligent.m2m",
      "iotsim",       "m2m-platform",
  };
  return kKeywords;
}

std::span<const std::string_view> default_consumer_keywords() noexcept {
  static constexpr std::array<std::string_view, 8> kKeywords{
      "payandgo", "internet", "mobile.web", "broadband", "prepay",
      "wap",      "mms",      "go.mobile",
  };
  return kKeywords;
}

DeviceClassifier::DeviceClassifier(const cellnet::TacCatalog& catalog,
                                   ClassifierConfig config)
    : catalog_(&catalog),
      propagate_(config.propagate_device_properties),
      nbiot_rule_(config.use_nbiot_rat_rule) {
  if (config.m2m_keywords.empty()) {
    for (auto keyword : default_m2m_keywords()) m2m_keywords_.emplace_back(keyword);
  } else {
    m2m_keywords_ = std::move(config.m2m_keywords);
  }
  if (config.consumer_keywords.empty()) {
    for (auto keyword : default_consumer_keywords()) {
      consumer_keywords_.emplace_back(keyword);
    }
  } else {
    consumer_keywords_ = std::move(config.consumer_keywords);
  }
}

bool DeviceClassifier::apn_matches_m2m(const cellnet::Apn& apn) const {
  return std::any_of(m2m_keywords_.begin(), m2m_keywords_.end(),
                     [&](const std::string& k) { return apn.contains_keyword(k); });
}

bool DeviceClassifier::apn_matches_consumer(const cellnet::Apn& apn) const {
  return std::any_of(consumer_keywords_.begin(), consumer_keywords_.end(),
                     [&](const std::string& k) { return apn.contains_keyword(k); });
}

std::size_t ClassificationResult::count_of(ClassLabel label) const {
  return static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), label));
}

double ClassificationResult::share_of(ClassLabel label) const {
  if (labels.empty()) return 0.0;
  return static_cast<double>(count_of(label)) / static_cast<double>(labels.size());
}

ClassificationResult DeviceClassifier::classify(
    std::span<const DeviceSummary> devices) const {
  ClassificationResult result;
  result.labels.assign(devices.size(), ClassLabel::kM2MMaybe);

  // ---- Stage 1: rank APNs, validate the M2M set via keywords.
  std::unordered_set<std::string> all_apns;
  std::unordered_set<std::string> m2m_apns;
  std::unordered_set<std::string> consumer_apns;
  for (const auto& device : devices) {
    for (const auto& apn_string : device.apns) {
      if (!all_apns.insert(apn_string).second) continue;
      const auto apn = cellnet::Apn::parse(apn_string);
      if (apn_matches_m2m(apn)) {
        m2m_apns.insert(apn_string);
      } else if (apn_matches_consumer(apn)) {
        consumer_apns.insert(apn_string);
      }
    }
  }
  result.distinct_apns = all_apns.size();
  result.validated_m2m_apns = m2m_apns.size();
  result.consumer_apns = consumer_apns.size();

  // ---- Stage 0 (§8 extension): NB-IoT activity identifies M2M by RAT
  // alone — the technology is a dedicated LPWA platform.
  std::vector<bool> is_m2m(devices.size(), false);
  if (nbiot_rule_) {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (devices[i].radio_flags.has(cellnet::Rat::kNbIot)) {
        is_m2m[i] = true;
        ++result.m2m_by_nbiot_rat;
      }
    }
  }

  // ---- Stage 2: devices on validated APNs are m2m; collect their TACs.
  std::unordered_set<cellnet::Tac> m2m_tacs;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const auto& device = devices[i];
    if (device.apns.empty()) ++result.devices_without_apn;
    const bool on_m2m_apn =
        std::any_of(device.apns.begin(), device.apns.end(),
                    [&](const std::string& apn) { return m2m_apns.contains(apn); });
    if (on_m2m_apn) {
      if (!is_m2m[i]) ++result.m2m_by_apn;
      is_m2m[i] = true;
      if (device.tac != 0) m2m_tacs.insert(device.tac);
    }
  }

  // ---- Stage 3: property propagation over equipment types.
  if (propagate_) {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (!is_m2m[i] && devices[i].tac != 0 && m2m_tacs.contains(devices[i].tac)) {
        is_m2m[i] = true;
        ++result.m2m_by_propagation;
      }
    }
  }
  result.m2m_tacs_propagated = m2m_tacs.size();

  // ---- Stages 4–5: phones, then the m2m-maybe residue.
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (is_m2m[i]) {
      result.labels[i] = ClassLabel::kM2M;
      continue;
    }
    const auto& device = devices[i];
    const cellnet::TacInfo* info =
        device.tac != 0 ? catalog_->lookup(device.tac) : nullptr;
    const bool has_consumer_apn =
        std::any_of(device.apns.begin(), device.apns.end(),
                    [&](const std::string& apn) { return consumer_apns.contains(apn); });

    if (info != nullptr && cellnet::is_major_smartphone_os(info->os)) {
      result.labels[i] = ClassLabel::kSmart;
      continue;
    }
    if ((info != nullptr && info->label == cellnet::GsmaLabel::kFeaturePhone) ||
        has_consumer_apn) {
      result.labels[i] = ClassLabel::kFeat;
      continue;
    }
    // Neither phone-like nor on a validated APN: the m2m-maybe residue
    // (§4.3 — typically voice-only devices; no APN is ever reported).
    result.labels[i] = ClassLabel::kM2MMaybe;
  }
  return result;
}

}  // namespace wtr::core
