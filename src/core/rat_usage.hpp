#pragma once

// Radio-technology dependence (§6.1, Fig. 9): for each device class, the
// share of devices per RAT-combination, separately for overall
// connectivity, the data interfaces and the voice interfaces. This is the
// evidence behind the paper's 2G-sunset discussion: 77.4% of M2M devices
// live on 2G only.

#include "core/census.hpp"
#include "stats/heatmap.hpp"

namespace wtr::core {

struct RatUsageFigure {
  // Rows = device class name, cols = RAT-mask label ("2G", "2G+3G", "none"...).
  stats::Heatmap connectivity;  // Fig. 9-left  (any successful radio use)
  stats::Heatmap data;          // Fig. 9-center
  stats::Heatmap voice;         // Fig. 9-right
};

[[nodiscard]] RatUsageFigure rat_usage_figure(const ClassifiedPopulation& population);

/// Share of a class's devices whose connectivity mask matches exactly
/// (e.g. 2G-only). Convenience for the harness's paper-vs-measured rows.
[[nodiscard]] double class_mask_share(const stats::Heatmap& panel, ClassLabel device_class,
                                      std::string_view mask_label);

}  // namespace wtr::core
