#pragma once

// M2M platform analysis (§3): a streaming accumulator over the platform's
// probe view (4G authentication / update-location / cancel-location near
// the HMNOs) and the statistics behind Fig. 2, Fig. 3 and the in-text
// shares of §3.2–3.3.

#include <string>
#include <unordered_map>
#include <vector>

#include "records/platform_transaction.hpp"
#include "sim/device_agent.hpp"
#include "stats/ecdf.hpp"
#include "stats/heatmap.hpp"

namespace wtr::core {

struct HmnoStats {
  std::string home_iso;           // "ES", "MX", ...
  cellnet::Plmn plmn{};
  std::uint64_t devices = 0;
  std::uint64_t records = 0;
  std::uint64_t roaming_devices = 0;   // devices seen on a foreign network
  std::uint64_t roaming_records = 0;   // records emitted while roaming
  std::size_t visited_countries = 0;   // distinct countries (incl. home)
  std::size_t visited_networks = 0;    // distinct VMNOs

  [[nodiscard]] double device_share(std::uint64_t total) const {
    return total == 0 ? 0.0 : static_cast<double>(devices) / static_cast<double>(total);
  }
};

struct PlatformStats {
  std::uint64_t total_devices = 0;
  std::uint64_t total_records = 0;
  std::vector<HmnoStats> per_hmno;  // descending by device count

  /// Fig. 2: rows = HMNO home ISO, cols = visited country ISO; a device
  /// contributes one count per (HMNO, visited country) it appeared in.
  stats::Heatmap footprint;

  /// Fig. 3-left: signaling records per device.
  stats::Ecdf records_all;
  stats::Ecdf records_4g_ok;    // devices with ≥1 successful 4G procedure
  stats::Ecdf records_roaming;  // roaming devices
  stats::Ecdf records_native;   // never-roaming devices

  /// Fig. 3-center: distinct VMNOs per roaming device.
  stats::Ecdf vmnos_per_roaming_device;
  /// Max VMNOs attempted by a pure-failure device (§3.3 quotes 19).
  std::size_t max_vmnos_failed_only = 0;

  /// Fig. 3-right: inter-VMNO switches for devices using ≥2 VMNOs.
  stats::Ecdf switches_multi_vmno;
  double share_multi_vmno_devices = 0.0;

  /// §3.3: devices with only failed procedures vs ≥1 success. The paper's
  /// 40%/60% split is quoted for the ES-connected population, so that share
  /// is tracked separately.
  double fraction_failed_only = 0.0;
  double fraction_any_success = 0.0;
  double es_fraction_failed_only = 0.0;

  /// ES concentration (§3.2): smallest device fraction covering 75% of the
  /// ES signaling, and the country/VMNO counts those heavy hitters span.
  double es_device_share_for_75pct_signaling = 0.0;
  std::size_t es_heavy_countries = 0;
  std::size_t es_heavy_vmnos = 0;
  double es_signaling_share = 0.0;           // of all records
  double es_roaming_signaling_share = 0.0;   // of ES records, from roamers
  double es_nonroaming_device_share = 0.0;   // of ES devices, never roaming
};

class PlatformTraceAccumulator final : public sim::RecordSink {
 public:
  struct Config {
    /// SIM PLMNs whose traffic the probes capture (the platform's HMNOs).
    std::vector<cellnet::Plmn> hmno_plmns;
  };

  explicit PlatformTraceAccumulator(Config config);

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override;

  [[nodiscard]] std::uint64_t captured_records() const noexcept { return total_records_; }

  [[nodiscard]] PlatformStats finalize() const;

 private:
  struct PerDevice {
    cellnet::Plmn sim_plmn{};
    std::uint64_t records = 0;
    std::uint64_t ok_records = 0;
    std::uint64_t roaming_records = 0;
    std::vector<cellnet::Plmn> vmnos;  // distinct networks attempted
    cellnet::Plmn last_vmno{};
    bool has_last = false;
    std::uint64_t switches = 0;
    bool roamed = false;
  };

  Config config_;
  std::unordered_map<signaling::DeviceHash, PerDevice> devices_;
  std::uint64_t total_records_ = 0;
};

}  // namespace wtr::core
