#pragma once

// Revenue analysis (extension of §6): the paper's economic argument is that
// M2M devices "occupy radio resources … and exploit the MNO's
// interconnections … [but] do not generate traffic that would allow MNOs to
// accrue revenue". This module quantifies that: a wholesale/retail tariff
// schedule is applied to each device's observed usage, and the signaling it
// generated is costed as infrastructure load, yielding revenue-vs-load per
// device class and roaming status.

#include <map>
#include <string>

#include "core/census.hpp"

namespace wtr::core {

/// Money amounts are in abstract currency units (think EUR cents); only
/// ratios between groups are meaningful.
struct TariffSchedule {
  // Wholesale inter-operator tariffs charged to roaming partners (§2.1's
  // revenue-retrieval records are exactly the CDRs/xDRs we aggregate).
  double wholesale_data_per_mb = 0.40;
  double wholesale_voice_per_minute = 2.0;
  // Effective retail yield on native usage (post-bundle, much lower).
  double retail_data_per_mb = 0.08;
  double retail_voice_per_minute = 1.0;
  // Infrastructure cost proxy per control-plane event (MME/HSS/MSC load).
  double cost_per_signaling_event = 0.002;
};

struct RevenueBreakdown {
  std::size_t devices = 0;
  std::uint64_t device_days = 0;
  double data_revenue = 0.0;
  double voice_revenue = 0.0;
  double signaling_cost = 0.0;

  [[nodiscard]] double gross() const noexcept { return data_revenue + voice_revenue; }
  [[nodiscard]] double net() const noexcept { return gross() - signaling_cost; }
  [[nodiscard]] double revenue_per_device_day() const noexcept {
    return device_days == 0 ? 0.0 : gross() / static_cast<double>(device_days);
  }
  [[nodiscard]] double cost_per_device_day() const noexcept {
    return device_days == 0 ? 0.0 : signaling_cost / static_cast<double>(device_days);
  }
  /// Gross revenue per unit of signaling cost — the "worth the load" ratio.
  [[nodiscard]] double revenue_to_load() const noexcept {
    return signaling_cost <= 0.0 ? 0.0 : gross() / signaling_cost;
  }
};

/// Revenue per "<class>/<inbound|native>" group (same keys as
/// traffic_figure). Inbound usage is priced wholesale, native usage retail;
/// m2m-maybe devices are excluded, matching §4.3.
[[nodiscard]] std::map<std::string, RevenueBreakdown> revenue_by_group(
    const ClassifiedPopulation& population, const TariffSchedule& tariffs = {});

}  // namespace wtr::core
