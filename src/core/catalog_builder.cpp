#include "core/catalog_builder.hpp"

#include <algorithm>

#include "stats/rng.hpp"

namespace wtr::core {

namespace {

void insert_unique_plmn(std::vector<cellnet::Plmn>& list, cellnet::Plmn plmn) {
  if (std::find(list.begin(), list.end(), plmn) == list.end()) list.push_back(plmn);
}

void insert_unique_string(std::vector<std::string>& list, const std::string& value) {
  if (value.empty()) return;
  if (std::find(list.begin(), list.end(), value) == list.end()) list.push_back(value);
}

std::uint64_t partial_key(signaling::DeviceHash device, std::int32_t day) {
  return stats::mix64(device, static_cast<std::uint64_t>(static_cast<std::uint32_t>(day)));
}

}  // namespace

CatalogAccumulator::CatalogAccumulator(Config config) : config_(std::move(config)) {
  if (config_.family_plmns.empty()) config_.family_plmns.push_back(config_.observer_plmn);
}

bool CatalogAccumulator::in_family(cellnet::Plmn plmn) const noexcept {
  return std::find(config_.family_plmns.begin(), config_.family_plmns.end(), plmn) !=
         config_.family_plmns.end();
}

CatalogAccumulator::Partial& CatalogAccumulator::partial_for(
    signaling::DeviceHash device, std::int32_t day, cellnet::Plmn sim_plmn) {
  auto& partial = partials_[partial_key(device, day)];
  partial.device = device;
  partial.day = day;
  // A dwell record may have opened this partial before any SIM-bearing
  // record arrived; fill the identity from the first record that knows it.
  if (!partial.sim_plmn.valid()) partial.sim_plmn = sim_plmn;
  return partial;
}

void CatalogAccumulator::on_signaling(const signaling::SignalingTransaction& txn,
                                      bool data_context) {
  (void)data_context;
  // Radio-log visibility: the observer's probes sit on its own RAN.
  if (txn.visited_plmn != config_.observer_plmn) return;
  ++accepted_;
  auto& partial = partial_for(txn.device, stats::day_of(txn.time), txn.sim_plmn);
  ++partial.signaling_events;
  if (signaling::is_failure(txn.result)) {
    ++partial.failed_events;
  } else {
    partial.radio_flags.set(txn.rat);
  }
  insert_unique_plmn(partial.visited_plmns, txn.visited_plmn);
  if (txn.tac != 0) partial.tac = txn.tac;
}

void CatalogAccumulator::on_cdr(const records::Cdr& cdr) {
  const bool on_observer_network = cdr.visited_plmn == config_.observer_plmn;
  if (!on_observer_network && !in_family(cdr.sim_plmn)) return;
  ++accepted_;
  auto& partial = partial_for(cdr.device, stats::day_of(cdr.time), cdr.sim_plmn);
  ++partial.calls;
  partial.call_seconds += cdr.duration_s;
  partial.voice_rats.set(cdr.rat);
  insert_unique_plmn(partial.visited_plmns, cdr.visited_plmn);
}

void CatalogAccumulator::on_xdr(const records::Xdr& xdr) {
  const bool on_observer_network = xdr.visited_plmn == config_.observer_plmn;
  if (!on_observer_network && !in_family(xdr.sim_plmn)) return;
  ++accepted_;
  auto& partial = partial_for(xdr.device, stats::day_of(xdr.time), xdr.sim_plmn);
  partial.bytes += xdr.bytes_total();
  partial.data_rats.set(xdr.rat);
  insert_unique_plmn(partial.visited_plmns, xdr.visited_plmn);
  insert_unique_string(partial.apns, xdr.apn);
}

void CatalogAccumulator::on_dwell(signaling::DeviceHash device, std::int32_t day,
                                  cellnet::Plmn visited_plmn,
                                  const cellnet::GeoPoint& location, double seconds) {
  // Sector coordinates exist only for the observer's own sectors.
  if (visited_plmn != config_.observer_plmn) return;
  // Dwell alone does not create a record: only devices with some observed
  // activity that day get mobility metrics. To keep it simple (and to match
  // "time spent on each individual sector", which accrues continuously) we
  // accept dwell into the partial regardless; finalize() drops positionless
  // pure-dwell records.
  auto& partial = partials_[partial_key(device, day)];
  if (partial.device == 0) {
    partial.device = device;
    partial.day = day;
  }
  partial.gyration.add(location, seconds);
}

records::DevicesCatalog CatalogAccumulator::finalize() {
  records::DevicesCatalog catalog;
  catalog.reserve(partials_.size());
  // Deterministic output order: sort by (device, day).
  std::vector<const Partial*> ordered;
  ordered.reserve(partials_.size());
  for (const auto& [_, partial] : partials_) ordered.push_back(&partial);
  std::sort(ordered.begin(), ordered.end(), [](const Partial* a, const Partial* b) {
    if (a->device != b->device) return a->device < b->device;
    return a->day < b->day;
  });

  for (const Partial* partial : ordered) {
    const bool has_activity =
        partial->signaling_events > 0 || partial->calls > 0 || partial->bytes > 0;
    if (!has_activity) continue;  // dwell-only artifacts
    records::DailyDeviceRecord record;
    record.device = partial->device;
    record.day = partial->day;
    record.sim_plmn = partial->sim_plmn;
    record.visited_plmns = partial->visited_plmns;
    std::sort(record.visited_plmns.begin(), record.visited_plmns.end());
    record.signaling_events = partial->signaling_events;
    record.failed_events = partial->failed_events;
    record.calls = partial->calls;
    record.call_seconds = partial->call_seconds;
    record.bytes = partial->bytes;
    record.apns = partial->apns;
    std::sort(record.apns.begin(), record.apns.end());
    record.tac = partial->tac;
    record.radio_flags = partial->radio_flags;
    record.data_rats = partial->data_rats;
    record.voice_rats = partial->voice_rats;
    if (!partial->gyration.empty()) {
      record.centroid = partial->gyration.centroid();
      record.gyration_m = partial->gyration.gyration_m();
      record.has_position = true;
    }
    catalog.add(std::move(record));
  }
  partials_.clear();
  return catalog;
}

bool DeviceSummary::attached_to(cellnet::Plmn plmn) const noexcept {
  return std::find(visited_plmns.begin(), visited_plmns.end(), plmn) !=
         visited_plmns.end();
}

std::vector<DeviceSummary> summarize(const records::DevicesCatalog& catalog) {
  std::unordered_map<signaling::DeviceHash, DeviceSummary> by_device;
  std::unordered_map<signaling::DeviceHash, std::pair<double, std::uint32_t>> gyration_sums;
  by_device.reserve(catalog.size());

  for (const auto& record : catalog.records()) {
    auto [it, inserted] = by_device.try_emplace(record.device);
    DeviceSummary& summary = it->second;
    if (inserted) {
      summary.device = record.device;
      summary.sim_plmn = record.sim_plmn;
      summary.first_day = record.day;
      summary.last_day = record.day;
    }
    summary.first_day = std::min(summary.first_day, record.day);
    summary.last_day = std::max(summary.last_day, record.day);
    ++summary.active_days;
    summary.signaling_events += record.signaling_events;
    summary.failed_events += record.failed_events;
    summary.calls += record.calls;
    summary.call_seconds += record.call_seconds;
    summary.bytes += record.bytes;
    for (const auto& plmn : record.visited_plmns) {
      if (std::find(summary.visited_plmns.begin(), summary.visited_plmns.end(), plmn) ==
          summary.visited_plmns.end()) {
        summary.visited_plmns.push_back(plmn);
      }
    }
    for (const auto& apn : record.apns) {
      if (std::find(summary.apns.begin(), summary.apns.end(), apn) ==
          summary.apns.end()) {
        summary.apns.push_back(apn);
      }
    }
    if (record.tac != 0) summary.tac = record.tac;
    summary.radio_flags = cellnet::RatMask{
        static_cast<std::uint8_t>(summary.radio_flags.bits() | record.radio_flags.bits())};
    summary.data_rats = cellnet::RatMask{
        static_cast<std::uint8_t>(summary.data_rats.bits() | record.data_rats.bits())};
    summary.voice_rats = cellnet::RatMask{
        static_cast<std::uint8_t>(summary.voice_rats.bits() | record.voice_rats.bits())};
    if (record.has_position) {
      auto& [sum, days] = gyration_sums[record.device];
      sum += record.gyration_m;
      ++days;
      summary.has_position = true;
    }
  }

  std::vector<DeviceSummary> out;
  out.reserve(by_device.size());
  for (auto& [device, summary] : by_device) {
    const auto it = gyration_sums.find(device);
    if (it != gyration_sums.end() && it->second.second > 0) {
      summary.mean_daily_gyration_m = it->second.first / it->second.second;
    }
    std::sort(summary.visited_plmns.begin(), summary.visited_plmns.end());
    std::sort(summary.apns.begin(), summary.apns.end());
    out.push_back(std::move(summary));
  }
  std::sort(out.begin(), out.end(), [](const DeviceSummary& a, const DeviceSummary& b) {
    return a.device < b.device;
  });
  return out;
}

}  // namespace wtr::core
