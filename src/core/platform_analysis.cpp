#include "core/platform_analysis.hpp"

#include <algorithm>
#include <set>

#include "cellnet/country.hpp"

namespace wtr::core {

PlatformTraceAccumulator::PlatformTraceAccumulator(Config config)
    : config_(std::move(config)) {}

void PlatformTraceAccumulator::on_signaling(const signaling::SignalingTransaction& txn,
                                            bool data_context) {
  (void)data_context;
  if (!records::platform_probe_captures(txn)) return;
  if (std::find(config_.hmno_plmns.begin(), config_.hmno_plmns.end(), txn.sim_plmn) ==
      config_.hmno_plmns.end()) {
    return;
  }
  ++total_records_;
  auto& device = devices_[txn.device];
  device.sim_plmn = txn.sim_plmn;
  ++device.records;
  if (!signaling::is_failure(txn.result)) ++device.ok_records;

  const bool roaming = txn.visited_plmn.mcc() != txn.sim_plmn.mcc();
  if (roaming) {
    device.roamed = true;
    ++device.roaming_records;
  }
  if (std::find(device.vmnos.begin(), device.vmnos.end(), txn.visited_plmn) ==
      device.vmnos.end()) {
    device.vmnos.push_back(txn.visited_plmn);
  }
  if (device.has_last && device.last_vmno != txn.visited_plmn) ++device.switches;
  device.last_vmno = txn.visited_plmn;
  device.has_last = true;
}

PlatformStats PlatformTraceAccumulator::finalize() const {
  PlatformStats stats;
  stats.total_devices = devices_.size();
  stats.total_records = total_records_;

  struct HmnoWork {
    HmnoStats stats;
    std::set<std::string> countries;
    std::set<cellnet::Plmn> networks;
  };
  std::unordered_map<cellnet::Plmn, HmnoWork> hmnos;
  for (const auto& plmn : config_.hmno_plmns) {
    auto& work = hmnos[plmn];
    work.stats.plmn = plmn;
    work.stats.home_iso = std::string(cellnet::iso_of_mcc(plmn.mcc()));
  }

  std::uint64_t failed_only = 0;
  std::uint64_t es_failed_only = 0;
  std::uint64_t multi_vmno = 0;

  // ES concentration working set.
  std::vector<const PerDevice*> es_devices;
  std::uint64_t es_records = 0;
  std::uint64_t es_roaming_records = 0;
  std::uint64_t es_nonroaming_devices = 0;

  for (const auto& [hash, device] : devices_) {
    (void)hash;
    auto& work = hmnos[device.sim_plmn];
    ++work.stats.devices;
    work.stats.records += device.records;
    if (device.roamed) {
      ++work.stats.roaming_devices;
      work.stats.roaming_records += device.roaming_records;
    }
    for (const auto& vmno : device.vmnos) {
      work.networks.insert(vmno);
      work.countries.insert(std::string(cellnet::iso_of_mcc(vmno.mcc())));
      stats.footprint.add(work.stats.home_iso,
                          std::string(cellnet::iso_of_mcc(vmno.mcc())));
    }

    const auto records = static_cast<double>(device.records);
    stats.records_all.add(records);
    if (device.ok_records > 0) {
      stats.records_4g_ok.add(records);
    } else {
      ++failed_only;
      if (work.stats.home_iso == "ES") ++es_failed_only;
      stats.max_vmnos_failed_only =
          std::max(stats.max_vmnos_failed_only, device.vmnos.size());
    }
    if (device.roamed) {
      stats.records_roaming.add(records);
      stats.vmnos_per_roaming_device.add(static_cast<double>(device.vmnos.size()));
    } else {
      stats.records_native.add(records);
    }
    if (device.vmnos.size() >= 2) {
      ++multi_vmno;
      stats.switches_multi_vmno.add(static_cast<double>(device.switches));
    }

    if (work.stats.home_iso == "ES") {
      es_devices.push_back(&device);
      es_records += device.records;
      es_roaming_records += device.roaming_records;
      if (!device.roamed) ++es_nonroaming_devices;
    }
  }

  for (auto& [plmn, work] : hmnos) {
    (void)plmn;
    work.stats.visited_countries = work.countries.size();
    work.stats.visited_networks = work.networks.size();
    stats.per_hmno.push_back(work.stats);
  }
  std::sort(stats.per_hmno.begin(), stats.per_hmno.end(),
            [](const HmnoStats& a, const HmnoStats& b) {
              if (a.devices != b.devices) return a.devices > b.devices;
              return a.home_iso < b.home_iso;
            });

  if (stats.total_devices > 0) {
    stats.fraction_failed_only =
        static_cast<double>(failed_only) / static_cast<double>(stats.total_devices);
    stats.fraction_any_success = 1.0 - stats.fraction_failed_only;
    stats.share_multi_vmno_devices =
        static_cast<double>(multi_vmno) / static_cast<double>(stats.total_devices);
  }

  // ES concentration: smallest share of (record-heavy) devices that covers
  // 75% of the ES signaling, and the geographic spread of that heavy set.
  if (!es_devices.empty()) {
    stats.es_fraction_failed_only =
        static_cast<double>(es_failed_only) / static_cast<double>(es_devices.size());
  }
  if (!es_devices.empty() && es_records > 0) {
    stats.es_signaling_share =
        static_cast<double>(es_records) / static_cast<double>(stats.total_records);
    stats.es_roaming_signaling_share =
        static_cast<double>(es_roaming_records) / static_cast<double>(es_records);
    stats.es_nonroaming_device_share = static_cast<double>(es_nonroaming_devices) /
                                       static_cast<double>(es_devices.size());
    std::sort(es_devices.begin(), es_devices.end(),
              [](const PerDevice* a, const PerDevice* b) { return a->records > b->records; });
    const auto target = static_cast<std::uint64_t>(0.75 * static_cast<double>(es_records));
    std::uint64_t running = 0;
    std::set<std::string> heavy_countries;
    std::set<cellnet::Plmn> heavy_networks;
    std::size_t heavy_devices = 0;
    for (const PerDevice* device : es_devices) {
      if (running >= target) break;
      running += device->records;
      ++heavy_devices;
      for (const auto& vmno : device->vmnos) {
        heavy_networks.insert(vmno);
        heavy_countries.insert(std::string(cellnet::iso_of_mcc(vmno.mcc())));
      }
    }
    stats.es_device_share_for_75pct_signaling =
        static_cast<double>(heavy_devices) / static_cast<double>(es_devices.size());
    stats.es_heavy_countries = heavy_countries.size();
    stats.es_heavy_vmnos = heavy_networks.size();
  }

  return stats;
}

}  // namespace wtr::core
