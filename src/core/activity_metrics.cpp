#include "core/activity_metrics.hpp"

namespace wtr::core {

ActiveDaysFigure active_days_figure(const ClassifiedPopulation& population) {
  ActiveDaysFigure figure;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const auto days = static_cast<double>(population.summaries[i].active_days);
    const bool inbound = population.is_inbound(i);
    const bool native = population.is_native_or_mvno(i);
    switch (population.classes[i]) {
      case ClassLabel::kM2M:
        if (inbound) figure.inbound_m2m.add(days);
        if (native) figure.native_m2m.add(days);
        break;
      case ClassLabel::kSmart:
        if (inbound) figure.inbound_smart.add(days);
        if (native) figure.native_smart.add(days);
        break;
      default:
        break;
    }
  }
  return figure;
}

std::map<std::string, stats::Ecdf> gyration_figure(const ClassifiedPopulation& population) {
  std::map<std::string, stats::Ecdf> groups;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const auto& summary = population.summaries[i];
    if (!summary.has_position) continue;
    const bool inbound = population.is_inbound(i);
    const bool native = population.is_native_or_mvno(i);
    if (!inbound && !native) continue;
    const std::string key = std::string(class_label_name(population.classes[i])) + "/" +
                            (inbound ? "inbound" : "native");
    groups[key].add(summary.mean_daily_gyration_m);
  }
  return groups;
}

double gyration_share_above(const ClassifiedPopulation& population,
                            ClassLabel device_class, bool inbound, double threshold_m) {
  std::size_t total = 0;
  std::size_t above = 0;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (population.classes[i] != device_class) continue;
    if (population.is_inbound(i) != inbound) continue;
    if (!population.summaries[i].has_position) continue;
    ++total;
    if (population.summaries[i].mean_daily_gyration_m > threshold_m) ++above;
  }
  return total == 0 ? 0.0 : static_cast<double>(above) / static_cast<double>(total);
}

}  // namespace wtr::core
