#include "core/roaming_labeler.hpp"

#include <algorithm>
#include <array>

namespace wtr::core {

std::string_view roaming_label_name(RoamingLabel label) noexcept {
  const bool home = label.net == NetSide::kHome;
  switch (label.sim) {
    case SimSide::kHome: return home ? "H:H" : "H:A";
    case SimSide::kVirtual: return home ? "V:H" : "V:A";
    case SimSide::kNational: return home ? "N:H" : "N:A";
    case SimSide::kInternational: return home ? "I:H" : "I:A";
  }
  return "?";
}

std::span<const RoamingLabel> observable_labels() noexcept {
  static constexpr std::array<RoamingLabel, 6> kLabels{{
      {SimSide::kHome, NetSide::kHome},
      {SimSide::kVirtual, NetSide::kHome},
      {SimSide::kNational, NetSide::kHome},
      {SimSide::kInternational, NetSide::kHome},
      {SimSide::kHome, NetSide::kAbroad},
      {SimSide::kVirtual, NetSide::kAbroad},
  }};
  return kLabels;
}

RoamingLabeler::RoamingLabeler(cellnet::Plmn observer, std::vector<cellnet::Plmn> mvnos)
    : observer_(observer), mvnos_(std::move(mvnos)) {}

SimSide RoamingLabeler::sim_side(cellnet::Plmn sim) const {
  if (sim == observer_) return SimSide::kHome;
  if (std::find(mvnos_.begin(), mvnos_.end(), sim) != mvnos_.end()) {
    return SimSide::kVirtual;
  }
  if (sim.mcc() == observer_.mcc()) return SimSide::kNational;
  return SimSide::kInternational;
}

RoamingLabel RoamingLabeler::label(cellnet::Plmn sim,
                                   std::span<const cellnet::Plmn> visited) const {
  RoamingLabel out;
  out.sim = sim_side(sim);
  out.net = std::any_of(visited.begin(), visited.end(),
                        [&](cellnet::Plmn plmn) { return plmn == observer_; })
                ? NetSide::kHome
                : NetSide::kAbroad;
  return out;
}

}  // namespace wtr::core
