#include "core/revenue.hpp"

#include "core/traffic_metrics.hpp"

namespace wtr::core {

std::map<std::string, RevenueBreakdown> revenue_by_group(
    const ClassifiedPopulation& population, const TariffSchedule& tariffs) {
  std::map<std::string, RevenueBreakdown> groups;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const bool inbound = population.is_inbound(i);
    const bool native = population.is_native_or_mvno(i);
    if (!inbound && !native) continue;
    const auto device_class = population.classes[i];
    if (device_class == ClassLabel::kM2MMaybe) continue;

    const auto& summary = population.summaries[i];
    auto& group = groups[traffic_group_key(device_class, inbound)];
    ++group.devices;
    group.device_days += summary.active_days;

    const double mb = static_cast<double>(summary.bytes) / (1024.0 * 1024.0);
    const double minutes = summary.call_seconds / 60.0;
    if (inbound) {
      group.data_revenue += mb * tariffs.wholesale_data_per_mb;
      group.voice_revenue += minutes * tariffs.wholesale_voice_per_minute;
    } else {
      group.data_revenue += mb * tariffs.retail_data_per_mb;
      group.voice_revenue += minutes * tariffs.retail_voice_per_minute;
    }
    group.signaling_cost +=
        static_cast<double>(summary.signaling_events) * tariffs.cost_per_signaling_event;
  }
  return groups;
}

}  // namespace wtr::core
