#include "core/trace_replay.hpp"

#include <string>

#include "io/csv.hpp"
#include "obs/metrics.hpp"
#include "records/cdr.hpp"
#include "records/xdr.hpp"

namespace wtr::core {

namespace {

/// Mirror one stream's counters into the registry under a stable prefix.
void record_replay_metrics(obs::MetricsRegistry* metrics, const char* stream,
                           const ReplayStats& stats) {
  if (metrics == nullptr) return;
  const std::string prefix = std::string("replay.") + stream + '.';
  metrics->counter(prefix + "rows").inc(stats.rows);
  metrics->counter(prefix + "delivered").inc(stats.delivered);
  metrics->counter(prefix + "bad_csv").inc(stats.bad_csv);
  metrics->counter(prefix + "bad_fields").inc(stats.bad_fields);
}

/// Generic line pump: validates the header, then parses/delivers each row.
template <typename ParseFn, typename DeliverFn>
ReplayStats replay(std::istream& in, const std::vector<std::string>& expected_header,
                   ParseFn parse, DeliverFn deliver) {
  ReplayStats stats;
  std::string line;
  bool header_checked = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = io::csv_decode_row(line);
    if (!header_checked) {
      header_checked = true;
      if (fields && *fields == expected_header) continue;  // header consumed
      // No (or wrong) header: fall through and treat the line as data.
    }
    ++stats.rows;
    if (!fields) {
      ++stats.bad_csv;
      continue;
    }
    if (const auto record = parse(*fields)) {
      deliver(*record);
      ++stats.delivered;
    } else {
      ++stats.bad_fields;
    }
  }
  return stats;
}

}  // namespace

ReplayStats replay_signaling_csv(std::istream& in, sim::RecordSink& sink) {
  return replay(
      in, signaling::csv_header(),
      [](const std::vector<std::string>& fields) {
        return signaling::from_csv_fields(fields);
      },
      [&](const signaling::SignalingTransaction& txn) {
        // The export does not record the interface family; derive it from
        // the RAT (voice-context signaling is only the CSFB-style events,
        // which aggregate identically in the catalog).
        sink.on_signaling(txn, /*data_context=*/true);
      });
}

ReplayStats replay_cdr_csv(std::istream& in, sim::RecordSink& sink) {
  return replay(
      in, records::cdr_csv_header(),
      [](const std::vector<std::string>& fields) {
        return records::cdr_from_csv_fields(fields);
      },
      [&](const records::Cdr& cdr) { sink.on_cdr(cdr); });
}

ReplayStats replay_xdr_csv(std::istream& in, sim::RecordSink& sink) {
  return replay(
      in, records::xdr_csv_header(),
      [](const std::vector<std::string>& fields) {
        return records::xdr_from_csv_fields(fields);
      },
      [&](const records::Xdr& xdr) { sink.on_xdr(xdr); });
}

ReplayStats replay_signaling_csv(std::istream& in, sim::RecordSink& sink,
                                 obs::MetricsRegistry* metrics) {
  const auto stats = replay_signaling_csv(in, sink);
  record_replay_metrics(metrics, "signaling", stats);
  return stats;
}

ReplayStats replay_cdr_csv(std::istream& in, sim::RecordSink& sink,
                           obs::MetricsRegistry* metrics) {
  const auto stats = replay_cdr_csv(in, sink);
  record_replay_metrics(metrics, "cdr", stats);
  return stats;
}

ReplayStats replay_xdr_csv(std::istream& in, sim::RecordSink& sink,
                           obs::MetricsRegistry* metrics) {
  const auto stats = replay_xdr_csv(in, sink);
  record_replay_metrics(metrics, "xdr", stats);
  return stats;
}

}  // namespace wtr::core
