#include "core/trace_replay.hpp"

#include <string>

#include "io/bintrace.hpp"
#include "io/csv.hpp"
#include "obs/metrics.hpp"
#include "records/cdr.hpp"
#include "records/xdr.hpp"

namespace wtr::core {

namespace {

/// Mirror one stream's counters into the registry under a stable prefix.
void record_replay_metrics(obs::MetricsRegistry* metrics, const char* stream,
                           const ReplayStats& stats) {
  if (metrics == nullptr) return;
  const std::string prefix = std::string("replay.") + stream + '.';
  metrics->counter(prefix + "rows").inc(stats.rows);
  metrics->counter(prefix + "delivered").inc(stats.delivered);
  metrics->counter(prefix + "bad_csv").inc(stats.bad_csv);
  metrics->counter(prefix + "bad_fields").inc(stats.bad_fields);
}

/// Generic row pump: validates the header, then parses/delivers each row.
/// Rows are logical CSV rows — a quoted field may span physical lines
/// (read_logical_row rejoins them), so rows the writer quoted for embedded
/// newlines replay instead of being dropped as two bad_csv halves.
template <typename ParseFn, typename DeliverFn>
ReplayStats replay(std::istream& in, const std::vector<std::string>& expected_header,
                   ParseFn parse, DeliverFn deliver) {
  ReplayStats stats;
  std::string line;
  bool header_checked = false;
  while (io::read_logical_row(in, line)) {
    if (line.empty()) continue;
    const auto fields = io::csv_decode_row(line);
    if (!header_checked) {
      header_checked = true;
      if (fields && *fields == expected_header) continue;  // header consumed
      // No (or wrong) header: fall through and treat the line as data.
    }
    ++stats.rows;
    if (!fields) {
      ++stats.bad_csv;
      continue;
    }
    if (const auto record = parse(*fields)) {
      deliver(*record);
      ++stats.delivered;
    } else {
      ++stats.bad_fields;
    }
  }
  return stats;
}

}  // namespace

ReplayStats replay_signaling_csv(std::istream& in, sim::RecordSink& sink) {
  return replay(
      in, signaling::csv_header(),
      [](const std::vector<std::string>& fields) {
        return signaling::from_csv_fields(fields);
      },
      [&](const signaling::SignalingTransaction& txn) {
        // The export does not record the interface family; derive it from
        // the RAT (voice-context signaling is only the CSFB-style events,
        // which aggregate identically in the catalog).
        sink.on_signaling(txn, /*data_context=*/true);
      });
}

ReplayStats replay_cdr_csv(std::istream& in, sim::RecordSink& sink) {
  return replay(
      in, records::cdr_csv_header(),
      [](const std::vector<std::string>& fields) {
        return records::cdr_from_csv_fields(fields);
      },
      [&](const records::Cdr& cdr) { sink.on_cdr(cdr); });
}

ReplayStats replay_xdr_csv(std::istream& in, sim::RecordSink& sink) {
  return replay(
      in, records::xdr_csv_header(),
      [](const std::vector<std::string>& fields) {
        return records::xdr_from_csv_fields(fields);
      },
      [&](const records::Xdr& xdr) { sink.on_xdr(xdr); });
}

ReplayStats replay_signaling_csv(std::istream& in, sim::RecordSink& sink,
                                 obs::MetricsRegistry* metrics) {
  const auto stats = replay_signaling_csv(in, sink);
  record_replay_metrics(metrics, "signaling", stats);
  return stats;
}

ReplayStats replay_cdr_csv(std::istream& in, sim::RecordSink& sink,
                           obs::MetricsRegistry* metrics) {
  const auto stats = replay_cdr_csv(in, sink);
  record_replay_metrics(metrics, "cdr", stats);
  return stats;
}

ReplayStats replay_xdr_csv(std::istream& in, sim::RecordSink& sink,
                           obs::MetricsRegistry* metrics) {
  const auto stats = replay_xdr_csv(in, sink);
  record_replay_metrics(metrics, "xdr", stats);
  return stats;
}

ReplayStats replay_binary_trace(std::istream& in, sim::RecordSink& sink,
                                obs::MetricsRegistry* metrics, const char* stream) {
  io::BinaryTraceReader reader{in};
  const auto binary = reader.replay(sink);
  ReplayStats stats;
  stats.rows = binary.records;
  stats.delivered = binary.delivered;
  stats.bad_fields = binary.bad_fields;
  // bad_csv stays 0: structural damage in a binary trace throws instead of
  // skipping (a failed CRC poisons everything after it).
  record_replay_metrics(metrics, stream, stats);
  return stats;
}

namespace {

template <typename CsvReplayFn>
ReplayStats replay_auto(std::istream& in, sim::RecordSink& sink,
                        obs::MetricsRegistry* metrics, const char* stream,
                        CsvReplayFn csv_replay) {
  if (io::is_binary_trace(in)) {
    return replay_binary_trace(in, sink, metrics, stream);
  }
  const auto stats = csv_replay(in, sink);
  record_replay_metrics(metrics, stream, stats);
  return stats;
}

}  // namespace

ReplayStats replay_signaling_trace(std::istream& in, sim::RecordSink& sink,
                                   obs::MetricsRegistry* metrics) {
  return replay_auto(in, sink, metrics, "signaling",
                     [](std::istream& i, sim::RecordSink& s) {
                       return replay_signaling_csv(i, s);
                     });
}

ReplayStats replay_cdr_trace(std::istream& in, sim::RecordSink& sink,
                             obs::MetricsRegistry* metrics) {
  return replay_auto(in, sink, metrics, "cdr",
                     [](std::istream& i, sim::RecordSink& s) {
                       return replay_cdr_csv(i, s);
                     });
}

ReplayStats replay_xdr_trace(std::istream& in, sim::RecordSink& sink,
                             obs::MetricsRegistry* metrics) {
  return replay_auto(in, sink, metrics, "xdr",
                     [](std::istream& i, sim::RecordSink& s) {
                       return replay_xdr_csv(i, s);
                     });
}

CsvTraceExportSink::CsvTraceExportSink(std::ostream& signaling, std::ostream& cdr,
                                       std::ostream& xdr)
    : signaling_(signaling), cdr_(cdr), xdr_(xdr) {
  signaling_.write_row(signaling::csv_header());
  cdr_.write_row(records::cdr_csv_header());
  xdr_.write_row(records::xdr_csv_header());
}

void CsvTraceExportSink::on_signaling(const signaling::SignalingTransaction& txn,
                                      bool /*data_context*/) {
  // The CSV export does not carry the interface family; replay derives it
  // from the RAT (see replay_signaling_csv).
  signaling_.write_row(signaling::to_csv_fields(txn));
}

void CsvTraceExportSink::on_cdr(const records::Cdr& cdr) {
  cdr_.write_row(records::to_csv_fields(cdr));
}

void CsvTraceExportSink::on_xdr(const records::Xdr& xdr) {
  xdr_.write_row(records::to_csv_fields(xdr));
}

}  // namespace wtr::core
