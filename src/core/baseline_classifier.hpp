#pragma once

// The baseline the paper argues against (§4.3): classification from device
// properties alone, after Shafiq et al. [18]. Two rules:
//
//   * "big players" — devices whose TAC belongs to a known M2M module
//     vendor (Gemalto, Telit, Sierra Wireless, ... — the top vendors cover
//     75% of inbound roamers) are m2m;
//   * GSMA-label heuristics — smartphone label/OS ⇒ smart, feature-phone
//     label ⇒ feat, modem/module labels ⇒ m2m.
//
// The paper's criticisms, which experiment V1 quantifies: the vendor list
// needs manual curation per deployment, "modem"/"module" labels do not
// necessarily imply an M2M application, and consumer dongles on module
// hardware are misclassified. Kept deliberately independent from
// DeviceClassifier so the two can be compared head-to-head.

#include <span>
#include <string>
#include <vector>

#include "cellnet/tac_catalog.hpp"
#include "core/classifier.hpp"

namespace wtr::core {

struct BaselineClassifierConfig {
  /// Curated M2M vendor list; empty = the paper's big three plus the other
  /// module vendors a manual pass would find.
  std::vector<std::string> m2m_vendors;
};

class BaselineVendorClassifier {
 public:
  explicit BaselineVendorClassifier(const cellnet::TacCatalog& catalog,
                                    BaselineClassifierConfig config = {});

  /// Same output contract as DeviceClassifier::classify, so validation and
  /// the V1 harness can compare them directly. APNs are deliberately not
  /// consulted.
  [[nodiscard]] ClassificationResult classify(
      std::span<const DeviceSummary> devices) const;

  [[nodiscard]] bool is_m2m_vendor(std::string_view vendor) const;

 private:
  const cellnet::TacCatalog* catalog_;
  std::vector<std::string> vendors_;
};

/// The default curated vendor list ("big players" extended by the vendors a
/// manual verification pass over the module pool would add).
[[nodiscard]] std::vector<std::string> default_m2m_vendor_list();

}  // namespace wtr::core
