#pragma once

// Smart-meter (SMIP) analysis (§7.1 / §4.4): compares the MNO's native
// meters (dedicated IMSI range) with the inbound-roaming meters on global
// IoT SIMs — activity longevity, background-signaling volume, failure
// incidence, RAT usage (Fig. 11), and the provenance findings (single Dutch
// home operator, Gemalto/Telit modules only).

#include <unordered_set>

#include "cellnet/tac_catalog.hpp"
#include "core/catalog_builder.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"

namespace wtr::core {

struct SmipGroupStats {
  std::size_t devices = 0;
  stats::Ecdf active_days;        // Fig. 11-a, all devices of the group
  stats::Ecdf active_days_day0;   // Fig. 11-a, devices present on day 0
  stats::Ecdf signaling_per_day;  // Fig. 11-b
  double mean_signaling_per_day = 0.0;
  double fraction_full_period = 0.0;    // active on every day of the window
  double fraction_with_failures = 0.0;  // ≥1 failed signaling event
  stats::CategoryCounter rat_usage;     // connectivity mask labels
};

struct SmipAnalysis {
  SmipGroupStats native;
  SmipGroupStats roaming;

  // Provenance of the roaming fleet (§4.4 / T3).
  stats::CategoryCounter roaming_home_operators;  // PLMN strings
  stats::CategoryCounter roaming_vendors;         // module vendors via TAC

  /// Roaming-to-native ratio of mean signaling per device-day (the paper
  /// reports ≈10×).
  [[nodiscard]] double signaling_ratio() const {
    return native.mean_signaling_per_day <= 0.0
               ? 0.0
               : roaming.mean_signaling_per_day / native.mean_signaling_per_day;
  }
};

/// `native` / `roaming` identify the two meter fleets by device hash;
/// devices outside both sets are ignored. `horizon_days` is the window
/// length used to define "active the whole period".
[[nodiscard]] SmipAnalysis analyze_smip(
    std::span<const DeviceSummary> summaries,
    const std::unordered_set<signaling::DeviceHash>& native,
    const std::unordered_set<signaling::DeviceHash>& roaming,
    std::int32_t horizon_days, const cellnet::TacCatalog& tac_catalog);

}  // namespace wtr::core
