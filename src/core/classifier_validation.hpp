#pragma once

// Classifier validation against simulator ground truth — the evaluation the
// paper could not run (operators have no labels). Since our traces come
// from a generative model, every device's true class is known; this module
// produces the confusion matrix and per-class precision/recall (experiment
// V1 in DESIGN.md), including the ablation of stage-3 property propagation.

#include <array>
#include <unordered_map>

#include "core/census.hpp"
#include "devices/device_class.hpp"

namespace wtr::core {

using GroundTruth =
    std::unordered_map<signaling::DeviceHash, devices::DeviceClass>;

struct ValidationReport {
  /// confusion[true class][predicted label] over matched devices.
  std::array<std::array<std::uint64_t, kClassLabelCount>, devices::kDeviceClassCount>
      confusion{};
  std::size_t matched = 0;    // devices with ground truth
  std::size_t unmatched = 0;  // observed devices missing from the truth map

  /// Strict: m2m-maybe counts as a miss for true-m2m devices.
  double strict_accuracy = 0.0;
  /// Lenient: m2m-maybe counts as m2m (the paper sets those devices aside
  /// rather than calling them wrong).
  double lenient_accuracy = 0.0;

  double m2m_precision = 0.0;  // lenient
  double m2m_recall = 0.0;     // lenient
  double smart_precision = 0.0;
  double smart_recall = 0.0;
  double feat_precision = 0.0;
  double feat_recall = 0.0;
};

[[nodiscard]] ValidationReport validate_classification(
    const ClassifiedPopulation& population, const GroundTruth& truth);

}  // namespace wtr::core
