#include "core/census.hpp"

#include "cellnet/country.hpp"

namespace wtr::core {

ClassifiedPopulation run_census(const records::DevicesCatalog& catalog,
                                cellnet::Plmn observer,
                                std::vector<cellnet::Plmn> mvno_plmns,
                                const cellnet::TacCatalog& tac_catalog,
                                ClassifierConfig config) {
  ClassifiedPopulation population{
      .summaries = summarize(catalog),
      .labels = {},
      .classes = {},
      .classification = {},
      .labeler = RoamingLabeler{observer, std::move(mvno_plmns)},
  };

  population.labels.reserve(population.summaries.size());
  for (const auto& summary : population.summaries) {
    population.labels.push_back(
        population.labeler.label(summary.sim_plmn, summary.visited_plmns));
  }

  const DeviceClassifier classifier{tac_catalog, std::move(config)};
  population.classification = classifier.classify(population.summaries);
  population.classes = population.classification.labels;
  return population;
}

stats::CategoryCounter daily_label_shares(const records::DevicesCatalog& catalog,
                                          const RoamingLabeler& labeler) {
  stats::CategoryCounter counter;
  for (const auto& record : catalog.records()) {
    const auto label = labeler.label(record.sim_plmn, record.visited_plmns);
    counter.add(std::string(roaming_label_name(label)));
  }
  return counter;
}

stats::CategoryCounter inbound_home_countries(const ClassifiedPopulation& population) {
  stats::CategoryCounter counter;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population.is_inbound(i)) continue;
    counter.add(std::string(cellnet::iso_of_mcc(population.summaries[i].sim_plmn.mcc())));
  }
  return counter;
}

stats::Heatmap inbound_home_country_by_class(const ClassifiedPopulation& population) {
  stats::Heatmap heatmap;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population.is_inbound(i)) continue;
    heatmap.add(std::string(class_label_name(population.classes[i])),
                std::string(cellnet::iso_of_mcc(population.summaries[i].sim_plmn.mcc())));
  }
  return heatmap;
}

stats::Heatmap class_vs_label(const ClassifiedPopulation& population) {
  stats::Heatmap heatmap;
  for (std::size_t i = 0; i < population.size(); ++i) {
    heatmap.add(std::string(class_label_name(population.classes[i])),
                std::string(roaming_label_name(population.labels[i])));
  }
  return heatmap;
}

SilentRoamerStats silent_roamers(const ClassifiedPopulation& population) {
  SilentRoamerStats stats;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population.is_inbound(i)) continue;
    ++stats.inbound_devices;
    const auto& summary = population.summaries[i];
    if (summary.signaling_events > 0 && summary.bytes == 0 && summary.calls == 0) {
      ++stats.silent;
      ++stats.silent_by_class[std::string(class_label_name(population.classes[i]))];
    }
  }
  return stats;
}

}  // namespace wtr::core
