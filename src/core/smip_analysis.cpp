#include "core/smip_analysis.hpp"

namespace wtr::core {

namespace {

void accumulate(SmipGroupStats& group, const DeviceSummary& summary,
                std::int32_t horizon_days) {
  ++group.devices;
  const auto days = static_cast<double>(summary.active_days);
  group.active_days.add(days);
  if (summary.first_day == 0) group.active_days_day0.add(days);
  group.signaling_per_day.add(summary.signaling_per_day());
  if (summary.active_days >= static_cast<std::uint32_t>(horizon_days)) {
    group.fraction_full_period += 1.0;
  }
  if (summary.failed_events > 0) group.fraction_with_failures += 1.0;
  group.rat_usage.add(std::string(cellnet::rat_mask_label(summary.radio_flags)));
}

void finish(SmipGroupStats& group) {
  if (group.devices == 0) return;
  group.fraction_full_period /= static_cast<double>(group.devices);
  group.fraction_with_failures /= static_cast<double>(group.devices);
  group.mean_signaling_per_day =
      group.signaling_per_day.empty() ? 0.0 : group.signaling_per_day.mean();
}

}  // namespace

SmipAnalysis analyze_smip(std::span<const DeviceSummary> summaries,
                          const std::unordered_set<signaling::DeviceHash>& native,
                          const std::unordered_set<signaling::DeviceHash>& roaming,
                          std::int32_t horizon_days,
                          const cellnet::TacCatalog& tac_catalog) {
  SmipAnalysis analysis;
  for (const auto& summary : summaries) {
    if (native.contains(summary.device)) {
      accumulate(analysis.native, summary, horizon_days);
    } else if (roaming.contains(summary.device)) {
      accumulate(analysis.roaming, summary, horizon_days);
      analysis.roaming_home_operators.add(summary.sim_plmn.to_string());
      if (const auto* info = tac_catalog.lookup(summary.tac)) {
        analysis.roaming_vendors.add(info->vendor);
      }
    }
  }
  finish(analysis.native);
  finish(analysis.roaming);
  return analysis;
}

}  // namespace wtr::core
