#pragma once

// Streaming mobility metrics. The paper computes, per device and day, a
// time-weighted centroid over the serving sectors and a radius of gyration
// around it (§4.1, Fig. 8). GyrationAccumulator does this in O(1) memory by
// keeping weighted first and second moments in a local tangent frame
// anchored at the first observed point — exact for the flat-frame geometry
// the metric is defined in.

#include "cellnet/geo.hpp"

namespace wtr::core {

class GyrationAccumulator {
 public:
  /// Add `weight` (e.g. seconds of dwell) at a location.
  void add(const cellnet::GeoPoint& location, double weight) noexcept;

  void merge(const GyrationAccumulator& other) noexcept;

  [[nodiscard]] bool empty() const noexcept { return total_weight_ <= 0.0; }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  /// Weighted centroid; requires !empty().
  [[nodiscard]] cellnet::GeoPoint centroid() const noexcept;

  /// Weighted radius of gyration in meters; 0 for a single point or empty.
  [[nodiscard]] double gyration_m() const noexcept;

 private:
  bool has_ref_ = false;
  cellnet::GeoPoint ref_{};
  double cos_ref_lat_ = 1.0;
  double total_weight_ = 0.0;
  double sum_e_ = 0.0;   // weighted east meters
  double sum_n_ = 0.0;   // weighted north meters
  double sum_sq_ = 0.0;  // weighted east^2 + north^2

  void to_local(const cellnet::GeoPoint& p, double& east_m, double& north_m) const noexcept;
};

}  // namespace wtr::core
