#pragma once

// The M2M platform scenario (§3): reproduces the 11-day, 4-HMNO global IoT
// SIM trace. Device counts are scaled (default 24k instead of the paper's
// 120k); every share-type statistic is scale-free.
//
// Composition targets (tracegen/calibration.hpp):
//   * ES 52.3% of devices — 18% deployed at home, 62% of roamers massed in
//     five primary countries (the 75%-of-signaling heavy set), the rest in
//     a ~70-country Zipf tail;
//   * MX 42.2% — 90% at home (LatAm roaming restrictions);
//   * AR 4.7% — almost all at home;
//   * DE ~0.8% — a small high-mobility connected-car fleet spanning many
//     VMNOs;
//   * ≈40% of ES devices fail all 4G procedures (no-LTE SIM provisioning or
//     dead subscriptions), the paper's pure-failure population.

#include "faults/fault_schedule.hpp"
#include "signaling/attach_backoff.hpp"
#include "tracegen/scenario.hpp"

namespace wtr::tracegen {

struct M2MPlatformConfig {
  std::uint64_t seed = 2018;
  std::size_t total_devices = 24'000;
  std::int32_t days = 11;
  /// Engine shard/worker count (sim::Engine::Config::threads). Any value
  /// yields byte-identical output to threads=1; >1 only changes wall time.
  unsigned threads = 1;
  /// Platform probes capture no sector geometry; grids can be skipped for
  /// speed unless a consumer needs dwell records.
  bool build_coverage = false;
  /// Optional fault-injection schedule (borrowed; null/empty = no faults).
  const faults::FaultSchedule* faults = nullptr;
  /// Mechanistic 3GPP attach backoff; disabled keeps the calibrated
  /// retry-rate boost the Fig. 3 tail was fit with.
  signaling::AttachBackoffConfig backoff{};
  /// Observability hooks (borrowed; all-null disables the layer).
  obs::Observability obs{};
  /// Checkpoint/restore plumbing (all-default = off, legacy code path).
  CheckpointOptions ckpt{};
  /// Flight-recorder / heartbeat passthrough (all-default = off).
  TelemetryOptions telemetry{};
};

class M2MPlatformScenario final : public ScenarioBase {
 public:
  explicit M2MPlatformScenario(const M2MPlatformConfig& config = {});

  [[nodiscard]] const M2MPlatformConfig& config() const noexcept { return config_; }

  /// SIM PLMNs of the four HMNOs (for the platform-trace accumulator).
  [[nodiscard]] std::vector<cellnet::Plmn> hmno_plmns() const;

 private:
  void build_es_fleets();
  void build_mx_fleets();
  void build_ar_fleets();
  void build_de_fleets();

  [[nodiscard]] devices::FleetSpec base_spec(topology::OperatorId home,
                                             std::size_t count,
                                             const devices::BehaviorProfile& profile,
                                             const std::string& deployment_iso) const;

  M2MPlatformConfig config_;
};

}  // namespace wtr::tracegen
