#include "tracegen/m2m_platform_scenario.hpp"

#include <array>
#include <cmath>

#include "cellnet/country.hpp"
#include "tracegen/calibration.hpp"

namespace wtr::tracegen {

namespace {

topology::WorldConfig world_config_for(const M2MPlatformConfig& config) {
  topology::WorldConfig wc;
  wc.seed = config.seed;
  wc.build_coverage = config.build_coverage;
  return wc;
}

sim::Engine::Config engine_config_for(const M2MPlatformConfig& config) {
  sim::Engine::Config ec;
  ec.seed = stats::mix64(config.seed, 0x91a7f0u);
  ec.horizon_days = config.days;
  ec.threads = config.threads;
  ec.outcomes.transient_failure_rate = 0.001;
  ec.faults = config.faults;
  ec.checkpoint_every_sim_hours = config.ckpt.every_sim_hours;
  ec.checkpoint_path = config.ckpt.path;
  ec.stop_after_sim_hours = config.ckpt.stop_after_sim_hours;
  if (config.ckpt.snapshot_format != 0) {
    ec.snapshot_format = config.ckpt.snapshot_format;
  }
  ec.trace_path = config.telemetry.trace_path;
  ec.trace_capacity_per_track = config.telemetry.trace_capacity_per_track;
  ec.heartbeat_path = config.telemetry.heartbeat_path;
  ec.heartbeat_every_wall_s = config.telemetry.heartbeat_every_wall_s;
  return ec;
}

/// IoT SIM hardware is 4G-capable with legacy fallback (the platform trace
/// is 4G-only by probe placement, not by hardware).
cellnet::RatMask all_bands() {
  return cellnet::RatMask{0b111};
}

}  // namespace

M2MPlatformScenario::M2MPlatformScenario(const M2MPlatformConfig& config)
    : ScenarioBase(world_config_for(config), cellnet::TacPools::Config{config.seed ^ 0x7ac5},
                   engine_config_for(config), stats::mix64(config.seed, 0xf1ee7),
                   config.obs),
      config_(config) {
  build_es_fleets();
  build_mx_fleets();
  build_ar_fleets();
  build_de_fleets();
}

std::vector<cellnet::Plmn> M2MPlatformScenario::hmno_plmns() const {
  const auto& wk = world_->well_known();
  const auto& ops = world_->operators();
  return {ops.get(wk.es_hmno).plmn, ops.get(wk.de_hmno).plmn, ops.get(wk.mx_hmno).plmn,
          ops.get(wk.ar_hmno).plmn};
}

devices::FleetSpec M2MPlatformScenario::base_spec(
    topology::OperatorId home, std::size_t count,
    const devices::BehaviorProfile& profile, const std::string& deployment_iso) const {
  devices::FleetSpec spec;
  spec.count = count;
  spec.home_operator = home;
  spec.profile = profile;
  spec.deployment_iso = deployment_iso;
  spec.apn_policy = devices::ApnPolicy::kM2MPlatform;
  spec.horizon_days = config_.days;
  spec.force_bands = all_bands();
  return spec;
}

void M2MPlatformScenario::build_es_fleets() {
  const auto es = world_->well_known().es_hmno;
  const auto total = static_cast<double>(config_.total_devices);
  const auto es_total = total * paper::kEsDeviceShare;
  const double native_count = es_total * paper::kEsNonRoamingDeviceShare;
  const double roaming_count = es_total - native_count;

  sim::AgentOptions options;
  options.retry_rate_boost = 30.0;  // registration storms feed the Fig. 3 tail
  options.backoff = config_.backoff;
  options.p_explore_after_failure = 0.06;

  // --- ES native: low-rate stationary verticals at home.
  {
    auto profile = devices::m2m_profile(devices::Vertical::kSmartMeter);
    profile.p_full_period = 0.85;  // long-lived, less mobile (§3.2)
    profile.p_detach_after_session = 0.05;  // stay attached: few HSS touches
    auto spec = base_spec(es, static_cast<std::size_t>(native_count * 0.6), profile, "ES");
    spec.lte_sim_disabled_rate = 0.36;
    spec.subscription_ok_rate = 0.99;
    add_fleet(spec, options);

    auto pos_profile = devices::m2m_profile(devices::Vertical::kPosTerminal);
    pos_profile.p_full_period = 0.85;
    pos_profile.p_detach_after_session = 0.05;
    auto pos_spec =
        base_spec(es, static_cast<std::size_t>(native_count * 0.4), pos_profile, "ES");
    pos_spec.lte_sim_disabled_rate = 0.36;
    pos_spec.subscription_ok_rate = 0.99;
    add_fleet(pos_spec, options);
  }

  // --- ES roaming heavy set: five primary countries, signaling-heavy
  // verticals (these generate ~75% of the ES signaling).
  const std::array<std::string, 5> primary{"GB", "FR", "IT", "PT", "DE"};
  const double heavy_count = roaming_count * paper::kEsHeavyDeviceShare;
  for (const auto& iso : primary) {
    const auto per_country = static_cast<std::size_t>(heavy_count / primary.size());
    struct Mix {
      devices::Vertical vertical;
      double share;
    };
    const std::array<Mix, 4> mix{{{devices::Vertical::kConnectedCar, 0.35},
                                  {devices::Vertical::kFleetTelematics, 0.25},
                                  {devices::Vertical::kLogisticsTracker, 0.20},
                                  {devices::Vertical::kSmartMeter, 0.20}}};
    for (const auto& [vertical, share] : mix) {
      auto profile = devices::m2m_profile(vertical);
      profile.p_full_period = 0.75;
      // Global IoT SIM firmware reattaches per report; every cycle touches
      // the HSS (auth + update location), which is what the probes see.
      profile.p_detach_after_session =
          vertical == devices::Vertical::kConnectedCar ? 0.5 : 0.7;
      auto spec = base_spec(es, static_cast<std::size_t>(per_country * share), profile, iso);
      spec.lte_sim_disabled_rate = 0.38;
      spec.subscription_ok_rate = 0.985;
      sim::AgentOptions mobile_options = options;
      if (vertical == devices::Vertical::kConnectedCar ||
          vertical == devices::Vertical::kLogisticsTracker) {
        mobile_options.corridor = {iso, "ES", "FR", "DE"};  // EU trips
      }
      add_fleet(spec, mobile_options);
    }
  }

  // --- ES roaming tail: Zipf allocation over every other country, so the
  // footprint reaches ~70+ countries like the paper's (§3.2).
  std::vector<std::string> tail_isos;
  for (const auto& country : cellnet::all_countries()) {
    if (country.iso == "ES") continue;
    if (std::find(primary.begin(), primary.end(), country.iso) != primary.end()) continue;
    tail_isos.emplace_back(country.iso);
  }
  const double tail_count = roaming_count - heavy_count;
  double zipf_norm = 0.0;
  for (std::size_t rank = 0; rank < tail_isos.size(); ++rank) {
    zipf_norm += 1.0 / static_cast<double>(rank + 1);
  }
  for (std::size_t rank = 0; rank < tail_isos.size(); ++rank) {
    const double weight = (1.0 / static_cast<double>(rank + 1)) / zipf_norm;
    const auto count =
        std::max<std::size_t>(2, static_cast<std::size_t>(tail_count * weight));
    auto profile = devices::m2m_profile(rank % 2 == 0
                                            ? devices::Vertical::kLogisticsTracker
                                            : devices::Vertical::kWearable);
    profile.p_full_period = 0.6;
    profile.p_detach_after_session = 0.7;
    auto spec = base_spec(es, count, profile, tail_isos[rank]);
    spec.lte_sim_disabled_rate = 0.38;
    spec.subscription_ok_rate = 0.985;
    add_fleet(spec, options);
  }
}

void M2MPlatformScenario::build_mx_fleets() {
  const auto mx = world_->well_known().mx_hmno;
  const auto total = static_cast<double>(config_.total_devices);
  const double mx_total = total * paper::kMxDeviceShare;
  const double home_count = mx_total * paper::kMxHomeDeviceShare;

  sim::AgentOptions options;
  options.retry_rate_boost = 20.0;
  options.backoff = config_.backoff;

  struct Mix {
    devices::Vertical vertical;
    double share;
  };
  const std::array<Mix, 4> home_mix{{{devices::Vertical::kSmartMeter, 0.40},
                                     {devices::Vertical::kPosTerminal, 0.25},
                                     {devices::Vertical::kVendingMachine, 0.20},
                                     {devices::Vertical::kFleetTelematics, 0.15}}};
  for (const auto& [vertical, share] : home_mix) {
    auto profile = devices::m2m_profile(vertical);
    profile.p_full_period = 0.8;
    profile.p_detach_after_session = 0.08;  // at home: long-lived attachments
    auto spec =
        base_spec(mx, static_cast<std::size_t>(home_count * share), profile, "MX");
    spec.subscription_ok_rate = 0.97;
    add_fleet(spec, options);
  }

  // Roamers: a 10% slice spread over the paper's 7-country footprint.
  const std::array<std::string, 6> visited{"GT", "CO", "CL", "US", "PA", "PE"};
  const double roaming_count = mx_total - home_count;
  for (const auto& iso : visited) {
    auto profile = devices::m2m_profile(devices::Vertical::kLogisticsTracker);
    profile.p_full_period = 0.7;
    auto spec = base_spec(
        mx, static_cast<std::size_t>(roaming_count / visited.size()), profile, iso);
    spec.subscription_ok_rate = 0.95;
    add_fleet(spec, options);
  }
}

void M2MPlatformScenario::build_ar_fleets() {
  const auto ar = world_->well_known().ar_hmno;
  const auto total = static_cast<double>(config_.total_devices);
  const double ar_total = total * paper::kArDeviceShare;

  sim::AgentOptions options;
  options.retry_rate_boost = 20.0;
  options.backoff = config_.backoff;

  auto meters = devices::m2m_profile(devices::Vertical::kSmartMeter);
  meters.p_full_period = 0.8;
  meters.p_detach_after_session = 0.08;
  auto meter_spec = base_spec(ar, static_cast<std::size_t>(ar_total * 0.75), meters, "AR");
  add_fleet(meter_spec, options);

  auto pos = devices::m2m_profile(devices::Vertical::kPosTerminal);
  pos.p_full_period = 0.8;
  pos.p_detach_after_session = 0.08;
  add_fleet(base_spec(ar, static_cast<std::size_t>(ar_total * 0.20), pos, "AR"), options);

  // A sliver of roamers across the Rio de la Plata.
  for (const auto& iso : {"UY", "PY", "CL"}) {
    auto trackers = devices::m2m_profile(devices::Vertical::kLogisticsTracker);
    add_fleet(base_spec(ar, static_cast<std::size_t>(ar_total * 0.05 / 3.0), trackers, iso),
              options);
  }
}

void M2MPlatformScenario::build_de_fleets() {
  const auto de = world_->well_known().de_hmno;
  const auto total = static_cast<double>(config_.total_devices);
  const auto de_total = static_cast<std::size_t>(total * paper::kDeDeviceShare);

  // Connected cars with pan-European mobility: few devices, many VMNOs
  // (§3.2 counts 18 visited networks on ~1,000 devices).
  sim::AgentOptions options;
  options.retry_rate_boost = 20.0;
  options.backoff = config_.backoff;
  options.corridor = {"DE", "FR", "IT", "AT", "PL", "NL", "BE", "CZ", "CH"};

  auto cars = devices::m2m_profile(devices::Vertical::kConnectedCar);
  cars.p_full_period = 0.7;
  cars.p_cross_country_trip = 0.25;  // high mobility requirement (§3.2)
  cars.p_vmno_switch = 0.2;
  const std::array<std::string, 4> bases{"DE", "FR", "AT", "NL"};
  for (const auto& iso : bases) {
    add_fleet(base_spec(de, de_total / bases.size(), cars, iso), options);
  }
}

}  // namespace wtr::tracegen
