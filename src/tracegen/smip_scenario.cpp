#include "tracegen/smip_scenario.hpp"

namespace wtr::tracegen {

namespace {

topology::WorldConfig world_config_for(const SmipScenarioConfig& config) {
  topology::WorldConfig wc;
  wc.seed = config.seed;
  wc.build_coverage = config.build_coverage;
  return wc;
}

sim::Engine::Config engine_config_for(const SmipScenarioConfig& config) {
  sim::Engine::Config ec;
  ec.seed = stats::mix64(config.seed, 0x534d4950);  // "SMIP"
  ec.horizon_days = config.days;
  ec.threads = config.threads;
  // Calibrated so ~10% of native meters see ≥1 failed event over the
  // window while the chattier roaming meters reach ~35% (§7.1).
  ec.outcomes.transient_failure_rate = 0.0004;
  ec.faults = config.faults;
  ec.checkpoint_every_sim_hours = config.ckpt.every_sim_hours;
  ec.checkpoint_path = config.ckpt.path;
  ec.stop_after_sim_hours = config.ckpt.stop_after_sim_hours;
  if (config.ckpt.snapshot_format != 0) {
    ec.snapshot_format = config.ckpt.snapshot_format;
  }
  ec.trace_path = config.telemetry.trace_path;
  ec.trace_capacity_per_track = config.telemetry.trace_capacity_per_track;
  ec.heartbeat_path = config.telemetry.heartbeat_path;
  ec.heartbeat_every_wall_s = config.telemetry.heartbeat_every_wall_s;
  return ec;
}

}  // namespace

SmipScenario::SmipScenario(const SmipScenarioConfig& config)
    : ScenarioBase(world_config_for(config), cellnet::TacPools::Config{config.seed ^ 0x51},
                   engine_config_for(config), stats::mix64(config.seed, 0x5150),
                   config.obs),
      config_(config) {
  const auto& wk = world_->well_known();
  // Steer the Dutch provisioner's UK roamers to the observed MNO (see
  // MnoScenario for the rationale).
  world_->mutable_steering().set_preference(wk.nl_iot_provisioner, "GB",
                                            {{wk.uk_mno, 15.0}});
  sim::AgentOptions options;
  options.retry_rate_boost = 10.0;
  options.backoff = config.backoff;

  const auto native_total =
      static_cast<std::size_t>(config.native_share *
                               static_cast<double>(config.total_devices));
  const std::size_t roaming_total = config.total_devices - native_total;

  // --- SMIP native: dedicated IMSI range and a controlled GGSN pool (we
  // model the range; the pool is a provisioning detail). Two hardware
  // cohorts: 2/3 of the fleet on 3G-only modules, 1/3 on 2G+3G.
  auto native_profile = devices::m2m_profile(devices::Vertical::kSmartMeter);
  native_profile.p_full_period = 0.78;  // §7.1: 73% active the whole period
  native_profile.active_span_days_mean = 12.0;
  // SMIP meters report several times a day — enough that an active meter is
  // seen on (almost) every day of the window.
  native_profile.sessions_per_day_mu = 2.0;   // ≈ 7 reads/day
  native_profile.sessions_per_day_sigma = 0.3;
  native_profile.p_detach_after_session = 0.2;
  native_profile.area_updates_per_session = 0.35;

  std::uint64_t imsi_base = 500'000'000ULL;
  auto add_native = [&](std::size_t count, cellnet::RatMask bands) {
    devices::FleetSpec spec;
    spec.count = count;
    spec.home_operator = wk.uk_mno;
    spec.profile = native_profile;
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kVerticalCompany;
    spec.horizon_days = config_.days;
    spec.imsi_range = cellnet::ImsiRange{observer_plmn(), imsi_base, imsi_base + count};
    imsi_base += count;
    spec.cap_bands = bands;
    for (const auto hash : add_fleet(spec, options)) native_.insert(hash);
  };
  add_native(native_total * 2 / 3, cellnet::RatMask{0b010});  // 3G only
  add_native(native_total - native_total * 2 / 3, cellnet::RatMask{0b011});  // 2G+3G

  // --- SMIP roaming: Dutch global IoT SIMs on 2G-only Gemalto/Telit
  // modules, behind the five UK energy companies' APNs. Much chattier
  // (reattach-per-report firmware) and shorter-lived in the trace.
  {
    devices::FleetSpec spec;
    spec.count = roaming_total;
    spec.home_operator = wk.nl_iot_provisioner;
    auto profile = devices::m2m_profile(devices::Vertical::kSmartMeter);
    profile.sessions_per_day_mu = 2.5;        // ≈ 12 sessions/day
    profile.sessions_per_day_sigma = 0.5;
    profile.p_detach_after_session = 0.9;     // reattach-per-report firmware
    profile.area_updates_per_session = 4.0;   // chatty RAU behaviour
    profile.p_full_period = 0.18;
    profile.active_span_days_mean = 4.5;      // §7.1: 50% active ≤ 5 days
    spec.profile = profile;
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kVerticalCompany;
    spec.horizon_days = config_.days;
    spec.cap_bands = cellnet::RatMask{0b001};  // 2G-only hardware
    spec.restrict_vendors = {"Gemalto", "Telit"};
    spec.subscription_ok_rate = 0.91;
    for (const auto hash : add_fleet(spec, options)) roaming_.insert(hash);
  }
}

cellnet::Plmn SmipScenario::observer_plmn() const {
  return world_->operators().get(world_->well_known().uk_mno).plmn;
}

}  // namespace wtr::tracegen
