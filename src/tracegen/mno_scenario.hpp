#pragma once

// The visited-MNO scenario (§4–6): the full device population seen by the
// UK operator over 22 days — native and MVNO phones, inbound-roaming
// tourists, outbound roamers, and the M2M fleets (dominated by the
// inbound-roaming smart meters from the Dutch global-IoT-SIM provisioner).
// Default scale is 24k devices (the paper's 39.6M scaled down; all reported
// statistics are shares or distribution shapes).

#include "faults/fault_schedule.hpp"
#include "signaling/attach_backoff.hpp"
#include "tracegen/scenario.hpp"

namespace wtr::tracegen {

/// Fault-domain tags stamped on MnoScenario fleets so a FaultSchedule can
/// target them (misprovisioning ramps are per-fleet phenomena).
inline constexpr std::uint32_t kFaultDomainInboundMeters = 1;
inline constexpr std::uint32_t kFaultDomainNativeM2M = 2;

struct MnoScenarioConfig {
  std::uint64_t seed = 2019;
  std::size_t total_devices = 24'000;
  std::int32_t days = 22;
  /// Engine shard/worker count (sim::Engine::Config::threads). Any value
  /// yields byte-identical output to threads=1; >1 only changes wall time.
  unsigned threads = 1;
  bool build_coverage = true;  // needed for the mobility figures
  /// What-if (§6.1/§8 discussion): the UK retires its 2G networks. The same
  /// population is simulated against 3G/4G-only coverage; 2G-only hardware
  /// is stranded. Used by the X2 extension bench.
  bool sunset_2g_in_uk = false;
  /// §8 extension: fraction of the inbound (Dutch) smart-meter fleet that is
  /// provisioned on NB-IoT instead of 2G modules. Values > 0 also light up
  /// NB-IoT deployment in GB/NL and NB-IoT roaming in the agreements (the
  /// GSMA roaming-trial world). Used by the X3 extension bench.
  double nbiot_meter_share = 0.0;
  /// Optional fault-injection schedule (borrowed; must outlive the
  /// scenario). Null or empty keeps the run bit-identical to the no-fault
  /// build. Episode times are sim seconds (stats::day_start helps).
  const faults::FaultSchedule* faults = nullptr;
  /// Retry model for every fleet: enable for the mechanistic 3GPP
  /// T3411/T3402 backoff; leave disabled for the calibrated legacy
  /// retry-rate boost (the default the headline figures were fit with).
  signaling::AttachBackoffConfig backoff{};
  /// Observability hooks (borrowed; all-null disables the layer and keeps
  /// the run byte-identical).
  obs::Observability obs{};
  /// Checkpoint/restore plumbing (all-default = off, legacy code path).
  CheckpointOptions ckpt{};
  /// Flight-recorder / heartbeat passthrough (all-default = off).
  TelemetryOptions telemetry{};
};

class MnoScenario final : public ScenarioBase {
 public:
  explicit MnoScenario(const MnoScenarioConfig& config = {});

  [[nodiscard]] const MnoScenarioConfig& config() const noexcept { return config_; }

  /// The observing MNO and its MVNO family (catalog-accumulator config).
  [[nodiscard]] cellnet::Plmn observer_plmn() const;
  [[nodiscard]] std::vector<cellnet::Plmn> mvno_plmns() const;
  [[nodiscard]] std::vector<cellnet::Plmn> family_plmns() const;

 private:
  /// Fleet-agnostic agent options carrying the configured retry model.
  [[nodiscard]] sim::AgentOptions base_options() const;

  void build_smartphone_fleets();
  void build_feature_phone_fleets();
  void build_native_m2m_fleets();
  void build_inbound_m2m_fleets();
  void build_maybe_fleets();

  /// Home operator handle for a foreign country's first MNO.
  [[nodiscard]] topology::OperatorId foreign_mno(const std::string& iso) const;

  [[nodiscard]] std::size_t scaled(double fraction) const {
    return static_cast<std::size_t>(fraction *
                                    static_cast<double>(config_.total_devices));
  }

  MnoScenarioConfig config_;
};

}  // namespace wtr::tracegen
