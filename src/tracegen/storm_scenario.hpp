#pragma once

// Retry-storm scenario: the overload workloads the closed-loop congestion
// model feeds on. Two fleets on the UK MNO stress its core in different
// shapes: a synchronized check-in herd of native smart meters (fixed-period
// beats, reattach-per-report firmware — the thundering herd) and a staged
// FOTA campaign over a tracker fleet whose failed image downloads retry on
// a short timer (the retry storm). The A/B arms of bench_s3 run the same
// fleets with 3GPP congestion controls honoured (T3346 + EAB) vs ignored
// (legacy firmware), against the same CongestionModel.

#include "faults/congestion.hpp"
#include "faults/fault_schedule.hpp"
#include "signaling/attach_backoff.hpp"
#include "tracegen/scenario.hpp"

namespace wtr::tracegen {

/// Fault-domain tags for the storm fleets (distinct from MnoScenario's).
inline constexpr std::uint32_t kFaultDomainStormMeters = 11;
inline constexpr std::uint32_t kFaultDomainStormTrackers = 12;

struct StormScenarioConfig {
  std::uint64_t seed = 7331;
  /// Synchronized check-in herd (native smart meters, EAB candidates).
  std::size_t meters = 1'600;
  /// FOTA campaign fleet (logistics trackers).
  std::size_t trackers = 400;
  std::int32_t days = 3;
  unsigned threads = 1;
  /// Storms are a signaling exercise; coverage is not needed by default.
  bool build_coverage = false;

  // --- fleet firmware (the A/B knobs of the overload bench) ---------------
  /// Honour T3346 mobility backoff on kCongestion rejects. False models the
  /// death-spiral firmware that keeps hammering.
  bool honor_congestion_control = true;
  /// Meters participate in extended access barring (shed load first).
  bool eab_meters = true;

  // --- storm shaping -------------------------------------------------------
  double checkin_period_s = 4.0 * 3600.0;
  double checkin_jitter_s = 20.0;
  /// FOTA campaign kickoff (sim seconds) and per-attempt image failure rate.
  stats::SimTime fota_start_s = 30 * 3600;
  double fota_failure_p = 0.35;

  // --- plumbing ------------------------------------------------------------
  /// The closed-loop overload model (borrowed; must outlive the scenario;
  /// rolled by the engine at window barriers). Null disables congestion and
  /// keeps the run byte-identical to a congestion-free build.
  faults::CongestionModel* congestion = nullptr;
  /// Optional open-loop fault schedule (capacity drops compose with the
  /// congestion model through capacity_scale_at).
  const faults::FaultSchedule* faults = nullptr;
  signaling::AttachBackoffConfig backoff{};
  obs::Observability obs{};
  CheckpointOptions ckpt{};
  /// Flight-recorder / heartbeat passthrough (all-default = off).
  TelemetryOptions telemetry{};
};

class StormScenario final : public ScenarioBase {
 public:
  explicit StormScenario(const StormScenarioConfig& config = {});

  [[nodiscard]] const StormScenarioConfig& config() const noexcept { return config_; }

  /// The congested core: the observer MNO's radio network id — the key a
  /// CongestionConfig capacity override should use.
  [[nodiscard]] topology::OperatorId observer_radio() const;
  /// Dense operator-id count, for sizing a CongestionModel.
  [[nodiscard]] std::size_t operator_count() const noexcept {
    return world_->operators().size();
  }

 private:
  void build_meter_herd();
  void build_fota_trackers();

  StormScenarioConfig config_;
};

}  // namespace wtr::tracegen
