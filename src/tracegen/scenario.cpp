#include "tracegen/scenario.hpp"

namespace wtr::tracegen {

std::unordered_map<signaling::DeviceHash, devices::DeviceClass> class_truth(
    const GroundTruthMap& truth) {
  std::unordered_map<signaling::DeviceHash, devices::DeviceClass> out;
  out.reserve(truth.size());
  for (const auto& [device, entry] : truth) out.emplace(device, entry.device_class);
  return out;
}

ScenarioBase::ScenarioBase(topology::WorldConfig world_config,
                           cellnet::TacPools::Config tac_config,
                           sim::Engine::Config engine_config, std::uint64_t fleet_seed,
                           obs::Observability obs)
    : obs_(obs), tac_pools_(tac_config) {
  {
    obs::ScopedTimer timer{obs_.timers, "scenario/world"};
    world_ = std::make_unique<topology::World>(topology::World::build(world_config));
  }
  fleet_builder_ =
      std::make_unique<devices::FleetBuilder>(*world_, tac_pools_, fleet_seed);
  engine_config.metrics = obs_.metrics;
  engine_config.probe = obs_.probe;
  engine_ = std::make_unique<sim::Engine>(*world_, engine_config);
}

std::vector<signaling::DeviceHash> ScenarioBase::add_fleet(const devices::FleetSpec& spec,
                                                           sim::AgentOptions options) {
  obs::ScopedTimer timer{obs_.timers, "scenario/fleets"};
  std::vector<signaling::DeviceHash> hashes;
  if (spec.count == 0) return hashes;
  auto fleet = fleet_builder_->build(spec);
  devices_added_ += fleet.size();
  hashes.reserve(fleet.size());
  for (const auto& device : fleet) {
    hashes.push_back(device.id);
    truth_.emplace(device.id, GroundTruthEntry{device.profile.device_class,
                                               device.profile.vertical,
                                               device.home_operator});
  }
  engine_->add_fleet(std::move(fleet), std::move(options));
  return hashes;
}

void ScenarioBase::run(std::vector<sim::RecordSink*> sinks) {
  obs::ScopedTimer timer{obs_.timers, "engine/run"};
  engine_->run(std::move(sinks));
}

}  // namespace wtr::tracegen
