#pragma once

// The SMIP smart-meter scenario (§7.1): a 26-day October window over the UK
// MNO's meter population only — SMIP-native meters on the dedicated IMSI
// range (long-lived, 2G+3G with 2/3 on 3G) versus SMIP-roaming meters on
// Dutch global IoT SIMs (2G-only Gemalto/Telit modules, ten-fold signaling,
// 35% failure incidence, short observed lifetimes).

#include <unordered_set>

#include "faults/fault_schedule.hpp"
#include "signaling/attach_backoff.hpp"
#include "tracegen/scenario.hpp"

namespace wtr::tracegen {

struct SmipScenarioConfig {
  std::uint64_t seed = 1019;   // October 2019
  std::size_t total_devices = 16'000;
  std::int32_t days = 26;
  double native_share = 0.55;
  /// Engine shard/worker count (sim::Engine::Config::threads). Any value
  /// yields byte-identical output to threads=1; >1 only changes wall time.
  unsigned threads = 1;
  bool build_coverage = true;
  /// Optional fault-injection schedule (borrowed; null/empty = no faults).
  const faults::FaultSchedule* faults = nullptr;
  /// Mechanistic 3GPP attach backoff; disabled keeps the calibrated
  /// retry-rate boost.
  signaling::AttachBackoffConfig backoff{};
  /// Observability hooks (borrowed; all-null disables the layer).
  obs::Observability obs{};
  /// Checkpoint/restore plumbing (all-default = off, legacy code path).
  CheckpointOptions ckpt{};
  /// Flight-recorder / heartbeat passthrough (all-default = off).
  TelemetryOptions telemetry{};
};

class SmipScenario final : public ScenarioBase {
 public:
  explicit SmipScenario(const SmipScenarioConfig& config = {});

  [[nodiscard]] const SmipScenarioConfig& config() const noexcept { return config_; }
  [[nodiscard]] cellnet::Plmn observer_plmn() const;

  [[nodiscard]] const std::unordered_set<signaling::DeviceHash>& native_meters()
      const noexcept {
    return native_;
  }
  [[nodiscard]] const std::unordered_set<signaling::DeviceHash>& roaming_meters()
      const noexcept {
    return roaming_;
  }

 private:
  SmipScenarioConfig config_;
  std::unordered_set<signaling::DeviceHash> native_;
  std::unordered_set<signaling::DeviceHash> roaming_;
};

}  // namespace wtr::tracegen
