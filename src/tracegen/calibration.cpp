#include "tracegen/calibration.hpp"

// Constants only; this translation unit anchors the header in the build.
