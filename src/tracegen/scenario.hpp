#pragma once

// Shared scenario machinery: a Scenario owns the world, the TAC pools, the
// engine and the ground-truth registry, and exposes one run() that streams
// records into caller-provided sinks. Concrete scenarios (M2M platform,
// visited MNO, SMIP) only differ in the fleets they compose.

#include <memory>
#include <unordered_map>
#include <vector>

#include "cellnet/tac_catalog.hpp"
#include "devices/fleet_builder.hpp"
#include "obs/observability.hpp"
#include "sim/engine.hpp"
#include "topology/world.hpp"

namespace wtr::tracegen {

/// Checkpoint/restore passthrough shared by all scenario configs (maps 1:1
/// onto the sim::Engine::Config checkpoint fields). All-default disables
/// checkpointing and keeps the run on the legacy byte-identical code path.
struct CheckpointOptions {
  /// Snapshot cadence in sim hours (0 = off).
  std::int64_t every_sim_hours = 0;
  /// Snapshot path, replaced atomically at every boundary (empty = off).
  std::string path;
  /// Deterministic in-process interrupt at this sim-hour boundary (0 = off).
  std::int64_t stop_after_sim_hours = 0;
  /// Snapshot container version to write (0 = current). Resume auto-detects;
  /// pinning 2 emits the legacy every-agent layout for older readers.
  std::uint32_t snapshot_format = 0;
};

/// Live-telemetry passthrough shared by all scenario configs (maps 1:1 onto
/// the sim::Engine::Config flight-recorder/heartbeat fields). All-default
/// disables both and keeps the run on the untraced code path; enabling them
/// never changes simulation output (see src/obs/trace.hpp).
struct TelemetryOptions {
  /// Chrome trace-event JSON export path (empty = flight recorder off).
  std::string trace_path;
  /// Ring capacity per flight-recorder track.
  std::size_t trace_capacity_per_track = std::size_t{1} << 15;
  /// Heartbeat/progress file path (empty = off).
  std::string heartbeat_path;
  /// Minimum wall seconds between heartbeat rewrites.
  double heartbeat_every_wall_s = 1.0;
};

struct GroundTruthEntry {
  devices::DeviceClass device_class = devices::DeviceClass::kM2M;
  devices::Vertical vertical = devices::Vertical::kNone;
  topology::OperatorId home_operator = topology::kInvalidOperator;
};

using GroundTruthMap = std::unordered_map<signaling::DeviceHash, GroundTruthEntry>;

/// Ground truth projected to just the device class (the classifier
/// validation input).
[[nodiscard]] std::unordered_map<signaling::DeviceHash, devices::DeviceClass>
class_truth(const GroundTruthMap& truth);

class ScenarioBase {
 public:
  /// `obs` (all-null by default) wires the observability layer through the
  /// whole scenario: world build and fleet construction run under phase
  /// timers ("scenario/world", "scenario/fleets"), the engine gets the
  /// metrics registry and probe, and run() times "engine/run". Disabled
  /// observability leaves every output byte-identical.
  ScenarioBase(topology::WorldConfig world_config, cellnet::TacPools::Config tac_config,
               sim::Engine::Config engine_config, std::uint64_t fleet_seed,
               obs::Observability obs = {});
  virtual ~ScenarioBase() = default;

  ScenarioBase(const ScenarioBase&) = delete;
  ScenarioBase& operator=(const ScenarioBase&) = delete;

  [[nodiscard]] const topology::World& world() const noexcept { return *world_; }
  [[nodiscard]] const cellnet::TacPools& tac_pools() const noexcept { return tac_pools_; }
  [[nodiscard]] const cellnet::TacCatalog& tac_catalog() const noexcept {
    return tac_pools_.catalog();
  }
  [[nodiscard]] const GroundTruthMap& ground_truth() const noexcept { return truth_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] std::size_t device_count() const noexcept { return devices_added_; }

  [[nodiscard]] const obs::Observability& observability() const noexcept { return obs_; }

  /// Run the simulation once, streaming into the sinks.
  void run(std::vector<sim::RecordSink*> sinks);

  /// Resume the engine from a snapshot written by a previous process (see
  /// sim::Engine::resume_from). The scenario must be constructed with the
  /// identical config first, and any engine().register_checkpointable()
  /// calls must already have happened in the same order as at save time.
  void resume_from(const std::string& path) { engine_->resume_from(path); }

 protected:
  /// Build a fleet, register its ground truth and add it to the engine.
  /// Returns the device hashes of the fleet (membership sets for analyses
  /// that split fleets, e.g. SMIP native vs roaming).
  std::vector<signaling::DeviceHash> add_fleet(const devices::FleetSpec& spec,
                                               sim::AgentOptions options);

  obs::Observability obs_;
  std::unique_ptr<topology::World> world_;
  cellnet::TacPools tac_pools_;
  std::unique_ptr<devices::FleetBuilder> fleet_builder_;
  std::unique_ptr<sim::Engine> engine_;
  GroundTruthMap truth_;
  std::size_t devices_added_ = 0;
};

}  // namespace wtr::tracegen
