#pragma once

// Every population statistic the paper reports, as named constants. The
// scenario generators aim at these, and the figure harnesses print them
// next to the measured values ("paper vs measured"). Sections refer to
// Lutu et al., IMC 2020.

namespace wtr::tracegen::paper {

// ---- §3.1 M2M platform dataset scale.
inline constexpr int kPlatformDays = 11;
inline constexpr double kPlatformDevices = 120'000.0;
inline constexpr double kPlatformTransactions = 14'000'000.0;

// ---- §3.2 HMNO composition (shares of platform devices).
inline constexpr double kEsDeviceShare = 0.523;
inline constexpr double kMxDeviceShare = 0.422;
inline constexpr double kArDeviceShare = 0.047;
inline constexpr double kDeDeviceShare = 0.008;  // ≈1,000 of 120k devices
inline constexpr int kEsVisitedCountries = 77;
inline constexpr int kEsVisitedNetworks = 127;
inline constexpr int kMxVisitedCountries = 7;
inline constexpr int kMxVisitedNetworks = 10;
inline constexpr double kMxHomeDeviceShare = 0.90;
inline constexpr int kArVisitedNetworks = 6;
inline constexpr int kDeVisitedNetworks = 18;
inline constexpr double kEsSignalingShare = 0.818;          // of all records
inline constexpr double kEsRoamingSignalingShare = 0.92;    // of ES records
inline constexpr double kEsNonRoamingDeviceShare = 0.18;    // of ES devices
inline constexpr double kEsHeavyDeviceShare = 0.62;         // emit 75% of records
inline constexpr int kEsHeavyCountries = 5;
inline constexpr int kEsHeavyVmnos = 10;

// ---- §3.3 device-level dynamics.
inline constexpr double kFailedOnlyDeviceShare = 0.40;
inline constexpr double kAnySuccessDeviceShare = 0.60;
inline constexpr double kMeanRecordsPerDevice = 267.0;
inline constexpr double kShareDevicesBelow2000Records = 0.97;
inline constexpr double kMaxRecordsPerDevice = 130'000.0;
inline constexpr double kRoamingToNativeMedianRecordsRatio = 10.0;
inline constexpr double kSingleVmnoRoamerShare = 0.65;
inline constexpr double kTwoVmnoRoamerShare = 0.25;       // "more than 25%"
inline constexpr double kThreePlusVmnoRoamerShare = 0.05;
inline constexpr int kMaxVmnosFailedDevice = 19;
inline constexpr double kMultiVmnoDeviceShare = 0.35;
inline constexpr double kMultiVmnoAtMostTwoSwitchesShare = 0.50;
inline constexpr double kMultiVmnoDailySwitchShare = 0.20;
inline constexpr double kMultiVmnoStormShare = 0.03;      // 100–3000 switches

// ---- §4 MNO dataset scale.
inline constexpr int kMnoDays = 22;
inline constexpr double kMnoDevices = 39'600'000.0;

// ---- §4.2 roaming-label shares (per day).
inline constexpr double kLabelShareHH = 0.48;
inline constexpr double kLabelShareVH = 0.33;
inline constexpr double kLabelShareIH = 0.18;

// ---- §4.3 classification outcome.
inline constexpr double kSmartShare = 0.62;
inline constexpr double kFeatShare = 0.08;
inline constexpr double kM2MShare = 0.26;
inline constexpr double kM2MMaybeShare = 0.04;
inline constexpr int kDistinctVendors = 2'436;
inline constexpr int kDistinctModels = 24'991;
inline constexpr int kDistinctApns = 4'603;
inline constexpr int kM2MKeywords = 26;
inline constexpr int kValidatedM2MApns = 1'719;
inline constexpr int kConsumerApns = 2'178;
inline constexpr double kTopVendorsInboundShare = 0.75;   // Gemalto+Telit+Sierra
inline constexpr double kDevicesWithoutApnShare = 0.21;

// ---- §5.1 class ↔ label joint distribution (Fig. 6).
inline constexpr double kInboundM2MShare = 0.711;   // of I:H devices
inline constexpr double kInboundSmartShare = 0.271;
inline constexpr double kM2MInboundShare = 0.747;   // of m2m devices
inline constexpr double kSmartInboundShare = 0.121;
inline constexpr double kFeatInboundShare = 0.064;

// ---- §5.2 home countries of inbound roamers (Fig. 5).
inline constexpr double kTop20HomeCountryShare = 0.93;
inline constexpr double kTop3HomeCountryShare = 0.60;   // NL + SE + ES
inline constexpr double kM2MTop3HomeShare = 0.83;
inline constexpr double kSmartTop3HomeShare = 0.17;
inline constexpr double kFeatTop3HomeShare = 0.35;

// ---- §5.3 spatio-temporal dynamics (Figs. 7–8).
inline constexpr double kInboundM2MMedianActiveDays = 9.0;
inline constexpr double kInboundSmartMedianActiveDays = 2.0;
inline constexpr double kM2MGyrationAbove1kmShare = 0.20;

// ---- §6.1 RAT usage (Fig. 9).
inline constexpr double kM2M2gOnlyConnectivityShare = 0.774;
inline constexpr double kFeat2gOnlyConnectivityShare = 0.509;
inline constexpr double kM2M2gVoiceShare = 0.606;
inline constexpr double kM2MNoVoiceShare = 0.275;
inline constexpr double kM2M2gOnlyDataShare = 0.567;
inline constexpr double kM2MNoDataShare = 0.245;
inline constexpr double kFeatNoDataShare = 0.568;
inline constexpr double kFeatNoVoiceShare = 0.073;

// ---- §7 SMIP smart meters (Fig. 11).
inline constexpr int kSmipDays = 26;
inline constexpr double kSmipDevices = 3'200'000.0;
inline constexpr double kSmipNativeFullPeriodShare = 0.73;
inline constexpr double kSmipNativeDay0FullPeriodShare = 0.83;
inline constexpr double kSmipRoamingAtMost5DaysShare = 0.50;
inline constexpr double kSmipRoamingToNativeSignalingRatio = 10.0;
inline constexpr double kSmipFailedDeviceShareAll = 0.10;
inline constexpr double kSmipFailedDeviceShareRoaming = 0.35;
inline constexpr double kSmipNative3gOnlyShare = 2.0 / 3.0;

}  // namespace wtr::tracegen::paper
