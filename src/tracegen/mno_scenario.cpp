#include "tracegen/mno_scenario.hpp"

#include <array>

#include "stats/distributions.hpp"
#include <cassert>

#include "tracegen/calibration.hpp"

namespace wtr::tracegen {

namespace {

topology::WorldConfig world_config_for(const MnoScenarioConfig& config) {
  topology::WorldConfig wc;
  wc.seed = config.seed;
  wc.build_coverage = config.build_coverage;
  if (config.sunset_2g_in_uk) wc.two_g_sunset_isos.push_back("GB");
  if (config.nbiot_meter_share > 0.0) {
    wc.nbiot_isos = {"GB", "NL"};
    wc.nbiot_roaming_enabled = true;
  }
  return wc;
}

sim::Engine::Config engine_config_for(const MnoScenarioConfig& config) {
  sim::Engine::Config ec;
  ec.seed = stats::mix64(config.seed, 0x4d4e4f);
  ec.horizon_days = config.days;
  ec.threads = config.threads;
  ec.outcomes.transient_failure_rate = 0.001;
  ec.faults = config.faults;
  ec.checkpoint_every_sim_hours = config.ckpt.every_sim_hours;
  ec.checkpoint_path = config.ckpt.path;
  ec.stop_after_sim_hours = config.ckpt.stop_after_sim_hours;
  if (config.ckpt.snapshot_format != 0) {
    ec.snapshot_format = config.ckpt.snapshot_format;
  }
  ec.trace_path = config.telemetry.trace_path;
  ec.trace_capacity_per_track = config.telemetry.trace_capacity_per_track;
  ec.heartbeat_path = config.telemetry.heartbeat_path;
  ec.heartbeat_every_wall_s = config.telemetry.heartbeat_every_wall_s;
  return ec;
}

cellnet::RatMask two_g_only() { return cellnet::RatMask{0b001}; }

}  // namespace

MnoScenario::MnoScenario(const MnoScenarioConfig& config)
    : ScenarioBase(world_config_for(config), cellnet::TacPools::Config{config.seed ^ 0x6d6e},
                   engine_config_for(config), stats::mix64(config.seed, 0x6f6b),
                   config.obs),
      config_(config) {
  // The scenario models the population of THIS UK MNO. Inbound SIMs'
  // home operators steer their UK roamers to it (commercial preference);
  // without this the fleets would spread evenly across the three GB MNOs
  // and only a third of each target population would be observed.
  const auto observer = world_->well_known().uk_mno;
  for (const auto& op : world_->operators().all()) {
    if (op.country_iso != "GB") {
      world_->mutable_steering().set_preference(op.id, "GB", {{observer, 15.0}});
    }
  }
  build_smartphone_fleets();
  build_feature_phone_fleets();
  build_native_m2m_fleets();
  build_inbound_m2m_fleets();
  build_maybe_fleets();
}

cellnet::Plmn MnoScenario::observer_plmn() const {
  return world_->operators().get(world_->well_known().uk_mno).plmn;
}

std::vector<cellnet::Plmn> MnoScenario::mvno_plmns() const {
  std::vector<cellnet::Plmn> out;
  for (const auto id : world_->well_known().uk_mvnos) {
    out.push_back(world_->operators().get(id).plmn);
  }
  return out;
}

std::vector<cellnet::Plmn> MnoScenario::family_plmns() const {
  auto out = mvno_plmns();
  out.insert(out.begin(), observer_plmn());
  return out;
}

sim::AgentOptions MnoScenario::base_options() const {
  sim::AgentOptions base;
  base.backoff = config_.backoff;
  return base;
}

topology::OperatorId MnoScenario::foreign_mno(const std::string& iso) const {
  const auto mnos = world_->operators().mnos_in_country(iso);
  assert(!mnos.empty());
  return mnos.front();
}

void MnoScenario::build_smartphone_fleets() {
  const auto& wk = world_->well_known();
  sim::AgentOptions options = base_options();

  // --- Native smartphones (H:H).
  {
    devices::FleetSpec spec;
    spec.count = scaled(0.315);
    spec.home_operator = wk.uk_mno;
    spec.profile = devices::smartphone_profile();
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kConsumer;
    spec.horizon_days = config_.days;
    add_fleet(spec, options);
  }

  // --- MVNO smartphones (V:H), split across the three MVNOs.
  for (const auto mvno : wk.uk_mvnos) {
    devices::FleetSpec spec;
    spec.count = scaled(0.21 / 3.0);
    spec.home_operator = mvno;
    spec.profile = devices::smartphone_profile();
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kConsumer;
    spec.horizon_days = config_.days;
    add_fleet(spec, options);
  }

  // --- Inbound-roaming tourists (I:H): short stays, data restraint ("bill
  // shock", §6.2). Home countries follow a travel-volume mix; the NL/SE/ES
  // trio stays a modest share for smartphones (§5.2: 17%).
  struct TouristSource {
    const char* iso;
    double fraction;  // of total devices
  };
  static constexpr std::array<TouristSource, 20> kTourists{{
      {"IE", 0.0115}, {"FR", 0.0095}, {"DE", 0.0085}, {"US", 0.0070},
      {"ES", 0.0065}, {"IT", 0.0055}, {"NL", 0.0050}, {"PL", 0.0048},
      {"SE", 0.0038}, {"PT", 0.0035}, {"RO", 0.0030}, {"AU", 0.0025},
      {"IN", 0.0022}, {"CN", 0.0020}, {"JP", 0.0018}, {"CA", 0.0016},
      {"BE", 0.0014}, {"DK", 0.0012}, {"GR", 0.0011}, {"TR", 0.0021},
  }};
  for (const auto& source : kTourists) {
    devices::FleetSpec spec;
    spec.count = scaled(source.fraction);
    spec.home_operator = foreign_mno(source.iso);
    spec.profile = devices::smartphone_profile();
    spec.profile.p_full_period = 0.03;       // §5.3: median 2 active days
    spec.profile.active_span_days_mean = 1.0;
    spec.profile.bytes_per_day_mu = 16.0;    // restrained roaming data
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kConsumer;
    spec.horizon_days = config_.days;
    add_fleet(spec, options);
  }

  // --- Outbound roamers (H:A): the MNO's own customers abroad; only their
  // CDRs/xDRs reach the catalog.
  for (const auto* iso : {"ES", "FR", "US"}) {
    devices::FleetSpec spec;
    spec.count = scaled(0.004);
    spec.home_operator = wk.uk_mno;
    spec.profile = devices::smartphone_profile();
    spec.profile.p_full_period = 0.10;
    spec.profile.active_span_days_mean = 4.0;
    spec.profile.bytes_per_day_mu = 16.0;
    spec.deployment_iso = iso;
    spec.apn_policy = devices::ApnPolicy::kConsumer;
    spec.horizon_days = config_.days;
    add_fleet(spec, options);
  }
}

void MnoScenario::build_feature_phone_fleets() {
  const auto& wk = world_->well_known();
  sim::AgentOptions options = base_options();

  devices::FleetSpec native;
  native.count = scaled(0.050);
  native.home_operator = wk.uk_mno;
  native.profile = devices::feature_phone_profile();
  native.deployment_iso = "GB";
  native.apn_policy = devices::ApnPolicy::kConsumer;
  native.horizon_days = config_.days;
  add_fleet(native, options);

  devices::FleetSpec mvno = native;
  mvno.count = scaled(0.025);
  mvno.home_operator = wk.uk_mvnos.front();
  add_fleet(mvno, options);

  // Consumer data dongles / mobile hotspots: personal devices built on M2M
  // module hardware (Sierra Wireless made exactly these). They are the
  // confound §4.3 warns about — a vendor-list baseline calls them m2m; the
  // APN pipeline sees a consumer APN and no smartphone OS and calls them
  // feat (the closest personal-device bucket, which is also where the
  // GSMA-label path would put them).
  {
    devices::FleetSpec spec;
    spec.count = scaled(0.010);
    spec.home_operator = wk.uk_mno;
    spec.profile = devices::feature_phone_profile();
    spec.profile.equipment = cellnet::EquipmentCategory::kM2MModule;
    spec.profile.p_no_data = 0.0;        // dongles exist to move data
    spec.profile.bytes_per_day_mu = 17.0;
    spec.profile.bytes_per_day_sigma = 1.2;
    spec.profile.p_no_voice = 1.0;       // no voice at all
    spec.profile.sessions_per_day_mu = 2.2;
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kConsumer;
    spec.horizon_days = config_.days;
    spec.restrict_vendors = {"Sierra Wireless"};
    spec.force_bands = cellnet::RatMask{0b110};  // 3G/4G dongles
    add_fleet(spec, options);
  }

  // Inbound feature phones: a small population, skewed toward countries
  // where feature phones remain common (their NL/SE/ES share lands near the
  // paper's 35% because SE and NL contribute disproportionately).
  for (const auto& [iso, fraction] :
       std::initializer_list<std::pair<const char*, double>>{
           {"SE", 0.0010}, {"NL", 0.0006}, {"RO", 0.0009},
           {"PL", 0.0008}, {"IN", 0.0008}, {"EG", 0.0005},
           {"MA", 0.0004}}) {
    devices::FleetSpec spec = native;
    spec.count = scaled(fraction);
    spec.home_operator = foreign_mno(iso);
    spec.profile.p_full_period = 0.05;
    spec.profile.active_span_days_mean = 2.5;
    add_fleet(spec, options);
  }
}

void MnoScenario::build_native_m2m_fleets() {
  const auto& wk = world_->well_known();
  sim::AgentOptions options = base_options();

  // SMIP native meters: dedicated IMSI range (§4.4), long-lived, 2G+3G.
  {
    devices::FleetSpec spec;
    spec.count = scaled(0.030);
    spec.home_operator = wk.uk_mno;
    spec.profile = devices::m2m_profile(devices::Vertical::kSmartMeter);
    spec.profile.p_full_period = 0.80;
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kVerticalCompany;
    spec.horizon_days = config_.days;
    spec.imsi_range = cellnet::ImsiRange{observer_plmn(), 500'000'000ULL,
                                         500'000'000ULL + spec.count};
    spec.cap_bands = cellnet::RatMask{0b011};  // 2G+3G hardware
    spec.fault_domain = kFaultDomainNativeM2M;
    add_fleet(spec, options);
  }

  // Native security alarms: voice-only M2M (no data, no APN) on standard
  // module equipment — the classifier catches them via TAC propagation.
  {
    devices::FleetSpec spec;
    spec.count = scaled(0.020);
    spec.home_operator = wk.uk_mno;
    spec.profile = devices::m2m_profile(devices::Vertical::kSecurityAlarm);
    spec.profile.p_full_period = 0.80;
    spec.profile.p_no_data = 1.0;
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kNone;
    spec.horizon_days = config_.days;
    spec.cap_bands = two_g_only();
    add_fleet(spec, options);
  }

  // Native fleet telematics (UK logistics companies).
  {
    devices::FleetSpec spec;
    spec.count = scaled(0.016);
    spec.home_operator = wk.uk_mno;
    spec.profile = devices::m2m_profile(devices::Vertical::kFleetTelematics);
    spec.profile.p_full_period = 0.75;
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kVerticalCompany;
    spec.horizon_days = config_.days;
    add_fleet(spec, options);
  }
}

void MnoScenario::build_inbound_m2m_fleets() {
  const auto& wk = world_->well_known();
  sim::AgentOptions options = base_options();

  auto inbound_profile = [&](devices::Vertical vertical) {
    auto profile = devices::m2m_profile(vertical);
    profile.p_full_period = 0.36;            // §5.3: median ≈ 9 active days
    profile.active_span_days_mean = 11.0;
    return profile;
  };

  // --- NL: the SMIP-roaming smart meters (§4.4). Single home operator,
  // Gemalto/Telit modules only, 2G-only hardware, energy-company APNs.
  // Under the X3 what-if a slice of the fleet is provisioned on NB-IoT
  // modules instead (§8: dedicated LPWA platform).
  {
    const double nb_share = stats::clamped(config_.nbiot_meter_share, 0.0, 1.0);
    devices::FleetSpec spec;
    spec.count = scaled(0.076 * (1.0 - nb_share));
    spec.home_operator = wk.nl_iot_provisioner;
    spec.profile = inbound_profile(devices::Vertical::kSmartMeter);
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kVerticalCompany;
    spec.horizon_days = config_.days;
    spec.cap_bands = two_g_only();
    spec.restrict_vendors = {"Gemalto", "Telit"};
    spec.fault_domain = kFaultDomainInboundMeters;
    add_fleet(spec, options);

    if (nb_share > 0.0) {
      devices::FleetSpec nb_spec = spec;
      nb_spec.count = scaled(0.076 * nb_share);
      // NB-IoT modules: LPWA radio only; the module hardware pool still
      // provides the TACs (force the NB band on top).
      nb_spec.cap_bands = cellnet::RatMask{
          static_cast<std::uint8_t>(1U << static_cast<std::uint8_t>(cellnet::Rat::kNbIot))};
      nb_spec.force_bands = nb_spec.cap_bands;
      add_fleet(nb_spec, options);
    }
  }
  // NL voice-only alarms + wearables.
  {
    devices::FleetSpec spec;
    spec.count = scaled(0.012);
    spec.home_operator = wk.nl_iot_provisioner;
    spec.profile = inbound_profile(devices::Vertical::kSecurityAlarm);
    spec.profile.p_no_data = 1.0;
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kNone;
    spec.horizon_days = config_.days;
    spec.cap_bands = two_g_only();
    add_fleet(spec, options);
  }

  // --- SE: telematics / trackers / alarms.
  struct InboundFleet {
    const char* iso;
    double fraction;
    devices::Vertical vertical;
    bool no_data;
    bool cap_2g;
  };
  static constexpr std::array<InboundFleet, 25> kFleets{{
      {"SE", 0.012, devices::Vertical::kFleetTelematics, false, false},
      {"SE", 0.010, devices::Vertical::kLogisticsTracker, false, false},
      {"SE", 0.012, devices::Vertical::kPosTerminal, false, true},
      {"SE", 0.008, devices::Vertical::kSecurityAlarm, true, true},
      {"ES", 0.010, devices::Vertical::kConnectedCar, false, false},
      {"ES", 0.012, devices::Vertical::kPosTerminal, false, true},
      {"ES", 0.006, devices::Vertical::kEbookReader, false, true},
      {"ES", 0.006, devices::Vertical::kVendingMachine, false, true},
      {"ES", 0.008, devices::Vertical::kSecurityAlarm, true, true},
      {"DE", 0.006, devices::Vertical::kConnectedCar, false, false},
      {"FR", 0.005, devices::Vertical::kLogisticsTracker, false, true},
      {"FR", 0.003, devices::Vertical::kVendingMachine, false, true},
      {"IT", 0.006, devices::Vertical::kVendingMachine, false, true},
      {"US", 0.005, devices::Vertical::kPosTerminal, false, true},
      {"PL", 0.004, devices::Vertical::kLogisticsTracker, false, true},
      {"PT", 0.003, devices::Vertical::kVendingMachine, false, true},
      {"IE", 0.003, devices::Vertical::kSmartMeter, false, true},
      {"BE", 0.003, devices::Vertical::kWearable, false, false},
      {"AT", 0.002, devices::Vertical::kPosTerminal, false, true},
      {"DK", 0.002, devices::Vertical::kLogisticsTracker, false, true},
      {"NO", 0.002, devices::Vertical::kWearable, false, false},
      {"FI", 0.002, devices::Vertical::kVendingMachine, false, true},
      {"CZ", 0.002, devices::Vertical::kPosTerminal, false, true},
      {"CN", 0.001, devices::Vertical::kLogisticsTracker, false, true},
      {"JP", 0.001, devices::Vertical::kWearable, false, false},
  }};
  for (const auto& fleet : kFleets) {
    devices::FleetSpec spec;
    spec.count = scaled(fleet.fraction);
    spec.home_operator = fleet.iso == std::string_view{"ES"}
                             ? wk.es_hmno  // ES devices ride the M2M platform
                             : foreign_mno(fleet.iso);
    spec.profile = inbound_profile(fleet.vertical);
    if (fleet.no_data) spec.profile.p_no_data = 1.0;
    spec.deployment_iso = "GB";
    spec.apn_policy = fleet.no_data ? devices::ApnPolicy::kNone
                      : fleet.iso == std::string_view{"ES"}
                          ? devices::ApnPolicy::kM2MPlatform
                          : devices::ApnPolicy::kVerticalCompany;
    spec.horizon_days = config_.days;
    if (fleet.cap_2g) spec.cap_bands = two_g_only();
    sim::AgentOptions fleet_options = options;
    if (fleet.vertical == devices::Vertical::kConnectedCar) {
      fleet_options.corridor = {"GB", "FR", "BE"};
      spec.profile.p_cross_country_trip = 0.02;  // mostly stays in the UK
    }
    add_fleet(spec, fleet_options);
  }
}

void MnoScenario::build_maybe_fleets() {
  const auto& wk = world_->well_known();
  sim::AgentOptions options = base_options();

  // Long-tail OEM equipment, voice-only, no APN, and no TAC overlap with
  // any validated fleet: the classifier can only say m2m-maybe (§4.3's 4%).
  auto make = [&](topology::OperatorId home, double fraction, double p_full) {
    devices::FleetSpec spec;
    spec.count = scaled(fraction);
    spec.home_operator = home;
    spec.profile = devices::m2m_profile(devices::Vertical::kSecurityAlarm);
    spec.profile.p_full_period = p_full;
    spec.profile.p_no_data = 1.0;
    spec.deployment_iso = "GB";
    spec.apn_policy = devices::ApnPolicy::kNone;
    spec.horizon_days = config_.days;
    spec.use_filler_equipment = true;
    spec.cap_bands = two_g_only();
    add_fleet(spec, options);
  };
  make(wk.uk_mno, 0.020, 0.8);                 // native voice-only boxes
  make(wk.nl_iot_provisioner, 0.012, 0.3);     // inbound, global IoT SIMs
  make(foreign_mno("SE"), 0.008, 0.3);
}

}  // namespace wtr::tracegen
