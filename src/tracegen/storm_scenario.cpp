#include "tracegen/storm_scenario.hpp"

#include "stats/distributions.hpp"

namespace wtr::tracegen {

namespace {

topology::WorldConfig world_config_for(const StormScenarioConfig& config) {
  topology::WorldConfig wc;
  wc.seed = config.seed;
  wc.build_coverage = config.build_coverage;
  return wc;
}

sim::Engine::Config engine_config_for(const StormScenarioConfig& config) {
  sim::Engine::Config ec;
  ec.seed = stats::mix64(config.seed, 0x53544f524d);  // "STORM"
  ec.horizon_days = config.days;
  ec.threads = config.threads;
  ec.outcomes.transient_failure_rate = 0.001;
  ec.faults = config.faults;
  ec.congestion = config.congestion;
  ec.checkpoint_every_sim_hours = config.ckpt.every_sim_hours;
  ec.checkpoint_path = config.ckpt.path;
  ec.stop_after_sim_hours = config.ckpt.stop_after_sim_hours;
  if (config.ckpt.snapshot_format != 0) {
    ec.snapshot_format = config.ckpt.snapshot_format;
  }
  ec.trace_path = config.telemetry.trace_path;
  ec.trace_capacity_per_track = config.telemetry.trace_capacity_per_track;
  ec.heartbeat_path = config.telemetry.heartbeat_path;
  ec.heartbeat_every_wall_s = config.telemetry.heartbeat_every_wall_s;
  return ec;
}

}  // namespace

StormScenario::StormScenario(const StormScenarioConfig& config)
    : ScenarioBase(world_config_for(config), cellnet::TacPools::Config{config.seed ^ 0x5354},
                   engine_config_for(config), stats::mix64(config.seed, 0x68657264),
                   config.obs),
      config_(config) {
  build_meter_herd();
  build_fota_trackers();
}

topology::OperatorId StormScenario::observer_radio() const {
  return world_->operators().radio_network_of(world_->well_known().uk_mno);
}

void StormScenario::build_meter_herd() {
  const auto& wk = world_->well_known();

  devices::FleetSpec spec;
  spec.count = config_.meters;
  spec.home_operator = wk.uk_mno;
  spec.profile = devices::m2m_profile(devices::Vertical::kSmartMeter);
  spec.profile.p_full_period = 1.0;  // the whole herd is live for the storm
  // Reattach-per-report firmware: every check-in beat is a fresh attach, so
  // the herd's load lands squarely on the attach-family procedures the
  // congestion model meters.
  spec.profile.p_detach_after_session = 1.0;
  spec.deployment_iso = "GB";
  spec.apn_policy = devices::ApnPolicy::kVerticalCompany;
  spec.horizon_days = config_.days;
  spec.cap_bands = cellnet::RatMask{0b011};  // 2G+3G meter hardware
  spec.fault_domain = kFaultDomainStormMeters;

  sim::AgentOptions options;
  options.backoff = config_.backoff;
  options.honor_congestion_control = config_.honor_congestion_control;
  options.eab_member = config_.eab_meters;
  options.checkin.enabled = true;
  options.checkin.period_s = config_.checkin_period_s;
  options.checkin.offset_s = 0.0;
  options.checkin.jitter_s = config_.checkin_jitter_s;
  add_fleet(spec, options);
}

void StormScenario::build_fota_trackers() {
  const auto& wk = world_->well_known();

  devices::FleetSpec spec;
  spec.count = config_.trackers;
  spec.home_operator = wk.uk_mno;
  spec.profile = devices::m2m_profile(devices::Vertical::kLogisticsTracker);
  spec.profile.p_full_period = 1.0;
  // Trackers also drop the bearer between reports, so each FOTA retry costs
  // a re-attach — failed waves become attach storms, not just data volume.
  spec.profile.p_detach_after_session = 1.0;
  spec.deployment_iso = "GB";
  spec.apn_policy = devices::ApnPolicy::kVerticalCompany;
  spec.horizon_days = config_.days;
  spec.fault_domain = kFaultDomainStormTrackers;

  sim::AgentOptions options;
  options.backoff = config_.backoff;
  options.honor_congestion_control = config_.honor_congestion_control;
  // Trackers are latency-sensitive (not delay-tolerant): no EAB membership.
  options.fota.enabled = true;
  options.fota.start_s = config_.fota_start_s;
  options.fota.waves = 4;
  options.fota.wave_interval_s = 1800;
  options.fota.failure_p = config_.fota_failure_p;
  options.fota.retry_s = 600;
  options.fota.retry_jitter_s = 120.0;
  options.fota.max_attempts = 6;
  add_fleet(spec, options);
}

}  // namespace wtr::tracegen
