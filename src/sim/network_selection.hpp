#pragma once

// Network and RAT selection for a device at its current position. Native
// devices camp on their home radio network; roaming devices follow the home
// operator's steering policy. The RAT is the best technology supported by
// hardware, the visited network's deployment, and (for roamers) the
// effective agreement — with graceful fallback down to 2G, which is how the
// simulator reproduces M2M's 2G dependence (Fig. 9).

#include <optional>
#include <vector>

#include "devices/device.hpp"
#include "stats/rng.hpp"
#include "topology/world.hpp"

namespace wtr::sim {

struct NetworkChoice {
  topology::OperatorId visited = topology::kInvalidOperator;
  cellnet::Rat rat = cellnet::Rat::kTwoG;
  bool is_home_network = false;  // camping on the home (or host) network
};

class NetworkSelector {
 public:
  explicit NetworkSelector(const topology::World& world) : world_(&world) {}

  /// Choose a network for the device in its current country. `exclude`
  /// removes a network from consideration (used to force a reselection away
  /// from a failing one). Returns nullopt when nothing is reachable — the
  /// device stays silent (which the trace never sees) or keeps failing on
  /// its only candidate.
  [[nodiscard]] std::optional<NetworkChoice> choose(const devices::Device& device,
                                                    std::optional<topology::OperatorId> exclude,
                                                    stats::Rng& rng) const;

  /// Best RAT on a specific visited network for this device (hardware ∩
  /// deployment ∩ agreement), preferring 4G > 3G > 2G. nullopt when the
  /// intersection is empty.
  [[nodiscard]] std::optional<cellnet::Rat> best_rat(const devices::Device& device,
                                                     topology::OperatorId visited) const;

  /// Next RAT to try after `failed` on the same network (4G→3G→2G chain,
  /// restricted to the feasible set). nullopt when the chain is exhausted.
  [[nodiscard]] std::optional<cellnet::Rat> fallback_rat(const devices::Device& device,
                                                         topology::OperatorId visited,
                                                         cellnet::Rat failed) const;

  /// Attempt-ordered candidates the device would actually try: the home
  /// radio network first when in the home country, then steering-preferred
  /// roaming partners, then the remaining local MNOs the SIM has no
  /// arrangement with — a device cannot know that in advance; the visited
  /// network answers RoamingNotAllowed, which is how those records enter
  /// the traces (§3.3). RATs here are radio-feasible (hardware ∩
  /// deployment), NOT agreement-filtered.
  [[nodiscard]] std::vector<NetworkChoice> scan(const devices::Device& device,
                                                std::optional<topology::OperatorId> exclude,
                                                stats::Rng& rng) const;

  /// Radio-feasible best RAT (hardware ∩ deployment, no agreement filter).
  [[nodiscard]] std::optional<cellnet::Rat> radio_rat(const devices::Device& device,
                                                      topology::OperatorId visited) const;

  /// Radio-feasible fallback after `failed` (hardware ∩ deployment only).
  [[nodiscard]] std::optional<cellnet::Rat> radio_fallback_rat(const devices::Device& device,
                                                               topology::OperatorId visited,
                                                               cellnet::Rat failed) const;

 private:
  [[nodiscard]] cellnet::RatMask feasible_rats(const devices::Device& device,
                                               topology::OperatorId visited) const;

  const topology::World* world_;
};

}  // namespace wtr::sim
