#include "sim/mobility.hpp"

#include <cmath>

#include "stats/distributions.hpp"
#include "stats/sim_time.hpp"

namespace wtr::sim {

namespace {

// Scatter a fresh waypoint uniformly in a disc of `radius` around (cx, cy).
void random_waypoint(devices::Device& device, double cx, double cy, double radius,
                     stats::Rng& rng) {
  const double angle = rng.uniform(0.0, 6.283185307179586);
  const double r = radius * std::sqrt(rng.uniform());
  device.east_m = cx + r * std::cos(angle);
  device.north_m = cy + r * std::sin(angle);
}

}  // namespace

void advance_position(devices::Device& device, double dt_s, const TravelCorridor& corridor,
                      stats::Rng& rng) {
  if (dt_s <= 0.0) return;
  const auto& profile = device.profile;
  const double dt_days = dt_s / static_cast<double>(stats::kSecondsPerDay);

  switch (profile.mobility) {
    case devices::MobilityKind::kStationary: {
      // Fixed installation: the serving cell occasionally flips to a
      // neighbour (reselection), which shows up as sub-kilometer gyration
      // even for devices that never move (§5.3 notes this explicitly).
      device.east_m = device.home_east_m +
                      profile.stationary_jitter_m * stats::sample_standard_normal(rng);
      device.north_m = device.home_north_m +
                       profile.stationary_jitter_m * stats::sample_standard_normal(rng);
      break;
    }
    case devices::MobilityKind::kLocalCommuter: {
      // Random waypoint inside the commute disc; longer gaps make a new
      // waypoint more likely (a person has moved on).
      const double p_move = 1.0 - std::exp(-dt_s / (4.0 * 3600.0));
      if (rng.bernoulli(p_move)) {
        random_waypoint(device, device.home_east_m, device.home_north_m,
                        profile.commute_radius_m, rng);
      }
      break;
    }
    case devices::MobilityKind::kLongHaul: {
      // Cross-country trips first: per-day hazard from the profile,
      // restricted to the corridor. A trip re-anchors the device near the
      // destination country's anchor.
      const double p_trip = 1.0 - std::exp(-profile.p_cross_country_trip * dt_days);
      if (!corridor.empty() && rng.bernoulli(p_trip)) {
        const auto& destination = corridor[rng.below(corridor.size())];
        if (destination != device.current_country) {
          device.current_country = destination;
          random_waypoint(device, 0.0, 0.0, profile.commute_radius_m, rng);
          break;
        }
      }
      // Otherwise: drift within the wide long-haul disc.
      const double p_move = 1.0 - std::exp(-dt_s / (2.0 * 3600.0));
      if (rng.bernoulli(p_move)) {
        const double cx = device.current_country == device.home_country
                              ? device.home_east_m
                              : 0.0;
        const double cy = device.current_country == device.home_country
                              ? device.home_north_m
                              : 0.0;
        random_waypoint(device, cx, cy, profile.commute_radius_m, rng);
      }
      break;
    }
  }
}

}  // namespace wtr::sim
