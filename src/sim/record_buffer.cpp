#include "sim/record_buffer.hpp"

#include <cassert>

namespace wtr::sim {

void RecordBuffer::end_wake(AgentIndex agent, stats::SimTime next_wake) {
  wakes_.push_back(WakeEntry{tape_.size(), next_wake, agent});
}

stats::SimTime RecordBuffer::replay_wake(Cursor& cursor, RecordSink& out) const {
  assert(cursor.wake < wakes_.size());
  const WakeEntry& wake = wakes_[cursor.wake];
  while (cursor.tape < wake.tape_end) {
    switch (tape_[cursor.tape]) {
      case Kind::kSignaling: {
        const auto& item = signaling_[cursor.signaling++];
        out.on_signaling(item.txn, item.data_context);
        break;
      }
      case Kind::kCdr:
        out.on_cdr(cdrs_[cursor.cdr++]);
        break;
      case Kind::kXdr:
        out.on_xdr(xdrs_[cursor.xdr++]);
        break;
      case Kind::kDwell: {
        const auto& item = dwells_[cursor.dwell++];
        out.on_dwell(item.device, item.day, item.visited_plmn, item.location,
                     item.seconds);
        break;
      }
    }
    ++cursor.tape;
  }
  ++cursor.wake;
  return wake.next_wake;
}

}  // namespace wtr::sim
