#include "sim/network_selection.hpp"

#include <algorithm>

namespace wtr::sim {

cellnet::RatMask NetworkSelector::feasible_rats(const devices::Device& device,
                                                topology::OperatorId visited) const {
  const auto& operators = world_->operators();
  cellnet::RatMask mask = device.capability;
  mask = mask.intersect(operators.get(visited).deployed_rats);
  const bool at_home = operators.radio_network_of(device.home_operator) ==
                       operators.radio_network_of(visited);
  if (!at_home) {
    const auto roaming = world_->resolve_roaming(device.home_operator, visited);
    if (roaming.path == topology::RoamingPath::kNone) return cellnet::RatMask{};
    mask = mask.intersect(roaming.terms.allowed_rats);
  }
  return mask;
}

std::optional<cellnet::Rat> NetworkSelector::best_rat(const devices::Device& device,
                                                      topology::OperatorId visited) const {
  const auto mask = feasible_rats(device, visited);
  if (mask.has(cellnet::Rat::kFourG)) return cellnet::Rat::kFourG;
  if (mask.has(cellnet::Rat::kThreeG)) return cellnet::Rat::kThreeG;
  if (mask.has(cellnet::Rat::kTwoG)) return cellnet::Rat::kTwoG;
  if (mask.has(cellnet::Rat::kNbIot)) return cellnet::Rat::kNbIot;
  return std::nullopt;
}

std::optional<cellnet::Rat> NetworkSelector::fallback_rat(const devices::Device& device,
                                                          topology::OperatorId visited,
                                                          cellnet::Rat failed) const {
  const auto mask = feasible_rats(device, visited);
  // Walk down the chain strictly below the failed technology.
  if (failed == cellnet::Rat::kFourG && mask.has(cellnet::Rat::kThreeG)) {
    return cellnet::Rat::kThreeG;
  }
  if ((failed == cellnet::Rat::kFourG || failed == cellnet::Rat::kThreeG) &&
      mask.has(cellnet::Rat::kTwoG)) {
    return cellnet::Rat::kTwoG;
  }
  return std::nullopt;
}

namespace {
std::optional<cellnet::Rat> best_of(cellnet::RatMask mask) {
  if (mask.has(cellnet::Rat::kFourG)) return cellnet::Rat::kFourG;
  if (mask.has(cellnet::Rat::kThreeG)) return cellnet::Rat::kThreeG;
  if (mask.has(cellnet::Rat::kTwoG)) return cellnet::Rat::kTwoG;
  // An LPWA-only device camps on NB-IoT; conventional hardware never
  // prefers it over a mobile-broadband technology.
  if (mask.has(cellnet::Rat::kNbIot)) return cellnet::Rat::kNbIot;
  return std::nullopt;
}
}  // namespace

std::optional<cellnet::Rat> NetworkSelector::radio_rat(const devices::Device& device,
                                                       topology::OperatorId visited) const {
  return best_of(
      device.capability.intersect(world_->operators().get(visited).deployed_rats));
}

std::optional<cellnet::Rat> NetworkSelector::radio_fallback_rat(
    const devices::Device& device, topology::OperatorId visited,
    cellnet::Rat failed) const {
  const auto mask =
      device.capability.intersect(world_->operators().get(visited).deployed_rats);
  if (failed == cellnet::Rat::kFourG && mask.has(cellnet::Rat::kThreeG)) {
    return cellnet::Rat::kThreeG;
  }
  if ((failed == cellnet::Rat::kFourG || failed == cellnet::Rat::kThreeG) &&
      mask.has(cellnet::Rat::kTwoG)) {
    return cellnet::Rat::kTwoG;
  }
  return std::nullopt;
}

std::vector<NetworkChoice> NetworkSelector::scan(const devices::Device& device,
                                                 std::optional<topology::OperatorId> exclude,
                                                 stats::Rng& rng) const {
  const auto& operators = world_->operators();
  const auto& home_op = operators.get(device.home_operator);
  std::vector<NetworkChoice> out;
  std::vector<bool> listed(operators.size(), false);

  auto push = [&](topology::OperatorId visited, bool is_home) {
    if (listed[visited]) return;
    if (exclude && *exclude == visited) return;
    const auto rat = radio_rat(device, visited);
    if (!rat) return;  // no radio overlap at all: the device cannot even try
    listed[visited] = true;
    out.push_back(NetworkChoice{visited, *rat, is_home});
  };

  // Home radio network first when in the home country.
  if (device.current_country == home_op.country_iso) {
    push(operators.radio_network_of(device.home_operator), true);
  }

  // Steering-preferred partners: weighted sampling without replacement so
  // the preferred network usually (not always) leads.
  auto candidates = world_->steering().candidates(
      operators, world_->bilateral(), world_->hubs(), device.home_operator,
      device.current_country);
  while (!candidates.empty()) {
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (const auto& candidate : candidates) weights.push_back(candidate.weight);
    const std::size_t i = rng.weighted_index(weights);
    push(candidates[i].visited, false);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(i));
  }

  // Remaining local MNOs (no commercial path — attempts will be rejected).
  auto rest = operators.mnos_in_country(device.current_country);
  rng.shuffle(rest);
  for (topology::OperatorId visited : rest) push(visited, false);

  return out;
}

std::optional<NetworkChoice> NetworkSelector::choose(
    const devices::Device& device, std::optional<topology::OperatorId> exclude,
    stats::Rng& rng) const {
  const auto& operators = world_->operators();
  const auto& home_op = operators.get(device.home_operator);

  // Native case: at home, camp on the home radio network.
  if (device.current_country == home_op.country_iso) {
    const topology::OperatorId radio = operators.radio_network_of(device.home_operator);
    if (!exclude || *exclude != radio) {
      if (const auto rat = best_rat(device, radio)) {
        return NetworkChoice{radio, *rat, true};
      }
    }
    // Home network unusable (e.g. hardware/RAT mismatch): fall through to
    // national roaming candidates below.
  }

  // Roaming (international, or national fallback): steering-weighted pick
  // among reachable networks in the current country.
  auto candidates = world_->steering().candidates(
      operators, world_->bilateral(), world_->hubs(), device.home_operator,
      device.current_country);
  if (exclude) {
    std::erase_if(candidates, [&](const topology::VisitedCandidate& c) {
      return c.visited == *exclude;
    });
  }
  // Drop candidates with no usable RAT for this hardware.
  std::erase_if(candidates, [&](const topology::VisitedCandidate& c) {
    return !best_rat(device, c.visited).has_value();
  });
  if (candidates.empty()) return std::nullopt;

  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (const auto& candidate : candidates) weights.push_back(candidate.weight);
  const auto& picked = candidates[rng.weighted_index(weights)];
  return NetworkChoice{picked.visited, *best_rat(device, picked.visited), false};
}

}  // namespace wtr::sim
