#pragma once

// Per-shard record arena for the sharded engine. A shard's event loop
// streams every emitted record into one of these instead of the real sinks;
// the deterministic merge then replays each buffered wake into the sinks in
// the exact single-threaded global order.
//
// Layout: a type tape plus one dense vector per record family (cheaper than
// a variant arena — the tape is one byte per record and each family stays
// contiguous). Wake boundaries are closed by end_wake(), which also stores
// the agent's next scheduled wake time — the merge uses it to rebuild the
// global schedule without touching the agents again.
//
// Replay is strictly sequential per shard: within one shard, the relative
// order of two same-time wakes is the same under the shard-local and the
// global (time, seq) orders (their tie-breaking parents live in the same
// shard, by induction down to the agent-index-ordered initial schedule), so
// a single monotone cursor per shard suffices.

#include <cstdint>
#include <vector>

#include "sim/device_agent.hpp"
#include "sim/event_queue.hpp"

namespace wtr::sim {

class RecordBuffer final : public RecordSink {
 public:
  /// Sentinel "agent finished" next-wake value stored by end_wake().
  static constexpr stats::SimTime kNoNextWake = -1;

  struct BufferedSignaling {
    signaling::SignalingTransaction txn;
    bool data_context = false;
  };
  struct BufferedDwell {
    signaling::DeviceHash device = 0;
    std::int32_t day = 0;
    cellnet::Plmn visited_plmn{};
    cellnet::GeoPoint location{};
    double seconds = 0.0;
  };

  /// Monotone replay position; value-initialized state replays from the
  /// first buffered wake.
  struct Cursor {
    std::size_t wake = 0;
    std::size_t tape = 0;
    std::size_t signaling = 0;
    std::size_t cdr = 0;
    std::size_t xdr = 0;
    std::size_t dwell = 0;
  };

  // --- recording side (shard thread) ---------------------------------------
  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    tape_.push_back(Kind::kSignaling);
    signaling_.push_back(BufferedSignaling{txn, data_context});
  }
  void on_cdr(const records::Cdr& cdr) override {
    tape_.push_back(Kind::kCdr);
    cdrs_.push_back(cdr);
  }
  void on_xdr(const records::Xdr& xdr) override {
    tape_.push_back(Kind::kXdr);
    xdrs_.push_back(xdr);
  }
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override {
    tape_.push_back(Kind::kDwell);
    dwells_.push_back(BufferedDwell{device, day, visited_plmn, location, seconds});
  }

  /// Close the records of one processed wake: everything emitted since the
  /// previous end_wake() belongs to `agent`, whose next scheduled wake is
  /// `next_wake` (kNoNextWake when the agent is done).
  void end_wake(AgentIndex agent, stats::SimTime next_wake);

  /// Drop all buffered records and wake boundaries (capacity retained).
  /// The checkpointing engine calls this after replaying each window so
  /// arena memory stays bounded by one window instead of the whole run.
  void clear() noexcept {
    tape_.clear();
    signaling_.clear();
    cdrs_.clear();
    xdrs_.clear();
    dwells_.clear();
    wakes_.clear();
  }

  // --- replay side (merge thread) ------------------------------------------
  [[nodiscard]] std::size_t wake_count() const noexcept { return wakes_.size(); }
  [[nodiscard]] std::size_t record_count() const noexcept { return tape_.size(); }

  /// Approximate bytes of arena storage held (capacities, so it reflects
  /// the high-water mark across windows — clear() retains capacity).
  /// Telemetry only.
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return tape_.capacity() * sizeof(Kind) +
           signaling_.capacity() * sizeof(BufferedSignaling) +
           cdrs_.capacity() * sizeof(records::Cdr) +
           xdrs_.capacity() * sizeof(records::Xdr) +
           dwells_.capacity() * sizeof(BufferedDwell) +
           wakes_.capacity() * sizeof(WakeEntry);
  }

  /// Agent owning the wake at the cursor (requires an unconsumed wake).
  [[nodiscard]] AgentIndex peek_agent(const Cursor& cursor) const {
    return wakes_[cursor.wake].agent;
  }

  /// Replay the records of the wake at the cursor into `out`, advance the
  /// cursor, and return the agent's next scheduled wake time (kNoNextWake
  /// when it has none).
  stats::SimTime replay_wake(Cursor& cursor, RecordSink& out) const;

 private:
  enum class Kind : std::uint8_t { kSignaling, kCdr, kXdr, kDwell };

  struct WakeEntry {
    std::size_t tape_end = 0;  // tape_ index one past this wake's records
    stats::SimTime next_wake = kNoNextWake;
    AgentIndex agent = 0;
  };

  std::vector<Kind> tape_;
  std::vector<BufferedSignaling> signaling_;
  std::vector<records::Cdr> cdrs_;
  std::vector<records::Xdr> xdrs_;
  std::vector<BufferedDwell> dwells_;
  std::vector<WakeEntry> wakes_;
};

}  // namespace wtr::sim
