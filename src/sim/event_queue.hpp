#pragma once

// Discrete-event scheduler core: a min-heap of (time, sequence) keyed
// events. Sequence numbers break ties deterministically so that identical
// seeds replay identically regardless of heap implementation details.

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "stats/sim_time.hpp"

namespace wtr::sim {

using AgentIndex = std::uint32_t;

struct Event {
  stats::SimTime time = 0;
  std::uint64_t seq = 0;  // global monotonic tie-breaker
  AgentIndex agent = 0;
};

class EventQueue {
 public:
  void schedule(stats::SimTime time, AgentIndex agent);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::optional<stats::SimTime> next_time() const;

  /// Pop the earliest event; requires non-empty.
  Event pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wtr::sim
