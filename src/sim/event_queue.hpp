#pragma once

// Discrete-event scheduler core: a hierarchical timing wheel (calendar
// queue) keyed by (time, sequence). Sequence numbers are assigned
// monotonically at schedule() time and break ties deterministically, so the
// pop order is a total order fixed entirely by the schedule() call sequence
// — identical to what the previous binary-heap implementation produced,
// which is what keeps threads=N merges and checkpoint replays byte-exact
// across the swap.
//
// Layout (three tiers, near to far):
//  * run_     — the currently consumed bucket, sorted by (time, seq), read
//               through run_head_. Always holds the global minimum.
//  * pending_ — events scheduled at or before the open bucket's end while
//               it is being consumed (an agent rescheduling within the same
//               bucket, or a deliberately past-dated event). Folded into
//               the sorted run before the next front read.
//  * buckets_ — kNumBuckets buckets of kBucketWidth sim-seconds covering
//               [window_start_, window_start_ + span). Events are appended
//               unsorted in O(1) and each bucket is sorted once, when it
//               becomes the run.
//  * far_     — everything at or beyond the window end, unsorted. When the
//               near window drains, the window rebases onto the earliest
//               far event and far_ is re-partitioned (each event migrates
//               at most once per rebase; rebases are O(horizon / span)).
//
// Why not a heap: at fleet scale every agent holds exactly one pending
// event, so the heap is as deep as the fleet and every push/pop pays
// O(log n) pointer-chasing comparisons. The wheel appends in O(1), sorts
// one cache-resident bucket at a time, and parks dormant/far-future agents
// in a flat array that costs nothing until the window reaches them.

#include <cstdint>
#include <optional>
#include <vector>

#include "stats/sim_time.hpp"

namespace wtr::sim {

using AgentIndex = std::uint32_t;

struct Event {
  stats::SimTime time = 0;
  std::uint64_t seq = 0;  // monotonic tie-breaker within one queue
  AgentIndex agent = 0;
};

class EventQueue {
 public:
  /// Bucket geometry. 1024 × 64 s covers ~18.2 sim-hours of near-term
  /// schedule; a 22-day horizon crosses it in ~29 rebases.
  static constexpr stats::SimTime kBucketWidth = 64;
  static constexpr std::size_t kNumBuckets = 1024;
  static constexpr stats::SimTime kSpan =
      kBucketWidth * static_cast<stats::SimTime>(kNumBuckets);

  EventQueue() : buckets_(kNumBuckets) {}

  /// Capacity hint retained for API compatibility. The wheel allocates per
  /// bucket on demand, so the initial scheduling burst no longer needs (or
  /// benefits from) a single up-front reservation; only the far tier —
  /// where a fleet-wide burst mostly lands — takes the hint.
  void reserve(std::size_t capacity);

  void schedule(stats::SimTime time, AgentIndex agent);

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::optional<stats::SimTime> next_time() const;

  /// Pop the earliest event; requires non-empty.
  Event pop();

  /// Checkpoint support: the pending events in exact pop order — (time,
  /// seq) ascending. Rescheduling them in this order into a fresh queue
  /// assigns seqs 0..n-1 and preserves every relative ordering against
  /// events scheduled later, which is what makes resume replay-exact.
  [[nodiscard]] std::vector<Event> snapshot_events() const;

  // --- telemetry (never consulted by the simulation itself) ----------------
  /// Events currently parked in the far tier (beyond the near window).
  [[nodiscard]] std::size_t far_size() const noexcept { return far_.size(); }
  /// Window rebases performed so far (far-tier re-partitions).
  [[nodiscard]] std::uint64_t rebases() const noexcept { return rebases_; }

 private:
  static bool earlier(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Make run_[run_head_] the global minimum (folds pending, opens the next
  /// non-empty bucket, rebases the window). Requires size_ > 0.
  void ensure_front();
  void fold_pending();
  void rebase();

  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> run_;      // sorted; the open bucket (+ folded pending)
  std::size_t run_head_ = 0;
  std::vector<Event> pending_;  // scheduled below open_end_ since last fold
  std::vector<Event> far_;      // unsorted, >= window_start_ + kSpan
  stats::SimTime far_min_ = 0;  // min time in far_ (valid iff non-empty)
  stats::SimTime window_start_ = 0;
  /// End of the open bucket: schedule() routes t < open_end_ to pending_.
  /// Equal to window_start_ while no bucket is open (fresh queue / just
  /// rebased), so nothing routes to pending_ until consumption starts.
  stats::SimTime open_end_ = 0;
  std::size_t next_bucket_ = 0;  // next buckets_ index ensure_front() opens
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t rebases_ = 0;
};

}  // namespace wtr::sim
