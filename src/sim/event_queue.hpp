#pragma once

// Discrete-event scheduler core: a min-heap of (time, sequence) keyed
// events. Sequence numbers break ties deterministically so that identical
// seeds replay identically regardless of heap implementation details. The
// heap is an explicit vector (not std::priority_queue) so callers can
// reserve() capacity up front — the initial scheduling burst puts one event
// per agent into the heap, and regrowing through that burst is measurable
// churn at fleet scale.

#include <cstdint>
#include <optional>
#include <vector>

#include "stats/sim_time.hpp"

namespace wtr::sim {

using AgentIndex = std::uint32_t;

struct Event {
  stats::SimTime time = 0;
  std::uint64_t seq = 0;  // monotonic tie-breaker within one queue
  AgentIndex agent = 0;
};

class EventQueue {
 public:
  /// Pre-size the heap storage (e.g. from Engine::agent_count() before the
  /// initial scheduling burst). Never shrinks.
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }

  void schedule(stats::SimTime time, AgentIndex agent);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::optional<stats::SimTime> next_time() const;

  /// Pop the earliest event; requires non-empty.
  Event pop();

  /// Checkpoint support: the pending events in exact pop order — (time,
  /// seq) ascending. Rescheduling them in this order into a fresh queue
  /// assigns seqs 0..n-1 and preserves every relative ordering against
  /// events scheduled later, which is what makes resume replay-exact.
  [[nodiscard]] std::vector<Event> snapshot_events() const;

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;  // max-heap under Later == min-(time,seq) at front
  std::uint64_t next_seq_ = 0;
};

}  // namespace wtr::sim
