#include "sim/agent_arena.hpp"

#include <cassert>
#include <limits>
#include <new>
#include <stdexcept>

namespace wtr::sim {

// Placement slots are addressed by index with sizeof(DeviceAgent) stride;
// operator new's default alignment must satisfy the type.
static_assert(alignof(DeviceAgent) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__);

AgentArena::~AgentArena() {
  if (work_ == nullptr) return;
  for (std::size_t i = 0; i < hydrated_.size(); ++i) {
    if (hydrated_[i] != 0) slot(i)->~DeviceAgent();
  }
}

std::uint32_t AgentArena::intern_options(AgentOptions options) {
  if (options_.size() >= std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("sim::AgentArena: options pool overflow");
  }
  options_.push_back(std::move(options));
  return static_cast<std::uint32_t>(options_.size() - 1);
}

void AgentArena::reserve_additional(std::size_t count) {
  const std::size_t want = devices_.size() + count;
  if (want <= devices_.capacity()) return;
  // Geometric floor: libstdc++ reserve() allocates exactly what is asked,
  // so back-to-back exact reservations across add_fleet calls would realloc
  // (and copy the whole catalog) once per fleet.
  const std::size_t target = std::max(want, devices_.capacity() * 2);
  devices_.reserve(target);
  dormant_rng_.reserve(target);
  first_wakes_.reserve(target);
  options_ids_.reserve(target);
  hydrated_.reserve(target);
}

std::optional<stats::SimTime> AgentArena::register_device(devices::Device device,
                                                          std::uint32_t options_id,
                                                          stats::Rng rng) {
  assert(!frozen_);
  assert(options_id < options_.size());
  // Exactly the eager path's RNG discipline: the empty-window check comes
  // before any draw (dropped devices consume nothing), then one uniform
  // draw places the first wake within the arrival day.
  if (device.departure_day <= device.arrival_day) return std::nullopt;
  const stats::SimTime first = DeviceAgent::plan_first_wake(device, rng);
  devices_.push_back(std::move(device));
  dormant_rng_.push_back(rng.state());
  first_wakes_.push_back(first);
  options_ids_.push_back(options_id);
  hydrated_.push_back(0);
  return first;
}

void AgentArena::freeze() {
  if (frozen_) return;
  if (!devices_.empty()) {
    // Default-initialized (not value-initialized): the slab must stay
    // untouched so dormant slots never get physical pages.
    work_.reset(new std::byte[devices_.size() * sizeof(DeviceAgent)]);
  }
  frozen_ = true;
}

DeviceAgent& AgentArena::hydrate(std::size_t index) {
  assert(frozen_);
  stats::Rng rng{1};
  rng.set_state(dormant_rng_[index]);
  DeviceAgent* agent = new (slot(index)) DeviceAgent(
      &devices_[index], &options_[options_ids_[index]], rng, first_wakes_[index]);
  hydrated_[index] = 1;
  return *agent;
}

DeviceAgent& AgentArena::agent(std::size_t index) {
  if (hydrated_[index] != 0) return *slot(index);
  return hydrate(index);
}

std::size_t AgentArena::hydrated_count() const noexcept {
  std::size_t count = 0;
  for (const auto flag : hydrated_) count += flag;
  return count;
}

std::size_t AgentArena::resident_bytes() const noexcept {
  std::size_t bytes = devices_.capacity() * sizeof(devices::Device) +
                      dormant_rng_.capacity() * sizeof(dormant_rng_[0]) +
                      first_wakes_.capacity() * sizeof(stats::SimTime) +
                      options_ids_.capacity() * sizeof(std::uint32_t) +
                      hydrated_.capacity() * sizeof(std::uint8_t) +
                      options_.size() * sizeof(AgentOptions);
  bytes += hydrated_count() * sizeof(DeviceAgent);
  return bytes;
}

void AgentArena::save_state(util::BinWriter& out) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const bool live = hydrated_[i] != 0;
    out.b(live);
    if (live) const_cast<AgentArena*>(this)->slot(i)->save_state(out);
  }
}

void AgentArena::restore_state(util::BinReader& in) {
  assert(frozen_);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (in.b()) {
      agent(i).restore_state(in);
    } else {
      // A dormant agent needs nothing: registration already rebuilt its
      // hot state, and the snapshot was taken before its first wake.
      assert(hydrated_[i] == 0);
    }
  }
}

void AgentArena::restore_state_all(util::BinReader& in) {
  assert(frozen_);
  for (std::size_t i = 0; i < devices_.size(); ++i) agent(i).restore_state(in);
}

}  // namespace wtr::sim
