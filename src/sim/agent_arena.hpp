#pragma once

// Per-engine struct-of-arrays agent storage with lazy hydration.
//
// At fleet scale (the paper's MNO dataset covers 39.6M devices) a
// heap-allocated DeviceAgent per device is the dominant memory cost, and
// most of it is dead weight: real IoT fleets are dominated by long-dormant
// devices, and a staggered-arrival fleet spends most of the horizon with a
// large fraction of agents that have never woken. The arena splits agent
// state into three tiers:
//
//  * cold catalog  — the devices::Device rows, contiguous (devices_).
//                    Needed for fingerprints, ground truth and hydration
//                    but never touched by the event loop until first wake.
//  * hot dormant   — what it takes to wake an agent for the first time:
//                    the post-first-draw RNG state (32 B), the first wake
//                    time, and an interned options id. Flat parallel
//                    vectors; this is all a parked agent costs.
//  * working state — full DeviceAgent slots, placement-constructed on
//                    first wake into one untouched-until-hydrated slab
//                    (work_). Dormant slots are never written, so the OS
//                    never backs them with physical pages; resident cost
//                    scales with the *awake* fleet, not the registered one.
//
// AgentOptions (~corridor + checkin + FOTA config, shared per fleet) are
// interned once per add_fleet call instead of copied per agent.
//
// Determinism: hydration is a pure function of the registration-time data
// (device row, options, stored RNG state, first wake), and registration
// performs exactly the RNG operations the eager construction path did —
// fork, empty-window check, one uniform draw — so a lazily hydrated agent
// is bit-identical to an eagerly constructed one at its first wake. Slots
// are index-addressed, so shard threads hydrate disjoint slots without
// synchronization (shards partition agents by index).

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "devices/device.hpp"
#include "sim/device_agent.hpp"
#include "stats/rng.hpp"
#include "stats/sim_time.hpp"

namespace wtr::sim {

class AgentArena {
 public:
  AgentArena() = default;
  ~AgentArena();
  AgentArena(const AgentArena&) = delete;
  AgentArena& operator=(const AgentArena&) = delete;

  /// Intern one fleet's shared AgentOptions; returns the id to register
  /// devices under. Stable addresses (deque) — hydrated agents point in.
  std::uint32_t intern_options(AgentOptions options);

  /// Pre-size the catalog/dormant vectors for `count` more registrations.
  /// Keeps geometric growth as a floor so repeated add_fleet calls don't
  /// degenerate into one exact realloc (and full copy) per fleet.
  void reserve_additional(std::size_t count);

  /// Register one device: performs the exact registration-time RNG ops of
  /// the eager path (empty-window check before any draw, then one uniform
  /// draw for the first wake). Returns the first wake time, or nullopt for
  /// an empty active window (the device is dropped, nothing stored).
  /// Invalid after freeze().
  std::optional<stats::SimTime> register_device(devices::Device device,
                                                std::uint32_t options_id,
                                                stats::Rng rng);

  [[nodiscard]] std::size_t size() const noexcept { return devices_.size(); }
  [[nodiscard]] const devices::Device& device(std::size_t index) const {
    return devices_[index];
  }
  [[nodiscard]] stats::SimTime first_wake(std::size_t index) const {
    return first_wakes_[index];
  }

  /// Allocate the working-state slab. Must be called after the last
  /// registration and before the first agent() access; idempotent.
  void freeze();
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  /// Full working state for an agent, hydrating it on first access.
  /// Requires freeze(). The const overload exists for inspection paths
  /// (recovery tests, fleet-state dumps); hydration is deterministic
  /// materialization of registration-time data, so it is logically const.
  [[nodiscard]] DeviceAgent& agent(std::size_t index);
  [[nodiscard]] const DeviceAgent& agent(std::size_t index) const {
    return const_cast<AgentArena*>(this)->agent(index);
  }

  [[nodiscard]] bool hydrated(std::size_t index) const noexcept {
    return hydrated_[index] != 0;
  }
  /// Agents materialized so far (scan; telemetry/bench only).
  [[nodiscard]] std::size_t hydrated_count() const noexcept;
  /// Approximate bytes of physically resident agent state: catalog + hot
  /// dormant vectors + options pool + hydrated working slots. Dormant
  /// working slots are untouched slab pages and excluded.
  [[nodiscard]] std::size_t resident_bytes() const noexcept;
  [[nodiscard]] std::size_t options_pool_size() const noexcept {
    return static_cast<std::size_t>(options_.size());
  }

  /// Snapshot the arena (v3 layout): a hydration flag per agent, followed
  /// by DeviceAgent state for hydrated agents only — dormant state is fully
  /// reconstructible at registration and costs nothing in the snapshot.
  void save_state(util::BinWriter& out) const;
  /// Restore a v3 arena section. Requires freeze() and a fresh (nothing
  /// hydrated) arena, i.e. called before the engine ever ran.
  void restore_state(util::BinReader& in);
  /// Restore a legacy (container v2) agent section: every agent was saved,
  /// so every agent hydrates. Same freshness requirement as restore_state.
  void restore_state_all(util::BinReader& in);

 private:
  [[nodiscard]] DeviceAgent* slot(std::size_t index) noexcept {
    return reinterpret_cast<DeviceAgent*>(work_.get() + index * sizeof(DeviceAgent));
  }
  DeviceAgent& hydrate(std::size_t index);

  std::deque<AgentOptions> options_;
  std::vector<devices::Device> devices_;
  /// RNG state after the first-wake draw; what on_wake starts from.
  std::vector<std::array<std::uint64_t, 4>> dormant_rng_;
  std::vector<stats::SimTime> first_wakes_;
  std::vector<std::uint32_t> options_ids_;
  std::vector<std::uint8_t> hydrated_;
  std::unique_ptr<std::byte[]> work_;
  bool frozen_ = false;
};

}  // namespace wtr::sim
