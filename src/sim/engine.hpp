#pragma once

// The simulation engine: owns the agents and the event queue, fans records
// out to the registered sinks, and runs the clock from day 0 to the horizon.
// Deterministic: (world seed, engine seed, fleet composition) fixes the
// entire output — independent of Config::threads.
//
// Execution modes:
//  * threads == 1 (default): the classic single event loop.
//  * threads == K > 1: agents are partitioned into K shards by stable index
//    (agent % K); one event loop per shard runs on a thread pool, buffering
//    its emitted records into a per-shard RecordBuffer arena. A
//    deterministic k-way merge then rebuilds the global (time, seq) pop
//    order from the recorded per-wake schedule and replays every record
//    into the sinks in exactly the single-threaded order — so threads=N
//    output is byte-identical to threads=1 for every sink, scenario and
//    fault schedule. Agents never interact (each owns a forked RNG; World,
//    NetworkSelector and OutcomePolicy are consulted read-only), which is
//    what makes the shard loops embarrassingly parallel.

#include <memory>
#include <stdexcept>
#include <vector>

#include "signaling/outcome_policy.hpp"
#include "sim/device_agent.hpp"
#include "sim/event_queue.hpp"
#include "sim/record_buffer.hpp"

namespace wtr::obs {
class EngineProbe;
class MetricsRegistry;
}  // namespace wtr::obs

namespace wtr::sim {

/// Fan-out sink: forwards every record to each registered consumer.
class MultiSink final : public RecordSink {
 public:
  /// Sinks are borrowed and must be non-null (a null would crash deep in
  /// the event loop where the culprit registration is long gone).
  void add(RecordSink* sink) {
    if (sink == nullptr) {
      throw std::invalid_argument("sim::MultiSink::add: null RecordSink");
    }
    // Grow in small blocks instead of per-push reallocation: registration
    // happens a handful of times per run, but the pointers are walked per
    // record, so keeping them in one early-settled allocation matters.
    if (sinks_.size() == sinks_.capacity()) sinks_.reserve(sinks_.size() + 4);
    sinks_.push_back(sink);
  }

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    // Single consumer is the common case (one accumulator per run): skip
    // the fan-out loop entirely.
    if (sinks_.size() == 1) {
      sinks_.front()->on_signaling(txn, data_context);
      return;
    }
    for (auto* sink : sinks_) sink->on_signaling(txn, data_context);
  }
  void on_cdr(const records::Cdr& cdr) override {
    if (sinks_.size() == 1) {
      sinks_.front()->on_cdr(cdr);
      return;
    }
    for (auto* sink : sinks_) sink->on_cdr(cdr);
  }
  void on_xdr(const records::Xdr& xdr) override {
    if (sinks_.size() == 1) {
      sinks_.front()->on_xdr(xdr);
      return;
    }
    for (auto* sink : sinks_) sink->on_xdr(xdr);
  }
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override {
    if (sinks_.size() == 1) {
      sinks_.front()->on_dwell(device, day, visited_plmn, location, seconds);
      return;
    }
    for (auto* sink : sinks_) {
      sink->on_dwell(device, day, visited_plmn, location, seconds);
    }
  }

 private:
  std::vector<RecordSink*> sinks_;
};

class Engine {
 public:
  struct Config {
    std::uint64_t seed = 7;
    std::int32_t horizon_days = 22;
    signaling::OutcomePolicyConfig outcomes{};
    /// Shard/worker count for the event loop. 1 (the default) runs the
    /// classic single-threaded path; K > 1 runs K sharded loops on a thread
    /// pool and merges deterministically — the output stays byte-identical
    /// to threads=1. Values above the agent count are clamped.
    unsigned threads = 1;
    /// Optional fault-injection schedule consulted by the outcome policy.
    /// Not owned — must outlive the engine. Null or empty leaves the run
    /// bit-identical to a build without the fault subsystem.
    const faults::FaultSchedule* faults = nullptr;
    /// Optional observability hooks (borrowed; null disables). The metrics
    /// registry receives outcome/engine counters; the probe samples the
    /// event loop on its sim-time cadence and rides the record stream as an
    /// extra sink. Neither touches any RNG: instrumented runs stay
    /// byte-identical to bare ones. In sharded mode the outcome counters
    /// accumulate in per-shard registries merged post-run, and the probe is
    /// driven off the merged stream — trajectories stay deterministic.
    obs::MetricsRegistry* metrics = nullptr;
    obs::EngineProbe* probe = nullptr;
  };

  Engine(const topology::World& world, Config config);

  /// Add a fleet of devices, all sharing the same agent options. Devices
  /// whose active window is empty are dropped silently.
  void add_fleet(std::vector<devices::Device> fleet, AgentOptions options);

  /// Number of agents registered.
  [[nodiscard]] std::size_t agent_count() const noexcept { return agents_.size(); }

  /// Read access to an agent's device (e.g. ground truth for validation).
  [[nodiscard]] const devices::Device& device(std::size_t index) const {
    return agents_[index]->device();
  }

  /// Run to the horizon, delivering records to the sinks. May be called
  /// once per engine; a second call throws std::logic_error (the queue and
  /// agent state are consumed by the first run, so a silent rerun would
  /// produce an empty — not repeated — output).
  void run(std::vector<RecordSink*> sinks);

  /// Total wake events processed by the last run.
  [[nodiscard]] std::uint64_t wakes_processed() const noexcept { return wakes_; }

  /// Shards actually used by the last run (1 for the single-threaded path).
  [[nodiscard]] std::size_t shards_used() const noexcept {
    return shard_wakes_.empty() ? 1 : shard_wakes_.size();
  }
  /// Wakes processed per shard by the last run (empty for threads=1).
  [[nodiscard]] const std::vector<std::uint64_t>& shard_wakes() const noexcept {
    return shard_wakes_;
  }
  /// Wall time of the deterministic merge phase (0 for threads=1).
  [[nodiscard]] double merge_wall_s() const noexcept { return merge_wall_s_; }

 private:
  struct Shard;

  void run_single(const std::vector<RecordSink*>& sinks);
  void run_sharded(const std::vector<RecordSink*>& sinks, std::size_t shard_count);
  void run_shard_loop(std::size_t shard_index, std::size_t shard_count, Shard& shard);
  void finish_run_metrics();

  const topology::World& world_;
  Config config_;
  NetworkSelector selector_;
  signaling::OutcomePolicy outcomes_;
  stats::Rng rng_;
  std::vector<std::unique_ptr<DeviceAgent>> agents_;
  /// First wake per agent (parallel to agents_); seeds the per-shard queues
  /// and the merge replay without re-consuming any agent RNG.
  std::vector<stats::SimTime> first_wakes_;
  EventQueue queue_;
  std::uint64_t wakes_ = 0;
  std::vector<std::uint64_t> shard_wakes_;
  double merge_wall_s_ = 0.0;
  bool ran_ = false;
};

}  // namespace wtr::sim
