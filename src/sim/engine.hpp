#pragma once

// The simulation engine: owns the agents and the event queue, fans records
// out to the registered sinks, and runs the clock from day 0 to the horizon.
// Deterministic: (world seed, engine seed, fleet composition) fixes the
// entire output — independent of Config::threads.
//
// Execution modes:
//  * threads == 1 (default): the classic single event loop.
//  * threads == K > 1: agents are partitioned into K shards by stable index
//    (agent % K); one event loop per shard runs on a thread pool, buffering
//    its emitted records into a per-shard RecordBuffer arena. A
//    deterministic k-way merge then rebuilds the global (time, seq) pop
//    order from the recorded per-wake schedule and replays every record
//    into the sinks in exactly the single-threaded order — so threads=N
//    output is byte-identical to threads=1 for every sink, scenario and
//    fault schedule. Agents never interact (each owns a forked RNG; World,
//    NetworkSelector and OutcomePolicy are consulted read-only), which is
//    what makes the shard loops embarrassingly parallel.

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "signaling/outcome_policy.hpp"
#include "sim/agent_arena.hpp"
#include "sim/device_agent.hpp"
#include "sim/event_queue.hpp"
#include "sim/record_buffer.hpp"

namespace wtr::obs {
class EngineProbe;
class FlightRecorder;
class HeartbeatWriter;
class MetricsRegistry;
}  // namespace wtr::obs

namespace wtr::sim {

/// Fan-out sink: forwards every record to each registered consumer.
class MultiSink final : public RecordSink {
 public:
  /// Sinks are borrowed and must be non-null (a null would crash deep in
  /// the event loop where the culprit registration is long gone).
  void add(RecordSink* sink) {
    if (sink == nullptr) {
      throw std::invalid_argument("sim::MultiSink::add: null RecordSink");
    }
    // Grow in small blocks instead of per-push reallocation: registration
    // happens a handful of times per run, but the pointers are walked per
    // record, so keeping them in one early-settled allocation matters.
    if (sinks_.size() == sinks_.capacity()) sinks_.reserve(sinks_.size() + 4);
    sinks_.push_back(sink);
  }

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    // Single consumer is the common case (one accumulator per run): skip
    // the fan-out loop entirely.
    if (sinks_.size() == 1) {
      sinks_.front()->on_signaling(txn, data_context);
      return;
    }
    for (auto* sink : sinks_) sink->on_signaling(txn, data_context);
  }
  void on_cdr(const records::Cdr& cdr) override {
    if (sinks_.size() == 1) {
      sinks_.front()->on_cdr(cdr);
      return;
    }
    for (auto* sink : sinks_) sink->on_cdr(cdr);
  }
  void on_xdr(const records::Xdr& xdr) override {
    if (sinks_.size() == 1) {
      sinks_.front()->on_xdr(xdr);
      return;
    }
    for (auto* sink : sinks_) sink->on_xdr(xdr);
  }
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override {
    if (sinks_.size() == 1) {
      sinks_.front()->on_dwell(device, day, visited_plmn, location, seconds);
      return;
    }
    for (auto* sink : sinks_) {
      sink->on_dwell(device, day, visited_plmn, location, seconds);
    }
  }

 private:
  std::vector<RecordSink*> sinks_;
};

class Engine {
 public:
  struct Config {
    std::uint64_t seed = 7;
    std::int32_t horizon_days = 22;
    signaling::OutcomePolicyConfig outcomes{};
    /// Shard/worker count for the event loop. 1 (the default) runs the
    /// classic single-threaded path; K > 1 runs K sharded loops on a thread
    /// pool and merges deterministically — the output stays byte-identical
    /// to threads=1. Values above the agent count are clamped.
    unsigned threads = 1;
    /// Optional fault-injection schedule consulted by the outcome policy.
    /// Not owned — must outlive the engine. Null or empty leaves the run
    /// bit-identical to a build without the fault subsystem.
    const faults::FaultSchedule* faults = nullptr;
    /// Optional observability hooks (borrowed; null disables). The metrics
    /// registry receives outcome/engine counters; the probe samples the
    /// event loop on its sim-time cadence and rides the record stream as an
    /// extra sink. Neither touches any RNG: instrumented runs stay
    /// byte-identical to bare ones. In sharded mode the outcome counters
    /// accumulate in per-shard registries merged post-run, and the probe is
    /// driven off the merged stream — trajectories stay deterministic.
    obs::MetricsRegistry* metrics = nullptr;
    obs::EngineProbe* probe = nullptr;
    /// Optional closed-loop congestion model (borrowed; must outlive the
    /// engine). When installed, window stops are additionally clamped to
    /// the model's bucket boundaries, shards count attach attempts into
    /// private ledgers, and the engine absorbs + rolls the model at
    /// barriers on the merge thread — reject probabilities for bucket k are
    /// a pure function of bucket k-1's merged load, so threads=N stays
    /// byte-identical to threads=1. Null leaves every run bit-identical to
    /// a build without the subsystem (no extra RNG draws, no clamping).
    /// The model's state rides inside engine snapshots; resume requires the
    /// same model presence and operator count.
    faults::CongestionModel* congestion = nullptr;
    /// Checkpoint cadence in sim hours; 0 (the default) disables
    /// checkpointing entirely and the run takes the exact legacy code
    /// path — output stays byte-identical to a build without the
    /// subsystem. With cadence on, a snapshot is written atomically to
    /// `checkpoint_path` at every cadence boundary; in sharded mode the
    /// boundaries double as merge barriers, so the snapshot is
    /// thread-count-independent (threads=1 and threads=N write
    /// bit-identical snapshots at the same boundary).
    std::int64_t checkpoint_every_sim_hours = 0;
    /// Where cadence (and graceful-shutdown / stop_after) snapshots land.
    /// Empty disables snapshot writes even when a cadence is set.
    std::string checkpoint_path;
    /// Deterministic in-process interrupt: stop at this sim-hour boundary,
    /// write a final snapshot, and return with interrupted() == true.
    /// 0 disables; values at or beyond the horizon are ignored. The
    /// recovery tests use this to cut a run at an exact sim-time point
    /// without involving signals.
    std::int64_t stop_after_sim_hours = 0;
    /// Flight recorder (src/obs/trace.hpp): non-empty enables per-shard
    /// span/instant recording and writes a Chrome trace-event JSON export
    /// here at the end of the run (loadable in Perfetto). Tracing observes,
    /// never perturbs: disabled means zero extra clock reads beyond one
    /// branch per site, and enabled leaves sink output byte-identical at
    /// any thread count.
    std::string trace_path;
    /// Ring capacity per track (engine + one per shard). The recorder keeps
    /// the newest events once a ring wraps and counts the overwritten ones
    /// as dropped.
    std::size_t trace_capacity_per_track = std::size_t{1} << 15;
    /// Heartbeat/progress file (src/obs/heartbeat.hpp): non-empty makes the
    /// engine atomically rewrite a single-line JSON status here during the
    /// run, so a supervisor can tell a hung process from a slow one by the
    /// file's freshness. Independent of tracing.
    std::string heartbeat_path;
    /// Minimum wall seconds between heartbeat rewrites.
    double heartbeat_every_wall_s = 1.0;
    /// Snapshot container format this engine writes. Defaults to the
    /// current version (3: hydration-flagged arena section). 2 writes the
    /// legacy layout (every agent's state, no flags) readable by older
    /// binaries; resume_from() auto-detects either on read. Any other
    /// value is rejected at the first checkpoint write.
    std::uint32_t snapshot_format = ckpt::kSnapshotVersion;
  };

  Engine(const topology::World& world, Config config);
  ~Engine();  // defined in engine.cpp: unique_ptr members of fwd-declared types

  /// Add a fleet of devices, all sharing the same agent options (interned
  /// once in the arena). Devices whose active window is empty are dropped
  /// silently. Throws std::length_error when the registration would push
  /// the agent count past what AgentIndex can address.
  void add_fleet(std::vector<devices::Device> fleet, AgentOptions options);

  /// Number of agents registered.
  [[nodiscard]] std::size_t agent_count() const noexcept { return arena_.size(); }

  /// Read access to an agent's device (e.g. ground truth for validation).
  /// Served from the arena's cold catalog — does not hydrate the agent.
  [[nodiscard]] const devices::Device& device(std::size_t index) const {
    return arena_.device(index);
  }

  /// Read access to a full agent (EMM machine, backoff timers) — used by
  /// the recovery tests to assert resumed state equals uninterrupted state.
  /// Hydrates a dormant agent on access (deterministic materialization of
  /// its registration-time state).
  [[nodiscard]] const DeviceAgent& agent(std::size_t index) const {
    return arena_.agent(index);
  }

  /// Arena telemetry for benches: agents materialized so far, and the
  /// approximate physically resident bytes of agent state.
  [[nodiscard]] std::size_t agents_hydrated() const noexcept {
    return arena_.hydrated_count();
  }
  [[nodiscard]] std::size_t arena_resident_bytes() const noexcept {
    return arena_.resident_bytes();
  }

  /// Register an external component whose state rides inside engine
  /// snapshots (trace-file sinks, resilience reports). Save/restore follows
  /// registration order; the name is recorded in the snapshot and verified
  /// on resume, so a mismatched participant list fails loudly instead of
  /// silently misaligning the payload. Must be called before run(), and the
  /// same components must be registered in the same order before
  /// resume_from().
  void register_checkpointable(std::string name, ckpt::Checkpointable* component) {
    if (component == nullptr) {
      throw std::invalid_argument("sim::Engine::register_checkpointable: null");
    }
    checkpointables_.emplace_back(std::move(name), component);
  }

  /// Restore engine state from a snapshot written by a previous process.
  /// Call after add_fleet() rebuilt the identical fleet (same world seed,
  /// engine config and fleet composition — verified via a fingerprint) and
  /// after registering the same checkpointables. The subsequent run()
  /// continues from the snapshot point and produces output byte-identical
  /// to the uninterrupted remainder, for threads=1 and threads=N alike.
  /// Throws ckpt::SnapshotError on any integrity or compatibility failure.
  void resume_from(const std::string& path);

  /// Run to the horizon, delivering records to the sinks. May be called
  /// once per engine; a second call throws std::logic_error (the queue and
  /// agent state are consumed by the first run, so a silent rerun would
  /// produce an empty — not repeated — output).
  void run(std::vector<RecordSink*> sinks);

  /// Total wake events processed by the last run.
  [[nodiscard]] std::uint64_t wakes_processed() const noexcept { return wakes_; }

  /// Shards actually used by the last run (1 for the single-threaded path).
  [[nodiscard]] std::size_t shards_used() const noexcept {
    return shard_wakes_.empty() ? 1 : shard_wakes_.size();
  }
  /// Wakes processed per shard by the last run (empty for threads=1).
  [[nodiscard]] const std::vector<std::uint64_t>& shard_wakes() const noexcept {
    return shard_wakes_;
  }
  /// Wall time of the deterministic merge phase (0 for threads=1).
  [[nodiscard]] double merge_wall_s() const noexcept { return merge_wall_s_; }

  /// True when the last run() returned early — graceful shutdown request
  /// or Config::stop_after_sim_hours — rather than reaching the horizon.
  [[nodiscard]] bool interrupted() const noexcept { return interrupted_; }
  /// True when this engine was primed from a snapshot via resume_from().
  [[nodiscard]] bool resumed() const noexcept { return resumed_; }
  [[nodiscard]] const std::string& resumed_from() const noexcept {
    return resumed_from_;
  }
  /// Snapshots written by the last run (cadence boundaries + final).
  [[nodiscard]] std::uint64_t checkpoints_written() const noexcept {
    return checkpoints_written_;
  }
  /// Cumulative wall time spent serializing and writing snapshots.
  [[nodiscard]] double checkpoint_wall_s() const noexcept { return checkpoint_wall_s_; }

  /// The flight recorder, or null when Config::trace_path is empty. Sinks
  /// and the checkpoint writer borrow it to add their own spans.
  [[nodiscard]] obs::FlightRecorder* flight_recorder() noexcept { return trace_.get(); }

  // --- shard-balance telemetry (tracing-enabled runs only; all zero when
  // --- the recorder is off, since deriving them costs clock reads) --------
  /// Wall seconds each shard spent inside its window loops (empty for
  /// threads=1 or untraced runs).
  [[nodiscard]] const std::vector<double>& shard_busy_s() const noexcept {
    return shard_busy_s_;
  }
  /// Wall seconds spent with shard windows in flight (fan-out to barrier).
  [[nodiscard]] double window_wall_s() const noexcept { return window_wall_s_; }
  /// Sum over windows of (slowest shard busy - fastest shard busy): the
  /// wall time the barrier spent waiting on stragglers.
  [[nodiscard]] double merge_wait_skew_s() const noexcept { return merge_wait_skew_s_; }
  /// High-water mark of event-queue depth observed at sampling points.
  [[nodiscard]] std::uint64_t queue_depth_hwm() const noexcept { return queue_depth_hwm_; }

 private:
  struct Shard;

  void run_single(const std::vector<RecordSink*>& sinks);
  void run_sharded(const std::vector<RecordSink*>& sinks, std::size_t shard_count);
  void run_shard_window(Shard& shard, EventQueue& queue, stats::SimTime stop);
  void finish_run_metrics();
  /// Rate-limited heartbeat write (no-op when no heartbeat is configured).
  void beat(const char* phase, stats::SimTime sim_now, bool force = false);
  /// Trace export + trace.* metric publication + final heartbeat. Runs after
  /// every snapshot write so registry snapshots never contain wall-clock-
  /// derived values.
  void finish_telemetry();

  /// Identity of (engine seed, horizon, fleet): a snapshot resumes only
  /// onto an identically rebuilt engine.
  [[nodiscard]] std::uint64_t fleet_fingerprint() const;
  /// Serialize full engine state resuming at `resume_time` and write it
  /// atomically to Config::checkpoint_path (no-op when the path is empty).
  /// `queue` is the live global queue (queue_ for threads=1, the merge
  /// queue for threads=N); `metrics_view` is the registry to persist — the
  /// main one for threads=1, a barrier-merged clone for threads=N.
  void write_checkpoint(stats::SimTime resume_time, const EventQueue& queue,
                        const obs::MetricsRegistry* metrics_view);

  const topology::World& world_;
  Config config_;
  NetworkSelector selector_;
  /// Single-threaded path's attempt ledger (shards own private ones).
  /// Declared before outcomes_: the policy captures its address at
  /// construction.
  faults::CongestionLedger congestion_ledger_;
  signaling::OutcomePolicy outcomes_;
  stats::Rng rng_;
  /// All agent state: cold catalog + dormant hot fields + lazily hydrated
  /// working slots (also records each agent's first wake, which seeds the
  /// per-shard queues and the merge replay without re-consuming agent RNG).
  AgentArena arena_;
  EventQueue queue_;
  std::uint64_t wakes_ = 0;
  std::vector<std::uint64_t> shard_wakes_;
  double merge_wall_s_ = 0.0;
  bool ran_ = false;

  // --- checkpoint/restore state --------------------------------------------
  std::vector<std::pair<std::string, ckpt::Checkpointable*>> checkpointables_;
  /// Pending events restored from a snapshot, in global pop order; seeds
  /// the run queue(s) in place of first_wakes_ when resumed_.
  std::vector<std::pair<stats::SimTime, AgentIndex>> resume_events_;
  stats::SimTime resume_time_ = 0;   // window accounting restarts here
  stats::SimTime last_time_ = 0;     // time of the last processed event
  bool resumed_ = false;
  bool interrupted_ = false;
  std::string resumed_from_;
  std::uint64_t checkpoints_written_ = 0;
  double checkpoint_wall_s_ = 0.0;

  // --- flight recorder / heartbeat (null = disabled) -----------------------
  std::unique_ptr<obs::FlightRecorder> trace_;
  std::unique_ptr<obs::HeartbeatWriter> heartbeat_;
  std::vector<double> shard_busy_s_;
  double window_wall_s_ = 0.0;
  double merge_wait_skew_s_ = 0.0;
  std::uint64_t queue_depth_hwm_ = 0;
  /// Timing-wheel / arena telemetry collected at end of run (global queue
  /// plus shard queues); published as quarantined trace.* gauges only.
  std::uint64_t wheel_rebases_ = 0;
  std::uint64_t record_buffer_peak_bytes_ = 0;
  stats::SimTime last_checkpoint_time_ = -1;
};

}  // namespace wtr::sim
