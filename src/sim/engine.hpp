#pragma once

// The simulation engine: owns the agents and the event queue, fans records
// out to the registered sinks, and runs the clock from day 0 to the horizon.
// Deterministic: (world seed, engine seed, fleet composition) fixes the
// entire output.

#include <memory>
#include <stdexcept>
#include <vector>

#include "signaling/outcome_policy.hpp"
#include "sim/device_agent.hpp"
#include "sim/event_queue.hpp"

namespace wtr::obs {
class EngineProbe;
class MetricsRegistry;
}  // namespace wtr::obs

namespace wtr::sim {

/// Fan-out sink: forwards every record to each registered consumer.
class MultiSink final : public RecordSink {
 public:
  /// Sinks are borrowed and must be non-null (a null would crash deep in
  /// the event loop where the culprit registration is long gone).
  void add(RecordSink* sink) {
    if (sink == nullptr) {
      throw std::invalid_argument("sim::MultiSink::add: null RecordSink");
    }
    sinks_.push_back(sink);
  }

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    for (auto* sink : sinks_) sink->on_signaling(txn, data_context);
  }
  void on_cdr(const records::Cdr& cdr) override {
    for (auto* sink : sinks_) sink->on_cdr(cdr);
  }
  void on_xdr(const records::Xdr& xdr) override {
    for (auto* sink : sinks_) sink->on_xdr(xdr);
  }
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override {
    for (auto* sink : sinks_) {
      sink->on_dwell(device, day, visited_plmn, location, seconds);
    }
  }

 private:
  std::vector<RecordSink*> sinks_;
};

class Engine {
 public:
  struct Config {
    std::uint64_t seed = 7;
    std::int32_t horizon_days = 22;
    signaling::OutcomePolicyConfig outcomes{};
    /// Optional fault-injection schedule consulted by the outcome policy.
    /// Not owned — must outlive the engine. Null or empty leaves the run
    /// bit-identical to a build without the fault subsystem.
    const faults::FaultSchedule* faults = nullptr;
    /// Optional observability hooks (borrowed; null disables). The metrics
    /// registry receives outcome/engine counters; the probe samples the
    /// event loop on its sim-time cadence and rides the record stream as an
    /// extra sink. Neither touches any RNG: instrumented runs stay
    /// byte-identical to bare ones.
    obs::MetricsRegistry* metrics = nullptr;
    obs::EngineProbe* probe = nullptr;
  };

  Engine(const topology::World& world, Config config);

  /// Add a fleet of devices, all sharing the same agent options. Devices
  /// whose active window is empty are dropped silently.
  void add_fleet(std::vector<devices::Device> fleet, AgentOptions options);

  /// Number of agents registered.
  [[nodiscard]] std::size_t agent_count() const noexcept { return agents_.size(); }

  /// Read access to an agent's device (e.g. ground truth for validation).
  [[nodiscard]] const devices::Device& device(std::size_t index) const {
    return agents_[index]->device();
  }

  /// Run to the horizon, delivering records to the sinks. May be called
  /// once per engine; a second call throws std::logic_error (the queue and
  /// agent state are consumed by the first run, so a silent rerun would
  /// produce an empty — not repeated — output).
  void run(std::vector<RecordSink*> sinks);

  /// Total wake events processed by the last run.
  [[nodiscard]] std::uint64_t wakes_processed() const noexcept { return wakes_; }

 private:
  const topology::World& world_;
  Config config_;
  NetworkSelector selector_;
  signaling::OutcomePolicy outcomes_;
  stats::Rng rng_;
  std::vector<std::unique_ptr<DeviceAgent>> agents_;
  EventQueue queue_;
  std::uint64_t wakes_ = 0;
  bool ran_ = false;
};

}  // namespace wtr::sim
