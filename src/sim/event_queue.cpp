#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace wtr::sim {

void EventQueue::schedule(stats::SimTime time, AgentIndex agent) {
  heap_.push_back(Event{time, next_seq_++, agent});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

std::optional<stats::SimTime> EventQueue::next_time() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.front().time;
}

Event EventQueue::pop() {
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Event event = heap_.back();
  heap_.pop_back();
  return event;
}

std::vector<Event> EventQueue::snapshot_events() const {
  std::vector<Event> events = heap_;
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  return events;
}

}  // namespace wtr::sim
