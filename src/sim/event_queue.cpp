#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace wtr::sim {

void EventQueue::reserve(std::size_t capacity) {
  // A fleet-scale initial burst spreads across the whole horizon, so most
  // of it lands in the far tier; per-bucket vectors stay small and grow
  // geometrically on their own.
  if (far_.capacity() < capacity) far_.reserve(capacity);
}

void EventQueue::schedule(stats::SimTime time, AgentIndex agent) {
  const Event event{time, next_seq_++, agent};
  ++size_;
  if (time < open_end_) {
    // At or before the open bucket (including deliberately past-dated
    // events): folded into the sorted run before the next front read.
    pending_.push_back(event);
  } else if (time < window_start_ + kSpan) {
    buckets_[static_cast<std::size_t>((time - window_start_) / kBucketWidth)]
        .push_back(event);
  } else {
    if (far_.empty() || time < far_min_) far_min_ = time;
    far_.push_back(event);
  }
}

void EventQueue::fold_pending() {
  // Drop the consumed prefix, then merge the sorted pending batch into the
  // (sorted) remaining run. The single-event case — an agent rescheduling
  // within the open bucket — skips the prefix compaction entirely.
  if (pending_.size() == 1) {
    const Event event = pending_.front();
    pending_.clear();
    const auto pos = std::upper_bound(run_.begin() + static_cast<std::ptrdiff_t>(run_head_),
                                      run_.end(), event, earlier);
    run_.insert(pos, event);
    return;
  }
  run_.erase(run_.begin(), run_.begin() + static_cast<std::ptrdiff_t>(run_head_));
  run_head_ = 0;
  const auto mid = static_cast<std::ptrdiff_t>(run_.size());
  std::sort(pending_.begin(), pending_.end(), earlier);
  run_.insert(run_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  std::inplace_merge(run_.begin(), run_.begin() + mid, run_.end(), earlier);
}

void EventQueue::rebase() {
  assert(!far_.empty());
  // Align the new window so bucket boundaries stay on kBucketWidth
  // multiples; far times are always positive (they exceeded a window end).
  window_start_ = (far_min_ / kBucketWidth) * kBucketWidth;
  open_end_ = window_start_;  // no bucket open yet
  next_bucket_ = 0;
  ++rebases_;
  std::vector<Event> old_far;
  old_far.swap(far_);
  far_min_ = std::numeric_limits<stats::SimTime>::max();
  for (const Event& event : old_far) {
    if (event.time < window_start_ + kSpan) {
      buckets_[static_cast<std::size_t>((event.time - window_start_) / kBucketWidth)]
          .push_back(event);
    } else {
      if (event.time < far_min_) far_min_ = event.time;
      far_.push_back(event);
    }
  }
}

void EventQueue::ensure_front() {
  assert(size_ > 0);
  for (;;) {
    if (!pending_.empty()) fold_pending();
    if (run_head_ < run_.size()) return;
    run_.clear();
    run_head_ = 0;
    while (next_bucket_ < kNumBuckets && buckets_[next_bucket_].empty()) {
      ++next_bucket_;
    }
    if (next_bucket_ < kNumBuckets) {
      run_.swap(buckets_[next_bucket_]);
      std::sort(run_.begin(), run_.end(), earlier);
      open_end_ = window_start_ +
                  static_cast<stats::SimTime>(next_bucket_ + 1) * kBucketWidth;
      ++next_bucket_;
      // Every unopened bucket and the far tier sit at or beyond open_end_,
      // and pending_ is empty, so run_.front() is the global minimum.
      return;
    }
    rebase();  // near window drained; jump it onto the far tier
  }
}

std::optional<stats::SimTime> EventQueue::next_time() const {
  if (size_ == 0) return std::nullopt;
  // Run tail and pending precede every bucket/far event (all < open_end_),
  // so while the open bucket drains this is O(1) + |pending| (usually 0).
  if (run_head_ < run_.size() || !pending_.empty()) {
    stats::SimTime best = std::numeric_limits<stats::SimTime>::max();
    if (run_head_ < run_.size()) best = run_[run_head_].time;
    for (const Event& event : pending_) best = std::min(best, event.time);
    return best;
  }
  // Buckets are time-ordered by index: the first non-empty one holds the
  // minimum (one linear min-scan, paid once per bucket transition).
  for (std::size_t i = next_bucket_; i < kNumBuckets; ++i) {
    if (buckets_[i].empty()) continue;
    stats::SimTime best = buckets_[i].front().time;
    for (const Event& event : buckets_[i]) best = std::min(best, event.time);
    return best;
  }
  assert(!far_.empty());
  return far_min_;
}

Event EventQueue::pop() {
  assert(size_ > 0);
  ensure_front();
  const Event event = run_[run_head_++];
  --size_;
  return event;
}

std::vector<Event> EventQueue::snapshot_events() const {
  std::vector<Event> events;
  events.reserve(size_);
  events.insert(events.end(), run_.begin() + static_cast<std::ptrdiff_t>(run_head_),
                run_.end());
  events.insert(events.end(), pending_.begin(), pending_.end());
  for (const auto& bucket : buckets_) {
    events.insert(events.end(), bucket.begin(), bucket.end());
  }
  events.insert(events.end(), far_.begin(), far_.end());
  std::sort(events.begin(), events.end(), earlier);
  assert(events.size() == size_);
  return events;
}

}  // namespace wtr::sim
