#include "sim/event_queue.hpp"

#include <cassert>

namespace wtr::sim {

void EventQueue::schedule(stats::SimTime time, AgentIndex agent) {
  heap_.push(Event{time, next_seq_++, agent});
}

std::optional<stats::SimTime> EventQueue::next_time() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

Event EventQueue::pop() {
  assert(!heap_.empty());
  Event event = heap_.top();
  heap_.pop();
  return event;
}

}  // namespace wtr::sim
