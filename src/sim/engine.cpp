#include "sim/engine.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "obs/engine_probe.hpp"
#include "obs/metrics.hpp"

namespace wtr::sim {

Engine::Engine(const topology::World& world, Config config)
    : world_(world),
      config_(config),
      selector_(world),
      outcomes_(config.outcomes, config.faults, config.metrics),
      rng_(config.seed) {}

void Engine::add_fleet(std::vector<devices::Device> fleet, AgentOptions options) {
  assert(!ran_);
  agents_.reserve(agents_.size() + fleet.size());
  for (auto& device : fleet) {
    // Clamp the device's window to the engine horizon.
    device.departure_day = std::min(device.departure_day, config_.horizon_days);
    auto agent = std::make_unique<DeviceAgent>(std::move(device), options,
                                               rng_.fork(agents_.size() + 1));
    if (const auto first = agent->first_wake()) {
      queue_.schedule(*first, static_cast<AgentIndex>(agents_.size()));
      agents_.push_back(std::move(agent));
    }
  }
}

void Engine::run(std::vector<RecordSink*> sinks) {
  if (ran_) {
    throw std::logic_error(
        "sim::Engine::run: engine already ran; build a new engine for a "
        "second run (the event queue is consumed)");
  }
  ran_ = true;

  MultiSink fanout;
  for (auto* sink : sinks) fanout.add(sink);
  obs::EngineProbe* probe = config_.probe;
  if (probe != nullptr) {
    fanout.add(probe);
    probe->begin_run(config_.faults, queue_.size());
  }

  AgentContext ctx;
  ctx.world = &world_;
  ctx.selector = &selector_;
  ctx.outcomes = &outcomes_;
  ctx.sink = &fanout;

  const stats::SimTime horizon_end = stats::day_start(config_.horizon_days);
  stats::SimTime last_time = 0;
  while (!queue_.empty()) {
    const Event event = queue_.pop();
    if (event.time > horizon_end) break;
    ++wakes_;
    last_time = event.time;
    if (probe != nullptr && probe->due(event.time)) {
      // +1: the popped event is still in flight at the sample instant.
      probe->on_tick(event.time, queue_.size() + 1, wakes_);
    }
    if (const char* dbg = ::getenv("WTR_DEBUG_WAKES"); dbg && wakes_ % 2'000'000 == 0) {
      std::fprintf(stderr, "[engine] wakes=%llu t=%lld agent=%u queue=%zu\n",
                   (unsigned long long)wakes_, (long long)event.time, event.agent,
                   queue_.size());
    }
    auto& agent = *agents_[event.agent];
    if (const auto next = agent.on_wake(event.time, ctx)) {
      queue_.schedule(*next, event.agent);
    }
  }
  if (probe != nullptr) probe->end_run(last_time, queue_.size(), wakes_);
  if (config_.metrics != nullptr) {
    config_.metrics->counter("engine.wakes").inc(wakes_);
    config_.metrics->counter("engine.runs").inc();
    config_.metrics->gauge("engine.agents").set_max(static_cast<double>(agents_.size()));
    config_.metrics->gauge("engine.horizon_days")
        .set(static_cast<double>(config_.horizon_days));
  }
}

}  // namespace wtr::sim
