#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "ckpt/shutdown.hpp"
#include "obs/engine_probe.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace wtr::sim {

namespace {

/// Debug-wake cadence shared by both execution paths (stderr heartbeat).
constexpr std::uint64_t kDebugWakeEvery = 2'000'000;

/// Wake cadences for flight-recorder instants and heartbeat refresh checks
/// in the single-threaded loop (power-of-two masks; the sharded path uses
/// window barriers instead). 8192 wakes between trace instants keeps a
/// 32k-slot ring covering hundreds of millions of wakes.
constexpr std::uint64_t kTraceWakeMask = (1u << 13) - 1;
constexpr std::uint64_t kBeatWakeMask = (1u << 10) - 1;

}  // namespace

/// Everything one shard's event loop owns: the record arena, its wake
/// count, and — when metrics are on — a private registry fed by a private
/// OutcomePolicy clone, so shard loops never touch shared counters.
struct Engine::Shard {
  Shard(const signaling::OutcomePolicyConfig& outcome_config,
        const faults::FaultSchedule* faults, obs::MetricsRegistry* main_metrics,
        const faults::CongestionModel* congestion)
      : ledger(congestion != nullptr ? congestion->op_count() : 0),
        outcomes(outcome_config, faults, main_metrics != nullptr ? &metrics : nullptr,
                 congestion, congestion != nullptr ? &ledger : nullptr) {}

  RecordBuffer buffer;
  obs::MetricsRegistry metrics;
  /// Shard-private attach-attempt counts for the open congestion bucket;
  /// absorbed into the model at barriers by the merge thread.
  faults::CongestionLedger ledger;
  signaling::OutcomePolicy outcomes;
  std::uint64_t wakes = 0;

  /// Flight-recorder binding (null when tracing is off). The shard thread
  /// is the sole writer of `track`; barriers quiesce it before any read.
  obs::FlightRecorder* trace = nullptr;
  std::uint32_t track = 0;
  /// Wall seconds this shard spent inside its window loops (cumulative) —
  /// the per-window deltas feed the merge-wait skew metric.
  double busy_s = 0.0;
  /// Largest shard-queue depth seen at window entry.
  std::uint64_t queue_hwm = 0;
};

Engine::Engine(const topology::World& world, Config config)
    : world_(world),
      config_(config),
      selector_(world),
      congestion_ledger_(config.congestion != nullptr ? config.congestion->op_count()
                                                      : 0),
      outcomes_(config.outcomes, config.faults, config.metrics, config.congestion,
                config.congestion != nullptr ? &congestion_ledger_ : nullptr),
      rng_(config.seed) {
  // The recorder exists from construction so sinks registered before run()
  // can borrow it. One track per configured thread plus the engine track;
  // shard clamping just leaves trailing tracks empty (skipped at export).
  if (!config_.trace_path.empty()) {
    trace_ = std::make_unique<obs::FlightRecorder>(
        std::max(1u, config_.threads), config_.trace_capacity_per_track);
  }
  if (!config_.heartbeat_path.empty()) {
    heartbeat_ = std::make_unique<obs::HeartbeatWriter>(
        config_.heartbeat_path, config_.heartbeat_every_wall_s);
  }
}

Engine::~Engine() = default;

void Engine::add_fleet(std::vector<devices::Device> fleet, AgentOptions options) {
  assert(!ran_);
  // Agent indices ride in every Event and snapshot as AgentIndex
  // (uint32_t); registering past that silently truncates indices into
  // aliases, so reject the whole fleet up front with a clear error.
  constexpr std::size_t kMaxAgents = std::numeric_limits<AgentIndex>::max();
  if (fleet.size() > kMaxAgents - arena_.size()) {
    throw std::length_error(
        "sim::Engine::add_fleet: fleet of " + std::to_string(fleet.size()) +
        " devices would push the agent count past the AgentIndex limit (" +
        std::to_string(kMaxAgents) + "); current count is " +
        std::to_string(arena_.size()));
  }
  // Geometric-floor reservation: the old per-fleet exact reserve here
  // reallocated (and copied) the whole agent store on every add_fleet call.
  arena_.reserve_additional(fleet.size());
  queue_.reserve(arena_.size() + fleet.size());
  const std::uint32_t options_id = arena_.intern_options(std::move(options));
  for (auto& device : fleet) {
    // Clamp the device's window to the engine horizon.
    device.departure_day = std::min(device.departure_day, config_.horizon_days);
    // Same per-device RNG discipline as the historical eager path: the fork
    // tag counts *kept* agents, and empty-window devices draw nothing.
    const auto first = arena_.register_device(std::move(device), options_id,
                                              rng_.fork(arena_.size() + 1));
    if (first) {
      queue_.schedule(*first, static_cast<AgentIndex>(arena_.size() - 1));
    }
  }
  // Every registered agent holds exactly one scheduled event until the run
  // consumes the queue — the invariant the old reserve math approximated.
  assert(queue_.size() == arena_.size());
}

std::uint64_t Engine::fleet_fingerprint() const {
  std::uint64_t h = stats::mix64(config_.seed, 0xc4e9'0000u);
  h = stats::mix64(h, static_cast<std::uint64_t>(config_.horizon_days));
  h = stats::mix64(h, arena_.size());
  for (std::size_t i = 0; i < arena_.size(); ++i) {
    h = stats::mix64(h, arena_.device(i).id);
    h = stats::mix64(h, static_cast<std::uint64_t>(arena_.first_wake(i)));
  }
  return h;
}

void Engine::beat(const char* phase, stats::SimTime sim_now, bool force) {
  if (heartbeat_ == nullptr) return;
  obs::HeartbeatStatus status;
  status.phase = phase;
  status.sim_time_s = static_cast<double>(sim_now);
  status.horizon_s = static_cast<double>(stats::day_start(config_.horizon_days));
  status.wakes = wakes_;
  status.records = config_.probe != nullptr ? config_.probe->records_total() : 0;
  status.last_checkpoint_s = static_cast<double>(last_checkpoint_time_);
  status.checkpoints_written = checkpoints_written_;
  if (force) {
    heartbeat_->write_now(status);
  } else {
    heartbeat_->maybe_write(status);
  }
}

void Engine::write_checkpoint(stats::SimTime resume_time, const EventQueue& queue,
                              const obs::MetricsRegistry* metrics_view) {
  if (config_.checkpoint_path.empty()) return;
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  // write_checkpoint always runs on the engine/merge thread, so its spans
  // land on the engine track.
  obs::TraceSpan serialize_span(trace_.get(), obs::FlightRecorder::kEngineTrack,
                                obs::TraceCat::kCheckpoint, "ckpt_serialize");
  serialize_span.set_args("sim_time", resume_time);

  util::BinWriter payload;
  payload.u64(fleet_fingerprint());
  payload.i64(resume_time);
  payload.u64(wakes_);
  payload.i64(last_time_);

  // Pending events in exact global pop order: resume reschedules them in
  // this order into a fresh queue, reproducing the relative (time, seq)
  // ordering against everything scheduled after the snapshot point.
  const auto events = queue.snapshot_events();
  payload.u64(events.size());
  for (const auto& event : events) {
    payload.i64(event.time);
    payload.u32(event.agent);
  }

  payload.u64(arena_.size());
  if (config_.snapshot_format >= 3) {
    // v3: hydration flag per agent, state for hydrated agents only.
    arena_.save_state(payload);
  } else {
    // Legacy v2 layout (no flags, every agent's state): hydrate the full
    // arena first. Hydration is behavior-neutral — a hydrated dormant
    // agent produces exactly the records it would have produced waking
    // from the dormant tier — so opting into v2 costs memory, not output.
    for (std::size_t i = 0; i < arena_.size(); ++i) arena_.agent(i).save_state(payload);
  }

  payload.b(metrics_view != nullptr);
  if (metrics_view != nullptr) metrics_view->save_state(payload);

  payload.b(config_.probe != nullptr);
  if (config_.probe != nullptr) config_.probe->save_state(payload);

  payload.b(config_.congestion != nullptr);
  if (config_.congestion != nullptr) config_.congestion->save_state(payload);

  payload.u64(checkpointables_.size());
  for (const auto& [name, component] : checkpointables_) {
    payload.str(name);
    util::BinWriter section;
    component->save_state(section);
    payload.str(section.bytes());
  }

  serialize_span.close();
  ckpt::write_snapshot_atomic(config_.checkpoint_path, payload.bytes(),
                              trace_.get(), obs::FlightRecorder::kEngineTrack,
                              config_.snapshot_format);
  ++checkpoints_written_;
  last_checkpoint_time_ = resume_time;
  checkpoint_wall_s_ +=
      std::chrono::duration<double>(Clock::now() - start).count();
  beat("checkpoint", resume_time);
}

void Engine::resume_from(const std::string& path) {
  if (ran_) {
    throw std::logic_error("sim::Engine::resume_from: engine already ran");
  }
  const ckpt::Snapshot snapshot = ckpt::read_snapshot_versioned(path);
  util::BinReader in(snapshot.payload);

  const auto fingerprint = in.u64();
  if (fingerprint != fleet_fingerprint()) {
    throw ckpt::SnapshotError(
        path +
        ": snapshot fleet/config fingerprint mismatch — the engine must be "
        "rebuilt with the identical seed, horizon and fleet before resuming");
  }
  resume_time_ = in.i64();
  wakes_ = in.u64();
  last_time_ = in.i64();

  resume_events_.clear();
  const auto n_events = in.u64();
  resume_events_.reserve(n_events);
  for (std::uint64_t i = 0; i < n_events; ++i) {
    const auto time = in.i64();
    const auto agent = in.u32();
    if (agent >= arena_.size()) {
      throw ckpt::SnapshotError(path + ": snapshot references agent index " +
                                std::to_string(agent) + " beyond fleet size " +
                                std::to_string(arena_.size()));
    }
    resume_events_.emplace_back(time, agent);
  }

  const auto n_agents = in.u64();
  if (n_agents != arena_.size()) {
    throw ckpt::SnapshotError(
        path + ": snapshot holds " + std::to_string(n_agents) +
        " agents but the rebuilt engine has " + std::to_string(arena_.size()));
  }
  arena_.freeze();
  if (snapshot.version >= 3) {
    arena_.restore_state(in);  // hydration-flagged arena section
  } else {
    arena_.restore_state_all(in);  // legacy: every agent saved
  }

  const bool has_metrics = in.b();
  if (has_metrics != (config_.metrics != nullptr)) {
    throw ckpt::SnapshotError(
        path + ": snapshot and engine disagree on metrics instrumentation "
               "(both runs must enable or disable it together)");
  }
  if (has_metrics) config_.metrics->restore_state(in);

  const bool has_probe = in.b();
  if (has_probe != (config_.probe != nullptr)) {
    throw ckpt::SnapshotError(
        path + ": snapshot and engine disagree on probe instrumentation "
               "(both runs must enable or disable it together)");
  }
  if (has_probe) config_.probe->restore_state(in);

  const bool has_congestion = in.b();
  if (has_congestion != (config_.congestion != nullptr)) {
    throw ckpt::SnapshotError(
        path + ": snapshot and engine disagree on the congestion model "
               "(both runs must install or omit it together)");
  }
  if (has_congestion) config_.congestion->restore_state(in);

  const auto n_components = in.u64();
  if (n_components != checkpointables_.size()) {
    throw ckpt::SnapshotError(
        path + ": snapshot holds " + std::to_string(n_components) +
        " checkpointable components but " +
        std::to_string(checkpointables_.size()) + " are registered");
  }
  for (auto& [name, component] : checkpointables_) {
    const auto saved_name = in.str();
    if (saved_name != name) {
      throw ckpt::SnapshotError(path + ": checkpointable order mismatch: "
                                       "snapshot has '" +
                                saved_name + "' where '" + name +
                                "' is registered");
    }
    const auto section = in.str();
    util::BinReader section_in(section);
    component->restore_state(section_in);
    section_in.expect_exhausted("checkpointable '" + name + "'");
  }
  in.expect_exhausted("engine snapshot " + path);

  // Replace the add_fleet initial schedule with the snapshot's pending
  // events (single-threaded path runs straight off queue_; the sharded path
  // re-partitions resume_events_ itself).
  queue_ = EventQueue{};
  queue_.reserve(resume_events_.size());
  for (const auto& [time, agent] : resume_events_) queue_.schedule(time, agent);

  resumed_ = true;
  resumed_from_ = path;
}

void Engine::run(std::vector<RecordSink*> sinks) {
  if (ran_) {
    throw std::logic_error(
        "sim::Engine::run: engine already ran; build a new engine for a "
        "second run (the event queue is consumed)");
  }
  ran_ = true;
  if (config_.snapshot_format != 2 && config_.snapshot_format != ckpt::kSnapshotVersion) {
    throw std::logic_error("sim::Engine::run: unsupported snapshot_format " +
                           std::to_string(config_.snapshot_format));
  }
  arena_.freeze();
  beat(resumed_ ? "resume" : "init", resumed_ ? resume_time_ : 0,
       /*force=*/true);

  const std::size_t shard_count = std::min<std::size_t>(
      std::max(1u, config_.threads), std::max<std::size_t>(1, arena_.size()));
  if (shard_count <= 1) {
    run_single(sinks);
  } else {
    run_sharded(sinks, shard_count);
  }
  // An interrupted run withholds the run-summary metrics: the resumed
  // process emits them once at its own completion, so the resumed dump is
  // byte-identical to an uninterrupted run's (engine.runs stays 1).
  if (!interrupted_) finish_run_metrics();
  finish_telemetry();
}

void Engine::finish_telemetry() {
  // Runs strictly after the last snapshot write of this process, so
  // wall-clock-derived trace.* values never enter a snapshot (or a resumed
  // registry) and cadence-off byte-compare harnesses stay exact.
  if (trace_ != nullptr && config_.metrics != nullptr) {
    auto& m = *config_.metrics;
    m.gauge("trace.events_recorded")
        .set(static_cast<double>(trace_->events_recorded()));
    m.gauge("trace.events_dropped")
        .set(static_cast<double>(trace_->events_dropped()));
    m.gauge("trace.queue_depth_hwm").set(static_cast<double>(queue_depth_hwm_));
    m.gauge("trace.merge_wait_skew_s").set(merge_wait_skew_s_);
    // Wheel/arena internals are thread-count-dependent (per-shard queues
    // rebase independently; record arenas exist only when sharded), so they
    // live in the quarantined trace.* namespace like the other
    // wall-clock-adjacent values.
    m.gauge("trace.wheel_rebases").set(static_cast<double>(wheel_rebases_));
    m.gauge("trace.arena_resident_bytes")
        .set(static_cast<double>(arena_.resident_bytes()));
    m.gauge("trace.record_buffer_peak_bytes")
        .set(static_cast<double>(record_buffer_peak_bytes_));
    if (!shard_busy_s_.empty() && window_wall_s_ > 0.0) {
      const auto [lo, hi] =
          std::minmax_element(shard_busy_s_.begin(), shard_busy_s_.end());
      m.gauge("trace.shard_busy_frac_min").set(*lo / window_wall_s_);
      m.gauge("trace.shard_busy_frac_max").set(*hi / window_wall_s_);
    }
  }
  if (trace_ != nullptr) trace_->write(config_.trace_path);
  beat(interrupted_ ? "interrupted" : "done", last_time_, /*force=*/true);
}

void Engine::run_single(const std::vector<RecordSink*>& sinks) {
  MultiSink fanout;
  for (auto* sink : sinks) fanout.add(sink);
  obs::EngineProbe* probe = config_.probe;
  if (probe != nullptr) {
    fanout.add(probe);
    if (!resumed_) {
      probe->begin_run(config_.faults, queue_.size());
    } else {
      // The probe trajectory was restored from the snapshot; only the
      // borrowed schedule pointer needs re-binding in this process.
      probe->rebind_faults(config_.faults);
    }
  }

  AgentContext ctx;
  ctx.world = &world_;
  ctx.selector = &selector_;
  ctx.outcomes = &outcomes_;
  ctx.sink = &fanout;

  // One lookup before the loop — the env cannot change mid-run, and getenv
  // walks environ on every call on most libcs.
  const bool debug_wakes = ::getenv("WTR_DEBUG_WAKES") != nullptr;

  const stats::SimTime horizon_end = stats::day_start(config_.horizon_days);
  const stats::SimTime cadence_s =
      config_.checkpoint_every_sim_hours > 0
          ? config_.checkpoint_every_sim_hours * stats::kSecondsPerHour
          : 0;
  stats::SimTime stop_time = -1;
  if (config_.stop_after_sim_hours > 0) {
    const stats::SimTime t = config_.stop_after_sim_hours * stats::kSecondsPerHour;
    if (t < horizon_end) stop_time = t;
  }
  faults::CongestionModel* congestion = config_.congestion;
  const stats::SimTime bucket_s =
      congestion != nullptr ? congestion->config().bucket_s : 0;

  obs::FlightRecorder* rec = trace_.get();
  constexpr std::uint32_t kTrack = obs::FlightRecorder::kEngineTrack;
  const bool beating = heartbeat_ != nullptr;

  // The run is a sequence of checkpoint windows; without a cadence, a stop
  // point or a shutdown request the single window covers the whole horizon
  // and the loop below is step-for-step the legacy event loop.
  stats::SimTime window_start = resumed_ ? resume_time_ : 0;
  bool shutdown_hit = false;
  while (true) {
    stats::SimTime stop = horizon_end;
    if (cadence_s > 0) {
      stop = std::min(stop, (window_start / cadence_s + 1) * cadence_s);
    }
    if (bucket_s > 0) {
      stop = std::min(stop, (window_start / bucket_s + 1) * bucket_s);
    }
    if (stop_time >= 0) stop = std::min(stop, stop_time);

    obs::TraceSpan window_span(rec, kTrack, obs::TraceCat::kEngine, "window");
    const std::uint64_t window_wakes_before = wakes_;
    if (rec != nullptr && queue_.size() > queue_depth_hwm_) {
      queue_depth_hwm_ = queue_.size();
    }

    while (!queue_.empty() && *queue_.next_time() <= stop) {
      // With a congestion model installed, shutdown is honoured at window
      // boundaries only (a window is at most one bucket of sim time) —
      // snapshots then always land on absorbed-and-rolled bucket state,
      // mirroring the sharded path's barrier-only rule.
      if (congestion == nullptr && ckpt::shutdown_requested()) {
        shutdown_hit = true;
        break;
      }
      const Event event = queue_.pop();
      ++wakes_;
      last_time_ = event.time;
      if (probe != nullptr && probe->due(event.time)) {
        // +1: the popped event is still in flight at the sample instant.
        probe->on_tick(event.time, queue_.size() + 1, wakes_);
      }
      if (debug_wakes && wakes_ % kDebugWakeEvery == 0) {
        std::fprintf(stderr, "[engine] wakes=%llu t=%lld agent=%u queue=%zu\n",
                     (unsigned long long)wakes_, (long long)event.time, event.agent,
                     queue_.size());
      }
      if (rec != nullptr && (wakes_ & kTraceWakeMask) == 0) {
        rec->instant(kTrack, obs::TraceCat::kEngine, "wake_batch", "wakes",
                     static_cast<std::int64_t>(wakes_), "queue",
                     static_cast<std::int64_t>(queue_.size()));
        if (queue_.size() > queue_depth_hwm_) queue_depth_hwm_ = queue_.size();
      }
      if (beating && (wakes_ & kBeatWakeMask) == 0) {
        beat("run", event.time);
      }
      auto& agent = arena_.agent(event.agent);
      if (const auto next = agent.on_wake(event.time, ctx)) {
        queue_.schedule(*next, event.agent);
      }
    }
    window_span.set_args("wakes", static_cast<std::int64_t>(wakes_ - window_wakes_before),
                         "sim_stop", stop);
    window_span.close();

    if (congestion != nullptr) {
      obs::TraceSpan absorb_span(rec, kTrack, obs::TraceCat::kCongestion,
                                 "congestion_absorb");
      congestion->absorb(congestion_ledger_);
      absorb_span.set_args(
          "pending", static_cast<std::int64_t>(congestion->pending_attempts()),
          "sim_stop", stop);
      if (stop % bucket_s == 0) congestion->roll_to(stop);
      if (ckpt::shutdown_requested()) shutdown_hit = true;
    }

    if (shutdown_hit || (stop_time >= 0 && stop == stop_time)) {
      interrupted_ = true;
      // A shutdown can land mid-window (congestion off only): the snapshot
      // then resumes at the last processed event, which recomputes the same
      // next cadence boundary the interrupted process was heading for.
      const bool mid_window = shutdown_hit && congestion == nullptr;
      write_checkpoint(mid_window ? last_time_ : stop, queue_, config_.metrics);
      return;
    }
    window_start = stop;
    if (stop >= horizon_end) break;
    // Congestion bucket boundaries subdivide cadence windows; only cadence
    // multiples get a snapshot (exactly the pre-congestion stop set).
    if (cadence_s > 0 && stop % cadence_s == 0) {
      write_checkpoint(stop, queue_, config_.metrics);
    }
  }

  // The legacy loop popped (and discarded) the first beyond-horizon event
  // before exiting; replicate so the final probe sample sees the same
  // queue depth byte-for-byte.
  if (!queue_.empty()) queue_.pop();
  if (probe != nullptr) probe->end_run(last_time_, queue_.size(), wakes_);
  wheel_rebases_ = queue_.rebases();
}

void Engine::run_shard_window(Shard& shard, EventQueue& queue,
                              stats::SimTime stop) {
  AgentContext ctx;
  ctx.world = &world_;
  ctx.selector = &selector_;
  ctx.outcomes = &shard.outcomes;
  ctx.sink = &shard.buffer;

  // Shard-thread-side telemetry: this thread is the sole writer of
  // shard.track and of the shard's busy/hwm fields; the pool barrier
  // publishes them to the merge thread.
  const std::int64_t t0 = shard.trace != nullptr ? shard.trace->now_ns() : 0;
  const std::uint64_t wakes_before = shard.wakes;
  if (shard.trace != nullptr && queue.size() > shard.queue_hwm) {
    shard.queue_hwm = queue.size();
  }

  while (!queue.empty() && *queue.next_time() <= stop) {
    const Event event = queue.pop();
    ++shard.wakes;
    // Shards partition agents by index, so hydration targets disjoint
    // arena slots — no synchronization needed.
    auto& agent = arena_.agent(event.agent);
    const auto next = agent.on_wake(event.time, ctx);
    shard.buffer.end_wake(event.agent, next ? *next : RecordBuffer::kNoNextWake);
    if (next) queue.schedule(*next, event.agent);
  }

  if (shard.trace != nullptr) {
    const std::int64_t t1 = shard.trace->now_ns();
    shard.trace->complete(shard.track, obs::TraceCat::kShard, "shard_window",
                          t0, t1 - t0, "wakes",
                          static_cast<std::int64_t>(shard.wakes - wakes_before),
                          "sim_stop", stop);
    shard.busy_s += static_cast<double>(t1 - t0) * 1e-9;
  }
}

void Engine::run_sharded(const std::vector<RecordSink*>& sinks,
                         std::size_t shard_count) {
  using Clock = std::chrono::steady_clock;

  MultiSink fanout;
  for (auto* sink : sinks) fanout.add(sink);
  obs::EngineProbe* probe = config_.probe;
  if (probe != nullptr) {
    fanout.add(probe);
    if (!resumed_) {
      // queue_ still holds exactly the initial events (one per agent), so
      // the reported initial depth matches the single-threaded path.
      probe->begin_run(config_.faults, queue_.size());
    } else {
      probe->rebind_faults(config_.faults);
    }
  }

  std::vector<Shard> shards;
  shards.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards.emplace_back(config_.outcomes, config_.faults, config_.metrics,
                        config_.congestion);
    if (trace_ != nullptr) {
      shards.back().trace = trace_.get();
      shards.back().track = obs::FlightRecorder::shard_track(s);
    }
  }
  obs::FlightRecorder* rec = trace_.get();
  constexpr std::uint32_t kTrack = obs::FlightRecorder::kEngineTrack;
  std::vector<double> busy_before(shard_count, 0.0);

  // Shard queues persist across checkpoint windows: pending events carry
  // over; only the record arenas are drained per window. Initial schedule
  // in ascending agent index — the merge replay relies on this matching
  // the global add_fleet order restricted to each shard. On resume the
  // snapshot's pending events (already in global pop order) re-partition
  // the same way.
  std::vector<EventQueue> shard_queues(shard_count);
  for (auto& queue : shard_queues) queue.reserve(arena_.size() / shard_count + 1);
  EventQueue merged;
  merged.reserve(arena_.size());
  if (!resumed_) {
    for (std::size_t i = 0; i < arena_.size(); ++i) {
      shard_queues[i % shard_count].schedule(arena_.first_wake(i),
                                             static_cast<AgentIndex>(i));
      merged.schedule(arena_.first_wake(i), static_cast<AgentIndex>(i));
    }
  } else {
    for (const auto& [time, agent] : resume_events_) {
      shard_queues[agent % shard_count].schedule(time, agent);
      merged.schedule(time, agent);
    }
  }

  const bool debug_wakes = ::getenv("WTR_DEBUG_WAKES") != nullptr;
  const stats::SimTime horizon_end = stats::day_start(config_.horizon_days);
  const stats::SimTime cadence_s =
      config_.checkpoint_every_sim_hours > 0
          ? config_.checkpoint_every_sim_hours * stats::kSecondsPerHour
          : 0;
  stats::SimTime stop_time = -1;
  if (config_.stop_after_sim_hours > 0) {
    const stats::SimTime t = config_.stop_after_sim_hours * stats::kSecondsPerHour;
    if (t < horizon_end) stop_time = t;
  }
  faults::CongestionModel* congestion = config_.congestion;
  const stats::SimTime bucket_s =
      congestion != nullptr ? congestion->config().bucket_s : 0;

  std::vector<RecordBuffer::Cursor> cursors(shard_count);
  util::ThreadPool pool(shard_count);
  double merge_total_s = 0.0;
  stats::SimTime window_start = resumed_ ? resume_time_ : 0;
  stats::SimTime stop = 0;
  bool reached_horizon = false;
  while (true) {
    stop = horizon_end;
    if (cadence_s > 0) {
      stop = std::min(stop, (window_start / cadence_s + 1) * cadence_s);
    }
    if (bucket_s > 0) {
      stop = std::min(stop, (window_start / bucket_s + 1) * bucket_s);
    }
    if (stop_time >= 0) stop = std::min(stop, stop_time);

    obs::TraceSpan fanout_span(rec, kTrack, obs::TraceCat::kMerge,
                               "shard_fanout");
    const auto fanout_start =
        rec != nullptr ? Clock::now() : Clock::time_point{};
    if (rec != nullptr) {
      for (std::size_t s = 0; s < shard_count; ++s) {
        busy_before[s] = shards[s].busy_s;
      }
    }
    for (std::size_t s = 0; s < shard_count; ++s) {
      Shard* shard = &shards[s];
      EventQueue* queue = &shard_queues[s];
      pool.submit([this, shard, queue, stop] {
        run_shard_window(*shard, *queue, stop);
      });
    }
    pool.wait();
    if (rec != nullptr) {
      // The barrier just quiesced the workers, so their busy counters are
      // safe to read: the skew is how long the fastest shard sat idle
      // waiting for the slowest this window.
      double lo = shards[0].busy_s - busy_before[0];
      double hi = lo;
      for (std::size_t s = 1; s < shard_count; ++s) {
        const double d = shards[s].busy_s - busy_before[s];
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
      merge_wait_skew_s_ += hi - lo;
      window_wall_s_ +=
          std::chrono::duration<double>(Clock::now() - fanout_start).count();
    }
    fanout_span.set_args("sim_stop", stop);
    fanout_span.close();

    // --- Deterministic k-way merge of this window ---------------------------
    // Rebuild the exact single-threaded pop order by replaying the
    // schedule: each replayed wake re-schedules its recorded next wake at
    // pop time, reproducing the global seq assignment without re-running
    // any agent.
    const auto merge_start = Clock::now();
    obs::TraceSpan merge_span(rec, kTrack, obs::TraceCat::kMerge, "merge");
    const std::uint64_t merge_wakes_before = wakes_;
    while (!merged.empty() && *merged.next_time() <= stop) {
      const Event event = merged.pop();
      ++wakes_;
      last_time_ = event.time;
      if (probe != nullptr && probe->due(event.time)) {
        probe->on_tick(event.time, merged.size() + 1, wakes_);
      }
      if (debug_wakes && wakes_ % kDebugWakeEvery == 0) {
        std::fprintf(stderr, "[engine] wakes=%llu t=%lld agent=%u queue=%zu\n",
                     (unsigned long long)wakes_, (long long)event.time, event.agent,
                     merged.size());
      }
      const std::size_t s = event.agent % shard_count;
      assert(shards[s].buffer.peek_agent(cursors[s]) == event.agent);
      const stats::SimTime next = shards[s].buffer.replay_wake(cursors[s], fanout);
      if (next != RecordBuffer::kNoNextWake) merged.schedule(next, event.agent);
    }
    merge_span.set_args("wakes",
                        static_cast<std::int64_t>(wakes_ - merge_wakes_before),
                        "sim_stop", stop);
    merge_span.close();
    if (rec != nullptr && merged.size() > queue_depth_hwm_) {
      queue_depth_hwm_ = merged.size();
    }
    merge_total_s +=
        std::chrono::duration<double>(Clock::now() - merge_start).count();
    beat("run", stop);

#ifndef NDEBUG
    // The window boundary is a barrier: every wake a shard processed this
    // window must have been replayed exactly once.
    for (std::size_t s = 0; s < shard_count; ++s) {
      assert(cursors[s].wake == shards[s].buffer.wake_count());
    }
#endif
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards[s].buffer.clear();
      cursors[s] = RecordBuffer::Cursor{};
    }

    // Fold the shards' private attempt ledgers into the model and, on a
    // bucket boundary, roll the reject probabilities for the next bucket.
    // This runs on the merge thread between pool.wait() and the next
    // submit, so workers only ever see an immutable model — and ledger
    // addition is commutative, so the fixed shard order cannot differ from
    // the single-threaded total.
    if (congestion != nullptr) {
      obs::TraceSpan absorb_span(rec, kTrack, obs::TraceCat::kCongestion,
                                 "congestion_merge");
      for (auto& shard : shards) congestion->absorb(shard.ledger);
      absorb_span.set_args(
          "pending", static_cast<std::int64_t>(congestion->pending_attempts()),
          "sim_stop", stop);
      if (stop % bucket_s == 0) congestion->roll_to(stop);
    }

    // Shutdown requests are honoured at barriers only — mid-window the
    // shard agents have advanced past the merge point, so barrier state is
    // the only consistent snapshot state in sharded mode.
    if ((stop_time >= 0 && stop == stop_time) || ckpt::shutdown_requested()) {
      interrupted_ = true;
      break;
    }
    window_start = stop;
    if (stop >= horizon_end) {
      reached_horizon = true;
      break;
    }
    // Congestion bucket boundaries subdivide cadence windows; only cadence
    // multiples get a snapshot (exactly the pre-congestion stop set).
    if (cadence_s > 0 && stop % cadence_s == 0) {
      if (config_.metrics != nullptr) {
        // Snapshot the registry the single-threaded path would have at this
        // barrier: main contents plus every shard's delta so far.
        obs::MetricsRegistry barrier_view = *config_.metrics;
        for (const auto& shard : shards) barrier_view.merge_from(shard.metrics);
        write_checkpoint(stop, merged, &barrier_view);
      } else {
        write_checkpoint(stop, merged, nullptr);
      }
    }
  }

  if (reached_horizon) {
    // Legacy tail: pop the first beyond-horizon event before the final
    // probe sample, matching the single-threaded path byte-for-byte.
    if (!merged.empty()) merged.pop();
    if (probe != nullptr) probe->end_run(last_time_, merged.size(), wakes_);
  }

  merge_wall_s_ = merge_total_s;
  shard_wakes_.resize(shard_count);
  wheel_rebases_ = merged.rebases();
  for (std::size_t s = 0; s < shard_count; ++s) {
    shard_wakes_[s] = shards[s].wakes;
    wheel_rebases_ += shard_queues[s].rebases();
    record_buffer_peak_bytes_ += shards[s].buffer.resident_bytes();
    if (config_.metrics != nullptr) config_.metrics->merge_from(shards[s].metrics);
  }
  if (trace_ != nullptr) {
    shard_busy_s_.resize(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shard_busy_s_[s] = shards[s].busy_s;
      if (shards[s].queue_hwm > queue_depth_hwm_) {
        queue_depth_hwm_ = shards[s].queue_hwm;
      }
    }
  }

  if (interrupted_) {
    // Shard deltas were folded into the main registry above, so the main
    // registry IS the barrier view and the snapshot matches what a
    // threads=1 interrupt at this barrier would have written.
    write_checkpoint(stop, merged, config_.metrics);
  }
}

void Engine::finish_run_metrics() {
  if (config_.metrics == nullptr) return;
  config_.metrics->counter("engine.wakes").inc(wakes_);
  config_.metrics->counter("engine.runs").inc();
  config_.metrics->gauge("engine.agents").set_max(static_cast<double>(arena_.size()));
  // Thread-invariant: the set of agents that ever woke is fixed by the
  // schedule, not the shard count (a full run hydrates every agent; an
  // interrupted one defers this gauge to the resumed process, which ends
  // with the same hydration set an uninterrupted run would have).
  config_.metrics->gauge("engine.arena_hydrated")
      .set_max(static_cast<double>(arena_.hydrated_count()));
  config_.metrics->gauge("engine.horizon_days")
      .set(static_cast<double>(config_.horizon_days));
}

}  // namespace wtr::sim
