#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/engine_probe.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace wtr::sim {

namespace {

/// Debug-wake cadence shared by both execution paths (stderr heartbeat).
constexpr std::uint64_t kDebugWakeEvery = 2'000'000;

}  // namespace

/// Everything one shard's event loop owns: the record arena, its wake
/// count, and — when metrics are on — a private registry fed by a private
/// OutcomePolicy clone, so shard loops never touch shared counters.
struct Engine::Shard {
  Shard(const signaling::OutcomePolicyConfig& outcome_config,
        const faults::FaultSchedule* faults, obs::MetricsRegistry* main_metrics)
      : outcomes(outcome_config, faults, main_metrics != nullptr ? &metrics : nullptr) {}

  RecordBuffer buffer;
  obs::MetricsRegistry metrics;
  signaling::OutcomePolicy outcomes;
  std::uint64_t wakes = 0;
};

Engine::Engine(const topology::World& world, Config config)
    : world_(world),
      config_(config),
      selector_(world),
      outcomes_(config.outcomes, config.faults, config.metrics),
      rng_(config.seed) {}

void Engine::add_fleet(std::vector<devices::Device> fleet, AgentOptions options) {
  assert(!ran_);
  agents_.reserve(agents_.size() + fleet.size());
  first_wakes_.reserve(first_wakes_.size() + fleet.size());
  // Pre-size the heap for the initial scheduling burst (one event per agent)
  // so the burst never regrows mid-push.
  queue_.reserve(agents_.size() + fleet.size());
  for (auto& device : fleet) {
    // Clamp the device's window to the engine horizon.
    device.departure_day = std::min(device.departure_day, config_.horizon_days);
    auto agent = std::make_unique<DeviceAgent>(std::move(device), options,
                                               rng_.fork(agents_.size() + 1));
    if (const auto first = agent->first_wake()) {
      queue_.schedule(*first, static_cast<AgentIndex>(agents_.size()));
      agents_.push_back(std::move(agent));
      first_wakes_.push_back(*first);
    }
  }
}

void Engine::run(std::vector<RecordSink*> sinks) {
  if (ran_) {
    throw std::logic_error(
        "sim::Engine::run: engine already ran; build a new engine for a "
        "second run (the event queue is consumed)");
  }
  ran_ = true;

  const std::size_t shard_count = std::min<std::size_t>(
      std::max(1u, config_.threads), std::max<std::size_t>(1, agents_.size()));
  if (shard_count <= 1) {
    run_single(sinks);
  } else {
    run_sharded(sinks, shard_count);
  }
  finish_run_metrics();
}

void Engine::run_single(const std::vector<RecordSink*>& sinks) {
  MultiSink fanout;
  for (auto* sink : sinks) fanout.add(sink);
  obs::EngineProbe* probe = config_.probe;
  if (probe != nullptr) {
    fanout.add(probe);
    probe->begin_run(config_.faults, queue_.size());
  }

  AgentContext ctx;
  ctx.world = &world_;
  ctx.selector = &selector_;
  ctx.outcomes = &outcomes_;
  ctx.sink = &fanout;

  // One lookup before the loop — the env cannot change mid-run, and getenv
  // walks environ on every call on most libcs.
  const bool debug_wakes = ::getenv("WTR_DEBUG_WAKES") != nullptr;

  const stats::SimTime horizon_end = stats::day_start(config_.horizon_days);
  stats::SimTime last_time = 0;
  while (!queue_.empty()) {
    const Event event = queue_.pop();
    if (event.time > horizon_end) break;
    ++wakes_;
    last_time = event.time;
    if (probe != nullptr && probe->due(event.time)) {
      // +1: the popped event is still in flight at the sample instant.
      probe->on_tick(event.time, queue_.size() + 1, wakes_);
    }
    if (debug_wakes && wakes_ % kDebugWakeEvery == 0) {
      std::fprintf(stderr, "[engine] wakes=%llu t=%lld agent=%u queue=%zu\n",
                   (unsigned long long)wakes_, (long long)event.time, event.agent,
                   queue_.size());
    }
    auto& agent = *agents_[event.agent];
    if (const auto next = agent.on_wake(event.time, ctx)) {
      queue_.schedule(*next, event.agent);
    }
  }
  if (probe != nullptr) probe->end_run(last_time, queue_.size(), wakes_);
}

void Engine::run_shard_loop(std::size_t shard_index, std::size_t shard_count,
                            Shard& shard) {
  AgentContext ctx;
  ctx.world = &world_;
  ctx.selector = &selector_;
  ctx.outcomes = &shard.outcomes;
  ctx.sink = &shard.buffer;

  EventQueue queue;
  queue.reserve(agents_.size() / shard_count + 1);
  // Initial schedule in ascending agent index: the merge replay relies on
  // this matching the global add_fleet order restricted to the shard.
  for (std::size_t i = shard_index; i < agents_.size(); i += shard_count) {
    queue.schedule(first_wakes_[i], static_cast<AgentIndex>(i));
  }

  const stats::SimTime horizon_end = stats::day_start(config_.horizon_days);
  while (!queue.empty()) {
    const Event event = queue.pop();
    if (event.time > horizon_end) break;
    ++shard.wakes;
    auto& agent = *agents_[event.agent];
    const auto next = agent.on_wake(event.time, ctx);
    shard.buffer.end_wake(event.agent,
                          next ? *next : RecordBuffer::kNoNextWake);
    if (next) queue.schedule(*next, event.agent);
  }
}

void Engine::run_sharded(const std::vector<RecordSink*>& sinks,
                         std::size_t shard_count) {
  using Clock = std::chrono::steady_clock;

  MultiSink fanout;
  for (auto* sink : sinks) fanout.add(sink);
  obs::EngineProbe* probe = config_.probe;
  if (probe != nullptr) {
    fanout.add(probe);
    // queue_ still holds exactly the initial events (one per agent), so the
    // reported initial depth matches the single-threaded path.
    probe->begin_run(config_.faults, queue_.size());
  }

  std::vector<Shard> shards;
  shards.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards.emplace_back(config_.outcomes, config_.faults, config_.metrics);
  }

  {
    util::ThreadPool pool(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      Shard* shard = &shards[s];
      pool.submit([this, s, shard_count, shard] {
        run_shard_loop(s, shard_count, *shard);
      });
    }
    pool.wait();
  }

  // --- Deterministic k-way merge ------------------------------------------
  // Rebuild the exact single-threaded pop order by replaying the schedule:
  // initial wakes enter in agent order (seq 0..N-1, as in add_fleet), and
  // each replayed wake re-schedules its recorded next wake at pop time —
  // reproducing the global seq assignment without re-running any agent.
  const auto merge_start = Clock::now();

  const bool debug_wakes = ::getenv("WTR_DEBUG_WAKES") != nullptr;
  EventQueue merged;
  merged.reserve(agents_.size());
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    merged.schedule(first_wakes_[i], static_cast<AgentIndex>(i));
  }
  std::vector<RecordBuffer::Cursor> cursors(shard_count);

  const stats::SimTime horizon_end = stats::day_start(config_.horizon_days);
  stats::SimTime last_time = 0;
  while (!merged.empty()) {
    const Event event = merged.pop();
    if (event.time > horizon_end) break;
    ++wakes_;
    last_time = event.time;
    if (probe != nullptr && probe->due(event.time)) {
      probe->on_tick(event.time, merged.size() + 1, wakes_);
    }
    if (debug_wakes && wakes_ % kDebugWakeEvery == 0) {
      std::fprintf(stderr, "[engine] wakes=%llu t=%lld agent=%u queue=%zu\n",
                   (unsigned long long)wakes_, (long long)event.time, event.agent,
                   merged.size());
    }
    const std::size_t s = event.agent % shard_count;
    assert(shards[s].buffer.peek_agent(cursors[s]) == event.agent);
    const stats::SimTime next = shards[s].buffer.replay_wake(cursors[s], fanout);
    if (next != RecordBuffer::kNoNextWake) merged.schedule(next, event.agent);
  }
  if (probe != nullptr) probe->end_run(last_time, merged.size(), wakes_);

#ifndef NDEBUG
  // Every wake a shard processed must have been replayed exactly once.
  for (std::size_t s = 0; s < shard_count; ++s) {
    assert(cursors[s].wake == shards[s].buffer.wake_count());
  }
#endif

  merge_wall_s_ = std::chrono::duration<double>(Clock::now() - merge_start).count();

  shard_wakes_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shard_wakes_[s] = shards[s].wakes;
    if (config_.metrics != nullptr) config_.metrics->merge_from(shards[s].metrics);
  }
}

void Engine::finish_run_metrics() {
  if (config_.metrics == nullptr) return;
  config_.metrics->counter("engine.wakes").inc(wakes_);
  config_.metrics->counter("engine.runs").inc();
  config_.metrics->gauge("engine.agents").set_max(static_cast<double>(agents_.size()));
  config_.metrics->gauge("engine.horizon_days")
      .set(static_cast<double>(config_.horizon_days));
}

}  // namespace wtr::sim
