#pragma once

// DeviceAgent: the per-device behaviour process. On every wake it advances
// mobility, maintains its attachment (attach / reselect / fall back across
// RATs, emitting the exact signaling the paper's probes would capture),
// generates service usage (CDRs/xDRs), and schedules its next wake from its
// session-intensity process. Failed attach attempts reschedule aggressively,
// which is what produces the signaling-flood tail of Fig. 3-left.

#include <optional>

#include "devices/device.hpp"
#include "records/cdr.hpp"
#include "records/xdr.hpp"
#include "signaling/attach_backoff.hpp"
#include "signaling/emm_state.hpp"
#include "signaling/outcome_policy.hpp"
#include "signaling/t3346.hpp"
#include "sim/mobility.hpp"
#include "sim/network_selection.hpp"
#include "stats/rng.hpp"
#include "stats/sim_time.hpp"

namespace wtr::sim {

/// Streaming consumer of simulation output. Implementations aggregate in
/// place (catalog builders, platform-stat accumulators) or buffer raw rows
/// (trace exporters). Default no-ops let consumers subscribe selectively.
class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// `data_context` tells which radio interface family the event rides on.
  virtual void on_signaling(const signaling::SignalingTransaction& txn,
                            bool data_context) {
    (void)txn;
    (void)data_context;
  }
  virtual void on_cdr(const records::Cdr& cdr) { (void)cdr; }
  virtual void on_xdr(const records::Xdr& xdr) { (void)xdr; }
  /// Time spent attached at a location within a single day (already split
  /// on day boundaries). Basis of the centroid/gyration metrics. Carries
  /// the visited network so observers can keep only their own sectors.
  virtual void on_dwell(signaling::DeviceHash device, std::int32_t day,
                        cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                        double seconds) {
    (void)device;
    (void)day;
    (void)visited_plmn;
    (void)location;
    (void)seconds;
  }
};

/// Shared (per-engine) context handed to agents on every wake.
struct AgentContext {
  const topology::World* world = nullptr;
  const NetworkSelector* selector = nullptr;
  const signaling::OutcomePolicy* outcomes = nullptr;
  RecordSink* sink = nullptr;
};

/// Synchronized check-in (thundering herd): replaces the exponential
/// session process with fixed-period beats anchored at `offset_s` plus a
/// small uniform jitter — the firmware pattern where a whole fleet reports
/// in near-simultaneously (the Finley cellular-IoT studies' dominant M2M
/// traffic shape, and the load spike the congestion model feeds on).
struct SyncCheckinConfig {
  bool enabled = false;
  double period_s = 6.0 * 3600.0;
  double offset_s = 0.0;
  /// Uniform [0, jitter_s) added per beat; small values keep the herd tight.
  double jitter_s = 30.0;
};

/// Staged FOTA campaign with failed-image retry storms: the device's wave
/// (id mod `waves`) starts at `start_s + wave * wave_interval_s`; each
/// attempt downloads the image and fails with `failure_p`, retrying after
/// `retry_s` plus uniform jitter, up to `max_attempts` total attempts.
struct FotaCampaignConfig {
  bool enabled = false;
  stats::SimTime start_s = 0;
  int waves = 4;
  stats::SimTime wave_interval_s = 3600;
  double image_bytes = 8.0 * 1024.0 * 1024.0;
  double failure_p = 0.0;
  stats::SimTime retry_s = 600;
  double retry_jitter_s = 120.0;
  int max_attempts = 6;
};

struct AgentOptions {
  TravelCorridor corridor;       // long-haul destinations
  int max_attach_attempts = 3;   // networks tried per wake before giving up
  /// Legacy retry model: wake-rate multiplier while unattached. Used only
  /// when `backoff.enabled` is false; it is the tuned approximation the
  /// calibrated scenarios were fit with.
  double retry_rate_boost = 15.0;
  /// Mechanistic retry model: 3GPP T3411/T3402 attach backoff. When
  /// enabled, failed attach rounds schedule the next wake from the backoff
  /// state machine instead of boosting the session rate — retry storms then
  /// emerge from synchronized timers rather than a multiplier.
  signaling::AttachBackoffConfig backoff{};
  /// After the (sticky) primary network rejects the device, probability of
  /// trying further networks this wake rather than backing off. Real UE
  /// firmware retries its stored PLMN list conservatively; this is what
  /// keeps even pure-failure devices from spraying across every VMNO.
  double p_explore_after_failure = 0.25;
  double uplink_fraction_m2m = 0.70;   // M2M traffic is uplink-heavy
  double uplink_fraction_phone = 0.25;
  /// Honour 3GPP congestion controls: start T3346 on a kCongestion reject
  /// and respect extended access barring when `eab_member`. False models
  /// legacy firmware that treats congestion as a generic failure and keeps
  /// hammering — the death-spiral fleet in the A/B storm bench. Irrelevant
  /// (and RNG-invisible) while no congestion model is installed.
  bool honor_congestion_control = true;
  /// Delay-tolerant device class (smart meters): subject to EAB, shedding
  /// load first when the network is overloaded.
  bool eab_member = false;
  SyncCheckinConfig checkin{};
  FotaCampaignConfig fota{};
};

class DeviceAgent {
 public:
  /// Hydration constructor (see sim::AgentArena): binds the agent to its
  /// arena-owned device row and interned options, with `rng` already past
  /// the first-wake draw and `first_wake` as computed by plan_first_wake at
  /// registration. Both pointers must outlive the agent; `device` is
  /// mutated in place (position, current country).
  DeviceAgent(devices::Device* device, const AgentOptions* options, stats::Rng rng,
              stats::SimTime first_wake);

  /// Registration-time half of agent construction: the first wake time
  /// (within the device's arrival day), drawn from `rng` exactly as the
  /// eager construction path always did. Requires a non-empty active
  /// window (callers check and drop empty-window devices before drawing).
  [[nodiscard]] static stats::SimTime plan_first_wake(const devices::Device& device,
                                                      stats::Rng& rng);

  /// Handle a wake at `now`; returns the next wake time, or nullopt when
  /// the device is done for the simulation.
  std::optional<stats::SimTime> on_wake(stats::SimTime now, const AgentContext& ctx);

  [[nodiscard]] const devices::Device& device() const noexcept { return *device_; }
  [[nodiscard]] const signaling::EmmStateMachine& emm() const noexcept { return emm_; }
  [[nodiscard]] const signaling::AttachBackoff& backoff() const noexcept {
    return backoff_;
  }
  [[nodiscard]] const signaling::T3346Timer& t3346() const noexcept { return t3346_; }
  [[nodiscard]] bool fota_done() const noexcept { return fota_done_; }
  [[nodiscard]] std::int32_t fota_attempts() const noexcept { return fota_attempts_; }

  /// Checkpoint support: serialize everything that mutates after
  /// construction (RNG stream, EMM machine, backoff timers, position,
  /// serving cell, dwell bookkeeping). The immutable identity/behaviour
  /// fields are rebuilt deterministically by the scenario; restore_state
  /// verifies the device id matches and throws std::runtime_error when the
  /// snapshot belongs to a differently composed fleet.
  void save_state(util::BinWriter& out) const;
  void restore_state(util::BinReader& in);

 private:
  struct Serving {
    topology::OperatorId visited = topology::kInvalidOperator;
    cellnet::Rat rat = cellnet::Rat::kTwoG;
    cellnet::SectorId sector = 0;
    cellnet::GeoPoint location{};
    bool is_home = false;
  };

  [[nodiscard]] stats::SimTime departure_time() const noexcept;
  [[nodiscard]] std::optional<stats::SimTime> schedule_next(stats::SimTime now);
  void finalize(stats::SimTime now, const AgentContext& ctx);

  /// Locate the serving sector / position for an attachment.
  [[nodiscard]] Serving locate(const AgentContext& ctx, const NetworkChoice& choice) const;

  void emit_signaling(const AgentContext& ctx, stats::SimTime now,
                      signaling::Procedure procedure, signaling::ResultCode result,
                      cellnet::Rat rat, bool data_context);
  void flush_dwell(const AgentContext& ctx, stats::SimTime now);

  /// Try to attach somewhere; emits all attempt signaling. Returns true on
  /// success (serving_ becomes valid).
  bool try_attach(const AgentContext& ctx, stats::SimTime now,
                  std::optional<topology::OperatorId> exclude);

  void do_session(const AgentContext& ctx, stats::SimTime now);

  /// Start of this device's FOTA wave (campaign start + wave offset).
  [[nodiscard]] stats::SimTime fota_wave_time() const noexcept;
  /// Future instant the FOTA campaign wants a wake for, if any.
  [[nodiscard]] std::optional<stats::SimTime> fota_due_time(stats::SimTime now) const;
  /// Attempt the pending FOTA download while attached (emits the transfer
  /// xDR; failures arm the retry timer — the retry-storm generator).
  void maybe_fota(const AgentContext& ctx, stats::SimTime now);

  devices::Device* device_;         // arena-owned row, mutated in place
  const AgentOptions* options_;     // interned per fleet, shared
  stats::Rng rng_;
  signaling::EmmStateMachine emm_;
  signaling::AttachBackoff backoff_;
  /// Congestion-control mobility backoff; started on kCongestion rejects
  /// when honor_congestion_control is set, and gates re-attach until expiry.
  signaling::T3346Timer t3346_;
  // FOTA campaign progress (inert unless options_.fota.enabled).
  bool fota_done_ = false;
  std::int32_t fota_attempts_ = 0;
  stats::SimTime fota_retry_at_ = -1;
  /// Delay chosen by the backoff machine after the last failed attach round
  /// (seconds); consumed by schedule_next when backoff is enabled.
  double pending_retry_delay_s_ = 0.0;
  Serving serving_{};
  /// Last successfully used network: real devices are sticky — they camp on
  /// the network that worked until steering, failure or a border crossing
  /// forces a change. This is what keeps 65% of roaming devices on a single
  /// VMNO (Fig. 3-center) despite many attach cycles.
  std::optional<topology::OperatorId> preferred_visited_;
  stats::SimTime last_wake_ = 0;
  stats::SimTime dwell_since_ = 0;
  bool last_attach_failed_ = false;  // drives the retry-rate boost
  bool finalized_ = false;
};

}  // namespace wtr::sim
