#include "sim/device_agent.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "cellnet/country.hpp"
#include "stats/distributions.hpp"

namespace wtr::sim {

using stats::SimTime;

DeviceAgent::DeviceAgent(devices::Device* device, const AgentOptions* options,
                         stats::Rng rng, stats::SimTime first_wake)
    : device_(device),
      options_(options),
      rng_(rng),
      backoff_(options->backoff),
      last_wake_(first_wake),
      dwell_since_(first_wake) {
  assert(device != nullptr && options != nullptr);
}

SimTime DeviceAgent::departure_time() const noexcept {
  return stats::day_start(device_->departure_day);
}

SimTime DeviceAgent::plan_first_wake(const devices::Device& device, stats::Rng& rng) {
  assert(device.departure_day > device.arrival_day);
  const SimTime start = stats::day_start(device.arrival_day);
  const SimTime offset =
      static_cast<SimTime>(rng.uniform() * static_cast<double>(stats::kSecondsPerDay));
  return start + offset;
}

std::optional<SimTime> DeviceAgent::schedule_next(SimTime now) {
  // T3346 wins while running: the UE may not retry mobility management
  // until the network-assigned congestion backoff expires, whatever the
  // session process or the T3411 machine would prefer.
  const bool t3346_wait = options_->honor_congestion_control && !emm_.attached() &&
                          t3346_.running(now);
  SimTime next;
  if (t3346_wait) {
    next = t3346_.expiry();
  } else if (options_->backoff.enabled && !emm_.attached() && last_attach_failed_) {
    // Mechanistic retry path: a failed attach round schedules the next wake
    // from the 3GPP backoff machine (T3411 short retry, T3402 long backoff).
    // The delay was drawn in try_attach; no further randomness is consumed.
    next = now + static_cast<SimTime>(std::max(1.0, pending_retry_delay_s_));
  } else if (options_->checkin.enabled) {
    // Synchronized check-in: the next fixed-period beat after `now`,
    // anchored at offset_s, plus a small uniform jitter. The whole fleet
    // shares the anchor — the thundering herd is the point.
    const double period = std::max(1.0, options_->checkin.period_s);
    const double now_d = static_cast<double>(now);
    double beat = options_->checkin.offset_s;
    if (now_d >= beat) {
      beat += (std::floor((now_d - beat) / period) + 1.0) * period;
    }
    beat += rng_.uniform() * std::max(0.0, options_->checkin.jitter_s);
    next = static_cast<SimTime>(beat);
  } else {
    // Session process: exponential inter-arrival at the device's rate,
    // modulated by the profile's diurnal shape. Unattached devices retry
    // faster (registration storms — the Fig. 3 signaling-flood tail).
    double rate_per_s =
        device_->sessions_per_day / static_cast<double>(stats::kSecondsPerDay);
    // Registration retries back off only from *failed* attach attempts; a
    // device that detached voluntarily wakes at its normal session rate.
    if (!emm_.attached() && last_attach_failed_) {
      rate_per_s *= options_->retry_rate_boost;
    }
    const double weight = stats::diurnal_weight(now, device_->profile.diurnal_floor);
    rate_per_s *= std::max(0.02, weight);
    double dt = stats::sample_exponential(rng_, std::max(rate_per_s, 1e-9));
    dt = stats::clamped(dt, 30.0, 7.0 * stats::kSecondsPerDay);
    next = now + static_cast<SimTime>(dt);
  }

  // A pending FOTA wave/retry due before the natural beat pulls the wake
  // earlier — unless T3346 bars the device anyway.
  if (!t3346_wait) {
    if (const auto due = fota_due_time(now); due && *due < next) next = *due;
  }

  if (next >= departure_time()) next = departure_time();
  if (next <= now) next = now + 1;
  return next;
}

DeviceAgent::Serving DeviceAgent::locate(const AgentContext& ctx,
                                         const NetworkChoice& choice) const {
  Serving serving;
  serving.visited = choice.visited;
  serving.rat = choice.rat;
  serving.is_home = choice.is_home_network;
  const auto radio = ctx.world->operators().radio_network_of(choice.visited);
  if (ctx.world->coverage().has_grid(radio)) {
    const auto& grid = ctx.world->coverage().grid(radio);
    // Devices camp on the nearest sector. If that sector does not deploy
    // the desired RAT but deploys a lower one the hardware supports, the
    // RAT degrades in place (rural 2G pockets); only a device with no
    // usable technology on the local sector hunts for a farther one.
    const auto& local = grid.serving_sector(device_->east_m, device_->north_m);
    if (local.rats.has(choice.rat)) {
      serving.sector = local.id;
      serving.location = local.location;
    } else {
      const auto usable = device_->capability.intersect(local.rats);
      if (usable.any()) {
        serving.sector = local.id;
        serving.location = local.location;
        if (usable.has(cellnet::Rat::kFourG)) {
          serving.rat = cellnet::Rat::kFourG;
        } else if (usable.has(cellnet::Rat::kThreeG)) {
          serving.rat = cellnet::Rat::kThreeG;
        } else if (usable.has(cellnet::Rat::kTwoG)) {
          serving.rat = cellnet::Rat::kTwoG;
        } else {
          serving.rat = cellnet::Rat::kNbIot;
        }
      } else {
        const auto sector_id =
            grid.serving_sector_with_rat(device_->east_m, device_->north_m, choice.rat);
        const auto& sector = grid.sector(sector_id ? *sector_id : local.id);
        serving.sector = sector.id;
        serving.location = sector.location;
      }
    }
  } else {
    // Coverage disabled: approximate position from the country anchor.
    const auto country = cellnet::country_by_iso(device_->current_country);
    const cellnet::GeoPoint anchor =
        country ? cellnet::GeoPoint{country->lat, country->lon} : cellnet::GeoPoint{};
    serving.sector = 0;
    serving.location = cellnet::offset_m(anchor, device_->east_m, device_->north_m);
  }
  return serving;
}

void DeviceAgent::emit_signaling(const AgentContext& ctx, SimTime now,
                                 signaling::Procedure procedure,
                                 signaling::ResultCode result, cellnet::Rat rat,
                                 bool data_context) {
  signaling::SignalingTransaction txn;
  txn.device = device_->id;
  txn.time = now;
  txn.sim_plmn = ctx.world->operators().get(device_->home_operator).plmn;
  txn.visited_plmn = ctx.world->operators().get(serving_.visited).plmn;
  txn.procedure = procedure;
  txn.result = result;
  txn.rat = rat;
  txn.sector = serving_.sector;
  txn.tac = device_->imei.tac();
  ctx.sink->on_signaling(txn, data_context);
}

void DeviceAgent::flush_dwell(const AgentContext& ctx, SimTime now) {
  if (!emm_.attached() || now <= dwell_since_) {
    dwell_since_ = now;
    return;
  }
  // Split the dwell interval on day boundaries so daily mobility metrics
  // see exactly the time spent within each day.
  const auto visited_plmn = ctx.world->operators().get(serving_.visited).plmn;
  SimTime from = dwell_since_;
  while (from < now) {
    const std::int32_t day = stats::day_of(from);
    const SimTime day_end = stats::day_start(day + 1);
    const SimTime to = std::min(now, day_end);
    ctx.sink->on_dwell(device_->id, day, visited_plmn, serving_.location,
                       static_cast<double>(to - from));
    from = to;
  }
  dwell_since_ = now;
}

bool DeviceAgent::try_attach(const AgentContext& ctx, SimTime now,
                             std::optional<topology::OperatorId> exclude) {
  assert(!emm_.attached());
  auto candidates = ctx.selector->scan(*device_, exclude, rng_);
  // Stickiness: move the last successfully used network to the front.
  if (preferred_visited_ && (!exclude || *exclude != *preferred_visited_)) {
    const auto it = std::find_if(candidates.begin(), candidates.end(),
                                 [&](const NetworkChoice& c) {
                                   return c.visited == *preferred_visited_;
                                 });
    if (it != candidates.end()) {
      std::rotate(candidates.begin(), it, it + 1);
    }
  }
  int attempts = 0;
  bool barred_any = false;
  bool congested = false;
  topology::OperatorId congested_radio = topology::kInvalidOperator;
  for (const auto& candidate : candidates) {
    if (attempts >= options_->max_attach_attempts) break;
    // Extended access barring: a delay-tolerant device that honours the
    // barring bitmap may not even signal on an overloaded network — the
    // attempt is suppressed at the radio level, consuming no RNG (the EAB
    // state is barrier-synchronized, so every thread count sees the same
    // bitmap here).
    if (options_->eab_member && options_->honor_congestion_control) {
      const auto radio = ctx.world->operators().radio_network_of(candidate.visited);
      if (ctx.outcomes->eab_barred(radio)) {
        ctx.outcomes->note_eab_barred(radio);
        barred_any = true;
        continue;
      }
    }
    // Conservative retry behaviour: once a network has been chosen (the
    // sticky preferred one, or the first scanned), a rejection usually ends
    // this wake's registration attempt instead of walking the PLMN list.
    if (attempts > 0 && !rng_.bernoulli(options_->p_explore_after_failure)) break;
    ++attempts;
    if (!preferred_visited_) preferred_visited_ = candidate.visited;
    std::optional<cellnet::Rat> rat = candidate.rat;
    // The chain is 4G → 3G → 2G; locate() may bend the RAT per-sector, so a
    // hard bound keeps the walk finite under any sector/hardware geometry.
    int chain_steps = 0;
    while (rat && chain_steps++ < 4) {
      serving_ =
          locate(ctx, NetworkChoice{candidate.visited, *rat, candidate.is_home_network});
      const cellnet::Rat effective_rat = serving_.rat;  // may degrade per-sector
      emm_.begin_attach(candidate.visited);
      const auto auth_result = ctx.outcomes->evaluate(
          *ctx.world, now, device_->home_operator, candidate.visited, effective_rat,
          device_->capability, device_->sim_allowed_rats, device_->subscription_ok,
          device_->fault_domain, rng_);
      emit_signaling(ctx, now, signaling::Procedure::kAuthentication, auth_result,
                     effective_rat, /*data_context=*/true);
      auto next_step = emm_.on_attach_step_result(auth_result);
      if (options_->honor_congestion_control &&
          auth_result == signaling::ResultCode::kCongestion) {
        congested = true;
        congested_radio = ctx.world->operators().radio_network_of(candidate.visited);
        break;
      }
      if (next_step) {
        const auto update_result = ctx.outcomes->evaluate(
            *ctx.world, now, device_->home_operator, candidate.visited, effective_rat,
            device_->capability, device_->sim_allowed_rats, device_->subscription_ok,
            device_->fault_domain, rng_);
        emit_signaling(ctx, now, signaling::Procedure::kUpdateLocation, update_result,
                       effective_rat, /*data_context=*/true);
        emm_.on_attach_step_result(update_result);
        if (options_->honor_congestion_control &&
            update_result == signaling::ResultCode::kCongestion) {
          congested = true;
          congested_radio = ctx.world->operators().radio_network_of(candidate.visited);
          break;
        }
      }
      if (emm_.attached()) {
        dwell_since_ = now;
        preferred_visited_ = candidate.visited;
        last_attach_failed_ = false;
        if (options_->backoff.enabled) backoff_.on_success();
        return true;
      }
      // RAT fallback on the same network (4G → 3G → 2G).
      rat = ctx.selector->radio_fallback_rat(*device_, candidate.visited, effective_rat);
    }
    if (congested) break;
  }
  serving_ = Serving{};
  if (congested) {
    // Congestion control: start T3346 at the network-assigned value with a
    // ±10% UE jitter (one uniform draw, only on this path). A congestion
    // reject does NOT advance the T3411/T3402 attempt counter (TS 24.301
    // §5.5.1.2.5) — the mobility backoff timer alone gates the next try.
    const double assigned = ctx.outcomes->congestion_backoff_s(congested_radio);
    const double jitter = 0.9 + 0.2 * rng_.uniform();
    t3346_.start(now + static_cast<SimTime>(std::max(1.0, assigned * jitter)));
    last_attach_failed_ = true;
    return false;
  }
  if (attempts == 0 && barred_any) {
    // Every candidate barred this device class: shed the load entirely —
    // no signaling happened, no backoff advances, and the next wake comes
    // at the natural session beat (graceful degradation, not a retry loop).
    last_attach_failed_ = false;
    return false;
  }
  last_attach_failed_ = true;
  // The whole round failed: advance the backoff machine. Drawing the retry
  // delay here (not in schedule_next) keeps the jitter draw adjacent to the
  // failure that caused it, and only when the mechanism is enabled — the
  // legacy path consumes an identical RNG stream to the pre-backoff build.
  if (options_->backoff.enabled) pending_retry_delay_s_ = backoff_.on_failure(rng_);
  return false;
}

void DeviceAgent::do_session(const AgentContext& ctx, SimTime now) {
  assert(emm_.attached());
  const auto& profile = device_->profile;

  // Mobility-management chatter riding on the session.
  const auto updates = stats::sample_poisson(rng_, profile.area_updates_per_session);
  for (std::uint64_t i = 0; i < updates; ++i) {
    const bool on_lte = serving_.rat == cellnet::Rat::kFourG;
    const auto procedure = emm_.area_update(on_lte);
    // Area updates ride an existing registration; they are not the
    // attach-family load the congestion model meters.
    const auto result = ctx.outcomes->evaluate(
        *ctx.world, now, device_->home_operator, serving_.visited, serving_.rat,
        device_->capability, device_->sim_allowed_rats, device_->subscription_ok,
        device_->fault_domain, rng_, /*attach_family=*/false);
    emit_signaling(ctx, now, procedure, result, serving_.rat, /*data_context=*/true);
  }

  const auto sim_plmn = ctx.world->operators().get(device_->home_operator).plmn;
  const auto visited_plmn = ctx.world->operators().get(serving_.visited).plmn;

  // Data usage.
  if (device_->uses_data()) {
    const double mean_session_bytes =
        device_->bytes_per_day / std::max(0.05, device_->sessions_per_day);
    const double noise = stats::sample_lognormal(rng_, -0.125, 0.5);  // mean ≈ 1
    const auto bytes = static_cast<std::uint64_t>(
        stats::clamped(mean_session_bytes * noise, 1.0, 1.0e11));
    const double up_fraction = device_->profile.device_class == devices::DeviceClass::kM2M
                                   ? options_->uplink_fraction_m2m
                                   : options_->uplink_fraction_phone;
    records::Xdr xdr;
    xdr.device = device_->id;
    xdr.time = now;
    xdr.sim_plmn = sim_plmn;
    xdr.visited_plmn = visited_plmn;
    xdr.bytes_up = static_cast<std::uint64_t>(static_cast<double>(bytes) * up_fraction);
    xdr.bytes_down = bytes - xdr.bytes_up;
    xdr.apn = device_->apn.to_string();
    xdr.rat = serving_.rat;
    ctx.sink->on_xdr(xdr);
  }

  // Voice usage, thinned to the device's call rate.
  if (device_->uses_voice()) {
    const double p_call =
        std::min(1.0, device_->calls_per_day / std::max(0.05, device_->sessions_per_day));
    if (rng_.bernoulli(p_call)) {
      records::Cdr cdr;
      cdr.device = device_->id;
      cdr.time = now;
      cdr.sim_plmn = sim_plmn;
      cdr.visited_plmn = visited_plmn;
      cdr.duration_s = stats::sample_exponential(
          rng_, 1.0 / std::max(1.0, device_->profile.call_seconds_mean));
      // Voice rides the circuit-switched interface of the serving RAT; on
      // LTE-only attachments it falls back (CSFB) to the best legacy RAT.
      cdr.rat = serving_.rat == cellnet::Rat::kFourG
                    ? (device_->capability.has(cellnet::Rat::kThreeG)
                           ? cellnet::Rat::kThreeG
                           : cellnet::Rat::kTwoG)
                    : serving_.rat;
      ctx.sink->on_cdr(cdr);
      // The call itself needs radio resources: one CS signaling event.
      emit_signaling(ctx, now, signaling::Procedure::kAttach, signaling::ResultCode::kOk,
                     cdr.rat, /*data_context=*/false);
    }
  }
}

SimTime DeviceAgent::fota_wave_time() const noexcept {
  const int waves = std::max(1, options_->fota.waves);
  return options_->fota.start_s +
         static_cast<SimTime>(device_->id % static_cast<std::uint64_t>(waves)) *
             options_->fota.wave_interval_s;
}

std::optional<SimTime> DeviceAgent::fota_due_time(SimTime now) const {
  if (!options_->fota.enabled || fota_done_ ||
      fota_attempts_ >= options_->fota.max_attempts) {
    return std::nullopt;
  }
  const SimTime due = fota_attempts_ == 0 ? fota_wave_time() : fota_retry_at_;
  // Already due: the next wake (whenever it lands) attempts the download;
  // only a *future* due time needs the wake pulled earlier.
  if (due <= now) return std::nullopt;
  return due;
}

void DeviceAgent::maybe_fota(const AgentContext& ctx, SimTime now) {
  assert(emm_.attached());
  if (!options_->fota.enabled || fota_done_ ||
      fota_attempts_ >= options_->fota.max_attempts) {
    return;
  }
  if (now < fota_wave_time()) return;                       // wave not started
  if (fota_attempts_ > 0 && now < fota_retry_at_) return;   // retry timer live
  ++fota_attempts_;
  const bool failed = rng_.bernoulli(options_->fota.failure_p);

  // The (possibly partial) image transfer: a failed download aborts at a
  // fixed fraction of the image, then the retry timer re-pulls the whole
  // thing — the bandwidth signature of a broken-image retry storm.
  records::Xdr xdr;
  xdr.device = device_->id;
  xdr.time = now;
  xdr.sim_plmn = ctx.world->operators().get(device_->home_operator).plmn;
  xdr.visited_plmn = ctx.world->operators().get(serving_.visited).plmn;
  const double fraction = failed ? 0.35 : 1.0;
  xdr.bytes_down = static_cast<std::uint64_t>(options_->fota.image_bytes * fraction);
  xdr.bytes_up = static_cast<std::uint64_t>(
      std::max(1.0, options_->fota.image_bytes * 0.01));
  xdr.apn = device_->apn.to_string();
  xdr.rat = serving_.rat;
  ctx.sink->on_xdr(xdr);

  if (failed) {
    fota_retry_at_ =
        now + options_->fota.retry_s +
        static_cast<SimTime>(rng_.uniform() * std::max(0.0, options_->fota.retry_jitter_s));
  } else {
    fota_done_ = true;
  }
}

void DeviceAgent::finalize(SimTime now, const AgentContext& ctx) {
  if (finalized_) return;
  // The departure instant is the first second *outside* the active window;
  // stamp the cleanup one tick earlier so the final detach (and dwell)
  // lands on the device's last active day, not a phantom extra day.
  const SimTime stamp = std::min(now, departure_time() - 1);
  flush_dwell(ctx, stamp);
  if (emm_.attached()) {
    const auto rat = serving_.rat;
    emm_.detach();
    emit_signaling(ctx, stamp, signaling::Procedure::kDetach, signaling::ResultCode::kOk,
                   rat, /*data_context=*/true);
  }
  finalized_ = true;
}

void DeviceAgent::save_state(util::BinWriter& out) const {
  out.u64(device_->id);
  out.str(device_->current_country);
  out.f64(device_->east_m);
  out.f64(device_->north_m);
  for (const auto word : rng_.state()) out.u64(word);
  emm_.save_state(out);
  backoff_.save_state(out);
  out.f64(pending_retry_delay_s_);
  out.u32(serving_.visited);
  out.u8(static_cast<std::uint8_t>(serving_.rat));
  out.u32(serving_.sector);
  out.f64(serving_.location.lat);
  out.f64(serving_.location.lon);
  out.b(serving_.is_home);
  out.b(preferred_visited_.has_value());
  out.u32(preferred_visited_.value_or(topology::kInvalidOperator));
  out.i64(last_wake_);
  out.i64(dwell_since_);
  out.b(last_attach_failed_);
  out.b(finalized_);
  t3346_.save_state(out);
  out.b(fota_done_);
  out.i32(fota_attempts_);
  out.i64(fota_retry_at_);
}

void DeviceAgent::restore_state(util::BinReader& in) {
  const auto id = in.u64();
  if (id != device_->id) {
    throw std::runtime_error(
        "DeviceAgent::restore_state: snapshot device id does not match the "
        "rebuilt fleet (different scenario seed or composition?)");
  }
  device_->current_country = in.str();
  device_->east_m = in.f64();
  device_->north_m = in.f64();
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& word : rng_state) word = in.u64();
  rng_.set_state(rng_state);
  emm_.restore_state(in);
  backoff_.restore_state(in);
  pending_retry_delay_s_ = in.f64();
  serving_.visited = in.u32();
  serving_.rat = static_cast<cellnet::Rat>(in.u8());
  serving_.sector = in.u32();
  serving_.location.lat = in.f64();
  serving_.location.lon = in.f64();
  serving_.is_home = in.b();
  const bool has_preferred = in.b();
  const auto preferred = in.u32();
  preferred_visited_ =
      has_preferred ? std::optional<topology::OperatorId>{preferred} : std::nullopt;
  last_wake_ = in.i64();
  dwell_since_ = in.i64();
  last_attach_failed_ = in.b();
  finalized_ = in.b();
  t3346_.restore_state(in);
  fota_done_ = in.b();
  fota_attempts_ = in.i32();
  fota_retry_at_ = in.i64();
}

std::optional<SimTime> DeviceAgent::on_wake(SimTime now, const AgentContext& ctx) {
  assert(ctx.world && ctx.selector && ctx.outcomes && ctx.sink);
  if (finalized_) return std::nullopt;
  if (now >= departure_time()) {
    finalize(now, ctx);
    return std::nullopt;
  }

  // Dwell at the previous location accrues until this wake.
  flush_dwell(ctx, now);

  const std::string country_before = device_->current_country;
  advance_position(*device_, static_cast<double>(now - last_wake_), options_->corridor,
                   rng_);
  last_wake_ = now;
  const bool crossed_border = device_->current_country != country_before;
  if (crossed_border) preferred_visited_.reset();

  // Reselection: border crossings force it; roamers churn with the
  // profile's switch propensity (§3.3's inter-VMNO switch distribution).
  if (emm_.attached()) {
    const bool roaming_switch =
        !serving_.is_home && rng_.bernoulli(device_->profile.p_vmno_switch);
    if (crossed_border || roaming_switch) {
      const auto old_visited = serving_.visited;
      emm_.cancel_location();
      emit_signaling(ctx, now, signaling::Procedure::kCancelLocation,
                     signaling::ResultCode::kOk, serving_.rat, /*data_context=*/true);
      try_attach(ctx, now, crossed_border ? std::nullopt
                                          : std::optional<topology::OperatorId>{old_visited});
    } else {
      // Position may have moved within the same network: refresh the sector.
      serving_ = locate(ctx, NetworkChoice{serving_.visited, serving_.rat,
                                           serving_.is_home});
    }
  } else if (!(options_->honor_congestion_control && t3346_.running(now))) {
    // A wake scheduled before the congestion reject can land while T3346 is
    // still live; the UE may not re-attach until it expires.
    try_attach(ctx, now, std::nullopt);
  }

  if (emm_.attached()) {
    do_session(ctx, now);
    maybe_fota(ctx, now);
    if (rng_.bernoulli(device_->profile.p_detach_after_session)) {
      flush_dwell(ctx, now);
      const auto rat = serving_.rat;
      emm_.detach();
      emit_signaling(ctx, now, signaling::Procedure::kDetach,
                     signaling::ResultCode::kOk, rat, /*data_context=*/true);
    }
  }

  const auto next = schedule_next(now);
  if (next && *next >= departure_time()) {
    // The next beat would fall outside the active window: one last event at
    // the departure instant cleans up (detach + final dwell).
    return departure_time();
  }
  return next;
}

}  // namespace wtr::sim
