#pragma once

// Mobility processes. Three regimes drive the paper's gyration results
// (Fig. 8 / Fig. 12): fixed devices that only wobble through cell
// reselection, human carriers moving inside a metro area, and long-haul
// devices (cars, trackers) that cross regions and occasionally countries.

#include <string>
#include <vector>

#include "devices/device.hpp"
#include "stats/rng.hpp"

namespace wtr::sim {

/// Countries a long-haul device may hop to (a travel corridor); usually the
/// deployment country plus its neighbours. An empty corridor disables
/// cross-country trips regardless of the profile.
using TravelCorridor = std::vector<std::string>;

/// Advance a device's position by dt seconds. Mutates current position and
/// (for long-haul devices that cross a border) current_country.
void advance_position(devices::Device& device, double dt_s,
                      const TravelCorridor& corridor, stats::Rng& rng);

}  // namespace wtr::sim
