#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>

namespace wtr::stats {

double sample_standard_normal(Rng& rng) noexcept {
  // Box-Muller; guard against log(0).
  double u1 = rng.uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = rng.uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return r * std::cos(kTwoPi * u2);
}

double sample_exponential(Rng& rng, double rate) noexcept {
  assert(rate > 0.0);
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::uint64_t sample_poisson(Rng& rng, double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  const double x = mean + std::sqrt(mean) * sample_standard_normal(rng) + 0.5;
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

double sample_lognormal(Rng& rng, double mu, double sigma) noexcept {
  return std::exp(mu + sigma * sample_standard_normal(rng));
}

double sample_pareto(Rng& rng, double x_min, double alpha) noexcept {
  assert(x_min > 0.0 && alpha > 0.0);
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_min / std::pow(u, 1.0 / alpha);
}

std::uint64_t sample_geometric(Rng& rng, double p) noexcept {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  assert(n > 0);
  std::vector<double> weights(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    weights[rank] = 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
  }
  double total = 0.0;
  for (double w : weights) total += w;
  pmf_.resize(n);
  for (std::size_t rank = 0; rank < n; ++rank) pmf_[rank] = weights[rank] / total;
  sampler_ = DiscreteSampler{weights};
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  assert(rank < pmf_.size());
  return pmf_[rank];
}

double LogNormalMixture::sample(Rng& rng) const noexcept {
  if (rng.bernoulli(weight_tail)) {
    return sample_lognormal(rng, tail_mu, tail_sigma);
  }
  return sample_lognormal(rng, bulk_mu, bulk_sigma);
}

double clamped(double value, double lo, double hi) noexcept {
  return std::min(std::max(value, lo), hi);
}

}  // namespace wtr::stats
