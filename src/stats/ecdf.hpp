#pragma once

// Empirical CDFs are the paper's main reporting device (Figs. 3, 7, 8, 10,
// 11, 12 are all ECDF panels). Ecdf collects samples and answers both
// directions: F(x) and the quantile function.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace wtr::stats {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  void add(double value);
  void add_count(double value, std::size_t count);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  /// Fraction of samples <= x, in [0, 1]. Returns 0 for an empty ECDF.
  [[nodiscard]] double fraction_at_most(double x) const;

  /// Fraction of samples strictly greater than x.
  [[nodiscard]] double fraction_above(double x) const;

  /// q-quantile with linear interpolation, q clamped to [0, 1]. Requires
  /// non-empty. quantile(NaN) returns NaN (it never indexes the samples).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// Evaluate F at each point (for plotting a series alongside the paper's
  /// figures).
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> points) const;

  /// The sorted sample vector (useful for exporting full curves).
  [[nodiscard]] const std::vector<double>& sorted_samples() const;

  /// Render "p50=... p90=... p99=..." style one-line summary.
  [[nodiscard]] std::string describe() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Convenience: build an ECDF over a projection of a range.
template <typename Range, typename Projection>
Ecdf make_ecdf(const Range& range, Projection projection) {
  Ecdf ecdf;
  for (const auto& item : range) ecdf.add(static_cast<double>(projection(item)));
  return ecdf;
}

}  // namespace wtr::stats
