#pragma once

// Linear- and log-binned histograms used by the figure harnesses to print
// distribution shapes, plus a categorical counter used everywhere the paper
// reports shares ("26% m2m", "top-20 countries hold 93%").

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wtr::stats {

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land in
/// the underflow/overflow counters.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t count = 1);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] double bin_upper(std::size_t bin) const;
  [[nodiscard]] std::uint64_t bin_value(std::size_t bin) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  /// NaN samples land here (they compare false against both range guards;
  /// casting them would be UB) — still included in total().
  [[nodiscard]] std::uint64_t nan_count() const noexcept { return nan_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t nan_ = 0;
  std::uint64_t total_ = 0;
};

/// Log2-binned histogram for heavy-tailed counts (signaling records/device).
/// Bin k covers [2^k, 2^(k+1)); values < 1 go to a dedicated zero bin.
class LogHistogram {
 public:
  explicit LogHistogram(std::size_t max_exponent = 40);

  void add(double value, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t zero_bin() const noexcept { return zero_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_value(std::size_t exponent) const;
  /// NaN samples land here (log2/floor of NaN would be UB to cast) — still
  /// included in total(). +inf clamps into the last bin like any
  /// over-range finite value.
  [[nodiscard]] std::uint64_t nan_count() const noexcept { return nan_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t zero_ = 0;
  std::uint64_t nan_ = 0;
  std::uint64_t total_ = 0;
};

/// Counter over string categories with share computation, sorted output.
class CategoryCounter {
 public:
  void add(const std::string& key, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(const std::string& key) const;
  [[nodiscard]] double share(const std::string& key) const;
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }

  /// Categories sorted by descending count (ties by key for determinism).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

  /// Combined share of the top-k categories.
  [[nodiscard]] double top_k_share(std::size_t k) const;

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace wtr::stats
