#include "stats/heatmap.hpp"

#include <algorithm>

namespace wtr::stats {

void Heatmap::add(const std::string& row, const std::string& col, std::uint64_t count) {
  cells_[row][col] += count;
  row_totals_[row] += count;
  col_totals_[col] += count;
  total_ += count;
}

std::uint64_t Heatmap::at(const std::string& row, const std::string& col) const {
  const auto row_it = cells_.find(row);
  if (row_it == cells_.end()) return 0;
  const auto col_it = row_it->second.find(col);
  return col_it == row_it->second.end() ? 0 : col_it->second;
}

std::uint64_t Heatmap::row_total(const std::string& row) const {
  const auto it = row_totals_.find(row);
  return it == row_totals_.end() ? 0 : it->second;
}

std::uint64_t Heatmap::col_total(const std::string& col) const {
  const auto it = col_totals_.find(col);
  return it == col_totals_.end() ? 0 : it->second;
}

double Heatmap::row_share(const std::string& row, const std::string& col) const {
  const std::uint64_t rt = row_total(row);
  return rt == 0 ? 0.0 : static_cast<double>(at(row, col)) / static_cast<double>(rt);
}

double Heatmap::col_share(const std::string& row, const std::string& col) const {
  const std::uint64_t ct = col_total(col);
  return ct == 0 ? 0.0 : static_cast<double>(at(row, col)) / static_cast<double>(ct);
}

double Heatmap::global_share(const std::string& row, const std::string& col) const {
  return total_ == 0 ? 0.0 : static_cast<double>(at(row, col)) / static_cast<double>(total_);
}

namespace {
std::vector<std::string> sorted_by_total(const std::map<std::string, std::uint64_t>& totals) {
  std::vector<std::pair<std::string, std::uint64_t>> items(totals.begin(), totals.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::string> labels;
  labels.reserve(items.size());
  for (const auto& [label, _] : items) labels.push_back(label);
  return labels;
}
}  // namespace

std::vector<std::string> Heatmap::rows_by_total() const { return sorted_by_total(row_totals_); }

std::vector<std::string> Heatmap::cols_by_total() const { return sorted_by_total(col_totals_); }

Heatmap Heatmap::with_minor_cols_grouped(double threshold, const std::string& other_label) const {
  Heatmap out;
  for (const auto& [row, cols] : cells_) {
    for (const auto& [col, count] : cols) {
      const double share =
          total_ == 0 ? 0.0
                      : static_cast<double>(col_total(col)) / static_cast<double>(total_);
      out.add(row, share < threshold ? other_label : col, count);
    }
  }
  return out;
}

}  // namespace wtr::stats
