#pragma once

// Streaming summary statistics (Welford's online algorithm) — used where a
// full sample vector is unnecessary (per-day aggregates across millions of
// records).

#include <cstdint>
#include <string>

namespace wtr::stats {

class Summary {
 public:
  void add(double value) noexcept;
  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  [[nodiscard]] std::string describe() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wtr::stats
