#pragma once

// Labeled 2D count tables with row/column normalization. Figures 2, 5-bottom
// and 6 in the paper are exactly this shape: categories on both axes,
// normalized per row or per column.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wtr::stats {

class Heatmap {
 public:
  void add(const std::string& row, const std::string& col, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t at(const std::string& row, const std::string& col) const;
  [[nodiscard]] std::uint64_t row_total(const std::string& row) const;
  [[nodiscard]] std::uint64_t col_total(const std::string& col) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Cell value as a fraction of its row / column / grand total.
  [[nodiscard]] double row_share(const std::string& row, const std::string& col) const;
  [[nodiscard]] double col_share(const std::string& row, const std::string& col) const;
  [[nodiscard]] double global_share(const std::string& row, const std::string& col) const;

  /// Labels sorted by descending marginal total (ties by label).
  [[nodiscard]] std::vector<std::string> rows_by_total() const;
  [[nodiscard]] std::vector<std::string> cols_by_total() const;

  /// Collapse every column whose global share is below `threshold` into a
  /// single "Other" column (the paper's Fig. 2 groups countries under 0.1%).
  [[nodiscard]] Heatmap with_minor_cols_grouped(double threshold,
                                                const std::string& other_label) const;

 private:
  std::map<std::string, std::map<std::string, std::uint64_t>> cells_;
  std::map<std::string, std::uint64_t> row_totals_;
  std::map<std::string, std::uint64_t> col_totals_;
  std::uint64_t total_ = 0;
};

}  // namespace wtr::stats
