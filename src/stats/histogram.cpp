#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wtr::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void LinearHistogram::add(double value, std::uint64_t count) {
  total_ += count;
  if (std::isnan(value)) {
    // NaN fails both range guards below and would reach the float→size_t
    // cast, which is UB (-fsanitize=float-cast-overflow traps it).
    nan_ += count;
    return;
  }
  if (value < lo_) {
    underflow_ += count;
    return;
  }
  if (value >= hi_) {
    overflow_ += count;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);
  counts_[bin] += count;
}

double LinearHistogram::bin_lower(std::size_t bin) const {
  assert(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double LinearHistogram::bin_upper(std::size_t bin) const {
  assert(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::uint64_t LinearHistogram::bin_value(std::size_t bin) const {
  assert(bin < counts_.size());
  return counts_[bin];
}

LogHistogram::LogHistogram(std::size_t max_exponent) : counts_(max_exponent + 1, 0) {}

void LogHistogram::add(double value, std::uint64_t count) {
  total_ += count;
  if (std::isnan(value)) {
    nan_ += count;  // would otherwise hit an undefined float→size_t cast
    return;
  }
  if (value < 1.0) {
    zero_ += count;
    return;
  }
  if (std::isinf(value)) {
    // floor(log2(inf)) is inf; clamp to the top bin like any huge finite.
    counts_.back() += count;
    return;
  }
  auto exponent = static_cast<std::size_t>(std::floor(std::log2(value)));
  exponent = std::min(exponent, counts_.size() - 1);
  counts_[exponent] += count;
}

std::uint64_t LogHistogram::bin_value(std::size_t exponent) const {
  assert(exponent < counts_.size());
  return counts_[exponent];
}

void CategoryCounter::add(const std::string& key, std::uint64_t count) {
  counts_[key] += count;
  total_ += count;
}

std::uint64_t CategoryCounter::count(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double CategoryCounter::share(const std::string& key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(total_);
}

std::vector<std::pair<std::string, std::uint64_t>> CategoryCounter::sorted() const {
  std::vector<std::pair<std::string, std::uint64_t>> out(counts_.begin(), counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

double CategoryCounter::top_k_share(std::size_t k) const {
  if (total_ == 0) return 0.0;
  const auto ranked = sorted();
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) sum += ranked[i].second;
  return static_cast<double>(sum) / static_cast<double>(total_);
}

}  // namespace wtr::stats
