#pragma once

// Deterministic random number generation for the simulator.
//
// Every scenario in this reproduction takes a 64-bit seed and must produce
// bit-identical traces for identical seeds (tests depend on this). We use
// xoshiro256** seeded through splitmix64, following the reference
// implementations by Blackman & Vigna, instead of std::mt19937 so that the
// stream is well-defined across standard library implementations.

#include <array>
#include <cstdint>
#include <cassert>
#include <span>
#include <vector>

namespace wtr::stats {

/// splitmix64 step; used for seeding and for cheap hash-like sub-stream
/// derivation (e.g. one independent stream per device id).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of two 64-bit values into one; used to derive per-entity
/// seeds from (scenario seed, entity id) pairs.
[[nodiscard]] std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** pseudo random generator with convenience sampling helpers.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can also
/// be handed to <random> distributions, although the samplers in
/// distributions.hpp are preferred (they are deterministic across
/// implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method to
  /// avoid modulo bias.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Index sampled proportionally to the (non-negative) weights.
  /// Requires a non-empty span with a positive total weight.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Derive an independent generator for a sub-entity; deterministic in
  /// (current seed material, tag). Does not consume this generator's stream.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept;

  /// Raw xoshiro256** state for checkpoint/restore. A restored generator
  /// continues the stream bit-exactly from where the saved one stopped.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  /// Restore a previously captured state. The all-zero state is invalid for
  /// xoshiro (it is a fixed point); only feed states captured via state().
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    assert(state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0);
    state_ = state;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Precomputed alias-free cumulative sampler for repeatedly drawing from a
/// fixed discrete distribution (binary search over the CDF).
class DiscreteSampler {
 public:
  DiscreteSampler() = default;
  /// Weights must be non-negative with a positive sum.
  explicit DiscreteSampler(std::span<const double> weights);

  [[nodiscard]] bool empty() const noexcept { return cdf_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  /// Draw an index in [0, size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

 private:
  std::vector<double> cdf_;  // normalized, strictly increasing to 1.0
};

}  // namespace wtr::stats
