#include "stats/sim_time.hpp"

#include <cmath>
#include <cstdio>

namespace wtr::stats {

std::int32_t day_of(SimTime t) noexcept {
  SimTime d = t / kSecondsPerDay;
  if (t < 0 && t % kSecondsPerDay != 0) --d;
  return static_cast<std::int32_t>(d);
}

double hour_of_day(SimTime t) noexcept {
  const SimTime day = day_start(day_of(t));
  return static_cast<double>(t - day) / static_cast<double>(kSecondsPerHour);
}

SimTime day_start(std::int32_t day) noexcept {
  return static_cast<SimTime>(day) * kSecondsPerDay;
}

std::string format_sim_time(SimTime t) {
  const std::int32_t day = day_of(t);
  const SimTime rem = t - day_start(day);
  const int h = static_cast<int>(rem / kSecondsPerHour);
  const int m = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  const int s = static_cast<int>(rem % kSecondsPerMinute);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "d%02d %02d:%02d:%02d", day, h, m, s);
  return buf;
}

double diurnal_weight(SimTime t, double floor) noexcept {
  constexpr double kPi = 3.14159265358979323846;
  const double h = hour_of_day(t);
  // Cosine trough at 04:00, peak at 16:00-20:00; a second harmonic skews
  // the peak toward the evening.
  const double base = 0.5 * (1.0 - std::cos((h - 4.0) / 24.0 * 2.0 * kPi));
  const double skew = 0.15 * std::sin((h - 10.0) / 24.0 * 4.0 * kPi);
  double w = base + skew;
  if (w < 0.0) w = 0.0;
  if (w > 1.0) w = 1.0;
  return floor + (1.0 - floor) * w;
}

}  // namespace wtr::stats
