#include "stats/rng.hpp"

#include <algorithm>
#include <cmath>

namespace wtr::stats {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  assert(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= std::max(0.0, weights[i]);
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  const std::uint64_t material =
      mix64(mix64(state_[0], state_[2]), mix64(state_[1] ^ tag, state_[3]));
  return Rng{material};
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  assert(!weights.empty());
  cdf_.reserve(weights.size());
  double running = 0.0;
  for (double w : weights) {
    running += std::max(0.0, w);
    cdf_.push_back(running);
  }
  assert(running > 0.0);
  for (double& c : cdf_) c /= running;
  cdf_.back() = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const noexcept {
  assert(!cdf_.empty());
  const double x = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace wtr::stats
