#pragma once

// Simulation time. Scenarios run over an epoch measured in seconds; the
// paper's analyses aggregate per day ("active days", "per-day label
// shares"), so day arithmetic and a diurnal activity modulation live here.

#include <cstdint>
#include <string>

namespace wtr::stats {

/// Seconds since the scenario epoch (t=0 is midnight of day 0).
using SimTime = std::int64_t;

inline constexpr SimTime kSecondsPerMinute = 60;
inline constexpr SimTime kSecondsPerHour = 3600;
inline constexpr SimTime kSecondsPerDay = 86400;

/// Day index (0-based) containing the instant. Negative times map to
/// negative day indices (floor division).
[[nodiscard]] std::int32_t day_of(SimTime t) noexcept;

/// Hour-of-day in [0, 24).
[[nodiscard]] double hour_of_day(SimTime t) noexcept;

/// Start of a given day.
[[nodiscard]] SimTime day_start(std::int32_t day) noexcept;

/// "d03 07:15:42" style rendering for logs and trace dumps.
[[nodiscard]] std::string format_sim_time(SimTime t);

/// Smooth diurnal weight in [floor, 1]: peaks in the evening (~20h), lowest
/// around 4am — the human-traffic shape. `floor` is the night-time fraction
/// of peak activity. M2M traffic famously lacks this modulation, which is
/// one of the separating features noted by the paper (§1, citing Shafiq et
/// al.); device profiles pick their own floor.
[[nodiscard]] double diurnal_weight(SimTime t, double floor) noexcept;

}  // namespace wtr::stats
