#include "stats/ecdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace wtr::stats {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)), sorted_(false) {
  ensure_sorted();
}

void Ecdf::add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void Ecdf::add_count(double value, std::size_t count) {
  samples_.insert(samples_.end(), count, value);
  sorted_ = false;
}

void Ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Ecdf::fraction_at_most(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(std::distance(samples_.begin(), it)) /
         static_cast<double>(samples_.size());
}

double Ecdf::fraction_above(double x) const { return 1.0 - fraction_at_most(x); }

double Ecdf::quantile(double q) const {
  assert(!samples_.empty());
  ensure_sorted();
  // NaN propagates instead of reaching floor(NaN) and an undefined
  // float→integer cast below.
  if (std::isnan(q)) return q;
  const double clamped_q = std::min(std::max(q, 0.0), 1.0);
  if (samples_.size() == 1) return samples_.front();
  const double pos = clamped_q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double Ecdf::min() const {
  assert(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double Ecdf::max() const {
  assert(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double Ecdf::mean() const {
  assert(!samples_.empty());
  // Sum in sorted order always: float addition is not associative, so
  // summing in insertion order before the first quantile()/describe() call
  // and in sorted order after would let call order change the reported
  // mean — breaking the engine's byte-identical-output guarantee.
  ensure_sorted();
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<double> Ecdf::evaluate(std::span<const double> points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) out.push_back(fraction_at_most(p));
  return out;
}

const std::vector<double>& Ecdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

std::string Ecdf::describe() const {
  if (samples_.empty()) return "(empty)";
  std::ostringstream os;
  os << "n=" << samples_.size() << " mean=" << mean() << " p50=" << quantile(0.5)
     << " p90=" << quantile(0.9) << " p99=" << quantile(0.99) << " max=" << max();
  return os.str();
}

}  // namespace wtr::stats
