#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wtr::stats {

void Summary::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double Summary::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

std::string Summary::describe() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev() << " min=" << min_
     << " max=" << max_;
  return os.str();
}

}  // namespace wtr::stats
