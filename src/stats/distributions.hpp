#pragma once

// Deterministic samplers for the heavy-tailed distributions the paper's
// populations exhibit (per-device signaling counts with a mean of 267 but a
// tail reaching 130k messages is far from anything light-tailed).
//
// All samplers are implemented from first principles (inverse-transform /
// Box-Muller / Knuth) instead of <random> so that a given (seed, parameter)
// pair yields the same trace on every platform.

#include <cstdint>

#include "stats/rng.hpp"

namespace wtr::stats {

/// Standard normal via Box-Muller (one value per call; the pair's second
/// value is intentionally discarded to keep the stream position simple).
[[nodiscard]] double sample_standard_normal(Rng& rng) noexcept;

/// Exponential with the given rate (lambda > 0).
[[nodiscard]] double sample_exponential(Rng& rng, double rate) noexcept;

/// Poisson with the given mean. Uses Knuth's product method for small means
/// and a normal approximation above 64 (adequate for traffic counts).
[[nodiscard]] std::uint64_t sample_poisson(Rng& rng, double mean) noexcept;

/// Log-normal parameterized by the underlying normal's mu/sigma.
[[nodiscard]] double sample_lognormal(Rng& rng, double mu, double sigma) noexcept;

/// Pareto (type I) with scale x_min > 0 and shape alpha > 0.
[[nodiscard]] double sample_pareto(Rng& rng, double x_min, double alpha) noexcept;

/// Geometric number of failures before first success, p in (0, 1].
[[nodiscard]] std::uint64_t sample_geometric(Rng& rng, double p) noexcept;

/// Zipf sampler over ranks 1..n with exponent s (>0), using a precomputed
/// CDF. This is how we generate "top-k countries hold x% of devices" style
/// skew (Fig. 5's home-country concentration).
class ZipfSampler {
 public:
  ZipfSampler() = default;
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t size() const noexcept { return sampler_.size(); }

  /// Rank in [0, n), rank 0 being the most popular.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept {
    return sampler_.sample(rng);
  }

  /// Probability mass of a rank (0-based).
  [[nodiscard]] double pmf(std::size_t rank) const noexcept;

 private:
  DiscreteSampler sampler_;
  std::vector<double> pmf_;
};

/// A two-component mixture of log-normals: the workhorse for "bulk +
/// heavy tail" quantities (signaling records per device, bytes per day).
struct LogNormalMixture {
  double weight_tail = 0.0;  // probability of drawing from the tail component
  double bulk_mu = 0.0;
  double bulk_sigma = 1.0;
  double tail_mu = 0.0;
  double tail_sigma = 1.0;

  [[nodiscard]] double sample(Rng& rng) const noexcept;
};

/// Clamp helper: resample-free truncation by capping (keeps determinism and
/// avoids unbounded loops).
[[nodiscard]] double clamped(double value, double lo, double hi) noexcept;

}  // namespace wtr::stats
