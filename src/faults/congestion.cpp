#include "faults/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace wtr::faults {

CongestionModel::CongestionModel(const CongestionConfig& config,
                                 std::size_t op_count, const FaultSchedule* faults,
                                 obs::MetricsRegistry* metrics)
    : config_(config), faults_(faults) {
  if (config_.bucket_s <= 0) {
    throw std::invalid_argument("CongestionConfig.bucket_s must be positive");
  }
  capacity_.assign(op_count, config_.default_capacity);
  for (const auto& [op, cap] : config_.capacities) {
    if (op < op_count) capacity_[op] = cap;
  }
  pending_.assign(op_count, 0);
  reject_p_.assign(op_count, 0.0);
  overload_.assign(op_count, 0.0);
  eab_.assign(op_count, 0);
  if (metrics != nullptr) {
    attempts_counter_ = &metrics->counter("congestion.attempts");
    barred_counter_ = &metrics->counter("congestion.eab_barred");
    congested_counter_ = &metrics->counter("congestion.buckets_congested");
    overload_gauge_ = &metrics->gauge("congestion.peak_overload");
    reject_gauge_ = &metrics->gauge("congestion.peak_reject");
  }
}

double CongestionModel::assigned_backoff_s(topology::OperatorId radio) const noexcept {
  const double f = overload_factor(radio);
  const double scaled = config_.t3346_base_s * std::max(f, 1.0);
  return std::clamp(scaled, config_.t3346_base_s, config_.t3346_max_s);
}

void CongestionModel::absorb(CongestionLedger& ledger) noexcept {
  const auto& attempts = ledger.attempts();
  const std::size_t n = std::min(attempts.size(), pending_.size());
  for (std::size_t op = 0; op < n; ++op) {
    pending_[op] += attempts[op];
    total_attempts_ += attempts[op];
    if (attempts_counter_ != nullptr) attempts_counter_->inc(attempts[op]);
  }
  total_barred_ += ledger.barred();
  if (barred_counter_ != nullptr) barred_counter_->inc(ledger.barred());
  ledger.clear();
}

void CongestionModel::roll_to(stats::SimTime boundary) {
  if (boundary <= last_roll_) return;  // replayed barrier after resume
  // The closing bucket spans [boundary - bucket_s, boundary); capacity
  // drops are sampled at its start so a drop covering the whole bucket
  // scales it fully.
  const stats::SimTime bucket_begin = boundary - config_.bucket_s;
  bool congested = false;
  for (std::size_t op = 0; op < pending_.size(); ++op) {
    double capacity = capacity_[op];
    if (capacity > 0.0 && faults_ != nullptr) {
      capacity *= faults_->capacity_scale_at(
          bucket_begin, static_cast<topology::OperatorId>(op));
    }
    double f = 0.0;
    double p = 0.0;
    if (capacity > 0.0) {
      f = static_cast<double>(pending_[op]) / capacity;
      if (f > 1.0) {
        p = std::min(config_.max_reject,
                     1.0 - std::pow(1.0 / f, config_.overload_exponent));
        congested = true;
      }
    }
    overload_[op] = f;
    reject_p_[op] = p;
    eab_[op] = config_.eab_threshold > 0.0 && f >= config_.eab_threshold ? 1 : 0;
    peak_overload_ = std::max(peak_overload_, f);
    peak_reject_ = std::max(peak_reject_, p);
    pending_[op] = 0;
  }
  if (congested) {
    ++congested_buckets_;
    if (first_congested_at_ < 0) first_congested_at_ = boundary;
    last_congested_at_ = boundary;
    if (congested_counter_ != nullptr) congested_counter_->inc();
  }
  if (overload_gauge_ != nullptr) overload_gauge_->set_max(peak_overload_);
  if (reject_gauge_ != nullptr) reject_gauge_->set_max(peak_reject_);
  last_roll_ = boundary;
}

void CongestionModel::save_state(util::BinWriter& out) const {
  out.u64(pending_.size());
  for (std::size_t op = 0; op < pending_.size(); ++op) {
    out.u64(pending_[op]);
    out.f64(reject_p_[op]);
    out.f64(overload_[op]);
    out.u8(eab_[op]);
  }
  out.i64(last_roll_);
  out.f64(peak_overload_);
  out.f64(peak_reject_);
  out.u64(congested_buckets_);
  out.u64(total_attempts_);
  out.u64(total_barred_);
  out.i64(first_congested_at_);
  out.i64(last_congested_at_);
}

void CongestionModel::restore_state(util::BinReader& in) {
  const auto n = in.u64();
  if (n != pending_.size()) {
    throw std::runtime_error("congestion snapshot operator count mismatch");
  }
  for (std::size_t op = 0; op < pending_.size(); ++op) {
    pending_[op] = in.u64();
    reject_p_[op] = in.f64();
    overload_[op] = in.f64();
    eab_[op] = in.u8();
  }
  last_roll_ = in.i64();
  peak_overload_ = in.f64();
  peak_reject_ = in.f64();
  congested_buckets_ = in.u64();
  total_attempts_ = in.u64();
  total_barred_ = in.u64();
  first_congested_at_ = in.i64();
  last_congested_at_ = in.i64();
}

}  // namespace wtr::faults
