#pragma once

// Deterministic fault injection for the simulator. A FaultSchedule is a
// static list of episodes — operator outages, signaling-storm bursts,
// degraded roaming-hub paths, per-fleet misprovisioning ramps — that
// OutcomePolicy consults by sim time. The schedule itself consumes no
// randomness: identical (seed, schedule) pairs replay bit-identically, and
// an empty schedule leaves the output bit-identical to a build without the
// subsystem (the fast path never perturbs the RNG stream).
//
// Paper grounding: §3.3 observes episodic, operator-specific reject bursts
// in the platform trace (misconfigured agreements, core hiccups), and §5
// shows the synchronized retry storms they trigger across IoT fleets.

#include <cstdint>
#include <vector>

#include "stats/sim_time.hpp"
#include "topology/roaming_hub.hpp"

namespace wtr::faults {

/// Fleet scope wildcard: an episode with this domain applies to every
/// device; a device built without an explicit domain only matches wildcard
/// episodes.
inline constexpr std::uint32_t kAnyFaultDomain = 0;

enum class FaultKind : std::uint8_t {
  /// Visited radio network down: attach-family procedures fail with
  /// NetworkFailure. `severity` is the fraction of attempts swallowed
  /// (1.0 = hard outage).
  kOutage,
  /// Core overload (registration storm backpressure): `severity` is the
  /// extra reject probability on otherwise-OK procedures.
  kSignalingStorm,
  /// Roaming interconnect (hub/IPX) degraded: roaming attempts routed via
  /// the hub fail with probability `severity`; home attaches are untouched.
  kDegradedPath,
  /// Fleet-scoped provisioning decay: devices of the episode's fault
  /// domain are rejected with UnknownSubscription at probability
  /// `severity` (ramping over the window when `ramp` is set).
  kMisprovisioning,
  /// Signaling-capacity loss on the operator's core (site failure, planned
  /// maintenance): not a per-attempt reject — the congestion model scales
  /// the operator's configured capacity by Π(1 - severity) over active
  /// episodes, so offered load that used to fit now overloads.
  kCapacityDrop,
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind) noexcept;

struct FaultEpisode {
  FaultKind kind = FaultKind::kOutage;
  stats::SimTime begin = 0;  // inclusive
  stats::SimTime end = 0;    // exclusive; begin >= end is inert
  double severity = 1.0;     // probability mass, clamped to [0, 1] on add()
  /// Scope for kOutage / kSignalingStorm: the *radio network* operator
  /// (MVNO traffic rides its host's network and is hit with it).
  /// kInvalidOperator means every network.
  topology::OperatorId op = topology::kInvalidOperator;
  /// Scope for kDegradedPath: kInvalidHub means every hub-mediated path.
  topology::HubId hub = topology::kInvalidHub;
  /// Scope for kMisprovisioning: kAnyFaultDomain means every fleet.
  std::uint32_t fault_domain = kAnyFaultDomain;
  /// Linear ramp: severity scales with progress through the window instead
  /// of applying flat (misprovisioning batches decay gradually).
  bool ramp = false;

  [[nodiscard]] bool active_at(stats::SimTime now) const noexcept {
    return now >= begin && now < end;
  }
  /// Episode severity at an instant (0 outside the window; ramped inside).
  [[nodiscard]] double severity_at(stats::SimTime now) const noexcept;
};

/// Aggregated fault pressure on one procedure attempt. Probabilities from
/// overlapping episodes of the same kind combine independently:
/// p = 1 - Π(1 - p_i).
struct FaultEffect {
  double outage = 0.0;
  double storm_reject = 0.0;
  double path_degraded = 0.0;
  double misprovisioned = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return outage > 0.0 || storm_reject > 0.0 || path_degraded > 0.0 ||
           misprovisioned > 0.0;
  }
  /// Combined probability of a NetworkFailure-class reject (everything but
  /// the misprovisioning channel, which maps to UnknownSubscription).
  [[nodiscard]] double combined_reject() const noexcept {
    return 1.0 - (1.0 - outage) * (1.0 - storm_reject) * (1.0 - path_degraded);
  }
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Append an episode (severity clamped to [0, 1]). Episodes may overlap
  /// freely; zero-length windows are accepted and inert.
  void add(FaultEpisode episode);

  // Convenience builders (times in sim seconds; see stats::day_start).
  void add_outage(topology::OperatorId op, stats::SimTime begin, stats::SimTime end,
                  double severity = 1.0);
  void add_storm(topology::OperatorId op, stats::SimTime begin, stats::SimTime end,
                 double severity);
  void add_degraded_path(topology::HubId hub, stats::SimTime begin, stats::SimTime end,
                         double severity);
  void add_misprovisioning_ramp(std::uint32_t fault_domain, stats::SimTime begin,
                                stats::SimTime end, double peak_severity);
  void add_capacity_drop(topology::OperatorId op, stats::SimTime begin,
                         stats::SimTime end, double severity, bool ramp = false);

  [[nodiscard]] bool empty() const noexcept { return episodes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return episodes_.size(); }
  [[nodiscard]] const std::vector<FaultEpisode>& episodes() const noexcept {
    return episodes_;
  }

  /// Aggregate fault pressure for one attempt: at `now`, against the radio
  /// network `visited_radio`, routed `via_hub` (kInvalidHub when home /
  /// bilateral), by a device of `fault_domain`.
  [[nodiscard]] FaultEffect effect_at(stats::SimTime now,
                                      topology::OperatorId visited_radio,
                                      topology::HubId via_hub,
                                      std::uint32_t fault_domain) const noexcept;

  /// Remaining signaling-capacity fraction for `radio` at `now`: the
  /// product of (1 - severity) over active kCapacityDrop episodes that
  /// match the network. 1.0 when nothing is active — the congestion model
  /// multiplies its configured capacity by this.
  [[nodiscard]] double capacity_scale_at(stats::SimTime now,
                                         topology::OperatorId radio) const noexcept;

  /// Earliest episode start / latest episode end (0/0 when empty); used by
  /// harnesses to size observation windows.
  [[nodiscard]] stats::SimTime first_begin() const noexcept;
  [[nodiscard]] stats::SimTime last_end() const noexcept;

 private:
  std::vector<FaultEpisode> episodes_;
};

}  // namespace wtr::faults
