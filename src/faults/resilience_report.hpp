#pragma once

// ResilienceReport: a RecordSink that watches the signaling stream under an
// injected FaultSchedule and answers the robustness questions the harnesses
// ask — how many procedures failed, with which code, on which operator, on
// which day, and how long each outage took to recover (time from the end of
// the outage window to the first completed registration on the affected
// network). It also carries ingest-degradation counters so replayed dirty
// traces surface their skip counts in the same report.

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "faults/fault_schedule.hpp"
#include "sim/device_agent.hpp"

namespace wtr::obs {
class Counter;
class MetricsRegistry;
}  // namespace wtr::obs

namespace wtr::faults {

/// Recovery bookkeeping for one kOutage episode of the schedule.
struct OutageRecovery {
  std::size_t episode_index = 0;            // into FaultSchedule::episodes()
  topology::OperatorId op = topology::kInvalidOperator;
  stats::SimTime outage_end = 0;
  /// First successful registration (OK UpdateLocation) on the affected
  /// network at or after outage_end; nullopt when none was observed.
  std::optional<stats::SimTime> first_success_after;

  [[nodiscard]] std::optional<double> recovery_seconds() const noexcept {
    if (!first_success_after) return std::nullopt;
    return static_cast<double>(*first_success_after - outage_end);
  }
};

/// Counters from one replayed CSV stream (see core::ReplayStats), surfaced
/// alongside the simulated-fault numbers.
struct IngestDegradation {
  std::string stream;        // label, e.g. "signaling"
  std::uint64_t rows = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bad_csv = 0;     // structurally malformed rows
  std::uint64_t bad_fields = 0;  // wrong arity / unparsable field values
};

struct ResilienceSummary {
  std::uint64_t procedures = 0;  // signaling transactions observed
  std::uint64_t failures = 0;    // non-OK results
  std::array<std::uint64_t, signaling::kResultCodeCount> by_code{};
  std::map<std::int32_t, std::uint64_t> failures_by_day;
  /// Failures keyed by the *visited operator* (registry id), the paper's
  /// per-operator failure view (§3.3).
  std::map<topology::OperatorId, std::uint64_t> failures_by_operator;
  std::vector<OutageRecovery> recoveries;
  std::vector<IngestDegradation> ingest;

  [[nodiscard]] double failure_share() const noexcept {
    return procedures == 0 ? 0.0
                           : static_cast<double>(failures) /
                                 static_cast<double>(procedures);
  }
  /// Rejects carrying the congestion cause (the closed-loop overload
  /// model's kCongestion results) — the storm bench's headline number.
  [[nodiscard]] std::uint64_t congestion_rejects() const noexcept {
    return by_code[static_cast<std::size_t>(signaling::ResultCode::kCongestion)];
  }
};

class ResilienceReport final : public sim::RecordSink, public ckpt::Checkpointable {
 public:
  /// `world` and `schedule` are borrowed and must outlive the report. Every
  /// kOutage episode of the schedule gets a recovery slot. `metrics`
  /// (optional, borrowed) mirrors the procedure/failure tallies into
  /// "faults.procedures" / "faults.failures" counters so fault pressure
  /// shows up in run manifests alongside the engine numbers.
  ResilienceReport(const topology::World& world, const FaultSchedule& schedule,
                   obs::MetricsRegistry* metrics = nullptr);

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override;

  /// Attach replay counters (call once per replayed stream).
  void add_ingest(IngestDegradation degradation);

  /// Snapshot of everything accumulated so far.
  [[nodiscard]] const ResilienceSummary& summary() const noexcept { return summary_; }

  /// Checkpoint support: serialize / restore the accumulated summary (the
  /// borrowed world/schedule and the mirrored counters are rebuilt by the
  /// harness; the counters live in the MetricsRegistry, which snapshots
  /// separately).
  void save_state(util::BinWriter& out) const override;
  void restore_state(util::BinReader& in) override;

 private:
  const topology::World* world_;
  const FaultSchedule* schedule_;
  ResilienceSummary summary_;
  obs::Counter* procedures_counter_ = nullptr;  // null when metrics are off
  obs::Counter* failures_counter_ = nullptr;
};

}  // namespace wtr::faults
