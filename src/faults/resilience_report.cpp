#include "faults/resilience_report.hpp"

#include "obs/metrics.hpp"

namespace wtr::faults {

ResilienceReport::ResilienceReport(const topology::World& world,
                                   const FaultSchedule& schedule,
                                   obs::MetricsRegistry* metrics)
    : world_(&world), schedule_(&schedule) {
  if (metrics != nullptr) {
    procedures_counter_ = &metrics->counter("faults.procedures");
    failures_counter_ = &metrics->counter("faults.failures");
  }
  const auto& episodes = schedule.episodes();
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    if (episodes[i].kind != FaultKind::kOutage) continue;
    OutageRecovery recovery;
    recovery.episode_index = i;
    recovery.op = episodes[i].op;
    recovery.outage_end = episodes[i].end;
    summary_.recoveries.push_back(recovery);
  }
}

void ResilienceReport::on_signaling(const signaling::SignalingTransaction& txn,
                                    bool data_context) {
  (void)data_context;
  ++summary_.procedures;
  if (procedures_counter_ != nullptr) procedures_counter_->inc();
  const auto visited = world_->operators().by_plmn(txn.visited_plmn);

  if (signaling::is_failure(txn.result)) {
    ++summary_.failures;
    if (failures_counter_ != nullptr) failures_counter_->inc();
    ++summary_.by_code[static_cast<std::size_t>(txn.result)];
    ++summary_.failures_by_day[stats::day_of(txn.time)];
    if (visited) ++summary_.failures_by_operator[*visited];
    return;
  }
  ++summary_.by_code[static_cast<std::size_t>(signaling::ResultCode::kOk)];

  // A completed registration is an OK UpdateLocation; the first one on the
  // affected radio network after an outage window closes it out.
  if (txn.procedure != signaling::Procedure::kUpdateLocation || !visited) return;
  const auto radio = world_->operators().radio_network_of(*visited);
  for (auto& recovery : summary_.recoveries) {
    if (recovery.first_success_after) continue;
    if (txn.time < recovery.outage_end) continue;
    if (recovery.op != topology::kInvalidOperator && recovery.op != radio) continue;
    recovery.first_success_after = txn.time;
  }
}

void ResilienceReport::add_ingest(IngestDegradation degradation) {
  summary_.ingest.push_back(std::move(degradation));
}

}  // namespace wtr::faults
