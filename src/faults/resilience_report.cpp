#include "faults/resilience_report.hpp"

#include "obs/metrics.hpp"

namespace wtr::faults {

ResilienceReport::ResilienceReport(const topology::World& world,
                                   const FaultSchedule& schedule,
                                   obs::MetricsRegistry* metrics)
    : world_(&world), schedule_(&schedule) {
  if (metrics != nullptr) {
    procedures_counter_ = &metrics->counter("faults.procedures");
    failures_counter_ = &metrics->counter("faults.failures");
  }
  const auto& episodes = schedule.episodes();
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    if (episodes[i].kind != FaultKind::kOutage) continue;
    OutageRecovery recovery;
    recovery.episode_index = i;
    recovery.op = episodes[i].op;
    recovery.outage_end = episodes[i].end;
    summary_.recoveries.push_back(recovery);
  }
}

void ResilienceReport::on_signaling(const signaling::SignalingTransaction& txn,
                                    bool data_context) {
  (void)data_context;
  ++summary_.procedures;
  if (procedures_counter_ != nullptr) procedures_counter_->inc();
  const auto visited = world_->operators().by_plmn(txn.visited_plmn);

  if (signaling::is_failure(txn.result)) {
    ++summary_.failures;
    if (failures_counter_ != nullptr) failures_counter_->inc();
    ++summary_.by_code[static_cast<std::size_t>(txn.result)];
    ++summary_.failures_by_day[stats::day_of(txn.time)];
    if (visited) ++summary_.failures_by_operator[*visited];
    return;
  }
  ++summary_.by_code[static_cast<std::size_t>(signaling::ResultCode::kOk)];

  // A completed registration is an OK UpdateLocation; the first one on the
  // affected radio network after an outage window closes it out.
  if (txn.procedure != signaling::Procedure::kUpdateLocation || !visited) return;
  const auto radio = world_->operators().radio_network_of(*visited);
  for (auto& recovery : summary_.recoveries) {
    if (recovery.first_success_after) continue;
    if (txn.time < recovery.outage_end) continue;
    if (recovery.op != topology::kInvalidOperator && recovery.op != radio) continue;
    recovery.first_success_after = txn.time;
  }
}

void ResilienceReport::add_ingest(IngestDegradation degradation) {
  summary_.ingest.push_back(std::move(degradation));
}

void ResilienceReport::save_state(util::BinWriter& out) const {
  out.u64(summary_.procedures);
  out.u64(summary_.failures);
  for (const auto count : summary_.by_code) out.u64(count);
  out.u64(summary_.failures_by_day.size());
  for (const auto& [day, count] : summary_.failures_by_day) {
    out.i32(day);
    out.u64(count);
  }
  out.u64(summary_.failures_by_operator.size());
  for (const auto& [op, count] : summary_.failures_by_operator) {
    out.u32(op);
    out.u64(count);
  }
  out.u64(summary_.recoveries.size());
  for (const auto& recovery : summary_.recoveries) {
    out.u64(recovery.episode_index);
    out.u32(recovery.op);
    out.i64(recovery.outage_end);
    out.b(recovery.first_success_after.has_value());
    out.i64(recovery.first_success_after.value_or(0));
  }
  out.u64(summary_.ingest.size());
  for (const auto& ingest : summary_.ingest) {
    out.str(ingest.stream);
    out.u64(ingest.rows);
    out.u64(ingest.delivered);
    out.u64(ingest.bad_csv);
    out.u64(ingest.bad_fields);
  }
}

void ResilienceReport::restore_state(util::BinReader& in) {
  summary_.procedures = in.u64();
  summary_.failures = in.u64();
  for (auto& count : summary_.by_code) count = in.u64();
  summary_.failures_by_day.clear();
  const auto n_days = in.u64();
  for (std::uint64_t i = 0; i < n_days; ++i) {
    const auto day = in.i32();
    summary_.failures_by_day[day] = in.u64();
  }
  summary_.failures_by_operator.clear();
  const auto n_ops = in.u64();
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    const auto op = in.u32();
    summary_.failures_by_operator[op] = in.u64();
  }
  summary_.recoveries.clear();
  const auto n_recoveries = in.u64();
  summary_.recoveries.reserve(n_recoveries);
  for (std::uint64_t i = 0; i < n_recoveries; ++i) {
    OutageRecovery recovery;
    recovery.episode_index = in.u64();
    recovery.op = in.u32();
    recovery.outage_end = in.i64();
    const bool has_success = in.b();
    const auto success_time = in.i64();
    if (has_success) recovery.first_success_after = success_time;
    summary_.recoveries.push_back(recovery);
  }
  summary_.ingest.clear();
  const auto n_ingest = in.u64();
  summary_.ingest.reserve(n_ingest);
  for (std::uint64_t i = 0; i < n_ingest; ++i) {
    IngestDegradation ingest;
    ingest.stream = in.str();
    ingest.rows = in.u64();
    ingest.delivered = in.u64();
    ingest.bad_csv = in.u64();
    ingest.bad_fields = in.u64();
    summary_.ingest.push_back(std::move(ingest));
  }
}

}  // namespace wtr::faults
