#include "faults/fault_schedule.hpp"

#include <algorithm>

namespace wtr::faults {

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kSignalingStorm: return "signaling-storm";
    case FaultKind::kDegradedPath: return "degraded-path";
    case FaultKind::kMisprovisioning: return "misprovisioning";
    case FaultKind::kCapacityDrop: return "capacity-drop";
  }
  return "?";
}

double FaultEpisode::severity_at(stats::SimTime now) const noexcept {
  if (!active_at(now)) return 0.0;
  if (!ramp) return severity;
  // Linear ramp over the (non-empty, since active) window. active_at
  // guarantees end > begin here.
  const double progress = static_cast<double>(now - begin) /
                          static_cast<double>(end - begin);
  return severity * progress;
}

void FaultSchedule::add(FaultEpisode episode) {
  episode.severity = std::clamp(episode.severity, 0.0, 1.0);
  episodes_.push_back(episode);
}

void FaultSchedule::add_outage(topology::OperatorId op, stats::SimTime begin,
                               stats::SimTime end, double severity) {
  FaultEpisode episode;
  episode.kind = FaultKind::kOutage;
  episode.op = op;
  episode.begin = begin;
  episode.end = end;
  episode.severity = severity;
  add(episode);
}

void FaultSchedule::add_storm(topology::OperatorId op, stats::SimTime begin,
                              stats::SimTime end, double severity) {
  FaultEpisode episode;
  episode.kind = FaultKind::kSignalingStorm;
  episode.op = op;
  episode.begin = begin;
  episode.end = end;
  episode.severity = severity;
  add(episode);
}

void FaultSchedule::add_degraded_path(topology::HubId hub, stats::SimTime begin,
                                      stats::SimTime end, double severity) {
  FaultEpisode episode;
  episode.kind = FaultKind::kDegradedPath;
  episode.hub = hub;
  episode.begin = begin;
  episode.end = end;
  episode.severity = severity;
  add(episode);
}

void FaultSchedule::add_misprovisioning_ramp(std::uint32_t fault_domain,
                                             stats::SimTime begin, stats::SimTime end,
                                             double peak_severity) {
  FaultEpisode episode;
  episode.kind = FaultKind::kMisprovisioning;
  episode.fault_domain = fault_domain;
  episode.begin = begin;
  episode.end = end;
  episode.severity = peak_severity;
  episode.ramp = true;
  add(episode);
}

void FaultSchedule::add_capacity_drop(topology::OperatorId op, stats::SimTime begin,
                                      stats::SimTime end, double severity,
                                      bool ramp) {
  FaultEpisode episode;
  episode.kind = FaultKind::kCapacityDrop;
  episode.op = op;
  episode.begin = begin;
  episode.end = end;
  episode.severity = severity;
  episode.ramp = ramp;
  add(episode);
}

FaultEffect FaultSchedule::effect_at(stats::SimTime now,
                                     topology::OperatorId visited_radio,
                                     topology::HubId via_hub,
                                     std::uint32_t fault_domain) const noexcept {
  FaultEffect effect;
  for (const auto& episode : episodes_) {
    const double severity = episode.severity_at(now);
    if (severity <= 0.0) continue;
    switch (episode.kind) {
      case FaultKind::kOutage:
      case FaultKind::kSignalingStorm: {
        if (episode.op != topology::kInvalidOperator && episode.op != visited_radio) {
          continue;
        }
        double& channel = episode.kind == FaultKind::kOutage ? effect.outage
                                                             : effect.storm_reject;
        channel = 1.0 - (1.0 - channel) * (1.0 - severity);
        break;
      }
      case FaultKind::kDegradedPath: {
        if (via_hub == topology::kInvalidHub) continue;  // not a hub-routed attempt
        if (episode.hub != topology::kInvalidHub && episode.hub != via_hub) continue;
        effect.path_degraded = 1.0 - (1.0 - effect.path_degraded) * (1.0 - severity);
        break;
      }
      case FaultKind::kMisprovisioning: {
        if (episode.fault_domain != kAnyFaultDomain &&
            episode.fault_domain != fault_domain) {
          continue;
        }
        effect.misprovisioned =
            1.0 - (1.0 - effect.misprovisioned) * (1.0 - severity);
        break;
      }
      case FaultKind::kCapacityDrop:
        // Consumed by CongestionModel::capacity_scale_at, not per attempt.
        break;
    }
  }
  return effect;
}

double FaultSchedule::capacity_scale_at(stats::SimTime now,
                                        topology::OperatorId radio) const noexcept {
  double scale = 1.0;
  for (const auto& episode : episodes_) {
    if (episode.kind != FaultKind::kCapacityDrop) continue;
    if (episode.op != topology::kInvalidOperator && episode.op != radio) continue;
    scale *= 1.0 - episode.severity_at(now);
  }
  return scale;
}

stats::SimTime FaultSchedule::first_begin() const noexcept {
  stats::SimTime first = 0;
  bool seen = false;
  for (const auto& episode : episodes_) {
    if (!seen || episode.begin < first) first = episode.begin;
    seen = true;
  }
  return first;
}

stats::SimTime FaultSchedule::last_end() const noexcept {
  stats::SimTime last = 0;
  for (const auto& episode : episodes_) last = std::max(last, episode.end);
  return last;
}

}  // namespace wtr::faults
