#pragma once

// Closed-loop overload model. The open-loop FaultSchedule injects *fixed*
// reject probabilities; real IoT incidents (paper §3.3, §5; the Finley
// cellular-IoT traffic studies) are closed-loop: a congested core rejects
// attaches, rejected devices retry, and the retries deepen the congestion —
// unless the network applies 3GPP congestion controls (T3346 mobility
// backoff, extended access barring) and the fleet sheds load.
//
// Determinism under sharding is the design constraint. Reject probability
// for bucket k is a pure function of the *previous* bucket's merged attempt
// count against configured capacity:
//
//   f = load / effective_capacity
//   p = 0                                  when f <= 1
//   p = min(max_reject, 1 - (1/f)^gamma)   when f >  1
//
// Shards count attempts into private CongestionLedgers with no shared
// state; the engine absorbs the ledgers at its existing window barriers and
// rolls the bucket on the merge thread only when a window stop lands on a
// bucket boundary (window stops are clamped to bucket boundaries when a
// model is installed). Between barriers every worker sees an immutable
// model — threads=N stays byte-identical to threads=1.
//
// The model also evaluates extended access barring: when the overload
// factor crosses `eab_threshold`, delay-tolerant device classes (EAB
// members, e.g. smart meters) are barred at the radio level and emit no
// signaling at all — graceful degradation instead of a death spiral.

#include <cstdint>
#include <vector>

#include "faults/fault_schedule.hpp"
#include "stats/sim_time.hpp"
#include "topology/roaming_hub.hpp"
#include "util/binio.hpp"

namespace wtr::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace wtr::obs

namespace wtr::faults {

struct CongestionConfig {
  /// Load-accounting bucket width in sim seconds. Window stops are clamped
  /// to multiples of this, so keep it a divisor-friendly value (>= 1).
  stats::SimTime bucket_s = 60;
  /// Attach-family messages per bucket an operator's core absorbs before
  /// overloading. <= 0 means uncongestible (per-operator entries below can
  /// still opt individual networks in).
  double default_capacity = 0.0;
  /// Per-radio-network overrides, keyed by the *radio network* operator id
  /// (MVNO signaling lands on its host's core).
  std::vector<std::pair<topology::OperatorId, double>> capacities;
  /// Exponent gamma in the reject curve — higher = sharper onset.
  double overload_exponent = 1.0;
  /// Ceiling on the reject probability; keeps a trickle of successes alive
  /// even in a hard spiral (real cores never reject literally everything).
  double max_reject = 0.995;
  /// T3346 value assigned on a congestion reject: base scaled by the
  /// overload factor, clamped to [base, max].
  double t3346_base_s = 900.0;
  double t3346_max_s = 3600.0;
  /// Overload factor at which extended access barring engages for
  /// delay-tolerant device classes. <= 0 disables EAB.
  double eab_threshold = 1.5;
};

/// Per-shard attempt accounting for one in-flight bucket. Strictly private
/// to its shard between barriers; the merge thread absorbs and clears it at
/// window stops. Addition is commutative, so absorb order (= shard order)
/// cannot affect the merged totals.
class CongestionLedger {
 public:
  CongestionLedger() = default;
  explicit CongestionLedger(std::size_t op_count) { resize(op_count); }

  void resize(std::size_t op_count) { attempts_.assign(op_count, 0); }

  void count_attempt(topology::OperatorId radio) noexcept {
    if (radio < attempts_.size()) ++attempts_[radio];
  }
  void count_barred(topology::OperatorId /*radio*/) noexcept { ++barred_; }

  [[nodiscard]] const std::vector<std::uint64_t>& attempts() const noexcept {
    return attempts_;
  }
  [[nodiscard]] std::uint64_t barred() const noexcept { return barred_; }
  void clear() noexcept {
    for (auto& a : attempts_) a = 0;
    barred_ = 0;
  }

 private:
  std::vector<std::uint64_t> attempts_;
  std::uint64_t barred_ = 0;
};

class CongestionModel {
 public:
  /// `op_count` sizes the per-operator state (topology::OperatorRegistry
  /// ids are dense). `faults`, when given, scales capacity by active
  /// kCapacityDrop episodes; `metrics` wires congestion gauges/counters
  /// (all written on the merge thread only).
  CongestionModel(const CongestionConfig& config, std::size_t op_count,
                  const FaultSchedule* faults = nullptr,
                  obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] const CongestionConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t op_count() const noexcept { return reject_p_.size(); }

  // --- read side (const; safe from shard workers between barriers) ---------

  /// Reject probability for an attach-family message on `radio` in the
  /// current bucket (derived from the previous bucket's load at the last
  /// roll).
  [[nodiscard]] double reject_probability(topology::OperatorId radio) const noexcept {
    return radio < reject_p_.size() ? reject_p_[radio] : 0.0;
  }
  /// Previous-bucket load over effective capacity (0 when uncongestible).
  [[nodiscard]] double overload_factor(topology::OperatorId radio) const noexcept {
    return radio < overload_.size() ? overload_[radio] : 0.0;
  }
  /// Extended access barring in force for delay-tolerant classes on `radio`.
  [[nodiscard]] bool eab_active(topology::OperatorId radio) const noexcept {
    return radio < eab_.size() && eab_[radio] != 0;
  }
  /// Network-assigned T3346 value carried on a kCongestion reject.
  [[nodiscard]] double assigned_backoff_s(topology::OperatorId radio) const noexcept;

  // --- barrier side (merge thread only) ------------------------------------

  /// Fold a shard ledger's counts into the pending bucket and clear it.
  void absorb(CongestionLedger& ledger) noexcept;

  /// Close the bucket ending at `boundary`: recompute per-operator reject
  /// probabilities and EAB state from the pending counts, then reset them.
  /// Idempotent per boundary (re-rolls at or before the last roll are
  /// ignored), which makes checkpoint/resume replay-safe.
  void roll_to(stats::SimTime boundary);

  // --- reporting -----------------------------------------------------------

  [[nodiscard]] double peak_overload() const noexcept { return peak_overload_; }
  [[nodiscard]] double peak_reject() const noexcept { return peak_reject_; }
  [[nodiscard]] std::uint64_t congested_buckets() const noexcept {
    return congested_buckets_;
  }
  [[nodiscard]] std::uint64_t total_attempts() const noexcept {
    return total_attempts_;
  }
  /// Attempts absorbed into the open (not yet rolled) bucket across all
  /// operators — the flight recorder attaches this to congestion-merge
  /// spans so a trace shows bucket load building up between rolls.
  [[nodiscard]] std::uint64_t pending_attempts() const noexcept {
    std::uint64_t total = 0;
    for (const auto n : pending_) total += n;
    return total;
  }
  [[nodiscard]] std::uint64_t total_barred() const noexcept { return total_barred_; }
  /// First / last bucket boundary at which any operator was overloaded
  /// (-1 when congestion never occurred).
  [[nodiscard]] stats::SimTime first_congested_at() const noexcept {
    return first_congested_at_;
  }
  [[nodiscard]] stats::SimTime last_congested_at() const noexcept {
    return last_congested_at_;
  }

  // --- checkpoint support --------------------------------------------------

  void save_state(util::BinWriter& out) const;
  void restore_state(util::BinReader& in);

 private:
  CongestionConfig config_;
  const FaultSchedule* faults_ = nullptr;

  std::vector<double> capacity_;        // configured, per radio network
  std::vector<std::uint64_t> pending_;  // merged attempts, open bucket
  std::vector<double> reject_p_;
  std::vector<double> overload_;
  std::vector<std::uint8_t> eab_;

  stats::SimTime last_roll_ = 0;
  double peak_overload_ = 0.0;
  double peak_reject_ = 0.0;
  std::uint64_t congested_buckets_ = 0;
  std::uint64_t total_attempts_ = 0;
  std::uint64_t total_barred_ = 0;
  stats::SimTime first_congested_at_ = -1;
  stats::SimTime last_congested_at_ = -1;

  // Pre-resolved metric handles (null when metrics are off).
  obs::Counter* attempts_counter_ = nullptr;
  obs::Counter* barred_counter_ = nullptr;
  obs::Counter* congested_counter_ = nullptr;
  obs::Gauge* overload_gauge_ = nullptr;
  obs::Gauge* reject_gauge_ = nullptr;
};

}  // namespace wtr::faults
