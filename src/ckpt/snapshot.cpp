#include "ckpt/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "obs/trace.hpp"
#include "util/crc32.hpp"

namespace wtr::ckpt {

namespace {

constexpr char kHeaderMagic[8] = {'W', 'T', 'R', 'C', 'K', 'P', 'T', '1'};
constexpr char kFooterMagic[8] = {'W', 'T', 'R', 'C', 'K', 'E', 'N', 'D'};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4 + 4;
constexpr std::size_t kFooterSize = 4 + 8;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw SnapshotError("snapshot " + path + ": " + what);
}

[[noreturn]] void fail_errno(const std::string& path, const std::string& what) {
  fail(path, what + ": " + std::strerror(errno));
}

std::string build_header(std::string_view payload, std::uint32_t version) {
  util::BinWriter header;
  header.raw(kHeaderMagic, sizeof kHeaderMagic);
  header.u32(version);
  header.u64(payload.size());
  header.u32(util::crc32(payload));
  header.u32(util::crc32(header.bytes()));
  return header.take();
}

}  // namespace

void write_snapshot_atomic(const std::string& path, std::string_view payload,
                           obs::FlightRecorder* trace,
                           std::uint32_t trace_track, std::uint32_t version) {
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    fail(path, "cannot write unsupported format version " + std::to_string(version));
  }
  const std::string tmp = path + ".tmp";
  obs::TraceSpan write_span(trace, trace_track, obs::TraceCat::kCheckpoint,
                            "ckpt_write");
  write_span.set_args("payload_bytes", static_cast<std::int64_t>(payload.size()));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_errno(path, "cannot create " + tmp);

  const std::string header = build_header(payload, version);
  util::BinWriter footer;
  footer.u32(util::crc32(payload));
  footer.raw(kFooterMagic, sizeof kFooterMagic);

  auto write_all = [&](std::string_view bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::unlink(tmp.c_str());
        fail_errno(path, "write to " + tmp + " failed");
      }
      done += static_cast<std::size_t>(n);
    }
  };
  write_all(header);
  write_all(payload);
  write_all(footer.bytes());

  // Durability before visibility: the data must be on disk before the
  // rename makes it the snapshot a resume would trust. The fsync gets its
  // own span — it routinely dominates checkpoint wall time, and a stall
  // here is exactly what a flight-recorder trace exists to show.
  {
    obs::TraceSpan fsync_span(trace, trace_track, obs::TraceCat::kCheckpoint,
                              "ckpt_fsync");
    if (::fsync(fd) != 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      fail_errno(path, "fsync of " + tmp + " failed");
    }
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail_errno(path, "close of " + tmp + " failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail_errno(path, "rename " + tmp + " -> " + path + " failed");
  }

  // Best-effort directory fsync so the rename itself survives power loss;
  // failure here is not fatal (the file content is already durable).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

Snapshot read_snapshot_versioned(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) fail_errno(path, "cannot open");
  std::string bytes;
  char chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) bytes.append(chunk, n);
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) fail(path, "read error");

  if (bytes.size() < kHeaderSize + kFooterSize) {
    fail(path, "truncated: " + std::to_string(bytes.size()) +
                   " bytes is smaller than the minimum snapshot frame");
  }
  util::BinReader header{std::string_view(bytes).substr(0, kHeaderSize)};
  char magic[8];
  for (auto& c : magic) c = static_cast<char>(header.u8());
  if (std::memcmp(magic, kHeaderMagic, sizeof magic) != 0) {
    fail(path, "bad magic (not a wtr checkpoint snapshot)");
  }
  const std::uint32_t version = header.u32();
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    fail(path, "format version " + std::to_string(version) + " unsupported (want " +
                   std::to_string(kMinSnapshotVersion) + ".." +
                   std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t payload_crc = header.u32();
  const std::uint32_t header_crc = header.u32();
  if (util::crc32(std::string_view(bytes).substr(0, kHeaderSize - 4)) != header_crc) {
    fail(path, "header CRC mismatch (corrupted header)");
  }
  if (bytes.size() != kHeaderSize + payload_size + kFooterSize) {
    fail(path, "length mismatch: header declares " + std::to_string(payload_size) +
                   " payload bytes but file holds " +
                   std::to_string(bytes.size() - kHeaderSize - kFooterSize) +
                   " (torn write?)");
  }
  const std::string_view payload =
      std::string_view(bytes).substr(kHeaderSize, static_cast<std::size_t>(payload_size));
  if (util::crc32(payload) != payload_crc) {
    fail(path, "payload CRC mismatch (corrupted snapshot)");
  }
  util::BinReader footer{
      std::string_view(bytes).substr(kHeaderSize + static_cast<std::size_t>(payload_size))};
  if (footer.u32() != payload_crc) fail(path, "footer CRC mismatch (torn tail)");
  for (const char expected : kFooterMagic) {
    if (static_cast<char>(footer.u8()) != expected) {
      fail(path, "bad footer magic (torn tail)");
    }
  }
  return Snapshot{version, std::string(payload)};
}

std::string read_snapshot(const std::string& path) {
  return read_snapshot_versioned(path).payload;
}

}  // namespace wtr::ckpt
