#pragma once

// TraceFileSink: a RecordSink that streams every record family to a text
// file as one line per record (the same serialization the determinism tests
// use: doubles rendered with %a so byte-equality means bit-equality). It is
// Checkpointable — the snapshot stores the flushed byte offset, and restore
// truncates the file back to that offset, discarding any lines written
// after the checkpoint was taken. That truncate-on-restore is what makes an
// interrupted run's output splice byte-identically onto the resumed run's.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "ckpt/snapshot.hpp"
#include "io/bintrace.hpp"
#include "sim/device_agent.hpp"

namespace wtr::ckpt {

class TraceFileSink final : public sim::RecordSink, public Checkpointable {
 public:
  /// Opens `path` for writing. `resume` opens the existing file for
  /// in-place update (restore_state will truncate it to the snapshot
  /// offset); otherwise the file is created/truncated fresh. Throws
  /// std::runtime_error when the file cannot be opened.
  explicit TraceFileSink(std::string path, bool resume = false);
  ~TraceFileSink() override;

  TraceFileSink(const TraceFileSink&) = delete;
  TraceFileSink& operator=(const TraceFileSink&) = delete;

  /// fflush + fsync — called by the engine before each snapshot write and
  /// by the graceful-shutdown path so buffered records are never lost.
  void flush_and_sync();

  /// Borrow a flight recorder: flush_and_sync emits "sink_flush" spans on
  /// `track` (must be the engine track — flushes run on the engine thread).
  void set_trace(obs::FlightRecorder* trace, std::uint32_t track) noexcept {
    trace_ = trace;
    trace_track_ = track;
  }

  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return offset_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  // --- RecordSink ----------------------------------------------------------
  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override;
  void on_cdr(const records::Cdr& cdr) override;
  void on_xdr(const records::Xdr& xdr) override;
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override;

  // --- Checkpointable ------------------------------------------------------
  /// Flushes, fsyncs, and records the durable byte offset.
  void save_state(util::BinWriter& out) const override;
  /// Truncates the file to the snapshot's byte offset and repositions the
  /// write cursor there.
  void restore_state(util::BinReader& in) override;

 private:
  void write_line(const std::string& line);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;  // bytes written so far (== file size when flushed)
  obs::FlightRecorder* trace_ = nullptr;  // borrowed; null = no spans
  std::uint32_t trace_track_ = 0;
};

/// The binary sibling of TraceFileSink: streams every record family to a
/// WTRTRC1 columnar trace file (io/bintrace.hpp). Checkpointable with the
/// same truncate-on-restore contract — a snapshot first flushes the partial
/// column blocks so the durable byte offset covers every record delivered
/// before it, and restore truncates back to that block boundary (blocks are
/// self-contained, so the truncated prefix is a valid unsealed trace).
/// finish() seals the stream with the end marker; an unsealed file (crash
/// before finish) is rejected loudly by BinaryTraceReader.
class BinaryTraceFileSink final : public sim::RecordSink, public Checkpointable {
 public:
  /// Opens `path` for writing and emits the format header. `resume` opens
  /// the existing file for in-place update instead (restore_state will
  /// truncate it to the snapshot offset; the header is already on disk).
  /// Throws std::runtime_error when the file cannot be opened.
  explicit BinaryTraceFileSink(std::string path, bool resume = false);
  ~BinaryTraceFileSink() override;

  BinaryTraceFileSink(const BinaryTraceFileSink&) = delete;
  BinaryTraceFileSink& operator=(const BinaryTraceFileSink&) = delete;

  /// Flush partial blocks + fflush + fsync (graceful-shutdown path).
  void flush_and_sync();

  /// Borrow a flight recorder: flush_and_sync emits "sink_flush" spans on
  /// `track` (must be the engine track — flushes run on the engine thread).
  void set_trace(obs::FlightRecorder* trace, std::uint32_t track) noexcept {
    trace_ = trace;
    trace_track_ = track;
  }

  /// Flush everything and write the end marker. Idempotent.
  void finish();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return offset_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const io::TraceTotals& totals() const noexcept {
    return writer_->totals();
  }

  // --- RecordSink ----------------------------------------------------------
  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override;
  void on_cdr(const records::Cdr& cdr) override;
  void on_xdr(const records::Xdr& xdr) override;
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override;

  // --- Checkpointable ------------------------------------------------------
  /// Flushes partial blocks, fsyncs, and records the durable byte offset
  /// plus the running per-family record totals.
  void save_state(util::BinWriter& out) const override;
  /// Truncates the file to the snapshot's byte offset, repositions the
  /// write cursor, and resets the encoder to the snapshot's totals.
  void restore_state(util::BinReader& in) override;

 private:
  void write_bytes(std::string_view bytes);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;  // bytes written so far (== file size when flushed)
  std::unique_ptr<io::BinaryTraceWriter> writer_;
  obs::FlightRecorder* trace_ = nullptr;  // borrowed; null = no spans
  std::uint32_t trace_track_ = 0;
};

}  // namespace wtr::ckpt
