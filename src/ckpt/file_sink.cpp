#include "ckpt/file_sink.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/trace.hpp"
#include "records/cdr.hpp"
#include "records/xdr.hpp"
#include "signaling/transaction.hpp"

namespace wtr::ckpt {

namespace {

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);  // bit-exact round trip
  return buf;
}

}  // namespace

TraceFileSink::TraceFileSink(std::string path, bool resume)
    : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), resume ? "r+b" : "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("TraceFileSink: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  if (resume) {
    // The cursor lands wherever restore_state puts it; until then, append.
    std::fseek(file_, 0, SEEK_END);
    const auto end = std::ftell(file_);
    offset_ = end < 0 ? 0 : static_cast<std::uint64_t>(end);
  }
}

TraceFileSink::~TraceFileSink() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void TraceFileSink::flush_and_sync() {
  obs::TraceSpan span(trace_, trace_track_, obs::TraceCat::kSink, "sink_flush");
  span.set_args("bytes", static_cast<std::int64_t>(offset_));
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("TraceFileSink: fflush failed for " + path_ + ": " +
                             std::strerror(errno));
  }
  if (::fsync(::fileno(file_)) != 0) {
    throw std::runtime_error("TraceFileSink: fsync failed for " + path_ + ": " +
                             std::strerror(errno));
  }
}

void TraceFileSink::write_line(const std::string& line) {
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    throw std::runtime_error("TraceFileSink: short write to " + path_);
  }
  offset_ += line.size();
}

void TraceFileSink::on_signaling(const signaling::SignalingTransaction& txn,
                                 bool data_context) {
  std::string line = "S:";
  for (const auto& field : signaling::to_csv_fields(txn)) {
    line += field;
    line += ',';
  }
  line += data_context ? "dc\n" : "-\n";
  write_line(line);
}

void TraceFileSink::on_cdr(const records::Cdr& cdr) {
  std::string line = "C:";
  for (const auto& field : records::to_csv_fields(cdr)) {
    line += field;
    line += ',';
  }
  line += '\n';
  write_line(line);
}

void TraceFileSink::on_xdr(const records::Xdr& xdr) {
  std::string line = "X:";
  for (const auto& field : records::to_csv_fields(xdr)) {
    line += field;
    line += ',';
  }
  line += '\n';
  write_line(line);
}

void TraceFileSink::on_dwell(signaling::DeviceHash device, std::int32_t day,
                             cellnet::Plmn visited_plmn,
                             const cellnet::GeoPoint& location, double seconds) {
  std::string line = "D:";
  line += std::to_string(device);
  line += ',';
  line += std::to_string(day);
  line += ',';
  line += std::to_string(visited_plmn.key());
  line += ',';
  line += hex_double(location.lat);
  line += ',';
  line += hex_double(location.lon);
  line += ',';
  line += hex_double(seconds);
  line += '\n';
  write_line(line);
}

void TraceFileSink::save_state(util::BinWriter& out) const {
  // Make everything up to `offset_` durable before the snapshot that
  // references it hits the disk — a crash after the snapshot rename must
  // find at least `offset_` bytes in the trace file.
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw std::runtime_error("TraceFileSink: flush-for-checkpoint failed for " +
                             path_ + ": " + std::strerror(errno));
  }
  out.u64(offset_);
}

void TraceFileSink::restore_state(util::BinReader& in) {
  const auto offset = in.u64();
  std::fflush(file_);
  if (::ftruncate(::fileno(file_), static_cast<off_t>(offset)) != 0) {
    throw std::runtime_error("TraceFileSink: ftruncate failed for " + path_ +
                             ": " + std::strerror(errno));
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw std::runtime_error("TraceFileSink: fseek failed for " + path_ + ": " +
                             std::strerror(errno));
  }
  offset_ = offset;
}

BinaryTraceFileSink::BinaryTraceFileSink(std::string path, bool resume)
    : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), resume ? "r+b" : "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("BinaryTraceFileSink: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  if (resume) {
    std::fseek(file_, 0, SEEK_END);
    const auto end = std::ftell(file_);
    offset_ = end < 0 ? 0 : static_cast<std::uint64_t>(end);
  }
  io::BinaryTraceWriter::Options options;
  // On resume the header (and the prefix restore_state keeps) is already on
  // disk; re-emitting it would corrupt the stream.
  options.emit_header = !resume;
  writer_ = std::make_unique<io::BinaryTraceWriter>(
      [this](std::string_view bytes) { write_bytes(bytes); }, options);
}

BinaryTraceFileSink::~BinaryTraceFileSink() {
  if (file_ != nullptr) {
    try {
      finish();
    } catch (...) {
      // Destructors must not throw; an unsealed stream is detected on read.
    }
    std::fflush(file_);
    std::fclose(file_);
  }
}

void BinaryTraceFileSink::write_bytes(std::string_view bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    throw std::runtime_error("BinaryTraceFileSink: short write to " + path_);
  }
  offset_ += bytes.size();
}

void BinaryTraceFileSink::flush_and_sync() {
  obs::TraceSpan span(trace_, trace_track_, obs::TraceCat::kSink, "sink_flush");
  span.set_args("bytes", static_cast<std::int64_t>(offset_));
  writer_->flush_blocks();
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("BinaryTraceFileSink: fflush failed for " + path_ +
                             ": " + std::strerror(errno));
  }
  if (::fsync(::fileno(file_)) != 0) {
    throw std::runtime_error("BinaryTraceFileSink: fsync failed for " + path_ +
                             ": " + std::strerror(errno));
  }
}

void BinaryTraceFileSink::finish() {
  writer_->finish();
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("BinaryTraceFileSink: fflush failed for " + path_ +
                             ": " + std::strerror(errno));
  }
}

void BinaryTraceFileSink::on_signaling(const signaling::SignalingTransaction& txn,
                                       bool data_context) {
  writer_->add_signaling(txn, data_context);
}

void BinaryTraceFileSink::on_cdr(const records::Cdr& cdr) { writer_->add_cdr(cdr); }

void BinaryTraceFileSink::on_xdr(const records::Xdr& xdr) { writer_->add_xdr(xdr); }

void BinaryTraceFileSink::on_dwell(signaling::DeviceHash device, std::int32_t day,
                                   cellnet::Plmn visited_plmn,
                                   const cellnet::GeoPoint& location,
                                   double seconds) {
  writer_->add_dwell(device, day, visited_plmn, location, seconds);
}

void BinaryTraceFileSink::save_state(util::BinWriter& out) const {
  // Same durability contract as TraceFileSink, with one twist: partial
  // column blocks live in the writer, not the stdio buffer, so they must be
  // flushed into the file first or the checkpointed offset would exclude
  // records already delivered to this sink.
  writer_->flush_blocks();
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw std::runtime_error(
        "BinaryTraceFileSink: flush-for-checkpoint failed for " + path_ + ": " +
        std::strerror(errno));
  }
  out.u64(offset_);
  const auto& totals = writer_->totals();
  out.u64(totals.signaling);
  out.u64(totals.cdr);
  out.u64(totals.xdr);
  out.u64(totals.dwell);
}

void BinaryTraceFileSink::restore_state(util::BinReader& in) {
  const auto offset = in.u64();
  io::TraceTotals totals;
  totals.signaling = in.u64();
  totals.cdr = in.u64();
  totals.xdr = in.u64();
  totals.dwell = in.u64();
  std::fflush(file_);
  if (::ftruncate(::fileno(file_), static_cast<off_t>(offset)) != 0) {
    throw std::runtime_error("BinaryTraceFileSink: ftruncate failed for " +
                             path_ + ": " + std::strerror(errno));
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw std::runtime_error("BinaryTraceFileSink: fseek failed for " + path_ +
                             ": " + std::strerror(errno));
  }
  offset_ = offset;
  // save_state flushed all partial blocks, so the file at `offset` ends on a
  // block boundary and the writer restarts with empty builders.
  writer_->restore(totals);
}

}  // namespace wtr::ckpt
