#include "ckpt/file_sink.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "records/cdr.hpp"
#include "records/xdr.hpp"
#include "signaling/transaction.hpp"

namespace wtr::ckpt {

namespace {

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);  // bit-exact round trip
  return buf;
}

}  // namespace

TraceFileSink::TraceFileSink(std::string path, bool resume)
    : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), resume ? "r+b" : "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("TraceFileSink: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  if (resume) {
    // The cursor lands wherever restore_state puts it; until then, append.
    std::fseek(file_, 0, SEEK_END);
    const auto end = std::ftell(file_);
    offset_ = end < 0 ? 0 : static_cast<std::uint64_t>(end);
  }
}

TraceFileSink::~TraceFileSink() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void TraceFileSink::flush_and_sync() {
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("TraceFileSink: fflush failed for " + path_ + ": " +
                             std::strerror(errno));
  }
  if (::fsync(::fileno(file_)) != 0) {
    throw std::runtime_error("TraceFileSink: fsync failed for " + path_ + ": " +
                             std::strerror(errno));
  }
}

void TraceFileSink::write_line(const std::string& line) {
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    throw std::runtime_error("TraceFileSink: short write to " + path_);
  }
  offset_ += line.size();
}

void TraceFileSink::on_signaling(const signaling::SignalingTransaction& txn,
                                 bool data_context) {
  std::string line = "S:";
  for (const auto& field : signaling::to_csv_fields(txn)) {
    line += field;
    line += ',';
  }
  line += data_context ? "dc\n" : "-\n";
  write_line(line);
}

void TraceFileSink::on_cdr(const records::Cdr& cdr) {
  std::string line = "C:";
  for (const auto& field : records::to_csv_fields(cdr)) {
    line += field;
    line += ',';
  }
  line += '\n';
  write_line(line);
}

void TraceFileSink::on_xdr(const records::Xdr& xdr) {
  std::string line = "X:";
  for (const auto& field : records::to_csv_fields(xdr)) {
    line += field;
    line += ',';
  }
  line += '\n';
  write_line(line);
}

void TraceFileSink::on_dwell(signaling::DeviceHash device, std::int32_t day,
                             cellnet::Plmn visited_plmn,
                             const cellnet::GeoPoint& location, double seconds) {
  std::string line = "D:";
  line += std::to_string(device);
  line += ',';
  line += std::to_string(day);
  line += ',';
  line += std::to_string(visited_plmn.key());
  line += ',';
  line += hex_double(location.lat);
  line += ',';
  line += hex_double(location.lon);
  line += ',';
  line += hex_double(seconds);
  line += '\n';
  write_line(line);
}

void TraceFileSink::save_state(util::BinWriter& out) const {
  // Make everything up to `offset_` durable before the snapshot that
  // references it hits the disk — a crash after the snapshot rename must
  // find at least `offset_` bytes in the trace file.
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw std::runtime_error("TraceFileSink: flush-for-checkpoint failed for " +
                             path_ + ": " + std::strerror(errno));
  }
  out.u64(offset_);
}

void TraceFileSink::restore_state(util::BinReader& in) {
  const auto offset = in.u64();
  std::fflush(file_);
  if (::ftruncate(::fileno(file_), static_cast<off_t>(offset)) != 0) {
    throw std::runtime_error("TraceFileSink: ftruncate failed for " + path_ +
                             ": " + std::strerror(errno));
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw std::runtime_error("TraceFileSink: fseek failed for " + path_ + ": " +
                             std::strerror(errno));
  }
  offset_ = offset;
}

}  // namespace wtr::ckpt
