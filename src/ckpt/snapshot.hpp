#pragma once

// Crash-safe snapshot container for the checkpoint subsystem.
//
// On-disk layout (all integers little-endian):
//
//   magic[8]  "WTRCKPT1"
//   u32       format version (kSnapshotVersion)
//   u64       payload size in bytes
//   u32       payload CRC-32
//   u32       header CRC-32 (over the preceding 24 bytes)
//   payload   (opaque section stream, see Engine checkpoint format)
//   u32       payload CRC-32 (repeated — detects a torn tail)
//   magic[8]  "WTRCKEND"
//
// Writes are atomic: the snapshot lands in `<path>.tmp`, is flushed and
// fsync'ed, then rename(2)'d over `path` — a crash at any instant leaves
// either the previous complete snapshot or the new complete snapshot, never
// a torn file under the final name. Reads verify magic, version, length and
// both CRCs and throw SnapshotError with a diagnostic on any mismatch: a
// corrupted snapshot must be rejected loudly, never silently resumed.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/binio.hpp"

namespace wtr::obs {
class FlightRecorder;
}  // namespace wtr::obs

namespace wtr::ckpt {

// v3: the engine's agent section is hydration-flagged (dormant agents are
// omitted — their state is reconstructed at registration). v2 (the legacy
// every-agent layout) is still accepted on read, and writers can opt into
// emitting it; v1 snapshots are rejected.
inline constexpr std::uint32_t kSnapshotVersion = 3;
inline constexpr std::uint32_t kMinSnapshotVersion = 2;

/// Thrown on any snapshot integrity or format failure (torn file, bit flip,
/// version or fingerprint mismatch). The message names the path and cause.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A component whose live state rides inside an engine checkpoint (sinks
/// with byte offsets, resilience reports, test accumulators). Registered on
/// the engine via register_checkpointable(); save/restore order follows
/// registration order, and the registered name is recorded in the snapshot
/// so a mismatched participant list fails loudly on resume.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void save_state(util::BinWriter& out) const = 0;
  virtual void restore_state(util::BinReader& in) = 0;
};

/// Atomically replace `path` with a snapshot wrapping `payload`. Throws
/// SnapshotError on any I/O failure (the previous snapshot, if any, is left
/// intact). A non-null flight recorder gets "ckpt_write" and "ckpt_fsync"
/// spans on `trace_track` (the caller's thread must own that track).
/// `version` stamps the container header; it must be a supported version
/// (the payload the caller serialized must match the layout it declares).
void write_snapshot_atomic(const std::string& path, std::string_view payload,
                           obs::FlightRecorder* trace = nullptr,
                           std::uint32_t trace_track = 0,
                           std::uint32_t version = kSnapshotVersion);

/// A verified snapshot: the container format version it declared plus the
/// opaque payload. Payload layout is version-dependent — the engine
/// dispatches its parser on `version`.
struct Snapshot {
  std::uint32_t version = kSnapshotVersion;
  std::string payload;
};

/// Read and verify a snapshot, returning version + payload. Accepts any
/// supported version in [kMinSnapshotVersion, kSnapshotVersion]. Throws
/// SnapshotError naming the path and the first integrity failure found.
[[nodiscard]] Snapshot read_snapshot_versioned(const std::string& path);

/// Read and verify a snapshot; returns just the payload.
[[nodiscard]] std::string read_snapshot(const std::string& path);

}  // namespace wtr::ckpt
