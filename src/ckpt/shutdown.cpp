#include "ckpt/shutdown.hpp"

#include <csignal>

namespace wtr::ckpt {

namespace {

volatile std::sig_atomic_t g_shutdown_flag = 0;

extern "C" void wtr_shutdown_handler(int signum) {
  g_shutdown_flag = 1;
  // Second delivery should terminate for real: restore default disposition
  // so a stuck drain cannot swallow repeated Ctrl-C. std::signal is
  // async-signal-safe for resetting to SIG_DFL.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_shutdown_handlers() {
  std::signal(SIGINT, &wtr_shutdown_handler);
  std::signal(SIGTERM, &wtr_shutdown_handler);
}

bool shutdown_requested() noexcept { return g_shutdown_flag != 0; }

void request_shutdown() noexcept { g_shutdown_flag = 1; }

void reset_shutdown_flag() noexcept { g_shutdown_flag = 0; }

}  // namespace wtr::ckpt
