#pragma once

// Cooperative graceful-shutdown flag for SIGINT/SIGTERM. The handler only
// sets a volatile sig_atomic_t (the one async-signal-safe thing it may do);
// the engine polls the flag at wake boundaries (threads=1) or checkpoint
// barriers (threads=N), finishes the in-flight work, writes a final
// checkpoint when one is configured, and returns with interrupted() set so
// harnesses can drain their sinks and emit a *.partial manifest instead of
// losing buffered records to a hard kill.

namespace wtr::ckpt {

/// Install SIGINT + SIGTERM handlers that set the shutdown flag. A second
/// delivery of the same signal restores default disposition first, so a
/// double Ctrl-C still kills a wedged process. Idempotent.
void install_shutdown_handlers();

/// True once SIGINT/SIGTERM was received (or request_shutdown() called).
[[nodiscard]] bool shutdown_requested() noexcept;

/// Programmatic trigger — lets tests exercise the graceful-stop path
/// without raising a real signal.
void request_shutdown() noexcept;

/// Clear the flag (tests; a supervisor re-running in-process).
void reset_shutdown_flag() noexcept;

}  // namespace wtr::ckpt
