#pragma once

// International Mobile Equipment Identity. The first 8 digits are the Type
// Allocation Code (TAC), statically allocated to a device vendor/model —
// this is the key into the GSMA device catalog that the paper's classifier
// relies on for the "device properties" stage.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace wtr::cellnet {

/// 8-digit Type Allocation Code.
using Tac = std::uint32_t;

class Imei {
 public:
  constexpr Imei() = default;

  /// serial is the 6-digit unit serial; the 15th (Luhn check) digit is
  /// computed on rendering.
  constexpr Imei(Tac tac, std::uint32_t serial) : tac_(tac), serial_(serial) {}

  [[nodiscard]] constexpr Tac tac() const noexcept { return tac_; }
  [[nodiscard]] constexpr std::uint32_t serial() const noexcept { return serial_; }

  [[nodiscard]] constexpr bool valid() const noexcept {
    return tac_ < 100'000'000U && serial_ < 1'000'000U;
  }

  /// Full 15-digit IMEI including the Luhn check digit.
  [[nodiscard]] std::string to_string() const;

  /// Parse a 15-digit IMEI, validating the Luhn check digit, or a 14-digit
  /// IMEI without one.
  [[nodiscard]] static std::optional<Imei> parse(std::string_view digits);

  friend constexpr bool operator==(const Imei&, const Imei&) noexcept = default;
  friend constexpr auto operator<=>(const Imei&, const Imei&) noexcept = default;

 private:
  Tac tac_ = 0;
  std::uint32_t serial_ = 0;
};

/// Luhn check digit over a digit string (as used by IMEI).
[[nodiscard]] int luhn_check_digit(std::string_view digits);

}  // namespace wtr::cellnet
