#pragma once

// Geodesic helpers. The paper computes a time-weighted centroid of the cell
// sectors a device attached to, and a radius of gyration around it (Fig. 8);
// both need distances between sector coordinates.

#include <span>
#include <vector>

namespace wtr::cellnet {

struct GeoPoint {
  double lat = 0.0;  // degrees
  double lon = 0.0;  // degrees

  friend constexpr bool operator==(const GeoPoint&, const GeoPoint&) noexcept = default;
};

/// Great-circle distance in meters (haversine, spherical Earth).
[[nodiscard]] double haversine_m(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Point displaced from origin by (east_m, north_m) meters using a local
/// tangent-plane approximation — accurate enough at intra-country scale for
/// placing cell sectors.
[[nodiscard]] GeoPoint offset_m(const GeoPoint& origin, double east_m,
                                double north_m) noexcept;

/// Weighted centroid of points (weights >= 0, at least one positive).
/// The small-area flat approximation matches how operators compute it.
[[nodiscard]] GeoPoint weighted_centroid(std::span<const GeoPoint> points,
                                         std::span<const double> weights) noexcept;

/// Weighted radius of gyration (meters): sqrt of the weighted mean squared
/// distance to the weighted centroid. Zero for a single point.
[[nodiscard]] double radius_of_gyration_m(std::span<const GeoPoint> points,
                                          std::span<const double> weights) noexcept;

}  // namespace wtr::cellnet
