#pragma once

// Access Point Name handling. The APN a device uses for data sessions is the
// classifier's strongest signal: its Network Identifier often embeds the
// vertical or customer ("smhp.centricaplc.com" → Centrica smart meters), and
// its Operator Identifier suffix ("mnc004.mcc204.gprs") exposes the home
// operator. §4.3 builds a 26-keyword vocabulary over 4,603 observed APNs.

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "cellnet/plmn.hpp"

namespace wtr::cellnet {

class Apn {
 public:
  Apn() = default;
  explicit Apn(std::string network_id, std::optional<Plmn> operator_id = std::nullopt)
      : network_id_(std::move(network_id)), operator_id_(operator_id) {}

  [[nodiscard]] const std::string& network_id() const noexcept { return network_id_; }
  [[nodiscard]] std::optional<Plmn> operator_id() const noexcept { return operator_id_; }

  [[nodiscard]] bool empty() const noexcept { return network_id_.empty(); }

  /// Full wire form: "<network-id>[.mncXXX.mccYYY.gprs]".
  [[nodiscard]] std::string to_string() const;

  /// Parse a full APN, splitting off a trailing operator identifier when one
  /// is present. Lower-cases the network id (APNs are case-insensitive).
  [[nodiscard]] static Apn parse(std::string_view text);

  /// True when the (lower-case) network id contains the keyword as a
  /// substring — the paper's stage-1 classification primitive.
  [[nodiscard]] bool contains_keyword(std::string_view keyword) const;

  friend bool operator==(const Apn&, const Apn&) noexcept = default;
  friend auto operator<=>(const Apn&, const Apn&) noexcept = default;

 private:
  std::string network_id_;
  std::optional<Plmn> operator_id_;
};

/// First keyword (from the list) found in the APN's network id, or nullopt.
[[nodiscard]] std::optional<std::string_view> first_matching_keyword(
    const Apn& apn, std::span<const std::string_view> keywords);

/// ASCII lower-case copy.
[[nodiscard]] std::string ascii_lower(std::string_view text);

}  // namespace wtr::cellnet
