#pragma once

// Cell sectors and per-operator sector grids. The MNO's sector catalog
// (§4.1) provides the coordinates used as a proxy for device position; we
// model each operator's radio plan as a jittered rectangular grid over its
// country, with per-sector RAT support (rural 2G-heavy, urban 2G+3G+4G).

#include <cstdint>
#include <optional>
#include <vector>

#include "cellnet/geo.hpp"
#include "cellnet/plmn.hpp"
#include "cellnet/rat.hpp"

namespace wtr::cellnet {

using SectorId = std::uint32_t;

struct CellSector {
  SectorId id = 0;
  Plmn operator_plmn{};
  GeoPoint location{};
  RatMask rats{};  // technologies deployed on this sector
};

/// A rectangular, slightly jittered grid of sectors centered at an anchor
/// point, serving as one operator's radio plan. Lookup maps an arbitrary
/// position to the serving sector (nearest by grid cell).
class SectorGrid {
 public:
  struct Config {
    Plmn operator_plmn{};
    GeoPoint anchor{};        // country/city anchor
    std::uint32_t cols = 32;  // grid width
    std::uint32_t rows = 32;  // grid height
    double spacing_m = 2'000.0;
    std::uint64_t seed = 0;   // jitter + RAT plan seed
    double share_4g = 0.55;   // fraction of sectors with 4G deployed
    double share_3g = 0.85;   // fraction with 3G
    double share_2g = 0.97;   // fraction with 2G (legacy is near-ubiquitous)
    double share_nbiot = 0.0; // NB-IoT overlay (§8 extension; off by default)
  };

  SectorGrid() = default;
  explicit SectorGrid(const Config& config);

  [[nodiscard]] std::size_t size() const noexcept { return sectors_.size(); }
  [[nodiscard]] const std::vector<CellSector>& sectors() const noexcept { return sectors_; }
  [[nodiscard]] const CellSector& sector(SectorId id) const;
  [[nodiscard]] Plmn operator_plmn() const noexcept { return config_.operator_plmn; }
  [[nodiscard]] GeoPoint anchor() const noexcept { return config_.anchor; }

  /// Serving sector for a position expressed as meters east/north of the
  /// anchor (clamped to the grid edge).
  [[nodiscard]] const CellSector& serving_sector(double east_m, double north_m) const;

  /// Serving sector restricted to those supporting `rat`; falls back to a
  /// deterministic scan ring around the home cell. Returns nullopt when the
  /// grid deploys `rat` nowhere.
  [[nodiscard]] std::optional<SectorId> serving_sector_with_rat(double east_m,
                                                                double north_m,
                                                                Rat rat) const;

  /// Physical footprint half-width (meters) — used by mobility models to
  /// keep devices on the map.
  [[nodiscard]] double half_extent_east_m() const noexcept;
  [[nodiscard]] double half_extent_north_m() const noexcept;

 private:
  [[nodiscard]] std::size_t cell_index(double east_m, double north_m) const;

  Config config_{};
  std::vector<CellSector> sectors_;
};

}  // namespace wtr::cellnet
