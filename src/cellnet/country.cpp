#include "cellnet/country.hpp"

#include <algorithm>
#include <array>

namespace wtr::cellnet {

std::string_view region_name(Region region) noexcept {
  switch (region) {
    case Region::kEurope: return "Europe(EU)";
    case Region::kEuropeNonEu: return "Europe(non-EU)";
    case Region::kLatinAmerica: return "LatinAmerica";
    case Region::kNorthAmerica: return "NorthAmerica";
    case Region::kAsiaPacific: return "AsiaPacific";
    case Region::kMiddleEastAfrica: return "MEA";
  }
  return "?";
}

namespace {
// Real ITU MCC assignments. Sorted by ISO code (checked by a test).
constexpr std::array<CountryInfo, 72> kCountries{{
    {"AE", "United Arab Emirates", 424, Region::kMiddleEastAfrica, 24.0, 54.0},
    {"AR", "Argentina", 722, Region::kLatinAmerica, -34.6, -58.4},
    {"AT", "Austria", 232, Region::kEurope, 48.2, 16.4},
    {"AU", "Australia", 505, Region::kAsiaPacific, -33.9, 151.2},
    {"BE", "Belgium", 206, Region::kEurope, 50.8, 4.4},
    {"BG", "Bulgaria", 284, Region::kEurope, 42.7, 23.3},
    {"BR", "Brazil", 724, Region::kLatinAmerica, -23.5, -46.6},
    {"CA", "Canada", 302, Region::kNorthAmerica, 43.7, -79.4},
    {"CH", "Switzerland", 228, Region::kEuropeNonEu, 47.4, 8.5},
    {"CL", "Chile", 730, Region::kLatinAmerica, -33.4, -70.7},
    {"CN", "China", 460, Region::kAsiaPacific, 39.9, 116.4},
    {"CO", "Colombia", 732, Region::kLatinAmerica, 4.7, -74.1},
    {"CR", "Costa Rica", 712, Region::kLatinAmerica, 9.9, -84.1},
    {"CZ", "Czechia", 230, Region::kEurope, 50.1, 14.4},
    {"DE", "Germany", 262, Region::kEurope, 52.5, 13.4},
    {"DK", "Denmark", 238, Region::kEurope, 55.7, 12.6},
    {"EC", "Ecuador", 740, Region::kLatinAmerica, -0.2, -78.5},
    {"EE", "Estonia", 248, Region::kEurope, 59.4, 24.8},
    {"EG", "Egypt", 602, Region::kMiddleEastAfrica, 30.0, 31.2},
    {"ES", "Spain", 214, Region::kEurope, 40.4, -3.7},
    {"FI", "Finland", 244, Region::kEurope, 60.2, 24.9},
    {"FR", "France", 208, Region::kEurope, 48.9, 2.4},
    {"GB", "United Kingdom", 234, Region::kEurope, 51.5, -0.1},
    {"GR", "Greece", 202, Region::kEurope, 38.0, 23.7},
    {"GT", "Guatemala", 704, Region::kLatinAmerica, 14.6, -90.5},
    {"HK", "Hong Kong", 454, Region::kAsiaPacific, 22.3, 114.2},
    {"HR", "Croatia", 219, Region::kEurope, 45.8, 16.0},
    {"HU", "Hungary", 216, Region::kEurope, 47.5, 19.0},
    {"ID", "Indonesia", 510, Region::kAsiaPacific, -6.2, 106.8},
    {"IE", "Ireland", 272, Region::kEurope, 53.3, -6.3},
    {"IL", "Israel", 425, Region::kMiddleEastAfrica, 32.1, 34.8},
    {"IN", "India", 404, Region::kAsiaPacific, 28.6, 77.2},
    {"IT", "Italy", 222, Region::kEurope, 41.9, 12.5},
    {"JP", "Japan", 440, Region::kAsiaPacific, 35.7, 139.7},
    {"KE", "Kenya", 639, Region::kMiddleEastAfrica, -1.3, 36.8},
    {"KR", "South Korea", 450, Region::kAsiaPacific, 37.6, 127.0},
    {"LT", "Lithuania", 246, Region::kEurope, 54.7, 25.3},
    {"LU", "Luxembourg", 270, Region::kEurope, 49.6, 6.1},
    {"LV", "Latvia", 247, Region::kEurope, 56.9, 24.1},
    {"MA", "Morocco", 604, Region::kMiddleEastAfrica, 34.0, -6.8},
    {"MX", "Mexico", 334, Region::kLatinAmerica, 19.4, -99.1},
    {"MY", "Malaysia", 502, Region::kAsiaPacific, 3.1, 101.7},
    {"NG", "Nigeria", 621, Region::kMiddleEastAfrica, 6.5, 3.4},
    {"NL", "Netherlands", 204, Region::kEurope, 52.4, 4.9},
    {"NO", "Norway", 242, Region::kEurope, 59.9, 10.8},
    {"NZ", "New Zealand", 530, Region::kAsiaPacific, -36.8, 174.8},
    {"PA", "Panama", 714, Region::kLatinAmerica, 9.0, -79.5},
    {"PE", "Peru", 716, Region::kLatinAmerica, -12.0, -77.0},
    {"PH", "Philippines", 515, Region::kAsiaPacific, 14.6, 121.0},
    {"PL", "Poland", 260, Region::kEurope, 52.2, 21.0},
    {"PT", "Portugal", 268, Region::kEurope, 38.7, -9.1},
    {"PY", "Paraguay", 744, Region::kLatinAmerica, -25.3, -57.6},
    {"QA", "Qatar", 427, Region::kMiddleEastAfrica, 25.3, 51.5},
    {"RO", "Romania", 226, Region::kEurope, 44.4, 26.1},
    {"RS", "Serbia", 220, Region::kEuropeNonEu, 44.8, 20.5},
    {"RU", "Russia", 250, Region::kEuropeNonEu, 55.8, 37.6},
    {"SA", "Saudi Arabia", 420, Region::kMiddleEastAfrica, 24.7, 46.7},
    {"SE", "Sweden", 240, Region::kEurope, 59.3, 18.1},
    {"SG", "Singapore", 525, Region::kAsiaPacific, 1.3, 103.9},
    {"SI", "Slovenia", 293, Region::kEurope, 46.1, 14.5},
    {"SK", "Slovakia", 231, Region::kEurope, 48.1, 17.1},
    {"TH", "Thailand", 520, Region::kAsiaPacific, 13.8, 100.5},
    {"TR", "Turkey", 286, Region::kEuropeNonEu, 39.9, 32.9},
    {"TW", "Taiwan", 466, Region::kAsiaPacific, 25.0, 121.6},
    {"UA", "Ukraine", 255, Region::kEuropeNonEu, 50.5, 30.5},
    {"US", "United States", 310, Region::kNorthAmerica, 40.7, -74.0},
    {"UY", "Uruguay", 748, Region::kLatinAmerica, -34.9, -56.2},
    {"VE", "Venezuela", 734, Region::kLatinAmerica, 10.5, -66.9},
    {"VN", "Vietnam", 452, Region::kAsiaPacific, 21.0, 105.8},
    {"ZA", "South Africa", 655, Region::kMiddleEastAfrica, -26.2, 28.0},
    {"ZM", "Zambia", 645, Region::kMiddleEastAfrica, -15.4, 28.3},
    {"ZW", "Zimbabwe", 648, Region::kMiddleEastAfrica, -17.8, 31.0},
}};
}  // namespace

std::span<const CountryInfo> all_countries() noexcept { return kCountries; }

std::optional<CountryInfo> country_by_iso(std::string_view iso) noexcept {
  const auto it = std::lower_bound(
      kCountries.begin(), kCountries.end(), iso,
      [](const CountryInfo& info, std::string_view key) { return info.iso < key; });
  if (it != kCountries.end() && it->iso == iso) return *it;
  return std::nullopt;
}

std::optional<CountryInfo> country_by_mcc(std::uint16_t mcc) noexcept {
  for (const auto& info : kCountries) {
    if (info.mcc == mcc) return info;
  }
  return std::nullopt;
}

std::string_view iso_of_mcc(std::uint16_t mcc) noexcept {
  const auto info = country_by_mcc(mcc);
  return info ? info->iso : std::string_view{"??"};
}

}  // namespace wtr::cellnet
