#pragma once

// GSMA-style device catalog: TAC → vendor / model / OS / coarse label /
// supported radio bands. The paper joins its radio logs against the
// commercial GSMA database; we synthesize a catalog with the same marginals
// it reports: ~2.4k vendors and ~25k models across the population, major
// smartphone OSes, and M2M module vendors (Gemalto, Telit, Sierra Wireless)
// covering 75% of inbound roamers.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cellnet/imei.hpp"
#include "cellnet/rat.hpp"
#include "stats/rng.hpp"

namespace wtr::cellnet {

/// The coarse device label the GSMA catalog carries. The paper notes that
/// non-phones are "mostly marked as modem or module, which might not
/// necessarily imply an M2M/IoT application" — hence its multi-step
/// classifier instead of trusting this field.
enum class GsmaLabel : std::uint8_t {
  kSmartphone,
  kFeaturePhone,
  kModem,
  kModule,
  kTablet,
  kWearable,
  kUnknown,
};

[[nodiscard]] std::string_view gsma_label_name(GsmaLabel label) noexcept;

enum class DeviceOs : std::uint8_t {
  kAndroid,
  kIos,
  kBlackberry,
  kWindowsMobile,
  kProprietary,  // RTOS / vendor firmware (modules, feature phones)
  kNone,
};

[[nodiscard]] std::string_view device_os_name(DeviceOs os) noexcept;

/// True for the "major smartphone OS" set the paper's classifier keys on.
[[nodiscard]] bool is_major_smartphone_os(DeviceOs os) noexcept;

struct TacInfo {
  Tac tac = 0;
  std::string vendor;
  std::string model;
  DeviceOs os = DeviceOs::kNone;
  GsmaLabel label = GsmaLabel::kUnknown;
  RatMask bands{};  // radio technologies the hardware supports
};

class TacCatalog {
 public:
  /// Registers an entry; overwrites silently on duplicate TAC (last wins),
  /// mirroring catalog refresh semantics.
  void add(TacInfo info);

  [[nodiscard]] const TacInfo* lookup(Tac tac) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] std::size_t distinct_vendors() const;
  [[nodiscard]] std::size_t distinct_models() const;

 private:
  std::unordered_map<Tac, TacInfo> entries_;
};

/// What kind of equipment a simulated device embeds; determines which TAC
/// pool it draws from.
enum class EquipmentCategory : std::uint8_t {
  kSmartphone,
  kFeaturePhone,
  kM2MModule,
};

/// Synthetic catalog plus per-category weighted TAC pools for sampling.
class TacPools {
 public:
  struct Config {
    std::uint64_t seed = 1;
    // Model counts per category; vendor lists are built in. Long-tail
    // vendors are added to reach `filler_vendors` total distinct vendors.
    std::size_t smartphone_models = 900;
    std::size_t feature_models = 250;
    std::size_t module_models = 350;
    std::size_t filler_vendors = 800;   // additional tail vendors
    std::size_t filler_models = 1'600;  // models spread over tail vendors
    double model_zipf_exponent = 1.05;  // popularity skew across models
  };

  TacPools() = default;
  explicit TacPools(const Config& config);

  [[nodiscard]] const TacCatalog& catalog() const noexcept { return catalog_; }

  /// Draw a TAC for a device of this category (Zipf-skewed popularity).
  [[nodiscard]] Tac draw(stats::Rng& rng, EquipmentCategory category) const;

  /// Draw a TAC restricted to a specific vendor within a category; used for
  /// the SMIP-roaming fleet, which the paper finds is built exclusively on
  /// Gemalto and Telit modules. Falls back to draw() if the vendor has no
  /// models in this category.
  [[nodiscard]] Tac draw_vendor(stats::Rng& rng, EquipmentCategory category,
                                std::string_view vendor) const;

  /// Draw a long-tail OEM TAC (unknown GSMA label, no smartphone OS). Used
  /// for fleets that should end up in the classifier's m2m-maybe residue —
  /// their equipment never co-occurs with a validated APN, so property
  /// propagation cannot claim them.
  [[nodiscard]] Tac draw_filler(stats::Rng& rng) const;

 private:
  struct Pool {
    std::vector<Tac> tacs;
    stats::DiscreteSampler sampler;
  };

  [[nodiscard]] const Pool& pool_of(EquipmentCategory category) const noexcept;

  TacCatalog catalog_;
  Pool smartphone_pool_;
  Pool feature_pool_;
  Pool module_pool_;
  std::vector<Tac> filler_tacs_;
  std::unordered_map<std::string, std::vector<Tac>> vendor_modules_;
};

/// The three vendors the paper singles out as covering 75% of inbound
/// roaming devices.
[[nodiscard]] std::vector<std::string_view> top_m2m_module_vendors();

}  // namespace wtr::cellnet
