#include "cellnet/geo.hpp"

#include <cassert>
#include <cmath>

namespace wtr::cellnet {

namespace {
constexpr double kEarthRadiusM = 6'371'000.0;
constexpr double kPi = 3.14159265358979323846;

double to_rad(double degrees) { return degrees * kPi / 180.0; }
double to_deg(double radians) { return radians * 180.0 / kPi; }
}  // namespace

double haversine_m(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = to_rad(a.lat);
  const double lat2 = to_rad(b.lat);
  const double dlat = lat2 - lat1;
  const double dlon = to_rad(b.lon - a.lon);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

GeoPoint offset_m(const GeoPoint& origin, double east_m, double north_m) noexcept {
  const double dlat = to_deg(north_m / kEarthRadiusM);
  const double cos_lat = std::cos(to_rad(origin.lat));
  const double dlon =
      cos_lat > 1e-9 ? to_deg(east_m / (kEarthRadiusM * cos_lat)) : 0.0;
  return GeoPoint{origin.lat + dlat, origin.lon + dlon};
}

GeoPoint weighted_centroid(std::span<const GeoPoint> points,
                           std::span<const double> weights) noexcept {
  assert(points.size() == weights.size() && !points.empty());
  double total = 0.0;
  double lat = 0.0;
  double lon = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double w = weights[i] < 0.0 ? 0.0 : weights[i];
    total += w;
    lat += w * points[i].lat;
    lon += w * points[i].lon;
  }
  if (total <= 0.0) return points.front();
  return GeoPoint{lat / total, lon / total};
}

double radius_of_gyration_m(std::span<const GeoPoint> points,
                            std::span<const double> weights) noexcept {
  assert(points.size() == weights.size());
  if (points.size() <= 1) return 0.0;
  const GeoPoint center = weighted_centroid(points, weights);
  double total = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double w = weights[i] < 0.0 ? 0.0 : weights[i];
    const double d = haversine_m(points[i], center);
    total += w;
    sum_sq += w * d * d;
  }
  if (total <= 0.0) return 0.0;
  return std::sqrt(sum_sq / total);
}

}  // namespace wtr::cellnet
