#include "cellnet/imei.hpp"

#include <cctype>
#include <cstdio>

namespace wtr::cellnet {

int luhn_check_digit(std::string_view digits) {
  int sum = 0;
  // Doubling starts from the rightmost digit of the payload.
  bool double_it = true;
  for (std::size_t i = digits.size(); i > 0; --i) {
    int d = digits[i - 1] - '0';
    if (double_it) {
      d *= 2;
      if (d > 9) d -= 9;
    }
    sum += d;
    double_it = !double_it;
  }
  return (10 - sum % 10) % 10;
}

std::string Imei::to_string() const {
  char payload[16];
  std::snprintf(payload, sizeof(payload), "%08u%06u", tac_, serial_);
  const int check = luhn_check_digit(payload);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%s%d", payload, check);
  return buf;
}

std::optional<Imei> Imei::parse(std::string_view digits) {
  if (digits.size() != 14 && digits.size() != 15) return std::nullopt;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
  }
  if (digits.size() == 15) {
    const int expected = luhn_check_digit(digits.substr(0, 14));
    if (digits[14] - '0' != expected) return std::nullopt;
  }
  auto to_num = [](std::string_view s) {
    std::uint32_t v = 0;
    for (char c : s) v = v * 10 + static_cast<std::uint32_t>(c - '0');
    return v;
  };
  return Imei{to_num(digits.substr(0, 8)), to_num(digits.substr(8, 6))};
}

}  // namespace wtr::cellnet
