#include "cellnet/rat.hpp"

#include <array>
#include <string>

namespace wtr::cellnet {

std::string_view rat_name(Rat rat) noexcept {
  switch (rat) {
    case Rat::kTwoG: return "2G";
    case Rat::kThreeG: return "3G";
    case Rat::kFourG: return "4G";
    case Rat::kNbIot: return "NB-IoT";
  }
  return "?";
}

std::optional<Rat> rat_from_name(std::string_view name) noexcept {
  for (int i = 0; i < kRatCount; ++i) {
    const auto rat = static_cast<Rat>(i);
    if (rat_name(rat) == name) return rat;
  }
  return std::nullopt;
}

std::string_view rat_mask_label(RatMask mask) noexcept {
  // Static table of all 16 combinations, built lazily and kept for the
  // process lifetime so the returned views stay valid.
  static const std::array<std::string, 16> kLabels = [] {
    std::array<std::string, 16> labels;
    for (std::uint8_t bits = 0; bits < 16; ++bits) {
      std::string label;
      for (int r = 0; r < kRatCount; ++r) {
        if ((bits >> r) & 1) {
          if (!label.empty()) label += '+';
          label += rat_name(static_cast<Rat>(r));
        }
      }
      labels[bits] = label.empty() ? "none" : label;
    }
    return labels;
  }();
  return kLabels[mask.bits()];
}

std::string_view radio_interface_name(RadioInterface iface) noexcept {
  switch (iface) {
    case RadioInterface::kA: return "A";
    case RadioInterface::kGb: return "Gb";
    case RadioInterface::kIuCS: return "IuCS";
    case RadioInterface::kIuPS: return "IuPS";
    case RadioInterface::kS1: return "S1";
  }
  return "?";
}

Rat radio_interface_rat(RadioInterface iface) noexcept {
  switch (iface) {
    case RadioInterface::kA:
    case RadioInterface::kGb: return Rat::kTwoG;
    case RadioInterface::kIuCS:
    case RadioInterface::kIuPS: return Rat::kThreeG;
    case RadioInterface::kS1: return Rat::kFourG;
  }
  return Rat::kTwoG;
}

bool radio_interface_is_data(RadioInterface iface) noexcept {
  switch (iface) {
    case RadioInterface::kGb:
    case RadioInterface::kIuPS:
    case RadioInterface::kS1: return true;
    case RadioInterface::kA:
    case RadioInterface::kIuCS: return false;
  }
  return false;
}

RadioInterface interface_for(Rat rat, bool data) noexcept {
  switch (rat) {
    case Rat::kTwoG: return data ? RadioInterface::kGb : RadioInterface::kA;
    case Rat::kThreeG: return data ? RadioInterface::kIuPS : RadioInterface::kIuCS;
    case Rat::kFourG: return RadioInterface::kS1;
    case Rat::kNbIot: return RadioInterface::kS1;  // NB-IoT rides the LTE core
  }
  return RadioInterface::kA;
}

}  // namespace wtr::cellnet
