#pragma once

// Radio Access Technologies and the monitored radio interfaces. The MNO
// dataset (§4.1) summarizes per-device radio activity into 1-bit "radio
// flags" (2G/3G/4G); RatMask is that representation. NB-IoT is modeled as a
// fourth technology for the §8 extension experiments — the paper's datasets
// predate its deployment, so nothing enables it unless a scenario asks.

#include <cstdint>
#include <optional>
#include <string_view>

namespace wtr::cellnet {

enum class Rat : std::uint8_t {
  kTwoG = 0,
  kThreeG = 1,
  kFourG = 2,
  kNbIot = 3,  // LPWA technology of the §8 discussion; off by default
};

inline constexpr int kRatCount = 4;

[[nodiscard]] std::string_view rat_name(Rat rat) noexcept;

/// Inverse of rat_name ("2G"/"3G"/"4G"); nullopt for unknown names.
[[nodiscard]] std::optional<Rat> rat_from_name(std::string_view name) noexcept;

/// Bitmask over RATs: bit i set = device active/capable on RAT i.
class RatMask {
 public:
  constexpr RatMask() = default;
  constexpr explicit RatMask(std::uint8_t bits) : bits_(bits & 0b1111) {}

  static constexpr RatMask of(Rat rat) noexcept {
    return RatMask{static_cast<std::uint8_t>(1U << static_cast<std::uint8_t>(rat))};
  }

  constexpr void set(Rat rat) noexcept {
    bits_ |= static_cast<std::uint8_t>(1U << static_cast<std::uint8_t>(rat));
  }
  [[nodiscard]] constexpr bool has(Rat rat) const noexcept {
    return (bits_ >> static_cast<std::uint8_t>(rat)) & 1U;
  }
  [[nodiscard]] constexpr bool any() const noexcept { return bits_ != 0; }
  [[nodiscard]] constexpr bool none() const noexcept { return bits_ == 0; }
  [[nodiscard]] constexpr std::uint8_t bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr int count() const noexcept {
    return ((bits_ >> 0) & 1) + ((bits_ >> 1) & 1) + ((bits_ >> 2) & 1) +
           ((bits_ >> 3) & 1);
  }

  /// Exactly this one RAT and nothing else ("2G only" in Fig. 9).
  [[nodiscard]] constexpr bool only(Rat rat) const noexcept {
    return bits_ == (1U << static_cast<std::uint8_t>(rat));
  }

  [[nodiscard]] constexpr RatMask intersect(RatMask other) const noexcept {
    return RatMask{static_cast<std::uint8_t>(bits_ & other.bits_)};
  }

  friend constexpr bool operator==(RatMask, RatMask) noexcept = default;

 private:
  std::uint8_t bits_ = 0;
};

/// "2G", "2G+3G", "none", "NB-IoT", ... label used by the Fig. 9 harness.
/// Returned view points into a static label table.
[[nodiscard]] std::string_view rat_mask_label(RatMask mask) noexcept;

/// The radio interfaces the MNO monitors (Fig. 4): circuit-switched and
/// packet-switched legs of 2G/3G, plus the LTE S1 interface.
enum class RadioInterface : std::uint8_t {
  kA = 0,     // 2G circuit switched
  kGb = 1,    // 2G packet switched
  kIuCS = 2,  // 3G circuit switched
  kIuPS = 3,  // 3G packet switched
  kS1 = 4,    // 4G
};

[[nodiscard]] std::string_view radio_interface_name(RadioInterface iface) noexcept;

/// RAT an interface belongs to.
[[nodiscard]] Rat radio_interface_rat(RadioInterface iface) noexcept;

/// True for packet-switched (data) interfaces; false for circuit-switched
/// (voice) ones. S1 carries data; LTE voice in this model is none (M2M
/// "voice" on LTE is out of the paper's datasets).
[[nodiscard]] bool radio_interface_is_data(RadioInterface iface) noexcept;

/// The interface a (rat, data?) activity shows up on.
[[nodiscard]] RadioInterface interface_for(Rat rat, bool data) noexcept;

}  // namespace wtr::cellnet
