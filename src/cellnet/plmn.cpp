#include "cellnet/plmn.hpp"

#include <cctype>
#include <cstdio>

namespace wtr::cellnet {

std::string Plmn::to_string() const {
  // mnc_digits_ is 2 or 3 by construction; clamp for the formatter's sake.
  const int width = mnc_digits_ == 3 ? 3 : 2;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%03u-%0*u", mcc_, width, mnc_);
  return buf;
}

namespace {
bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::uint16_t to_u16(std::string_view s) {
  std::uint16_t v = 0;
  for (char c : s) v = static_cast<std::uint16_t>(v * 10 + (c - '0'));
  return v;
}
}  // namespace

std::optional<Plmn> Plmn::parse(std::string_view text) {
  std::string_view mcc_part;
  std::string_view mnc_part;
  const auto dash = text.find('-');
  if (dash != std::string_view::npos) {
    mcc_part = text.substr(0, dash);
    mnc_part = text.substr(dash + 1);
  } else {
    if (text.size() != 5 && text.size() != 6) return std::nullopt;
    mcc_part = text.substr(0, 3);
    mnc_part = text.substr(3);
  }
  if (mcc_part.size() != 3 || (mnc_part.size() != 2 && mnc_part.size() != 3)) {
    return std::nullopt;
  }
  if (!all_digits(mcc_part) || !all_digits(mnc_part)) return std::nullopt;
  const Plmn plmn{to_u16(mcc_part), to_u16(mnc_part),
                  static_cast<std::uint8_t>(mnc_part.size())};
  if (!plmn.valid()) return std::nullopt;
  return plmn;
}

}  // namespace wtr::cellnet
