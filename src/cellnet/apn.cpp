#include "cellnet/apn.hpp"

#include <cctype>
#include <cstdio>

namespace wtr::cellnet {

std::string ascii_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string Apn::to_string() const {
  if (!operator_id_) return network_id_;
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".mnc%0*u.mcc%03u.gprs",
                static_cast<int>(operator_id_->mnc_digits() == 3 ? 3 : 3),
                operator_id_->mnc(), operator_id_->mcc());
  // Note: 3GPP TS 23.003 renders MNC with three digits in the operator
  // identifier (zero-padded), regardless of the 2-digit wire form.
  return network_id_ + suffix;
}

namespace {
std::optional<std::uint16_t> parse_prefixed_number(std::string_view part,
                                                   std::string_view prefix,
                                                   std::size_t digits) {
  if (part.size() != prefix.size() + digits) return std::nullopt;
  if (part.substr(0, prefix.size()) != prefix) return std::nullopt;
  std::uint16_t v = 0;
  for (char c : part.substr(prefix.size())) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    v = static_cast<std::uint16_t>(v * 10 + (c - '0'));
  }
  return v;
}
}  // namespace

Apn Apn::parse(std::string_view text) {
  const std::string lower = ascii_lower(text);
  // Recognize a trailing ".mncXXX.mccYYY.gprs" operator identifier.
  const std::string_view view{lower};
  const auto gprs_pos = view.rfind(".gprs");
  if (gprs_pos != std::string_view::npos && gprs_pos + 5 == view.size()) {
    const std::string_view head = view.substr(0, gprs_pos);
    const auto mcc_pos = head.rfind('.');
    if (mcc_pos != std::string_view::npos) {
      const std::string_view mcc_part = head.substr(mcc_pos + 1);
      const std::string_view head2 = head.substr(0, mcc_pos);
      const auto mnc_pos = head2.rfind('.');
      if (mnc_pos != std::string_view::npos) {
        const std::string_view mnc_part = head2.substr(mnc_pos + 1);
        const auto mcc = parse_prefixed_number(mcc_part, "mcc", 3);
        const auto mnc = parse_prefixed_number(mnc_part, "mnc", 3);
        if (mcc && mnc) {
          // Operator-identifier MNC is always 3 digits; values <= 99 are
          // conventionally 2-digit networks zero-padded.
          const std::uint8_t digits = *mnc <= 99 ? 2 : 3;
          return Apn{std::string(head2.substr(0, mnc_pos)), Plmn{*mcc, *mnc, digits}};
        }
      }
    }
  }
  return Apn{lower};
}

bool Apn::contains_keyword(std::string_view keyword) const {
  if (keyword.empty()) return false;
  return network_id_.find(keyword) != std::string::npos;
}

std::optional<std::string_view> first_matching_keyword(
    const Apn& apn, std::span<const std::string_view> keywords) {
  for (std::string_view keyword : keywords) {
    if (apn.contains_keyword(keyword)) return keyword;
  }
  return std::nullopt;
}

}  // namespace wtr::cellnet
