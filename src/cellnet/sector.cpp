#include "cellnet/sector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/rng.hpp"

namespace wtr::cellnet {

SectorGrid::SectorGrid(const Config& config) : config_(config) {
  assert(config.cols > 0 && config.rows > 0 && config.spacing_m > 0.0);
  stats::Rng rng{stats::mix64(config.seed, config.operator_plmn.key())};
  sectors_.reserve(static_cast<std::size_t>(config.cols) * config.rows);
  const double west = -half_extent_east_m();
  const double south = -half_extent_north_m();
  for (std::uint32_t r = 0; r < config.rows; ++r) {
    for (std::uint32_t c = 0; c < config.cols; ++c) {
      const double jitter_e = rng.uniform(-0.25, 0.25) * config.spacing_m;
      const double jitter_n = rng.uniform(-0.25, 0.25) * config.spacing_m;
      const double east = west + (static_cast<double>(c) + 0.5) * config.spacing_m + jitter_e;
      const double north = south + (static_cast<double>(r) + 0.5) * config.spacing_m + jitter_n;
      CellSector sector;
      sector.id = static_cast<SectorId>(sectors_.size());
      sector.operator_plmn = config.operator_plmn;
      sector.location = offset_m(config.anchor, east, north);
      if (rng.bernoulli(config.share_2g)) sector.rats.set(Rat::kTwoG);
      if (rng.bernoulli(config.share_3g)) sector.rats.set(Rat::kThreeG);
      if (rng.bernoulli(config.share_4g)) sector.rats.set(Rat::kFourG);
      if (rng.bernoulli(config.share_nbiot)) sector.rats.set(Rat::kNbIot);
      if (sector.rats.none()) sector.rats.set(Rat::kTwoG);  // no dead sectors
      sectors_.push_back(sector);
    }
  }
}

const CellSector& SectorGrid::sector(SectorId id) const {
  assert(static_cast<std::size_t>(id) < sectors_.size());
  return sectors_[id];
}

double SectorGrid::half_extent_east_m() const noexcept {
  return 0.5 * static_cast<double>(config_.cols) * config_.spacing_m;
}

double SectorGrid::half_extent_north_m() const noexcept {
  return 0.5 * static_cast<double>(config_.rows) * config_.spacing_m;
}

std::size_t SectorGrid::cell_index(double east_m, double north_m) const {
  const double west = -half_extent_east_m();
  const double south = -half_extent_north_m();
  auto clamp_axis = [](double v, std::uint32_t n) {
    const auto idx = static_cast<std::int64_t>(std::floor(v));
    return static_cast<std::uint32_t>(std::clamp<std::int64_t>(idx, 0, n - 1));
  };
  const std::uint32_t c = clamp_axis((east_m - west) / config_.spacing_m, config_.cols);
  const std::uint32_t r = clamp_axis((north_m - south) / config_.spacing_m, config_.rows);
  return static_cast<std::size_t>(r) * config_.cols + c;
}

const CellSector& SectorGrid::serving_sector(double east_m, double north_m) const {
  assert(!sectors_.empty());
  return sectors_[cell_index(east_m, north_m)];
}

std::optional<SectorId> SectorGrid::serving_sector_with_rat(double east_m, double north_m,
                                                            Rat rat) const {
  assert(!sectors_.empty());
  const std::size_t home = cell_index(east_m, north_m);
  if (sectors_[home].rats.has(rat)) return sectors_[home].id;
  // Deterministic ring scan: nearest cells by index distance in the grid.
  const auto home_row = static_cast<std::int64_t>(home / config_.cols);
  const auto home_col = static_cast<std::int64_t>(home % config_.cols);
  const std::int64_t max_radius =
      static_cast<std::int64_t>(std::max(config_.cols, config_.rows));
  for (std::int64_t radius = 1; radius <= max_radius; ++radius) {
    for (std::int64_t dr = -radius; dr <= radius; ++dr) {
      for (std::int64_t dc = -radius; dc <= radius; ++dc) {
        if (std::max(std::abs(dr), std::abs(dc)) != radius) continue;
        const std::int64_t r = home_row + dr;
        const std::int64_t c = home_col + dc;
        if (r < 0 || c < 0 || r >= static_cast<std::int64_t>(config_.rows) ||
            c >= static_cast<std::int64_t>(config_.cols)) {
          continue;
        }
        const auto idx = static_cast<std::size_t>(r) * config_.cols +
                         static_cast<std::size_t>(c);
        if (sectors_[idx].rats.has(rat)) return sectors_[idx].id;
      }
    }
  }
  return std::nullopt;
}

}  // namespace wtr::cellnet
