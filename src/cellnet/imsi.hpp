#pragma once

// International Mobile Subscriber Identity: the SIM-side identity. The GSMA
// guidance the paper discusses (IR.88) asks home operators to expose the
// dedicated IMSI ranges their M2M SIMs use; the UK MNO in §7 provisions its
// SMIP smart meters from a dedicated range. ImsiRange models exactly that.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "cellnet/plmn.hpp"

namespace wtr::cellnet {

class Imsi {
 public:
  constexpr Imsi() = default;

  /// msin is the subscriber part (up to 10 digits; IMSI total is <= 15).
  constexpr Imsi(Plmn plmn, std::uint64_t msin) : plmn_(plmn), msin_(msin) {}

  [[nodiscard]] constexpr Plmn plmn() const noexcept { return plmn_; }
  [[nodiscard]] constexpr std::uint64_t msin() const noexcept { return msin_; }

  /// MSIN digit budget: IMSI totals at most 15 digits (3 MCC + MNC width).
  [[nodiscard]] constexpr std::uint64_t msin_limit() const noexcept {
    return plmn_.mnc_digits() == 3 ? 1'000'000'000ULL : 10'000'000'000ULL;
  }

  [[nodiscard]] constexpr bool valid() const noexcept {
    return plmn_.valid() && msin_ < msin_limit();
  }

  /// Full 15-digit rendering, MSIN zero-padded.
  [[nodiscard]] std::string to_string() const;

  /// Parse a 14- or 15-digit IMSI given the MNC width (the split between
  /// MNC and MSIN is not self-describing on the wire).
  [[nodiscard]] static std::optional<Imsi> parse(std::string_view digits,
                                                 std::uint8_t mnc_digits);

  friend constexpr bool operator==(const Imsi&, const Imsi&) noexcept = default;
  friend constexpr auto operator<=>(const Imsi&, const Imsi&) noexcept = default;

 private:
  Plmn plmn_{};
  std::uint64_t msin_ = 0;
};

/// Half-open MSIN range [begin, end) within one PLMN; used for dedicated
/// M2M/SMIP provisioning pools and for the classifier's IMSI-range rule.
class ImsiRange {
 public:
  constexpr ImsiRange() = default;
  constexpr ImsiRange(Plmn plmn, std::uint64_t begin, std::uint64_t end)
      : plmn_(plmn), begin_(begin), end_(end) {}

  [[nodiscard]] constexpr Plmn plmn() const noexcept { return plmn_; }
  [[nodiscard]] constexpr std::uint64_t begin() const noexcept { return begin_; }
  [[nodiscard]] constexpr std::uint64_t end() const noexcept { return end_; }
  [[nodiscard]] constexpr std::uint64_t size() const noexcept { return end_ - begin_; }

  [[nodiscard]] constexpr bool contains(const Imsi& imsi) const noexcept {
    return imsi.plmn() == plmn_ && imsi.msin() >= begin_ && imsi.msin() < end_;
  }

  /// The n-th IMSI of the pool. Requires n < size().
  [[nodiscard]] Imsi at(std::uint64_t n) const;

 private:
  Plmn plmn_{};
  std::uint64_t begin_ = 0;
  std::uint64_t end_ = 0;
};

}  // namespace wtr::cellnet
