#include "cellnet/tac_catalog.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <set>

#include "stats/distributions.hpp"

namespace wtr::cellnet {

std::string_view gsma_label_name(GsmaLabel label) noexcept {
  switch (label) {
    case GsmaLabel::kSmartphone: return "smartphone";
    case GsmaLabel::kFeaturePhone: return "feature-phone";
    case GsmaLabel::kModem: return "modem";
    case GsmaLabel::kModule: return "module";
    case GsmaLabel::kTablet: return "tablet";
    case GsmaLabel::kWearable: return "wearable";
    case GsmaLabel::kUnknown: return "unknown";
  }
  return "?";
}

std::string_view device_os_name(DeviceOs os) noexcept {
  switch (os) {
    case DeviceOs::kAndroid: return "android";
    case DeviceOs::kIos: return "ios";
    case DeviceOs::kBlackberry: return "blackberry";
    case DeviceOs::kWindowsMobile: return "windows-mobile";
    case DeviceOs::kProprietary: return "proprietary";
    case DeviceOs::kNone: return "none";
  }
  return "?";
}

bool is_major_smartphone_os(DeviceOs os) noexcept {
  switch (os) {
    case DeviceOs::kAndroid:
    case DeviceOs::kIos:
    case DeviceOs::kBlackberry:
    case DeviceOs::kWindowsMobile: return true;
    default: return false;
  }
}

void TacCatalog::add(TacInfo info) { entries_[info.tac] = std::move(info); }

const TacInfo* TacCatalog::lookup(Tac tac) const noexcept {
  const auto it = entries_.find(tac);
  return it == entries_.end() ? nullptr : &it->second;
}

std::size_t TacCatalog::distinct_vendors() const {
  std::set<std::string_view> vendors;
  for (const auto& [_, info] : entries_) vendors.insert(info.vendor);
  return vendors.size();
}

std::size_t TacCatalog::distinct_models() const {
  std::set<std::pair<std::string_view, std::string_view>> models;
  for (const auto& [_, info] : entries_) models.insert({info.vendor, info.model});
  return models.size();
}

std::vector<std::string_view> top_m2m_module_vendors() {
  return {"Gemalto", "Telit", "Sierra Wireless"};
}

namespace {

struct VendorSpec {
  std::string_view name;
  double weight;  // share of this category's models
};

// Smartphone vendors with rough market-share weights.
constexpr std::array<VendorSpec, 12> kSmartphoneVendors{{
    {"Samsung", 0.26}, {"Apple", 0.20}, {"Huawei", 0.14}, {"Xiaomi", 0.09},
    {"Oppo", 0.06}, {"LG", 0.05}, {"Sony", 0.04}, {"Motorola", 0.04},
    {"OnePlus", 0.03}, {"Nokia", 0.03}, {"Google", 0.03}, {"HTC", 0.03},
}};

constexpr std::array<VendorSpec, 8> kFeatureVendors{{
    {"Nokia", 0.34}, {"Samsung", 0.18}, {"Alcatel", 0.14}, {"ZTE", 0.10},
    {"Doro", 0.08}, {"Philips", 0.06}, {"Siemens", 0.05}, {"Sagem", 0.05},
}};

// M2M module vendors. The top three (Gemalto, Telit, Sierra Wireless) get a
// combined ~0.75 weight to match the paper's inbound-roamer composition.
constexpr std::array<VendorSpec, 10> kModuleVendors{{
    {"Gemalto", 0.34}, {"Telit", 0.26}, {"Sierra Wireless", 0.15},
    {"u-blox", 0.06}, {"Quectel", 0.05}, {"SIMCom", 0.04}, {"Cinterion", 0.03},
    {"Fibocom", 0.03}, {"Neoway", 0.02}, {"MeiG", 0.02},
}};

constexpr Tac kSmartphoneTacBase = 35'000'000;
constexpr Tac kFeatureTacBase = 35'400'000;
constexpr Tac kModuleTacBase = 35'700'000;
constexpr Tac kFillerTacBase = 86'000'000;

std::string model_name(std::string_view vendor, std::size_t index) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*s-%zu", static_cast<int>(vendor.size()),
                vendor.data(), index + 100);
  return buf;
}

}  // namespace

TacPools::TacPools(const Config& config) {
  stats::Rng rng{config.seed};

  auto build_pool = [&](std::span<const VendorSpec> vendors, std::size_t model_count,
                        Tac tac_base, EquipmentCategory category) {
    Pool pool;
    std::vector<double> weights;
    pool.tacs.reserve(model_count);
    weights.reserve(model_count);
    std::vector<double> vendor_weights;
    for (const auto& v : vendors) vendor_weights.push_back(v.weight);
    std::vector<std::size_t> vendor_model_counts(vendors.size(), 0);

    for (std::size_t m = 0; m < model_count; ++m) {
      const std::size_t vi = rng.weighted_index(vendor_weights);
      const VendorSpec& vendor = vendors[vi];
      const Tac tac = tac_base + static_cast<Tac>(m);

      TacInfo info;
      info.tac = tac;
      info.vendor = std::string(vendor.name);
      info.model = model_name(vendor.name, vendor_model_counts[vi]++);
      switch (category) {
        case EquipmentCategory::kSmartphone: {
          info.label = GsmaLabel::kSmartphone;
          info.os = vendor.name == "Apple" ? DeviceOs::kIos
                    : rng.bernoulli(0.04)  ? DeviceOs::kWindowsMobile
                                           : DeviceOs::kAndroid;
          info.bands.set(Rat::kThreeG);
          if (rng.bernoulli(0.80)) info.bands.set(Rat::kFourG);
          if (rng.bernoulli(0.90)) info.bands.set(Rat::kTwoG);
          break;
        }
        case EquipmentCategory::kFeaturePhone: {
          info.label = GsmaLabel::kFeaturePhone;
          info.os = DeviceOs::kProprietary;
          info.bands.set(Rat::kTwoG);
          if (rng.bernoulli(0.20)) info.bands.set(Rat::kThreeG);
          break;
        }
        case EquipmentCategory::kM2MModule: {
          info.label = rng.bernoulli(0.55) ? GsmaLabel::kModule : GsmaLabel::kModem;
          info.os = rng.bernoulli(0.7) ? DeviceOs::kProprietary : DeviceOs::kNone;
          info.bands.set(Rat::kTwoG);  // modules ship 2G fallback universally
          if (rng.bernoulli(0.45)) info.bands.set(Rat::kThreeG);
          if (rng.bernoulli(0.30)) info.bands.set(Rat::kFourG);
          break;
        }
      }
      catalog_.add(info);
      pool.tacs.push_back(tac);
      // Zipf-like popularity: model index drives weight.
      weights.push_back(1.0 / std::pow(static_cast<double>(m + 1),
                                       config.model_zipf_exponent));
      if (category == EquipmentCategory::kM2MModule) {
        vendor_modules_[std::string(vendor.name)].push_back(tac);
      }
    }
    pool.sampler = stats::DiscreteSampler{weights};
    return pool;
  };

  smartphone_pool_ = build_pool(kSmartphoneVendors, config.smartphone_models,
                                kSmartphoneTacBase, EquipmentCategory::kSmartphone);
  feature_pool_ = build_pool(kFeatureVendors, config.feature_models, kFeatureTacBase,
                             EquipmentCategory::kFeaturePhone);
  module_pool_ = build_pool(kModuleVendors, config.module_models, kModuleTacBase,
                            EquipmentCategory::kM2MModule);

  // Long-tail filler vendors: rarely-seen equipment that inflates the
  // vendor/model counts the way the real GSMA catalog does (2,436 vendors /
  // 24,991 models across the paper's population).
  for (std::size_t m = 0; m < config.filler_models; ++m) {
    const std::size_t vendor_index =
        config.filler_vendors == 0 ? 0 : m % config.filler_vendors;
    char vendor_buf[32];
    std::snprintf(vendor_buf, sizeof(vendor_buf), "OEM-%04zu", vendor_index);
    TacInfo info;
    info.tac = kFillerTacBase + static_cast<Tac>(m);
    info.vendor = vendor_buf;
    info.model = model_name(vendor_buf, m / std::max<std::size_t>(1, config.filler_vendors));
    info.label = GsmaLabel::kUnknown;
    info.os = DeviceOs::kProprietary;
    info.bands.set(Rat::kTwoG);
    catalog_.add(info);
    filler_tacs_.push_back(info.tac);
  }
}

Tac TacPools::draw_filler(stats::Rng& rng) const {
  if (filler_tacs_.empty()) return draw(rng, EquipmentCategory::kM2MModule);
  return filler_tacs_[rng.below(filler_tacs_.size())];
}

const TacPools::Pool& TacPools::pool_of(EquipmentCategory category) const noexcept {
  switch (category) {
    case EquipmentCategory::kSmartphone: return smartphone_pool_;
    case EquipmentCategory::kFeaturePhone: return feature_pool_;
    case EquipmentCategory::kM2MModule: return module_pool_;
  }
  return module_pool_;
}

Tac TacPools::draw(stats::Rng& rng, EquipmentCategory category) const {
  const Pool& pool = pool_of(category);
  assert(!pool.tacs.empty());
  return pool.tacs[pool.sampler.sample(rng)];
}

Tac TacPools::draw_vendor(stats::Rng& rng, EquipmentCategory category,
                          std::string_view vendor) const {
  const auto it = vendor_modules_.find(std::string(vendor));
  if (it == vendor_modules_.end() || it->second.empty()) return draw(rng, category);
  return it->second[rng.below(it->second.size())];
}

}  // namespace wtr::cellnet
