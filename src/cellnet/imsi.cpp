#include "cellnet/imsi.hpp"

#include <cassert>
#include <cctype>
#include <cstdio>

namespace wtr::cellnet {

std::string Imsi::to_string() const {
  const int mnc_width = plmn_.mnc_digits() == 3 ? 3 : 2;
  const int msin_digits = 15 - 3 - mnc_width;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%03u%0*u%0*llu", plmn_.mcc(), mnc_width,
                plmn_.mnc(), msin_digits, static_cast<unsigned long long>(msin_));
  return buf;
}

std::optional<Imsi> Imsi::parse(std::string_view digits, std::uint8_t mnc_digits) {
  if (mnc_digits != 2 && mnc_digits != 3) return std::nullopt;
  if (digits.size() < static_cast<std::size_t>(3 + mnc_digits + 1) || digits.size() > 15) {
    return std::nullopt;
  }
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
  }
  auto to_num = [](std::string_view s) {
    std::uint64_t v = 0;
    for (char c : s) v = v * 10 + static_cast<std::uint64_t>(c - '0');
    return v;
  };
  const auto mcc = static_cast<std::uint16_t>(to_num(digits.substr(0, 3)));
  const auto mnc = static_cast<std::uint16_t>(to_num(digits.substr(3, mnc_digits)));
  const std::uint64_t msin = to_num(digits.substr(3 + mnc_digits));
  const Imsi imsi{Plmn{mcc, mnc, mnc_digits}, msin};
  if (!imsi.valid()) return std::nullopt;
  return imsi;
}

Imsi ImsiRange::at(std::uint64_t n) const {
  assert(n < size());
  return Imsi{plmn_, begin_ + n};
}

}  // namespace wtr::cellnet
