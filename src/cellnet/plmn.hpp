#pragma once

// Public Land Mobile Network identity: the MCC-MNC pair that names a mobile
// network world-wide. Every record in both of the paper's datasets carries
// two of these (SIM PLMN and visited PLMN); they are the join key for all
// roaming analyses.

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace wtr::cellnet {

class Plmn {
 public:
  constexpr Plmn() = default;

  /// mcc in [100, 999]; mnc in [0, 999]; mnc_digits 2 or 3 (the wire format
  /// of MNC is length-significant: "04" != "004").
  constexpr Plmn(std::uint16_t mcc, std::uint16_t mnc, std::uint8_t mnc_digits = 2)
      : mcc_(mcc), mnc_(mnc), mnc_digits_(mnc_digits) {}

  [[nodiscard]] constexpr std::uint16_t mcc() const noexcept { return mcc_; }
  [[nodiscard]] constexpr std::uint16_t mnc() const noexcept { return mnc_; }
  [[nodiscard]] constexpr std::uint8_t mnc_digits() const noexcept { return mnc_digits_; }

  [[nodiscard]] constexpr bool valid() const noexcept {
    return mcc_ >= 100 && mcc_ <= 999 && mnc_ <= 999 &&
           (mnc_digits_ == 2 || mnc_digits_ == 3) && (mnc_digits_ == 3 || mnc_ <= 99);
  }

  /// "214-07" / "310-410" style rendering (MNC zero-padded to its width).
  [[nodiscard]] std::string to_string() const;

  /// Parse "21407", "214-07" or "214-007". Returns nullopt on malformed
  /// input.
  [[nodiscard]] static std::optional<Plmn> parse(std::string_view text);

  /// Dense integer key for hashing/sorting; preserves MNC width.
  [[nodiscard]] constexpr std::uint32_t key() const noexcept {
    return (static_cast<std::uint32_t>(mcc_) << 12) |
           (static_cast<std::uint32_t>(mnc_) << 2) | mnc_digits_;
  }

  friend constexpr auto operator<=>(const Plmn& a, const Plmn& b) noexcept {
    return a.key() <=> b.key();
  }
  friend constexpr bool operator==(const Plmn& a, const Plmn& b) noexcept {
    return a.key() == b.key();
  }

 private:
  std::uint16_t mcc_ = 0;
  std::uint16_t mnc_ = 0;
  std::uint8_t mnc_digits_ = 2;
};

}  // namespace wtr::cellnet

template <>
struct std::hash<wtr::cellnet::Plmn> {
  std::size_t operator()(const wtr::cellnet::Plmn& plmn) const noexcept {
    return std::hash<std::uint32_t>{}(plmn.key());
  }
};
