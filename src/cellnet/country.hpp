#pragma once

// Country registry: ISO-3166 alpha-2 code, human name, ITU Mobile Country
// Code and a coarse region tag (used by roaming-regulation logic: the EU
// "roam like at home" regulation the paper cites makes intra-EU roaming the
// default, while several Latin American markets restrict it).
//
// The table carries the real MCC assignments for the ~70 countries the
// paper's datasets touch; it is a static catalog, not an external data
// dependency.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace wtr::cellnet {

enum class Region : std::uint8_t {
  kEurope,        // EU/EEA "roam like at home" area
  kEuropeNonEu,   // European, outside the RLAH regulation
  kLatinAmerica,
  kNorthAmerica,
  kAsiaPacific,
  kMiddleEastAfrica,
};

[[nodiscard]] std::string_view region_name(Region region) noexcept;

struct CountryInfo {
  std::string_view iso;   // "ES"
  std::string_view name;  // "Spain"
  std::uint16_t mcc;      // 214
  Region region;
  double lat;             // rough centroid, degrees
  double lon;
};

/// Full static table (sorted by ISO code).
[[nodiscard]] std::span<const CountryInfo> all_countries() noexcept;

/// Lookup by ISO alpha-2 code ("ES"); nullopt when unknown.
[[nodiscard]] std::optional<CountryInfo> country_by_iso(std::string_view iso) noexcept;

/// Lookup by MCC; nullopt when unknown.
[[nodiscard]] std::optional<CountryInfo> country_by_mcc(std::uint16_t mcc) noexcept;

/// ISO code of the country owning this MCC, or "??" when unknown.
[[nodiscard]] std::string_view iso_of_mcc(std::uint16_t mcc) noexcept;

}  // namespace wtr::cellnet
