#pragma once

// The M2M platform trace (§3.1): the HMNO-side probes see only the roaming
// interconnect control plane — authentication / update location / cancel
// location — and only for 4G attachments. This filter turns the simulator's
// full signaling stream into exactly that view.

#include <vector>

#include "signaling/transaction.hpp"

namespace wtr::records {

/// True when a transaction would be captured by the platform's probes:
/// a 4G procedure of the types monitored near the HMNO.
[[nodiscard]] bool platform_probe_captures(const signaling::SignalingTransaction& txn);

/// Filtered copy of a stream (keeps order).
[[nodiscard]] std::vector<signaling::SignalingTransaction> platform_view(
    const std::vector<signaling::SignalingTransaction>& stream);

}  // namespace wtr::records
