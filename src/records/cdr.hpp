#pragma once

// Call Detail Records: aggregate voice usage (§4.1). Unlike radio logs,
// CDRs are produced for outbound roamers too — they are the basis of
// roaming revenue reconciliation between partners (§2.1).

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cellnet/plmn.hpp"
#include "cellnet/rat.hpp"
#include "io/trace_columns.hpp"
#include "signaling/transaction.hpp"
#include "stats/sim_time.hpp"

namespace wtr::records {

struct Cdr {
  signaling::DeviceHash device = 0;
  stats::SimTime time = 0;
  cellnet::Plmn sim_plmn{};
  cellnet::Plmn visited_plmn{};
  double duration_s = 0.0;
  cellnet::Rat rat = cellnet::Rat::kTwoG;
};

[[nodiscard]] std::vector<std::string> to_csv_fields(const Cdr& cdr);
[[nodiscard]] std::vector<std::string> cdr_csv_header();

/// Inverse of to_csv_fields; nullopt on malformed rows.
[[nodiscard]] std::optional<Cdr> cdr_from_csv_fields(std::span<const std::string> fields);

// --- Binary columnar codec (io/bintrace block payloads) ---------------------
// Durations travel as raw IEEE-754 bit patterns: unlike the CSV projection
// (format_fixed to one decimal), the binary codec is bit-exact.

struct CdrColumns {
  std::vector<std::uint64_t> device;
  std::vector<std::int64_t> time;
  std::vector<std::uint32_t> sim_plmn;      // dict index of Plmn::to_string
  std::vector<std::uint32_t> visited_plmn;  // dict index
  std::vector<double> duration_s;
  std::vector<std::uint8_t> rat;

  [[nodiscard]] std::size_t size() const noexcept { return device.size(); }
  void clear();
};

void bin_append(CdrColumns& columns, io::TraceDict& dict, const Cdr& cdr);
void bin_write(util::BinWriter& out, const CdrColumns& columns);
[[nodiscard]] CdrColumns bin_read_cdr(util::BinReader& in, std::size_t n,
                                      std::size_t dict_size);
/// Nullopt on enum/PLMN validation failure (a bad field, mirroring CSV).
/// `plmns` is the block dictionary parsed once by the reader.
[[nodiscard]] std::optional<Cdr> bin_extract(
    const CdrColumns& columns,
    std::span<const std::optional<cellnet::Plmn>> plmns, std::size_t i);

}  // namespace wtr::records
