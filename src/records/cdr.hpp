#pragma once

// Call Detail Records: aggregate voice usage (§4.1). Unlike radio logs,
// CDRs are produced for outbound roamers too — they are the basis of
// roaming revenue reconciliation between partners (§2.1).

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cellnet/plmn.hpp"
#include "cellnet/rat.hpp"
#include "signaling/transaction.hpp"
#include "stats/sim_time.hpp"

namespace wtr::records {

struct Cdr {
  signaling::DeviceHash device = 0;
  stats::SimTime time = 0;
  cellnet::Plmn sim_plmn{};
  cellnet::Plmn visited_plmn{};
  double duration_s = 0.0;
  cellnet::Rat rat = cellnet::Rat::kTwoG;
};

[[nodiscard]] std::vector<std::string> to_csv_fields(const Cdr& cdr);
[[nodiscard]] std::vector<std::string> cdr_csv_header();

/// Inverse of to_csv_fields; nullopt on malformed rows.
[[nodiscard]] std::optional<Cdr> cdr_from_csv_fields(std::span<const std::string> fields);

}  // namespace wtr::records
