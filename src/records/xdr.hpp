#pragma once

// eXtended Detail Records: aggregate data usage (§4.1). Carries the APN
// string — the classifier's key signal — and, like CDRs, covers outbound
// roamers as well.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cellnet/apn.hpp"
#include "cellnet/plmn.hpp"
#include "cellnet/rat.hpp"
#include "io/trace_columns.hpp"
#include "signaling/transaction.hpp"
#include "stats/sim_time.hpp"

namespace wtr::records {

struct Xdr {
  signaling::DeviceHash device = 0;
  stats::SimTime time = 0;
  cellnet::Plmn sim_plmn{};
  cellnet::Plmn visited_plmn{};
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::string apn;  // full wire form
  cellnet::Rat rat = cellnet::Rat::kTwoG;

  [[nodiscard]] std::uint64_t bytes_total() const noexcept {
    return bytes_up + bytes_down;
  }
};

[[nodiscard]] std::vector<std::string> to_csv_fields(const Xdr& xdr);
[[nodiscard]] std::vector<std::string> xdr_csv_header();

/// Inverse of to_csv_fields; nullopt on malformed rows.
[[nodiscard]] std::optional<Xdr> xdr_from_csv_fields(std::span<const std::string> fields);

// --- Binary columnar codec (io/bintrace block payloads) ---------------------
// APNs share the block dictionary with the PLMN strings; a fleet hammering
// one platform APN costs a few bytes per block, not per record.

struct XdrColumns {
  std::vector<std::uint64_t> device;
  std::vector<std::int64_t> time;
  std::vector<std::uint32_t> sim_plmn;      // dict index of Plmn::to_string
  std::vector<std::uint32_t> visited_plmn;  // dict index
  std::vector<std::uint64_t> bytes_up;
  std::vector<std::uint64_t> bytes_down;
  std::vector<std::uint32_t> apn;           // dict index (full wire form)
  std::vector<std::uint8_t> rat;

  [[nodiscard]] std::size_t size() const noexcept { return device.size(); }
  void clear();
};

void bin_append(XdrColumns& columns, io::TraceDict& dict, const Xdr& xdr);
void bin_write(util::BinWriter& out, const XdrColumns& columns);
[[nodiscard]] XdrColumns bin_read_xdr(util::BinReader& in, std::size_t n,
                                      std::size_t dict_size);
/// Nullopt on enum/PLMN validation failure (a bad field, mirroring CSV).
/// `plmns` is the block dictionary parsed once by the reader; `dict` still
/// carries the raw strings (the APN column reads them verbatim).
[[nodiscard]] std::optional<Xdr> bin_extract(
    const XdrColumns& columns,
    std::span<const std::optional<cellnet::Plmn>> plmns,
    std::span<const std::string> dict, std::size_t i);

}  // namespace wtr::records
