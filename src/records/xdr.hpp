#pragma once

// eXtended Detail Records: aggregate data usage (§4.1). Carries the APN
// string — the classifier's key signal — and, like CDRs, covers outbound
// roamers as well.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cellnet/apn.hpp"
#include "cellnet/plmn.hpp"
#include "cellnet/rat.hpp"
#include "signaling/transaction.hpp"
#include "stats/sim_time.hpp"

namespace wtr::records {

struct Xdr {
  signaling::DeviceHash device = 0;
  stats::SimTime time = 0;
  cellnet::Plmn sim_plmn{};
  cellnet::Plmn visited_plmn{};
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::string apn;  // full wire form
  cellnet::Rat rat = cellnet::Rat::kTwoG;

  [[nodiscard]] std::uint64_t bytes_total() const noexcept {
    return bytes_up + bytes_down;
  }
};

[[nodiscard]] std::vector<std::string> to_csv_fields(const Xdr& xdr);
[[nodiscard]] std::vector<std::string> xdr_csv_header();

/// Inverse of to_csv_fields; nullopt on malformed rows.
[[nodiscard]] std::optional<Xdr> xdr_from_csv_fields(std::span<const std::string> fields);

}  // namespace wtr::records
