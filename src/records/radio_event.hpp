#pragma once

// Radio-interface event log: what the MNO's probes capture on the IuCS,
// IuPS, A, Gb and S1 interfaces (§4.1). Each event is a signaling
// transaction seen on a specific interface at a specific sector; outbound
// roamers do NOT appear here (their radio signaling stays in the visited
// country), which the catalog builder must honour.

#include <vector>

#include "cellnet/rat.hpp"
#include "signaling/transaction.hpp"

namespace wtr::records {

struct RadioEvent {
  signaling::SignalingTransaction txn{};
  cellnet::RadioInterface iface = cellnet::RadioInterface::kA;
};

/// Convenience: the interface an event belongs on, derived from RAT and
/// whether the triggering activity was data or voice.
[[nodiscard]] RadioEvent make_radio_event(const signaling::SignalingTransaction& txn,
                                          bool data_context);

}  // namespace wtr::records
