#pragma once

// Radio-interface event log: what the MNO's probes capture on the IuCS,
// IuPS, A, Gb and S1 interfaces (§4.1). Each event is a signaling
// transaction seen on a specific interface at a specific sector; outbound
// roamers do NOT appear here (their radio signaling stays in the visited
// country), which the catalog builder must honour.

#include <optional>
#include <utility>
#include <vector>

#include "cellnet/rat.hpp"
#include "io/trace_columns.hpp"
#include "signaling/transaction.hpp"

namespace wtr::records {

struct RadioEvent {
  signaling::SignalingTransaction txn{};
  cellnet::RadioInterface iface = cellnet::RadioInterface::kA;
};

/// Convenience: the interface an event belongs on, derived from RAT and
/// whether the triggering activity was data or voice.
[[nodiscard]] RadioEvent make_radio_event(const signaling::SignalingTransaction& txn,
                                          bool data_context);

// --- Binary columnar codec (io/bintrace block payloads) ---------------------
// One signaling transaction per row; covers both the platform-transaction
// and radio-event streams (same wire struct). The interface family is not
// stored — it is derived from (rat, data_context), exactly as
// make_radio_event does.

struct RadioColumns {
  std::vector<std::uint64_t> device;
  std::vector<std::int64_t> time;
  std::vector<std::uint32_t> sim_plmn;      // dict index of Plmn::to_string
  std::vector<std::uint32_t> visited_plmn;  // dict index
  std::vector<std::uint8_t> procedure;
  std::vector<std::uint8_t> result;
  std::vector<std::uint8_t> rat;
  std::vector<std::uint64_t> sector;
  std::vector<std::uint64_t> tac;
  std::vector<bool> data_context;

  [[nodiscard]] std::size_t size() const noexcept { return device.size(); }
  void clear();
};

/// Append one record to the column set, interning its PLMN strings.
void bin_append(RadioColumns& columns, io::TraceDict& dict,
                const signaling::SignalingTransaction& txn, bool data_context);

/// Serialize/deserialize all columns (count and dictionary travel in the
/// enclosing block header). bin_read throws on truncation or a dangling
/// dictionary index.
void bin_write(util::BinWriter& out, const RadioColumns& columns);
[[nodiscard]] RadioColumns bin_read_radio(util::BinReader& in, std::size_t n,
                                          std::size_t dict_size);

/// Reconstruct row `i`; nullopt when an enum byte or dictionary string fails
/// validation (counted by the reader as a bad field, mirroring CSV replay).
/// `plmns` is the block dictionary parsed once by the reader (nullopt entry
/// = unparsable string), so rows pay an index instead of a string parse.
[[nodiscard]] std::optional<std::pair<signaling::SignalingTransaction, bool>>
bin_extract(const RadioColumns& columns,
            std::span<const std::optional<cellnet::Plmn>> plmns, std::size_t i);

}  // namespace wtr::records
