#include "records/cdr.hpp"

#include "io/csv.hpp"
#include "io/table.hpp"

namespace wtr::records {

std::vector<std::string> cdr_csv_header() {
  return {"device", "time", "sim_plmn", "visited_plmn", "duration_s", "rat"};
}

std::vector<std::string> to_csv_fields(const Cdr& cdr) {
  return {std::to_string(cdr.device),
          std::to_string(cdr.time),
          cdr.sim_plmn.to_string(),
          cdr.visited_plmn.to_string(),
          io::format_fixed(cdr.duration_s, 1),
          std::string(cellnet::rat_name(cdr.rat))};
}

std::optional<Cdr> cdr_from_csv_fields(std::span<const std::string> fields) {
  if (fields.size() != cdr_csv_header().size()) return std::nullopt;
  const auto device = io::parse_u64(fields[0]);
  const auto time = io::parse_i64(fields[1]);
  const auto sim = cellnet::Plmn::parse(fields[2]);
  const auto visited = cellnet::Plmn::parse(fields[3]);
  const auto duration = io::parse_double(fields[4]);
  const auto rat = cellnet::rat_from_name(fields[5]);
  if (!device || !time || !sim || !visited || !duration || !rat) return std::nullopt;
  Cdr cdr;
  cdr.device = *device;
  cdr.time = *time;
  cdr.sim_plmn = *sim;
  cdr.visited_plmn = *visited;
  cdr.duration_s = *duration;
  cdr.rat = *rat;
  return cdr;
}

}  // namespace wtr::records
