#include "records/cdr.hpp"

#include "io/csv.hpp"
#include "io/table.hpp"

namespace wtr::records {

std::vector<std::string> cdr_csv_header() {
  return {"device", "time", "sim_plmn", "visited_plmn", "duration_s", "rat"};
}

std::vector<std::string> to_csv_fields(const Cdr& cdr) {
  return {std::to_string(cdr.device),
          std::to_string(cdr.time),
          cdr.sim_plmn.to_string(),
          cdr.visited_plmn.to_string(),
          io::format_fixed(cdr.duration_s, 1),
          std::string(cellnet::rat_name(cdr.rat))};
}

std::optional<Cdr> cdr_from_csv_fields(std::span<const std::string> fields) {
  if (fields.size() != cdr_csv_header().size()) return std::nullopt;
  const auto device = io::parse_u64(fields[0]);
  const auto time = io::parse_i64(fields[1]);
  const auto sim = cellnet::Plmn::parse(fields[2]);
  const auto visited = cellnet::Plmn::parse(fields[3]);
  const auto duration = io::parse_double(fields[4]);
  const auto rat = cellnet::rat_from_name(fields[5]);
  if (!device || !time || !sim || !visited || !duration || !rat) return std::nullopt;
  Cdr cdr;
  cdr.device = *device;
  cdr.time = *time;
  cdr.sim_plmn = *sim;
  cdr.visited_plmn = *visited;
  cdr.duration_s = *duration;
  cdr.rat = *rat;
  return cdr;
}

void CdrColumns::clear() {
  device.clear();
  time.clear();
  sim_plmn.clear();
  visited_plmn.clear();
  duration_s.clear();
  rat.clear();
}

void bin_append(CdrColumns& columns, io::TraceDict& dict, const Cdr& cdr) {
  columns.device.push_back(cdr.device);
  columns.time.push_back(cdr.time);
  columns.sim_plmn.push_back(dict.intern(cdr.sim_plmn.to_string()));
  columns.visited_plmn.push_back(dict.intern(cdr.visited_plmn.to_string()));
  columns.duration_s.push_back(cdr.duration_s);
  columns.rat.push_back(static_cast<std::uint8_t>(cdr.rat));
}

void bin_write(util::BinWriter& out, const CdrColumns& columns) {
  io::write_varint_column(out, columns.device);
  io::write_delta_column(out, columns.time);
  io::write_dict_column(out, columns.sim_plmn);
  io::write_dict_column(out, columns.visited_plmn);
  io::write_f64_column(out, columns.duration_s);
  io::write_u8_column(out, columns.rat);
}

CdrColumns bin_read_cdr(util::BinReader& in, std::size_t n, std::size_t dict_size) {
  CdrColumns columns;
  columns.device = io::read_varint_column(in, n);
  columns.time = io::read_delta_column(in, n);
  columns.sim_plmn = io::read_dict_column(in, n, dict_size);
  columns.visited_plmn = io::read_dict_column(in, n, dict_size);
  columns.duration_s = io::read_f64_column(in, n);
  columns.rat = io::read_u8_column(in, n);
  return columns;
}

std::optional<Cdr> bin_extract(const CdrColumns& columns,
                               std::span<const std::optional<cellnet::Plmn>> plmns,
                               std::size_t i) {
  const auto& sim = plmns[columns.sim_plmn[i]];
  const auto& visited = plmns[columns.visited_plmn[i]];
  if (!sim || !visited || columns.rat[i] >= cellnet::kRatCount) return std::nullopt;
  Cdr cdr;
  cdr.device = columns.device[i];
  cdr.time = columns.time[i];
  cdr.sim_plmn = *sim;
  cdr.visited_plmn = *visited;
  cdr.duration_s = columns.duration_s[i];
  cdr.rat = static_cast<cellnet::Rat>(columns.rat[i]);
  return cdr;
}

}  // namespace wtr::records
