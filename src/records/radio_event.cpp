#include "records/radio_event.hpp"

namespace wtr::records {

RadioEvent make_radio_event(const signaling::SignalingTransaction& txn,
                            bool data_context) {
  RadioEvent event;
  event.txn = txn;
  event.iface = cellnet::interface_for(txn.rat, data_context);
  return event;
}

void RadioColumns::clear() {
  device.clear();
  time.clear();
  sim_plmn.clear();
  visited_plmn.clear();
  procedure.clear();
  result.clear();
  rat.clear();
  sector.clear();
  tac.clear();
  data_context.clear();
}

void bin_append(RadioColumns& columns, io::TraceDict& dict,
                const signaling::SignalingTransaction& txn, bool data_context) {
  columns.device.push_back(txn.device);
  columns.time.push_back(txn.time);
  columns.sim_plmn.push_back(dict.intern(txn.sim_plmn.to_string()));
  columns.visited_plmn.push_back(dict.intern(txn.visited_plmn.to_string()));
  columns.procedure.push_back(static_cast<std::uint8_t>(txn.procedure));
  columns.result.push_back(static_cast<std::uint8_t>(txn.result));
  columns.rat.push_back(static_cast<std::uint8_t>(txn.rat));
  columns.sector.push_back(txn.sector);
  columns.tac.push_back(txn.tac);
  columns.data_context.push_back(data_context);
}

void bin_write(util::BinWriter& out, const RadioColumns& columns) {
  io::write_varint_column(out, columns.device);
  io::write_delta_column(out, columns.time);
  io::write_dict_column(out, columns.sim_plmn);
  io::write_dict_column(out, columns.visited_plmn);
  io::write_u8_column(out, columns.procedure);
  io::write_u8_column(out, columns.result);
  io::write_u8_column(out, columns.rat);
  io::write_varint_column(out, columns.sector);
  io::write_varint_column(out, columns.tac);
  io::write_bit_column(out, columns.data_context);
}

RadioColumns bin_read_radio(util::BinReader& in, std::size_t n,
                            std::size_t dict_size) {
  RadioColumns columns;
  columns.device = io::read_varint_column(in, n);
  columns.time = io::read_delta_column(in, n);
  columns.sim_plmn = io::read_dict_column(in, n, dict_size);
  columns.visited_plmn = io::read_dict_column(in, n, dict_size);
  columns.procedure = io::read_u8_column(in, n);
  columns.result = io::read_u8_column(in, n);
  columns.rat = io::read_u8_column(in, n);
  columns.sector = io::read_varint_column(in, n);
  columns.tac = io::read_varint_column(in, n);
  columns.data_context = io::read_bit_column(in, n);
  return columns;
}

std::optional<std::pair<signaling::SignalingTransaction, bool>> bin_extract(
    const RadioColumns& columns,
    std::span<const std::optional<cellnet::Plmn>> plmns, std::size_t i) {
  const auto& sim = plmns[columns.sim_plmn[i]];
  const auto& visited = plmns[columns.visited_plmn[i]];
  if (!sim || !visited || columns.procedure[i] >= signaling::kProcedureCount ||
      columns.result[i] >= signaling::kResultCodeCount ||
      columns.rat[i] >= cellnet::kRatCount) {
    return std::nullopt;
  }
  signaling::SignalingTransaction txn;
  txn.device = columns.device[i];
  txn.time = columns.time[i];
  txn.sim_plmn = *sim;
  txn.visited_plmn = *visited;
  txn.procedure = static_cast<signaling::Procedure>(columns.procedure[i]);
  txn.result = static_cast<signaling::ResultCode>(columns.result[i]);
  txn.rat = static_cast<cellnet::Rat>(columns.rat[i]);
  txn.sector = static_cast<cellnet::SectorId>(columns.sector[i]);
  txn.tac = static_cast<cellnet::Tac>(columns.tac[i]);
  return std::make_pair(txn, static_cast<bool>(columns.data_context[i]));
}

}  // namespace wtr::records
