#include "records/radio_event.hpp"

namespace wtr::records {

RadioEvent make_radio_event(const signaling::SignalingTransaction& txn,
                            bool data_context) {
  RadioEvent event;
  event.txn = txn;
  event.iface = cellnet::interface_for(txn.rat, data_context);
  return event;
}

}  // namespace wtr::records
