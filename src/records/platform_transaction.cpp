#include "records/platform_transaction.hpp"

namespace wtr::records {

bool platform_probe_captures(const signaling::SignalingTransaction& txn) {
  if (txn.rat != cellnet::Rat::kFourG) return false;  // no 2G/3G visibility
  return signaling::visible_to_platform_probes(txn.procedure);
}

std::vector<signaling::SignalingTransaction> platform_view(
    const std::vector<signaling::SignalingTransaction>& stream) {
  std::vector<signaling::SignalingTransaction> out;
  for (const auto& txn : stream) {
    if (platform_probe_captures(txn)) out.push_back(txn);
  }
  return out;
}

}  // namespace wtr::records
