#include "records/xdr.hpp"

#include "io/csv.hpp"

namespace wtr::records {

std::vector<std::string> xdr_csv_header() {
  return {"device", "time", "sim_plmn", "visited_plmn", "bytes_up", "bytes_down",
          "apn", "rat"};
}

std::vector<std::string> to_csv_fields(const Xdr& xdr) {
  return {std::to_string(xdr.device),
          std::to_string(xdr.time),
          xdr.sim_plmn.to_string(),
          xdr.visited_plmn.to_string(),
          std::to_string(xdr.bytes_up),
          std::to_string(xdr.bytes_down),
          xdr.apn,
          std::string(cellnet::rat_name(xdr.rat))};
}

std::optional<Xdr> xdr_from_csv_fields(std::span<const std::string> fields) {
  if (fields.size() != xdr_csv_header().size()) return std::nullopt;
  const auto device = io::parse_u64(fields[0]);
  const auto time = io::parse_i64(fields[1]);
  const auto sim = cellnet::Plmn::parse(fields[2]);
  const auto visited = cellnet::Plmn::parse(fields[3]);
  const auto up = io::parse_u64(fields[4]);
  const auto down = io::parse_u64(fields[5]);
  const auto rat = cellnet::rat_from_name(fields[7]);
  if (!device || !time || !sim || !visited || !up || !down || !rat) return std::nullopt;
  Xdr xdr;
  xdr.device = *device;
  xdr.time = *time;
  xdr.sim_plmn = *sim;
  xdr.visited_plmn = *visited;
  xdr.bytes_up = *up;
  xdr.bytes_down = *down;
  xdr.apn = fields[6];
  xdr.rat = *rat;
  return xdr;
}

}  // namespace wtr::records
