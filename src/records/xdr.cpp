#include "records/xdr.hpp"

#include "io/csv.hpp"

namespace wtr::records {

std::vector<std::string> xdr_csv_header() {
  return {"device", "time", "sim_plmn", "visited_plmn", "bytes_up", "bytes_down",
          "apn", "rat"};
}

std::vector<std::string> to_csv_fields(const Xdr& xdr) {
  return {std::to_string(xdr.device),
          std::to_string(xdr.time),
          xdr.sim_plmn.to_string(),
          xdr.visited_plmn.to_string(),
          std::to_string(xdr.bytes_up),
          std::to_string(xdr.bytes_down),
          xdr.apn,
          std::string(cellnet::rat_name(xdr.rat))};
}

std::optional<Xdr> xdr_from_csv_fields(std::span<const std::string> fields) {
  if (fields.size() != xdr_csv_header().size()) return std::nullopt;
  const auto device = io::parse_u64(fields[0]);
  const auto time = io::parse_i64(fields[1]);
  const auto sim = cellnet::Plmn::parse(fields[2]);
  const auto visited = cellnet::Plmn::parse(fields[3]);
  const auto up = io::parse_u64(fields[4]);
  const auto down = io::parse_u64(fields[5]);
  const auto rat = cellnet::rat_from_name(fields[7]);
  if (!device || !time || !sim || !visited || !up || !down || !rat) return std::nullopt;
  Xdr xdr;
  xdr.device = *device;
  xdr.time = *time;
  xdr.sim_plmn = *sim;
  xdr.visited_plmn = *visited;
  xdr.bytes_up = *up;
  xdr.bytes_down = *down;
  xdr.apn = fields[6];
  xdr.rat = *rat;
  return xdr;
}

void XdrColumns::clear() {
  device.clear();
  time.clear();
  sim_plmn.clear();
  visited_plmn.clear();
  bytes_up.clear();
  bytes_down.clear();
  apn.clear();
  rat.clear();
}

void bin_append(XdrColumns& columns, io::TraceDict& dict, const Xdr& xdr) {
  columns.device.push_back(xdr.device);
  columns.time.push_back(xdr.time);
  columns.sim_plmn.push_back(dict.intern(xdr.sim_plmn.to_string()));
  columns.visited_plmn.push_back(dict.intern(xdr.visited_plmn.to_string()));
  columns.bytes_up.push_back(xdr.bytes_up);
  columns.bytes_down.push_back(xdr.bytes_down);
  columns.apn.push_back(dict.intern(xdr.apn));
  columns.rat.push_back(static_cast<std::uint8_t>(xdr.rat));
}

void bin_write(util::BinWriter& out, const XdrColumns& columns) {
  io::write_varint_column(out, columns.device);
  io::write_delta_column(out, columns.time);
  io::write_dict_column(out, columns.sim_plmn);
  io::write_dict_column(out, columns.visited_plmn);
  io::write_varint_column(out, columns.bytes_up);
  io::write_varint_column(out, columns.bytes_down);
  io::write_dict_column(out, columns.apn);
  io::write_u8_column(out, columns.rat);
}

XdrColumns bin_read_xdr(util::BinReader& in, std::size_t n, std::size_t dict_size) {
  XdrColumns columns;
  columns.device = io::read_varint_column(in, n);
  columns.time = io::read_delta_column(in, n);
  columns.sim_plmn = io::read_dict_column(in, n, dict_size);
  columns.visited_plmn = io::read_dict_column(in, n, dict_size);
  columns.bytes_up = io::read_varint_column(in, n);
  columns.bytes_down = io::read_varint_column(in, n);
  columns.apn = io::read_dict_column(in, n, dict_size);
  columns.rat = io::read_u8_column(in, n);
  return columns;
}

std::optional<Xdr> bin_extract(const XdrColumns& columns,
                               std::span<const std::optional<cellnet::Plmn>> plmns,
                               std::span<const std::string> dict, std::size_t i) {
  const auto& sim = plmns[columns.sim_plmn[i]];
  const auto& visited = plmns[columns.visited_plmn[i]];
  if (!sim || !visited || columns.rat[i] >= cellnet::kRatCount) return std::nullopt;
  Xdr xdr;
  xdr.device = columns.device[i];
  xdr.time = columns.time[i];
  xdr.sim_plmn = *sim;
  xdr.visited_plmn = *visited;
  xdr.bytes_up = columns.bytes_up[i];
  xdr.bytes_down = columns.bytes_down[i];
  xdr.apn = dict[columns.apn[i]];
  xdr.rat = static_cast<cellnet::Rat>(columns.rat[i]);
  return xdr;
}

}  // namespace wtr::records
