#pragma once

// The daily devices-catalog (§4.1): one record per (device, day) combining
// the three raw sources — radio events, CDRs/xDRs and the TAC catalog —
// with summarized radio flags and mobility metrics. This is the input to
// every §4–7 analysis; core/catalog_builder constructs it from raw streams.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cellnet/geo.hpp"
#include "cellnet/imei.hpp"
#include "cellnet/plmn.hpp"
#include "cellnet/rat.hpp"
#include "signaling/transaction.hpp"

namespace wtr::records {

struct DailyDeviceRecord {
  signaling::DeviceHash device = 0;
  std::int32_t day = 0;
  cellnet::Plmn sim_plmn{};
  std::vector<cellnet::Plmn> visited_plmns;  // sorted, unique

  std::uint64_t signaling_events = 0;  // all control-plane events this day
  std::uint64_t failed_events = 0;     // subset with non-OK results
  std::uint32_t calls = 0;
  double call_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::vector<std::string> apns;  // sorted, unique full APN strings

  cellnet::Tac tac = 0;           // 0 when no equipment identity was seen
  cellnet::RatMask radio_flags{}; // successful radio activity per RAT
  cellnet::RatMask data_rats{};   // RATs carrying data for this device
  cellnet::RatMask voice_rats{};  // RATs carrying voice

  // Mobility metrics (time-weighted over serving sectors; §4.1).
  cellnet::GeoPoint centroid{};
  double gyration_m = 0.0;
  bool has_position = false;

  [[nodiscard]] bool roamed_internationally() const noexcept {
    for (const auto& visited : visited_plmns) {
      if (visited.mcc() != sim_plmn.mcc()) return true;
    }
    return false;
  }
};

class DevicesCatalog {
 public:
  void add(DailyDeviceRecord record);
  void reserve(std::size_t n) { records_.reserve(n); }

  [[nodiscard]] const std::vector<DailyDeviceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Number of distinct devices across all days.
  [[nodiscard]] std::size_t distinct_devices() const;

  /// Day range covered: [min_day, max_day]; {0, -1} when empty.
  [[nodiscard]] std::pair<std::int32_t, std::int32_t> day_span() const;

  /// Records of one device, in day order.
  [[nodiscard]] std::vector<const DailyDeviceRecord*> of_device(
      signaling::DeviceHash device) const;

 private:
  std::vector<DailyDeviceRecord> records_;
  mutable std::unordered_map<signaling::DeviceHash, std::vector<std::size_t>> index_;
  mutable bool index_valid_ = true;

  void ensure_index() const;
};

}  // namespace wtr::records
