#include "records/devices_catalog.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace wtr::records {

void DevicesCatalog::add(DailyDeviceRecord record) {
  records_.push_back(std::move(record));
  index_valid_ = false;
}

std::size_t DevicesCatalog::distinct_devices() const {
  std::unordered_set<signaling::DeviceHash> devices;
  devices.reserve(records_.size());
  for (const auto& record : records_) devices.insert(record.device);
  return devices.size();
}

std::pair<std::int32_t, std::int32_t> DevicesCatalog::day_span() const {
  if (records_.empty()) return {0, -1};
  std::int32_t lo = std::numeric_limits<std::int32_t>::max();
  std::int32_t hi = std::numeric_limits<std::int32_t>::min();
  for (const auto& record : records_) {
    lo = std::min(lo, record.day);
    hi = std::max(hi, record.day);
  }
  return {lo, hi};
}

void DevicesCatalog::ensure_index() const {
  if (index_valid_) return;
  index_.clear();
  index_.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    index_[records_[i].device].push_back(i);
  }
  index_valid_ = true;
}

std::vector<const DailyDeviceRecord*> DevicesCatalog::of_device(
    signaling::DeviceHash device) const {
  ensure_index();
  std::vector<const DailyDeviceRecord*> out;
  const auto it = index_.find(device);
  if (it == index_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t i : it->second) out.push_back(&records_[i]);
  std::sort(out.begin(), out.end(), [](const DailyDeviceRecord* a, const DailyDeviceRecord* b) {
    return a->day < b->day;
  });
  return out;
}

}  // namespace wtr::records
