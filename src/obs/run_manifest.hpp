#pragma once

// RunManifest: the machine-readable snapshot of one pipeline run — identity
// (name, seed, scale, git describe), phase wall-times, the full metric dump
// and the engine-probe trajectory — exported as BENCH_<name>.json (plus a
// phases CSV for spreadsheet-side diffing). Schema is versioned via the
// "schema" field; scripts/compare_manifest.py consumes it for the perf
// regression gate, and EXPERIMENTS.md describes manual A/B workflows.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/engine_probe.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"

namespace wtr::obs {

/// Manifest schema identifier written into every export.
inline constexpr std::string_view kManifestSchema = "wtr-run-manifest/1";

/// The git description baked in at configure time ("unknown" when the tree
/// was built outside git).
[[nodiscard]] std::string_view build_git_describe() noexcept;

class RunManifest {
 public:
  explicit RunManifest(std::string name);

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  void set_scale(std::uint64_t scale) { scale_ = scale; }
  void set_git_describe(std::string describe) { git_describe_ = std::move(describe); }

  /// Free-form result scalars, exported under "results" in insertion order.
  void add_result(const std::string& key, double value);
  void add_result(const std::string& key, std::uint64_t value);
  void add_result(const std::string& key, const std::string& value);

  /// Borrowed observability sources; null skips the section. Must stay
  /// alive until the export calls.
  void attach_metrics(const MetricsRegistry* metrics) { metrics_ = metrics; }
  void attach_timers(const PhaseTimers* timers) { timers_ = timers; }
  void attach_probe(const EngineProbe* probe) { probe_ = probe; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] std::string to_json() const;
  /// "phase,wall_s,count,depth" rows for the phase table.
  [[nodiscard]] std::string phases_csv() const;

  /// Write BENCH_<name>.json into `directory` (empty = $WTR_BENCH_MANIFEST_DIR
  /// or "."). Returns the written path, or "" on I/O failure (warned to
  /// stderr, never fatal — a bench must not die on a read-only directory).
  std::string write(std::string_view directory = {}) const;

  /// The path write() would use for the given directory choice.
  [[nodiscard]] std::string default_path(std::string_view directory = {}) const;

 private:
  struct Result {
    enum class Kind : std::uint8_t { kDouble, kUint, kString } kind;
    std::string key;
    double d = 0.0;
    std::uint64_t u = 0;
    std::string s;
  };

  std::string name_;
  std::uint64_t seed_ = 0;
  std::uint64_t scale_ = 0;
  std::string git_describe_;
  std::vector<Result> results_;
  const MetricsRegistry* metrics_ = nullptr;
  const PhaseTimers* timers_ = nullptr;
  const EngineProbe* probe_ = nullptr;
};

}  // namespace wtr::obs
