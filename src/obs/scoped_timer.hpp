#pragma once

// Phase wall-time accounting. A PhaseTimers instance accumulates wall time
// per named phase; ScopedTimer is the RAII span that feeds it, backed by the
// monotonic std::chrono::steady_clock (never the wall clock — manifests must
// survive NTP jumps). Spans nest: a timer opened while another is running
// records under the slash-joined path ("engine/run" inside "pipeline"
// becomes "pipeline/engine/run"), so the manifest shows the phase tree
// without any explicit parent bookkeeping at the call sites. A null
// PhaseTimers* makes ScopedTimer a no-op — disabled observability costs one
// branch per span, not per event.
//
// Thread safety: the slot map is mutex-guarded, so shard threads may open
// spans against the same PhaseTimers concurrently (TSan-covered by
// tests/test_trace.cpp). The nesting *stack* is thread-local — each thread
// sees its own span ancestry, so a span opened on a shard thread nests
// under that thread's open spans, never under another thread's. Phase
// ordering (`order`) is first-insertion under the lock; concurrent
// first-opens of *different* phase names may interleave, so deterministic
// manifests should open any racing phases once from the main thread first
// (the engine's fixed phase set already satisfies this).

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wtr::obs {

class PhaseTimers {
 public:
  struct Phase {
    std::string path;        // slash-joined nesting path
    double wall_s = 0.0;     // accumulated across all spans of this path
    std::uint64_t count = 0; // completed spans
    int depth = 0;           // nesting depth (0 = top-level)
  };

  /// Phases in first-opened order (stable across identical runs).
  [[nodiscard]] std::vector<Phase> phases() const;

  /// Accumulated seconds for an exact path; 0 when the phase never ran.
  [[nodiscard]] double total_s(const std::string& path) const;

  /// Number of distinct phase paths seen.
  [[nodiscard]] std::size_t size() const;

 private:
  friend class ScopedTimer;

  struct Slot {
    double wall_s = 0.0;
    std::uint64_t count = 0;
    int depth = 0;
    std::size_t order = 0;  // first-seen rank for stable export order
  };

  /// Push a span name; returns the full path for the matching end_span.
  std::string begin_span(std::string_view name);
  void end_span(const std::string& path, double elapsed_s);

  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_;
};

class ScopedTimer {
 public:
  /// Null `timers` disables the span entirely.
  ScopedTimer(PhaseTimers* timers, std::string_view name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since the span opened (works for null-timer spans too).
  [[nodiscard]] double elapsed_s() const;

 private:
  PhaseTimers* timers_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wtr::obs
