#pragma once

// Self-instrumentation metrics (DESIGN.md: the pipeline must be able to
// answer "where does the time go" the same way the paper answers it for
// operator signaling). A MetricsRegistry is a named collection of counters,
// gauges and fixed-bucket histograms. Everything is single-threaded like the
// simulator itself, and instrumented call sites hold plain pointers that are
// null when observability is disabled — the null path is one predictable
// branch, and nothing here ever touches an RNG, so an instrumented run's
// signaling output is byte-identical to a bare one.

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/binio.hpp"

namespace wtr::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  void save_state(util::BinWriter& out) const { out.u64(value_); }
  void restore_state(util::BinReader& in) { value_ = in.u64(); }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  /// Keep the running maximum (queue depths, high-water marks).
  void set_max(double v) noexcept {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] double value() const noexcept { return value_; }

  void save_state(util::BinWriter& out) const { out.f64(value_); }
  void restore_state(util::BinReader& in) { value_ = in.f64(); }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive bucket tops in
/// ascending order; one implicit overflow bucket catches everything above
/// the last bound. Tracks count/sum/min/max alongside the buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double v) noexcept;

  /// Fold another histogram's mass into this one. Bucket ladders must be
  /// identical (they are keyed by metric name, so a mismatch is a
  /// programming error, asserted in debug builds).
  void merge_from(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return upper_bounds_;
  }
  /// bucket_counts().size() == upper_bounds().size() + 1 (overflow last).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return buckets_;
  }

  /// Checkpoint support: the full histogram, bucket ladder included, so a
  /// restored registry needs no out-of-band bounds knowledge.
  void save_state(util::BinWriter& out) const;
  void restore_state(util::BinReader& in);

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// `factor`-spaced exponential ladder: {start, start*factor, ...} (n bounds).
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      std::size_t n);
/// Default ladders for the two families the subsystem cares about.
[[nodiscard]] std::vector<double> latency_buckets_s();  // 1µs .. ~100s
[[nodiscard]] std::vector<double> size_buckets();       // 1 .. ~1e9

/// Named metric registry. Lookups create on first use; returned references
/// are stable for the registry's lifetime (node-based storage), so hot call
/// sites resolve a handle once and increment through it. Iteration order is
/// the name order — exports are deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// `upper_bounds` only applies on first creation; later callers share the
  /// existing instance regardless of the bounds they pass.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Fold another registry's values into this one: counters add, gauges
  /// keep the running maximum, histograms merge bucket-wise. Used by the
  /// sharded engine to collapse per-shard delta registries into the main
  /// one post-run — counter sums are order-independent, so the merged dump
  /// is byte-identical to a single-threaded run's.
  void merge_from(const MetricsRegistry& other);

  /// Checkpoint support: serialize every metric by name; restore replaces
  /// the registry contents wholesale (existing handles stay valid for
  /// metrics that exist in the snapshot — node-based maps don't move nodes
  /// on insert, and restore writes through the existing nodes).
  void save_state(util::BinWriter& out) const;
  void restore_state(util::BinReader& in);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace wtr::obs
