#include "obs/run_manifest.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "io/json.hpp"

#ifndef WTR_GIT_DESCRIBE
#define WTR_GIT_DESCRIBE "unknown"
#endif

namespace wtr::obs {

std::string_view build_git_describe() noexcept { return WTR_GIT_DESCRIBE; }

RunManifest::RunManifest(std::string name)
    : name_(std::move(name)), git_describe_(build_git_describe()) {}

void RunManifest::add_result(const std::string& key, double value) {
  results_.push_back({Result::Kind::kDouble, key, value, 0, {}});
}

void RunManifest::add_result(const std::string& key, std::uint64_t value) {
  results_.push_back({Result::Kind::kUint, key, 0.0, value, {}});
}

void RunManifest::add_result(const std::string& key, const std::string& value) {
  results_.push_back({Result::Kind::kString, key, 0.0, 0, value});
}

std::string RunManifest::to_json() const {
  std::ostringstream out;
  io::JsonWriter json{out};
  json.begin_object();
  json.kv("schema", kManifestSchema);
  json.kv("name", name_);
  json.kv("seed", seed_);
  json.kv("scale", scale_);
  json.kv("git_describe", git_describe_);

  json.key("phases");
  json.begin_array();
  if (timers_ != nullptr) {
    for (const auto& phase : timers_->phases()) {
      json.begin_object();
      json.kv("name", phase.path);
      json.kv("wall_s", phase.wall_s);
      json.kv("count", phase.count);
      json.kv("depth", static_cast<std::int64_t>(phase.depth));
      json.end_object();
    }
  }
  json.end_array();

  json.key("metrics");
  json.begin_object();
  json.key("counters");
  json.begin_object();
  if (metrics_ != nullptr) {
    for (const auto& [name, counter] : metrics_->counters()) {
      json.kv(name, counter.value());
    }
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  if (metrics_ != nullptr) {
    for (const auto& [name, gauge] : metrics_->gauges()) {
      json.kv(name, gauge.value());
    }
  }
  json.end_object();
  json.key("histograms");
  json.begin_object();
  if (metrics_ != nullptr) {
    for (const auto& [name, histogram] : metrics_->histograms()) {
      json.key(name);
      json.begin_object();
      json.kv("count", histogram.count());
      json.kv("sum", histogram.sum());
      json.kv("min", histogram.min());
      json.kv("max", histogram.max());
      json.key("upper_bounds");
      json.begin_array();
      for (const double bound : histogram.upper_bounds()) json.value(bound);
      json.end_array();
      json.key("bucket_counts");
      json.begin_array();
      for (const std::uint64_t count : histogram.bucket_counts()) json.value(count);
      json.end_array();
      json.end_object();
    }
  }
  json.end_object();
  json.end_object();  // metrics

  json.key("probe");
  if (probe_ == nullptr) {
    json.null();
  } else {
    json.begin_object();
    json.kv("samples", static_cast<std::uint64_t>(probe_->samples().size()));
    json.kv("queue_depth_max", probe_->queue_depth_max());
    json.kv("records_total", probe_->records_total());
    json.kv("signaling_total", probe_->signaling_total());
    json.kv("attach_attempts", probe_->attach_attempts());
    json.kv("attach_failures", probe_->attach_failures());
    json.kv("attach_failure_rate", probe_->attach_failure_rate());
    json.kv("records_per_day_max", probe_->records_per_day_max());
    json.key("records_per_day");
    json.begin_object();
    for (const auto& [day, count] : probe_->records_per_day()) {
      json.kv(std::to_string(day), count);
    }
    json.end_object();
    json.key("trajectory");
    json.begin_array();
    for (const auto& sample : probe_->samples()) {
      json.begin_object();
      json.kv("t", static_cast<std::int64_t>(sample.sim_time));
      json.kv("wakes", sample.wakes);
      json.kv("queue_depth", sample.queue_depth);
      json.kv("records", sample.records);
      json.kv("attach_attempts", sample.attach_attempts);
      json.kv("attach_failures", sample.attach_failures);
      json.kv("active_fault_episodes", sample.active_fault_episodes);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

  json.key("results");
  json.begin_object();
  for (const auto& result : results_) {
    switch (result.kind) {
      case Result::Kind::kDouble: json.kv(result.key, result.d); break;
      case Result::Kind::kUint: json.kv(result.key, result.u); break;
      case Result::Kind::kString: json.kv(result.key, result.s); break;
    }
  }
  json.end_object();
  json.end_object();
  out << '\n';
  return out.str();
}

std::string RunManifest::phases_csv() const {
  std::ostringstream out;
  out << "phase,wall_s,count,depth\n";
  if (timers_ != nullptr) {
    for (const auto& phase : timers_->phases()) {
      out << phase.path << ',' << io::json_number(phase.wall_s) << ',' << phase.count
          << ',' << phase.depth << '\n';
    }
  }
  return out.str();
}

std::string RunManifest::default_path(std::string_view directory) const {
  std::string dir{directory};
  if (dir.empty()) {
    if (const char* env = std::getenv("WTR_BENCH_MANIFEST_DIR")) dir = env;
  }
  if (dir.empty()) dir = ".";
  if (dir.back() != '/') dir += '/';
  return dir + "BENCH_" + name_ + ".json";
}

std::string RunManifest::write(std::string_view directory) const {
  const std::string path = default_path(directory);
  std::ofstream out{path};
  if (!out) {
    std::cerr << "[obs] cannot write manifest " << path << " (continuing)\n";
    return {};
  }
  out << to_json();
  if (!out.good()) {
    std::cerr << "[obs] short write on manifest " << path << "\n";
    return {};
  }
  return path;
}

}  // namespace wtr::obs
