#include "obs/scoped_timer.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wtr::obs {

namespace {

// Per-thread span ancestry. Entries are tagged with the PhaseTimers instance
// they belong to so two registries used from the same thread (a scenario's
// timers plus a test-local one, say) keep independent nesting. Thread-local
// rather than a member: a shard thread's spans must nest under that thread's
// own ancestry, never under whatever the main thread happens to have open.
thread_local std::vector<std::pair<const PhaseTimers*, std::string>> t_stack;

const std::string* innermost_path(const PhaseTimers* timers) {
  for (auto it = t_stack.rbegin(); it != t_stack.rend(); ++it) {
    if (it->first == timers) return &it->second;
  }
  return nullptr;
}

}  // namespace

std::string PhaseTimers::begin_span(std::string_view name) {
  std::string path;
  int depth = 0;
  if (const std::string* parent = innermost_path(this)) {
    path = *parent;
    path += '/';
    depth = static_cast<int>(std::count(parent->begin(), parent->end(), '/')) + 1;
  }
  path += name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = slots_.try_emplace(path);
    if (inserted) {
      it->second.depth = depth;
      it->second.order = slots_.size() - 1;
    }
  }
  t_stack.emplace_back(this, path);
  return path;
}

void PhaseTimers::end_span(const std::string& path, double elapsed_s) {
  assert(!t_stack.empty() && t_stack.back().first == this &&
         t_stack.back().second == path);
  t_stack.pop_back();
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = slots_[path];
  slot.wall_s += elapsed_s;
  slot.count += 1;
}

std::vector<PhaseTimers::Phase> PhaseTimers::phases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Phase> out;
  out.reserve(slots_.size());
  for (const auto& [path, slot] : slots_) {
    out.push_back(Phase{path, slot.wall_s, slot.count, slot.depth});
  }
  std::sort(out.begin(), out.end(),
            [this](const Phase& a, const Phase& b) {
              return slots_.at(a.path).order < slots_.at(b.path).order;
            });
  return out;
}

double PhaseTimers::total_s(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(path);
  return it == slots_.end() ? 0.0 : it->second.wall_s;
}

std::size_t PhaseTimers::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

ScopedTimer::ScopedTimer(PhaseTimers* timers, std::string_view name)
    : timers_(timers), start_(std::chrono::steady_clock::now()) {
  if (timers_ != nullptr) path_ = timers_->begin_span(name);
}

ScopedTimer::~ScopedTimer() {
  if (timers_ != nullptr) timers_->end_span(path_, elapsed_s());
}

double ScopedTimer::elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace wtr::obs
