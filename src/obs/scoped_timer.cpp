#include "obs/scoped_timer.hpp"

#include <algorithm>
#include <cassert>

namespace wtr::obs {

std::string PhaseTimers::begin_span(std::string_view name) {
  std::string path;
  if (!stack_.empty()) {
    path = stack_.back();
    path += '/';
  }
  path += name;
  const int depth = static_cast<int>(stack_.size());
  const auto [it, inserted] = slots_.try_emplace(path);
  if (inserted) {
    it->second.depth = depth;
    it->second.order = slots_.size() - 1;
  }
  stack_.push_back(path);
  return path;
}

void PhaseTimers::end_span(const std::string& path, double elapsed_s) {
  assert(!stack_.empty() && stack_.back() == path);
  stack_.pop_back();
  auto& slot = slots_[path];
  slot.wall_s += elapsed_s;
  slot.count += 1;
}

std::vector<PhaseTimers::Phase> PhaseTimers::phases() const {
  std::vector<Phase> out;
  out.reserve(slots_.size());
  for (const auto& [path, slot] : slots_) {
    out.push_back(Phase{path, slot.wall_s, slot.count, slot.depth});
  }
  std::sort(out.begin(), out.end(), [this](const Phase& a, const Phase& b) {
    return slots_.at(a.path).order < slots_.at(b.path).order;
  });
  return out;
}

double PhaseTimers::total_s(const std::string& path) const {
  const auto it = slots_.find(path);
  return it == slots_.end() ? 0.0 : it->second.wall_s;
}

ScopedTimer::ScopedTimer(PhaseTimers* timers, std::string_view name)
    : timers_(timers), start_(std::chrono::steady_clock::now()) {
  if (timers_ != nullptr) path_ = timers_->begin_span(name);
}

ScopedTimer::~ScopedTimer() {
  if (timers_ != nullptr) timers_->end_span(path_, elapsed_s());
}

double ScopedTimer::elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace wtr::obs
