#include "obs/heartbeat.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>

namespace wtr::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

HeartbeatWriter::HeartbeatWriter(std::string path, double min_interval_s)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      min_interval_s_(min_interval_s < 0.0 ? 0.0 : min_interval_s) {}

bool HeartbeatWriter::maybe_write(const HeartbeatStatus& status) {
  const std::int64_t now = steady_now_ns();
  if (last_write_ns_ >= 0 &&
      static_cast<double>(now - last_write_ns_) < min_interval_s_ * 1e9) {
    return false;
  }
  return write_now(status);
}

bool HeartbeatWriter::write_now(const HeartbeatStatus& status) {
  const double progress =
      status.horizon_s > 0.0 ? status.sim_time_s / status.horizon_s : 0.0;
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"pid\":%ld,\"phase\":\"%s\",\"sim_time_s\":%.3f,\"horizon_s\":%.3f,"
      "\"progress\":%.6f,\"wakes\":%llu,\"records\":%llu,"
      "\"last_checkpoint_s\":%.3f,\"checkpoints_written\":%llu,"
      "\"unix_time\":%lld}\n",
      static_cast<long>(::getpid()),
      status.phase != nullptr ? status.phase : "run", status.sim_time_s,
      status.horizon_s, progress,
      static_cast<unsigned long long>(status.wakes),
      static_cast<unsigned long long>(status.records),
      status.last_checkpoint_s,
      static_cast<unsigned long long>(status.checkpoints_written),
      static_cast<long long>(std::time(nullptr)));

  {
    std::ofstream file(tmp_path_, std::ios::binary | std::ios::trunc);
    if (!file) return false;
    file << line;
    file.flush();
    if (!file) return false;
  }
  // rename(2) is atomic on POSIX: readers always see a complete line. The
  // supervisor keys hang detection on the file's mtime, which rename
  // carries over from the freshly written tmp file.
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) return false;
  last_write_ns_ = steady_now_ns();
  ++beats_;
  return true;
}

}  // namespace wtr::obs
