#pragma once

// EngineProbe: periodic, low-overhead sampling of a running sim::Engine.
// The engine checks `due(now)` once per wake (one inline comparison) and
// hands over a sample at the configured sim-time cadence: sim-time progress,
// event-queue depth, wakes, cumulative record counts, attach
// failure/backoff pressure, and how many fault episodes are live at the
// instant. The probe is also a RecordSink so it can count the stream it
// rides on — per-day record throughput and attach-family failures — without
// touching the agents. It owns no RNG and never perturbs the simulation.

#include <cstdint>
#include <map>
#include <vector>

#include "faults/fault_schedule.hpp"
#include "sim/device_agent.hpp"

namespace wtr::obs {

struct EngineProbeConfig {
  /// Sim-time sampling cadence (default: hourly sim time).
  stats::SimTime sample_every_s = stats::kSecondsPerHour;
  /// Hard cap on stored samples (a 22-day run at hourly cadence is 529).
  std::size_t max_samples = 1 << 16;
};

struct EngineSample {
  stats::SimTime sim_time = 0;
  std::uint64_t wakes = 0;           // cumulative wakes processed
  std::uint64_t queue_depth = 0;     // pending events at the sample instant
  std::uint64_t records = 0;         // cumulative records (signaling+cdr+xdr)
  std::uint64_t attach_attempts = 0; // cumulative attach-family procedures
  std::uint64_t attach_failures = 0; // ... of which rejected
  std::uint64_t active_fault_episodes = 0;
};

class EngineProbe final : public sim::RecordSink {
 public:
  explicit EngineProbe(EngineProbeConfig config = {}) : config_(config) {}

  // --- engine-facing hooks -------------------------------------------------
  /// Called by Engine::run before the event loop. Binds the fault schedule
  /// for episode-state sampling (null = none) and records the initial
  /// queue depth. Safe across multiple engines: samples keep accumulating.
  void begin_run(const faults::FaultSchedule* faults, std::uint64_t queue_depth);

  /// Resume support: rebind the borrowed fault schedule without resetting
  /// the restored sampling cadence (begin_run would restart it at 0 and
  /// emit a duplicate sample at the resume point).
  void rebind_faults(const faults::FaultSchedule* faults) noexcept { faults_ = faults; }

  /// One inline comparison; the engine calls this every wake.
  [[nodiscard]] bool due(stats::SimTime now) const noexcept {
    return now >= next_sample_;
  }

  /// Take a sample at `now` and advance the cadence.
  void on_tick(stats::SimTime now, std::uint64_t queue_depth, std::uint64_t wakes);

  /// Final sample at the end of a run (horizon or queue drained).
  void end_run(stats::SimTime now, std::uint64_t queue_depth, std::uint64_t wakes);

  // --- RecordSink ----------------------------------------------------------
  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override;
  void on_cdr(const records::Cdr& cdr) override;
  void on_xdr(const records::Xdr& xdr) override;

  // --- results -------------------------------------------------------------
  [[nodiscard]] const std::vector<EngineSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t queue_depth_max() const noexcept { return queue_max_; }
  [[nodiscard]] std::uint64_t records_total() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t signaling_total() const noexcept { return signaling_; }
  [[nodiscard]] std::uint64_t attach_attempts() const noexcept { return attach_attempts_; }
  [[nodiscard]] std::uint64_t attach_failures() const noexcept { return attach_failures_; }
  [[nodiscard]] double attach_failure_rate() const noexcept {
    return attach_attempts_ == 0 ? 0.0
                                 : static_cast<double>(attach_failures_) /
                                       static_cast<double>(attach_attempts_);
  }
  [[nodiscard]] const std::map<std::int32_t, std::uint64_t>& records_per_day()
      const noexcept {
    return records_per_day_;
  }
  /// Peak single-day record count (the throughput the sinks must absorb).
  [[nodiscard]] std::uint64_t records_per_day_max() const noexcept;

  /// Checkpoint support: serialize the trajectory accumulated so far (the
  /// borrowed fault schedule is rebound by the engine on resume, and the
  /// config is reconstructed by the scenario).
  void save_state(util::BinWriter& out) const;
  void restore_state(util::BinReader& in);

 private:
  void push_sample(stats::SimTime now, std::uint64_t queue_depth, std::uint64_t wakes);

  EngineProbeConfig config_;
  const faults::FaultSchedule* faults_ = nullptr;  // borrowed; may be null
  stats::SimTime next_sample_ = 0;
  std::vector<EngineSample> samples_;
  std::uint64_t queue_max_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t signaling_ = 0;
  std::uint64_t attach_attempts_ = 0;
  std::uint64_t attach_failures_ = 0;
  std::map<std::int32_t, std::uint64_t> records_per_day_;
};

}  // namespace wtr::obs
