#pragma once

// The observability plumbing handle: a trio of non-owning pointers threaded
// through scenario configs and the engine. Default-constructed (all null) it
// disables the whole layer — every instrumented call site degrades to a
// single pointer test, which is what keeps a disabled run bit-identical to
// the pre-obs build. RunObservation is the owning bundle the harnesses
// instantiate; view() produces the handle to thread through configs.

#include "obs/engine_probe.hpp"
#include "obs/metrics.hpp"
#include "obs/run_manifest.hpp"
#include "obs/scoped_timer.hpp"

namespace wtr::obs {

struct Observability {
  MetricsRegistry* metrics = nullptr;
  PhaseTimers* timers = nullptr;
  EngineProbe* probe = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return metrics != nullptr || timers != nullptr || probe != nullptr;
  }
};

/// Owning registry+timers+probe bundle for one observed run (or a sweep of
/// runs — phases and probe samples accumulate across engines).
class RunObservation {
 public:
  explicit RunObservation(EngineProbeConfig probe_config = {}) : probe_(probe_config) {}

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] PhaseTimers& timers() noexcept { return timers_; }
  [[nodiscard]] EngineProbe& probe() noexcept { return probe_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const PhaseTimers& timers() const noexcept { return timers_; }
  [[nodiscard]] const EngineProbe& probe() const noexcept { return probe_; }

  [[nodiscard]] Observability view() noexcept {
    return Observability{&metrics_, &timers_, &probe_};
  }

  /// Attach all three sources to a manifest (they must outlive it).
  void fill(RunManifest& manifest) const {
    manifest.attach_metrics(&metrics_);
    manifest.attach_timers(&timers_);
    manifest.attach_probe(&probe_);
  }

 private:
  MetricsRegistry metrics_;
  PhaseTimers timers_;
  EngineProbe probe_;
};

}  // namespace wtr::obs
