#include "obs/engine_probe.hpp"

#include <algorithm>
#include <limits>

namespace wtr::obs {

namespace {

/// The attach family in the backoff sense: procedures whose rejection sends
/// the UE into its retry machine (plain mobility updates and detaches do
/// not).
bool is_attach_family(signaling::Procedure procedure) noexcept {
  switch (procedure) {
    case signaling::Procedure::kAttach:
    case signaling::Procedure::kUpdateLocation:
      return true;
    default:
      return false;
  }
}

}  // namespace

void EngineProbe::begin_run(const faults::FaultSchedule* faults,
                            std::uint64_t queue_depth) {
  faults_ = faults;
  next_sample_ = 0;  // sample at (or before) the first wake of this run
  queue_max_ = std::max(queue_max_, queue_depth);
}

void EngineProbe::push_sample(stats::SimTime now, std::uint64_t queue_depth,
                              std::uint64_t wakes) {
  queue_max_ = std::max(queue_max_, queue_depth);
  if (samples_.size() >= config_.max_samples) return;
  EngineSample sample;
  sample.sim_time = now;
  sample.wakes = wakes;
  sample.queue_depth = queue_depth;
  sample.records = records_;
  sample.attach_attempts = attach_attempts_;
  sample.attach_failures = attach_failures_;
  if (faults_ != nullptr) {
    for (const auto& episode : faults_->episodes()) {
      if (episode.active_at(now)) ++sample.active_fault_episodes;
    }
  }
  samples_.push_back(sample);
}

void EngineProbe::on_tick(stats::SimTime now, std::uint64_t queue_depth,
                          std::uint64_t wakes) {
  push_sample(now, queue_depth, wakes);
  // Next boundary strictly after `now` on the cadence grid, so bursty wakes
  // inside one interval still produce exactly one sample per interval.
  const stats::SimTime step = std::max<stats::SimTime>(config_.sample_every_s, 1);
  next_sample_ = (now / step + 1) * step;
}

void EngineProbe::end_run(stats::SimTime now, std::uint64_t queue_depth,
                          std::uint64_t wakes) {
  push_sample(now, queue_depth, wakes);
  next_sample_ = std::numeric_limits<stats::SimTime>::max();
}

void EngineProbe::on_signaling(const signaling::SignalingTransaction& txn,
                               bool data_context) {
  (void)data_context;
  ++records_;
  ++signaling_;
  ++records_per_day_[stats::day_of(txn.time)];
  if (is_attach_family(txn.procedure)) {
    ++attach_attempts_;
    if (signaling::is_failure(txn.result)) ++attach_failures_;
  }
}

void EngineProbe::on_cdr(const records::Cdr& cdr) {
  ++records_;
  ++records_per_day_[stats::day_of(cdr.time)];
}

void EngineProbe::on_xdr(const records::Xdr& xdr) {
  ++records_;
  ++records_per_day_[stats::day_of(xdr.time)];
}

void EngineProbe::save_state(util::BinWriter& out) const {
  out.i64(next_sample_);
  out.u64(samples_.size());
  for (const auto& sample : samples_) {
    out.i64(sample.sim_time);
    out.u64(sample.wakes);
    out.u64(sample.queue_depth);
    out.u64(sample.records);
    out.u64(sample.attach_attempts);
    out.u64(sample.attach_failures);
    out.u64(sample.active_fault_episodes);
  }
  out.u64(queue_max_);
  out.u64(records_);
  out.u64(signaling_);
  out.u64(attach_attempts_);
  out.u64(attach_failures_);
  out.u64(records_per_day_.size());
  for (const auto& [day, count] : records_per_day_) {
    out.i32(day);
    out.u64(count);
  }
}

void EngineProbe::restore_state(util::BinReader& in) {
  next_sample_ = in.i64();
  samples_.clear();
  const auto n_samples = in.u64();
  samples_.reserve(n_samples);
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    EngineSample sample;
    sample.sim_time = in.i64();
    sample.wakes = in.u64();
    sample.queue_depth = in.u64();
    sample.records = in.u64();
    sample.attach_attempts = in.u64();
    sample.attach_failures = in.u64();
    sample.active_fault_episodes = in.u64();
    samples_.push_back(sample);
  }
  queue_max_ = in.u64();
  records_ = in.u64();
  signaling_ = in.u64();
  attach_attempts_ = in.u64();
  attach_failures_ = in.u64();
  records_per_day_.clear();
  const auto n_days = in.u64();
  for (std::uint64_t i = 0; i < n_days; ++i) {
    const auto day = in.i32();
    records_per_day_[day] = in.u64();
  }
}

std::uint64_t EngineProbe::records_per_day_max() const noexcept {
  std::uint64_t best = 0;
  for (const auto& [day, count] : records_per_day_) best = std::max(best, count);
  return best;
}

}  // namespace wtr::obs
