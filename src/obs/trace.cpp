#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

#include "io/json.hpp"

namespace wtr::obs {

const char* trace_cat_name(TraceCat cat) noexcept {
  switch (cat) {
    case TraceCat::kEngine: return "engine";
    case TraceCat::kShard: return "shard";
    case TraceCat::kMerge: return "merge";
    case TraceCat::kCheckpoint: return "checkpoint";
    case TraceCat::kCongestion: return "congestion";
    case TraceCat::kSink: return "sink";
  }
  return "unknown";
}

TraceTrack::TraceTrack(std::size_t capacity) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

void TraceTrack::push(TraceEvent event) noexcept {
  event.seq = next_seq_;
  ring_[next_seq_ % ring_.size()] = event;
  ++next_seq_;
}

std::vector<TraceEvent> TraceTrack::ordered() const {
  std::vector<TraceEvent> out;
  const std::uint64_t retained =
      next_seq_ < ring_.size() ? next_seq_ : ring_.size();
  out.reserve(retained);
  // Oldest retained event sits at next_seq_ - retained.
  for (std::uint64_t i = next_seq_ - retained; i < next_seq_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

FlightRecorder::FlightRecorder(std::size_t shard_tracks,
                               std::size_t capacity_per_track)
    : epoch_(std::chrono::steady_clock::now()) {
  tracks_.reserve(shard_tracks + 1);
  for (std::size_t t = 0; t < shard_tracks + 1; ++t) {
    tracks_.emplace_back(capacity_per_track);
  }
}

void FlightRecorder::instant(std::uint32_t track, TraceCat cat,
                             const char* name, const char* arg1_name,
                             std::int64_t arg1, const char* arg2_name,
                             std::int64_t arg2) noexcept {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.start_ns = now_ns();
  e.dur_ns = TraceEvent::kInstant;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  tracks_[track].push(e);
}

void FlightRecorder::complete(std::uint32_t track, TraceCat cat,
                              const char* name, std::int64_t start_ns,
                              std::int64_t dur_ns, const char* arg1_name,
                              std::int64_t arg1, const char* arg2_name,
                              std::int64_t arg2) noexcept {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  tracks_[track].push(e);
}

std::uint64_t FlightRecorder::events_recorded() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : tracks_) total += t.recorded();
  return total;
}

std::uint64_t FlightRecorder::events_dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : tracks_) total += t.dropped();
  return total;
}

namespace {

void append_event_json(std::string& out, const TraceEvent& e,
                       std::uint32_t tid) {
  char buf[160];
  // Chrome trace timestamps are microseconds; keep sub-µs precision with a
  // fractional part (Perfetto accepts doubles for ts/dur).
  const double ts_us = static_cast<double>(e.start_ns) / 1000.0;
  out += "{\"name\":\"";
  out += io::json_escape(e.name != nullptr ? e.name : "");
  out += "\",\"cat\":\"";
  out += trace_cat_name(e.cat);
  out += "\",\"ph\":\"";
  if (e.dur_ns == TraceEvent::kInstant) {
    // Thread-scoped instant: renders as a marker on its own track.
    std::snprintf(buf, sizeof(buf), "i\",\"s\":\"t\",\"ts\":%.3f", ts_us);
    out += buf;
  } else {
    std::snprintf(buf, sizeof(buf), "X\",\"ts\":%.3f,\"dur\":%.3f", ts_us,
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u", tid);
  out += buf;
  out += ",\"args\":{";
  std::snprintf(buf, sizeof(buf), "\"seq\":%llu",
                static_cast<unsigned long long>(e.seq));
  out += buf;
  if (e.arg1_name != nullptr) {
    out += ",\"";
    out += io::json_escape(e.arg1_name);
    std::snprintf(buf, sizeof(buf), "\":%lld", static_cast<long long>(e.arg1));
    out += buf;
  }
  if (e.arg2_name != nullptr) {
    out += ",\"";
    out += io::json_escape(e.arg2_name);
    std::snprintf(buf, sizeof(buf), "\":%lld", static_cast<long long>(e.arg2));
    out += buf;
  }
  out += "}}";
}

void append_thread_name_json(std::string& out, std::uint32_t tid,
                             const std::string& name) {
  char buf[64];
  out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1";
  std::snprintf(buf, sizeof(buf), ",\"tid\":%u", tid);
  out += buf;
  out += ",\"args\":{\"name\":\"";
  out += io::json_escape(name);
  out += "\"}}";
}

}  // namespace

std::string FlightRecorder::to_chrome_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&out, &first](auto&& fn) {
    if (!first) out += ",\n";
    first = false;
    fn();
  };
  for (std::uint32_t tid = 0; tid < tracks_.size(); ++tid) {
    const TraceTrack& track = tracks_[tid];
    // Shard tracks never touched (threads clamped below the configured
    // count) would render as empty lanes; skip them. The engine track is
    // always named so even an empty trace is self-describing.
    if (tid != kEngineTrack && track.recorded() == 0) continue;
    const std::string name =
        tid == kEngineTrack ? "engine/merge"
                            : "shard_" + std::to_string(tid - 1);
    emit([&] { append_thread_name_json(out, tid, name); });
    for (const TraceEvent& e : track.ordered()) {
      emit([&] { append_event_json(out, e, tid); });
    }
  }
  out += "]}\n";
  return out;
}

bool FlightRecorder::write(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string doc = to_chrome_json();
  file.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  file.flush();
  if (!file) {
    std::fprintf(stderr, "trace: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace wtr::obs
