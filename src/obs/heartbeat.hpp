#pragma once

// Live progress heartbeat: a single-line JSON file rewritten atomically
// (tmp + rename, no fsync — a heartbeat that blocks on disk flushes would
// defeat its purpose) so an external supervisor can distinguish a *hung*
// child (stale file mtime) from a merely *slow* one (fresh mtime, slow
// sim-time progress). scripts/run_supervised.sh polls it when
// WTR_SUPERVISE_HANG_TIMEOUT_S is set; the format doubles as the liveness
// primitive for the future resident daemon (ROADMAP item 5).
//
// Like the flight recorder, the heartbeat observes and never perturbs:
// no RNG, wall-clock values go only to this side file (never into records,
// metrics dumps, or snapshots), so output stays byte-identical whether a
// heartbeat is configured or not.

#include <cstdint>
#include <string>

namespace wtr::obs {

/// What the engine knows about its own progress at a beat.
struct HeartbeatStatus {
  const char* phase = "run";       // init | run | checkpoint | done | interrupted
  double sim_time_s = 0.0;         // simulated seconds completed
  double horizon_s = 0.0;          // simulated seconds planned (0 = unknown)
  std::uint64_t wakes = 0;         // wake events processed
  std::uint64_t records = 0;       // signaling records emitted
  double last_checkpoint_s = -1.0; // sim time of last durable snapshot (-1 = none)
  std::uint64_t checkpoints_written = 0;
};

class HeartbeatWriter {
 public:
  /// Beats more frequent than `min_interval_s` of wall time are dropped by
  /// maybe_write (write_now always writes — use it for phase transitions).
  HeartbeatWriter(std::string path, double min_interval_s);

  /// Rate-limited beat; returns true when a write actually happened.
  bool maybe_write(const HeartbeatStatus& status);

  /// Unconditional beat (initial "init" line, final "done"/"interrupted").
  bool write_now(const HeartbeatStatus& status);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t beats_written() const noexcept { return beats_; }

 private:
  std::string path_;
  std::string tmp_path_;
  double min_interval_s_;
  std::int64_t last_write_ns_ = -1;  // steady-clock; -1 = never written
  std::uint64_t beats_ = 0;
};

}  // namespace wtr::obs
