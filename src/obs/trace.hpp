#pragma once

// Flight-recorder tracing (DESIGN.md "Flight recorder"): always-compiled,
// opt-in timeline capture of where the engine spends its wall time. One
// FlightRecorder owns a fixed-capacity ring buffer of spans and instant
// events per *track* — track 0 is the engine/merge thread, tracks 1..K are
// the K shard loops — and each track has exactly one writer thread, so
// recording is lock-free by construction: a shard thread appends to its own
// ring with a plain store and a per-track sequence number, and the reader
// (export) only runs when the workers are quiesced at an engine barrier or
// after the run. When a ring wraps, the oldest events are overwritten and
// counted as dropped — a flight recorder keeps the most recent history, not
// the first.
//
// Determinism contract: the recorder observes, never perturbs. It owns no
// RNG, and no instrumented call site touches one; a disabled recorder (null
// pointer) costs one predictable branch per site, so simulation output is
// byte-identical with tracing on or off, at any thread count (enforced by
// tests/test_trace.cpp).
//
// Export is Chrome trace-event JSON ("X" complete spans, "i" instants, "M"
// thread-name metadata) loadable directly in Perfetto or chrome://tracing.
// Timestamps are steady-clock microseconds since recorder construction —
// never the wall clock, same rule as ScopedTimer.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace wtr::obs {

/// Event category, exported as the Chrome trace "cat" field (Perfetto's
/// track filter box keys on it).
enum class TraceCat : std::uint8_t {
  kEngine,      // event-loop windows, wake batches
  kShard,       // per-shard loop windows
  kMerge,       // deterministic k-way merge + barrier fan-out
  kCheckpoint,  // snapshot serialize / write / fsync
  kCongestion,  // ledger absorb + bucket roll at barriers
  kSink,        // record-sink flushes
};

[[nodiscard]] const char* trace_cat_name(TraceCat cat) noexcept;

/// One recorded event. Name/arg-name pointers must have static storage
/// duration (string literals at the call sites) — the ring stores pointers,
/// not copies, which is what keeps a push allocation-free.
struct TraceEvent {
  /// dur_ns value marking an instant event (exported as ph:"i").
  static constexpr std::int64_t kInstant = -1;

  const char* name = nullptr;
  std::int64_t start_ns = 0;        // steady-clock ns since recorder epoch
  std::int64_t dur_ns = kInstant;   // span length, or kInstant
  std::uint64_t seq = 0;            // per-track, assigned by the ring
  std::int64_t arg1 = 0;
  std::int64_t arg2 = 0;
  const char* arg1_name = nullptr;  // null = no arg
  const char* arg2_name = nullptr;
  TraceCat cat = TraceCat::kEngine;
};

/// Single-writer ring buffer of TraceEvents. The owning thread pushes; any
/// thread may read once the writer is quiesced (the engine's barriers and
/// run-end provide the happens-before edge via the thread pool).
class TraceTrack {
 public:
  explicit TraceTrack(std::size_t capacity);

  /// Append, overwriting the oldest event once full. Assigns the event's
  /// per-track sequence number.
  void push(TraceEvent event) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events ever pushed (monotonic, survives wrap).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return next_seq_; }
  /// Events lost to wrap (recorded - retained).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
  }
  /// Retained events, oldest first (reader side; writer must be quiesced).
  [[nodiscard]] std::vector<TraceEvent> ordered() const;

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t next_seq_ = 0;
};

class FlightRecorder {
 public:
  /// Track 0: the engine/merge thread (also the only track for threads=1).
  static constexpr std::uint32_t kEngineTrack = 0;
  /// Track of shard index `s` (shard loops run on worker threads).
  [[nodiscard]] static constexpr std::uint32_t shard_track(std::size_t s) noexcept {
    return static_cast<std::uint32_t>(s) + 1;
  }

  /// `shard_tracks` shard tracks plus the engine track are allocated, each
  /// with `capacity_per_track` event slots.
  FlightRecorder(std::size_t shard_tracks, std::size_t capacity_per_track);

  [[nodiscard]] std::size_t track_count() const noexcept { return tracks_.size(); }
  [[nodiscard]] const TraceTrack& track(std::uint32_t t) const { return tracks_[t]; }

  /// Nanoseconds since recorder construction (steady clock).
  [[nodiscard]] std::int64_t now_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Record an instant event on `track` (must be the track's owner thread).
  void instant(std::uint32_t track, TraceCat cat, const char* name,
               const char* arg1_name = nullptr, std::int64_t arg1 = 0,
               const char* arg2_name = nullptr, std::int64_t arg2 = 0) noexcept;

  /// Record a completed span (TraceSpan is the usual front door).
  void complete(std::uint32_t track, TraceCat cat, const char* name,
                std::int64_t start_ns, std::int64_t dur_ns,
                const char* arg1_name = nullptr, std::int64_t arg1 = 0,
                const char* arg2_name = nullptr, std::int64_t arg2 = 0) noexcept;

  [[nodiscard]] std::uint64_t events_recorded() const noexcept;
  [[nodiscard]] std::uint64_t events_dropped() const noexcept;

  /// The full Chrome trace-event JSON document (empty tracks beyond the
  /// engine track are omitted — a clamped shard count leaves no ghosts).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write the export to `path`. Returns false (with a stderr warning) on
  /// I/O failure — tracing must never turn a finished run into an error.
  bool write(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceTrack> tracks_;
};

/// RAII span: opens at construction, records on destruction (or close()).
/// A null recorder disables the span entirely — no clock reads.
class TraceSpan {
 public:
  TraceSpan(FlightRecorder* recorder, std::uint32_t track, TraceCat cat,
            const char* name) noexcept
      : recorder_(recorder), track_(track), cat_(cat), name_(name) {
    if (recorder_ != nullptr) start_ns_ = recorder_->now_ns();
  }
  ~TraceSpan() { close(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach up to two integer args (names must be string literals).
  void set_args(const char* arg1_name, std::int64_t arg1,
                const char* arg2_name = nullptr, std::int64_t arg2 = 0) noexcept {
    arg1_name_ = arg1_name;
    arg1_ = arg1;
    arg2_name_ = arg2_name;
    arg2_ = arg2;
  }

  /// Record the span now; later close() calls (and the destructor) no-op.
  void close() noexcept {
    if (recorder_ == nullptr) return;
    recorder_->complete(track_, cat_, name_, start_ns_,
                        recorder_->now_ns() - start_ns_, arg1_name_, arg1_,
                        arg2_name_, arg2_);
    recorder_ = nullptr;
  }

 private:
  FlightRecorder* recorder_;
  std::uint32_t track_;
  TraceCat cat_;
  const char* name_;
  std::int64_t start_ns_ = 0;
  const char* arg1_name_ = nullptr;
  const char* arg2_name_ = nullptr;
  std::int64_t arg1_ = 0;
  std::int64_t arg2_ = 0;
};

}  // namespace wtr::obs
