#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wtr::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)), buckets_(upper_bounds_.size() + 1, 0) {
  assert(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
}

void Histogram::add(double v) noexcept {
  const auto it = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - upper_bounds_.begin())] += 1;
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

void Histogram::merge_from(const Histogram& other) noexcept {
  assert(upper_bounds_ == other.upper_bounds_);
  for (std::size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

std::vector<double> exponential_buckets(double start, double factor, std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double bound = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> latency_buckets_s() {
  // 1µs .. ~100s in decade/half-decade steps (17 bounds + overflow).
  return exponential_buckets(1e-6, std::sqrt(10.0), 17);
}

std::vector<double> size_buckets() {
  // 1 .. ~1e9 in decade steps.
  return exponential_buckets(1.0, 10.0, 10);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram{std::move(upper_bounds)}).first->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].inc(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    gauges_[name].set_max(gauge.value());
  }
  for (const auto& [name, hist] : other.histograms_) {
    histogram(name, hist.upper_bounds()).merge_from(hist);
  }
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace wtr::obs
