#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wtr::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)), buckets_(upper_bounds_.size() + 1, 0) {
  assert(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
}

void Histogram::add(double v) noexcept {
  const auto it = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - upper_bounds_.begin())] += 1;
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

void Histogram::merge_from(const Histogram& other) noexcept {
  assert(upper_bounds_ == other.upper_bounds_);
  for (std::size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

std::vector<double> exponential_buckets(double start, double factor, std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double bound = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> latency_buckets_s() {
  // 1µs .. ~100s in decade/half-decade steps (17 bounds + overflow).
  return exponential_buckets(1e-6, std::sqrt(10.0), 17);
}

std::vector<double> size_buckets() {
  // 1 .. ~1e9 in decade steps.
  return exponential_buckets(1.0, 10.0, 10);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram{std::move(upper_bounds)}).first->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].inc(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    gauges_[name].set_max(gauge.value());
  }
  for (const auto& [name, hist] : other.histograms_) {
    histogram(name, hist.upper_bounds()).merge_from(hist);
  }
}

void Histogram::save_state(util::BinWriter& out) const {
  out.u64(upper_bounds_.size());
  for (const auto bound : upper_bounds_) out.f64(bound);
  for (const auto bucket : buckets_) out.u64(bucket);
  out.u64(count_);
  out.f64(sum_);
  out.f64(min_);
  out.f64(max_);
}

void Histogram::restore_state(util::BinReader& in) {
  const auto n_bounds = in.u64();
  upper_bounds_.resize(n_bounds);
  for (auto& bound : upper_bounds_) bound = in.f64();
  buckets_.resize(n_bounds + 1);
  for (auto& bucket : buckets_) bucket = in.u64();
  count_ = in.u64();
  sum_ = in.f64();
  min_ = in.f64();
  max_ = in.f64();
}

void MetricsRegistry::save_state(util::BinWriter& out) const {
  out.u64(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.str(name);
    counter.save_state(out);
  }
  out.u64(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.str(name);
    gauge.save_state(out);
  }
  out.u64(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.str(name);
    hist.save_state(out);
  }
}

void MetricsRegistry::restore_state(util::BinReader& in) {
  // Write through existing map nodes (call sites hold stable references into
  // them); metrics only present in the snapshot are created on demand.
  const auto n_counters = in.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    counters_[in.str()].restore_state(in);
  }
  const auto n_gauges = in.u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    gauges_[in.str()].restore_state(in);
  }
  const auto n_histograms = in.u64();
  for (std::uint64_t i = 0; i < n_histograms; ++i) {
    histogram(in.str(), {}).restore_state(in);
  }
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace wtr::obs
