#pragma once

// 3GPP-flavoured attach retry backoff (TS 24.301 / 24.008 abstraction):
// after a failed attach round the UE retries on the short T3411 timer; once
// the attempt counter reaches its limit (5 in the spec) the UE enters the
// long T3402 backoff until a round succeeds. Jitter desynchronizes fleets
// the way real clock drift does — without it every meter behind a recovered
// outage would re-register in the same second, which is exactly the §5
// registration-storm pathology the mechanism is meant to *produce from
// mechanism* rather than from a tuned wake-rate multiplier.
//
// The machine consumes randomness only in on_failure(), so a simulation
// that never enables it draws an identical RNG stream to one built without
// the subsystem.

#include <cstdint>

#include "stats/rng.hpp"
#include "util/binio.hpp"

namespace wtr::signaling {

struct AttachBackoffConfig {
  /// Off by default: the legacy retry-rate boost keeps the calibrated
  /// scenarios bit-identical. Fault sweeps and robustness harnesses opt in.
  bool enabled = false;
  double t3411_s = 10.0;    // short retry timer between early attempts
  double t3402_s = 720.0;   // long backoff once the counter saturates (12 min)
  int long_backoff_after = 5;  // attempt-counter limit (3GPP: 5 failures)
  /// Multiplier applied to T3402 per consecutive long cycle. 1.0 is the
  /// spec's fixed timer; > 1.0 models firmware with escalating backoff.
  double long_backoff_multiplier = 1.0;
  double max_backoff_s = 4.0 * 3600.0;  // cap for escalating configurations
  /// Uniform jitter: the returned delay is nominal * [1-j, 1+j).
  double jitter_fraction = 0.1;
};

class AttachBackoff {
 public:
  AttachBackoff() = default;
  explicit AttachBackoff(AttachBackoffConfig config) : config_(config) {}

  /// Record a failed attach round; returns the delay (seconds) before the
  /// next retry. Draws exactly one uniform from `rng` for the jitter.
  double on_failure(stats::Rng& rng);

  /// A round succeeded: the attempt counter and any long-backoff escalation
  /// reset (T3411/T3402 are stopped on successful attach).
  void on_success() noexcept;

  [[nodiscard]] const AttachBackoffConfig& config() const noexcept { return config_; }
  [[nodiscard]] int attempt_count() const noexcept { return attempts_; }
  [[nodiscard]] bool in_long_backoff() const noexcept {
    return attempts_ >= config_.long_backoff_after;
  }
  /// Completed long-backoff waits since the last success (escalation step).
  [[nodiscard]] int long_cycles() const noexcept { return long_cycles_; }

  /// Checkpoint support: the timers' dynamic state (the config is rebuilt
  /// by the scenario, so only the counters travel).
  void save_state(util::BinWriter& out) const {
    out.i32(attempts_);
    out.i32(long_cycles_);
  }
  void restore_state(util::BinReader& in) {
    attempts_ = in.i32();
    long_cycles_ = in.i32();
  }

 private:
  AttachBackoffConfig config_{};
  int attempts_ = 0;
  int long_cycles_ = 0;
};

}  // namespace wtr::signaling
