#pragma once

// Control-plane procedures. The M2M platform dataset (§3.1) carries three
// message types observed near the HMNO (Authentication, Update Location,
// Cancel Location); the MNO-side SMIP analysis (§7.1) watches Attach,
// Routing Area Update and Detach on the MSC/MME. We model the superset.

#include <cstdint>
#include <optional>
#include <string_view>

namespace wtr::signaling {

enum class Procedure : std::uint8_t {
  kAttach = 0,
  kDetach,
  kAuthentication,
  kUpdateLocation,    // MAP UL / S6a Update Location toward the HSS
  kCancelLocation,    // HSS-initiated when the device moves networks
  kRoutingAreaUpdate, // 2G/3G mobility
  kTrackingAreaUpdate,// 4G mobility
};

inline constexpr int kProcedureCount = 7;

[[nodiscard]] std::string_view procedure_name(Procedure procedure) noexcept;

/// Inverse of procedure_name; nullopt for unknown names.
[[nodiscard]] std::optional<Procedure> procedure_from_name(std::string_view name) noexcept;

/// The subset visible to the M2M platform's probes (HMNO-side monitoring of
/// the roaming interconnect).
[[nodiscard]] bool visible_to_platform_probes(Procedure procedure) noexcept;

/// Mobility-management "background traffic" in the §7.1 sense (procedures a
/// device generates without any chargeable service usage).
[[nodiscard]] bool is_background(Procedure procedure) noexcept;

}  // namespace wtr::signaling
