#pragma once

// Per-device mobility-management state machine (EMM in 4G terms; the 2G/3G
// GMM equivalent behaves identically at this abstraction). It enforces the
// legal procedure order the simulator follows — authenticate, then update
// location, then attached; periodic area updates while attached; cancel
// location on network change — and counts what it emitted.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "signaling/procedure.hpp"
#include "signaling/result_code.hpp"
#include "topology/operator_registry.hpp"
#include "util/binio.hpp"

namespace wtr::signaling {

enum class EmmState : std::uint8_t {
  kDetached,
  kAuthenticating,   // attach in progress: authentication sent
  kUpdatingLocation, // attach in progress: update location sent
  kAttached,
};

[[nodiscard]] std::string_view emm_state_name(EmmState state) noexcept;

class EmmStateMachine {
 public:
  /// Begin an attach toward a network. Legal from kDetached only; returns
  /// the first procedure to send (Authentication).
  Procedure begin_attach(topology::OperatorId visited);

  /// Feed the outcome of the last procedure sent during attach. Returns the
  /// next procedure to send, or nullopt when the attach concluded (check
  /// attached()). A failure at any step returns the machine to kDetached.
  std::optional<Procedure> on_attach_step_result(ResultCode result);

  /// Periodic mobility update while attached (RAU on 2G/3G, TAU on 4G).
  /// Legal from kAttached only.
  Procedure area_update(bool on_lte) noexcept;

  /// Explicit detach; legal from kAttached. Returns the Detach procedure.
  Procedure detach() noexcept;

  /// The device moved to another network: the old HSS registration is
  /// cancelled (CancelLocation is emitted by the network, attributed to the
  /// device in the trace) and the machine resets to kDetached.
  Procedure cancel_location() noexcept;

  [[nodiscard]] EmmState state() const noexcept { return state_; }
  [[nodiscard]] bool attached() const noexcept { return state_ == EmmState::kAttached; }
  [[nodiscard]] std::optional<topology::OperatorId> serving_network() const noexcept {
    return state_ == EmmState::kDetached ? std::nullopt : serving_;
  }

  [[nodiscard]] std::uint64_t procedures_emitted(Procedure procedure) const noexcept {
    return counts_[static_cast<std::size_t>(procedure)];
  }
  [[nodiscard]] std::uint64_t total_procedures() const noexcept;

  /// Checkpoint support: serialize / restore the full machine state.
  void save_state(util::BinWriter& out) const;
  void restore_state(util::BinReader& in);

 private:
  void count(Procedure procedure) noexcept {
    ++counts_[static_cast<std::size_t>(procedure)];
  }

  EmmState state_ = EmmState::kDetached;
  std::optional<topology::OperatorId> serving_;
  std::array<std::uint64_t, kProcedureCount> counts_{};
};

}  // namespace wtr::signaling
