#pragma once

// The wire-level records of both datasets.
//
// SignalingTransaction mirrors one row of the M2M platform trace (§3.1):
// hashed device id, timestamp, SIM MCC-MNC, visited MCC-MNC, message type,
// result. The same struct doubles as the MNO-side radio signaling event
// (where it additionally knows the RAT and sector).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cellnet/imei.hpp"
#include "cellnet/plmn.hpp"
#include "cellnet/rat.hpp"
#include "cellnet/sector.hpp"
#include "signaling/procedure.hpp"
#include "signaling/result_code.hpp"
#include "stats/sim_time.hpp"

namespace wtr::signaling {

/// One-way-hashed device identity (the datasets never expose IMSI/IMEI).
using DeviceHash = std::uint64_t;

struct SignalingTransaction {
  DeviceHash device = 0;
  stats::SimTime time = 0;
  cellnet::Plmn sim_plmn{};      // home operator of the SIM
  cellnet::Plmn visited_plmn{};  // network the device is attached to / trying
  Procedure procedure = Procedure::kAttach;
  ResultCode result = ResultCode::kOk;
  cellnet::Rat rat = cellnet::Rat::kFourG;
  cellnet::SectorId sector = 0;  // serving sector (MNO-side records only)
  cellnet::Tac tac = 0;          // equipment TAC (radio logs carry it, §4.1)
};

/// CSV projection used by trace export (one row per transaction).
[[nodiscard]] std::vector<std::string> to_csv_fields(const SignalingTransaction& txn);
[[nodiscard]] std::vector<std::string> csv_header();

/// Inverse of to_csv_fields. Returns nullopt on malformed rows (wrong field
/// count, unparseable PLMN/number, unknown enum name).
[[nodiscard]] std::optional<SignalingTransaction> from_csv_fields(
    std::span<const std::string> fields);

}  // namespace wtr::signaling
