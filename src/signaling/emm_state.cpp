#include "signaling/emm_state.hpp"

#include <cassert>
#include <numeric>

namespace wtr::signaling {

std::string_view emm_state_name(EmmState state) noexcept {
  switch (state) {
    case EmmState::kDetached: return "DETACHED";
    case EmmState::kAuthenticating: return "AUTHENTICATING";
    case EmmState::kUpdatingLocation: return "UPDATING_LOCATION";
    case EmmState::kAttached: return "ATTACHED";
  }
  return "?";
}

Procedure EmmStateMachine::begin_attach(topology::OperatorId visited) {
  assert(state_ == EmmState::kDetached);
  state_ = EmmState::kAuthenticating;
  serving_ = visited;
  count(Procedure::kAttach);
  count(Procedure::kAuthentication);
  return Procedure::kAuthentication;
}

std::optional<Procedure> EmmStateMachine::on_attach_step_result(ResultCode result) {
  assert(state_ == EmmState::kAuthenticating || state_ == EmmState::kUpdatingLocation);
  if (is_failure(result)) {
    state_ = EmmState::kDetached;
    serving_.reset();
    return std::nullopt;
  }
  if (state_ == EmmState::kAuthenticating) {
    state_ = EmmState::kUpdatingLocation;
    count(Procedure::kUpdateLocation);
    return Procedure::kUpdateLocation;
  }
  state_ = EmmState::kAttached;
  return std::nullopt;
}

Procedure EmmStateMachine::area_update(bool on_lte) noexcept {
  assert(state_ == EmmState::kAttached);
  const Procedure procedure =
      on_lte ? Procedure::kTrackingAreaUpdate : Procedure::kRoutingAreaUpdate;
  count(procedure);
  return procedure;
}

Procedure EmmStateMachine::detach() noexcept {
  assert(state_ == EmmState::kAttached);
  state_ = EmmState::kDetached;
  serving_.reset();
  count(Procedure::kDetach);
  return Procedure::kDetach;
}

Procedure EmmStateMachine::cancel_location() noexcept {
  state_ = EmmState::kDetached;
  serving_.reset();
  count(Procedure::kCancelLocation);
  return Procedure::kCancelLocation;
}

std::uint64_t EmmStateMachine::total_procedures() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

}  // namespace wtr::signaling
