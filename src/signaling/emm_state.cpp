#include "signaling/emm_state.hpp"

#include <cassert>
#include <numeric>

namespace wtr::signaling {

std::string_view emm_state_name(EmmState state) noexcept {
  switch (state) {
    case EmmState::kDetached: return "DETACHED";
    case EmmState::kAuthenticating: return "AUTHENTICATING";
    case EmmState::kUpdatingLocation: return "UPDATING_LOCATION";
    case EmmState::kAttached: return "ATTACHED";
  }
  return "?";
}

Procedure EmmStateMachine::begin_attach(topology::OperatorId visited) {
  assert(state_ == EmmState::kDetached);
  state_ = EmmState::kAuthenticating;
  serving_ = visited;
  count(Procedure::kAttach);
  count(Procedure::kAuthentication);
  return Procedure::kAuthentication;
}

std::optional<Procedure> EmmStateMachine::on_attach_step_result(ResultCode result) {
  assert(state_ == EmmState::kAuthenticating || state_ == EmmState::kUpdatingLocation);
  if (is_failure(result)) {
    state_ = EmmState::kDetached;
    serving_.reset();
    return std::nullopt;
  }
  if (state_ == EmmState::kAuthenticating) {
    state_ = EmmState::kUpdatingLocation;
    count(Procedure::kUpdateLocation);
    return Procedure::kUpdateLocation;
  }
  state_ = EmmState::kAttached;
  return std::nullopt;
}

Procedure EmmStateMachine::area_update(bool on_lte) noexcept {
  assert(state_ == EmmState::kAttached);
  const Procedure procedure =
      on_lte ? Procedure::kTrackingAreaUpdate : Procedure::kRoutingAreaUpdate;
  count(procedure);
  return procedure;
}

Procedure EmmStateMachine::detach() noexcept {
  assert(state_ == EmmState::kAttached);
  state_ = EmmState::kDetached;
  serving_.reset();
  count(Procedure::kDetach);
  return Procedure::kDetach;
}

Procedure EmmStateMachine::cancel_location() noexcept {
  state_ = EmmState::kDetached;
  serving_.reset();
  count(Procedure::kCancelLocation);
  return Procedure::kCancelLocation;
}

std::uint64_t EmmStateMachine::total_procedures() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

void EmmStateMachine::save_state(util::BinWriter& out) const {
  out.u8(static_cast<std::uint8_t>(state_));
  out.b(serving_.has_value());
  out.u32(serving_.value_or(topology::kInvalidOperator));
  for (const auto count : counts_) out.u64(count);
}

void EmmStateMachine::restore_state(util::BinReader& in) {
  state_ = static_cast<EmmState>(in.u8());
  const bool has_serving = in.b();
  const auto serving = in.u32();
  serving_ = has_serving ? std::optional<topology::OperatorId>{serving} : std::nullopt;
  for (auto& count : counts_) count = in.u64();
}

}  // namespace wtr::signaling
