#include "signaling/attach_backoff.hpp"

#include <algorithm>
#include <cmath>

namespace wtr::signaling {

double AttachBackoff::on_failure(stats::Rng& rng) {
  ++attempts_;
  double nominal;
  if (attempts_ < config_.long_backoff_after) {
    nominal = config_.t3411_s;
  } else {
    nominal = config_.t3402_s *
              std::pow(std::max(1.0, config_.long_backoff_multiplier),
                       static_cast<double>(long_cycles_));
    nominal = std::min(nominal, config_.max_backoff_s);
    ++long_cycles_;
  }
  const double jitter = std::clamp(config_.jitter_fraction, 0.0, 1.0);
  const double factor = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
  return std::max(1.0, nominal * factor);
}

void AttachBackoff::on_success() noexcept {
  attempts_ = 0;
  long_cycles_ = 0;
}

}  // namespace wtr::signaling
