#pragma once

// Outcome codes attached to every signaling record — the paper's trace
// enumerates OK, RoamingNotAllowed, UnknownSubscription and
// FeatureUnsupported (§3.1/§3.3); we add a transient NetworkFailure used by
// the failure-injection tests.

#include <cstdint>
#include <optional>
#include <string_view>

namespace wtr::signaling {

enum class ResultCode : std::uint8_t {
  kOk = 0,
  kRoamingNotAllowed,    // no commercial path between home and visited
  kUnknownSubscription,  // HSS does not recognize the IMSI
  kFeatureUnsupported,   // RAT / service outside the agreement or hardware
  kNetworkFailure,       // transient core-network error
  kCongestion,           // core overload; carries a network-assigned backoff
};

inline constexpr int kResultCodeCount = 6;

[[nodiscard]] std::string_view result_code_name(ResultCode code) noexcept;

/// Inverse of result_code_name; nullopt for unknown names.
[[nodiscard]] std::optional<ResultCode> result_code_from_name(std::string_view name) noexcept;

[[nodiscard]] constexpr bool is_failure(ResultCode code) noexcept {
  return code != ResultCode::kOk;
}

}  // namespace wtr::signaling
