#pragma once

// T3346 mobility-management congestion backoff (3GPP TS 24.301 §5.3.7a /
// TS 24.008 §4.7.1.9). On an attach reject with a congestion cause the
// network assigns a backoff value; the UE starts T3346 and may not retry
// mobility-management procedures until it expires. Unlike the T3411/T3402
// attempt-counter machine (attach_backoff.hpp), a congestion reject does
// NOT advance the attempt counter (TS 24.301 §5.5.1.2.5) — the two timers
// ride side by side in DeviceAgent, and this one wins while running.

#include "stats/sim_time.hpp"
#include "util/binio.hpp"

namespace wtr::signaling {

class T3346Timer {
 public:
  /// Arm the timer: no attach attempts until `until` (sim seconds).
  void start(stats::SimTime until) noexcept {
    if (until > barred_until_) barred_until_ = until;
  }
  [[nodiscard]] bool running(stats::SimTime now) const noexcept {
    return now < barred_until_;
  }
  [[nodiscard]] stats::SimTime expiry() const noexcept { return barred_until_; }
  void stop() noexcept { barred_until_ = 0; }

  void save_state(util::BinWriter& out) const { out.i64(barred_until_); }
  void restore_state(util::BinReader& in) { barred_until_ = in.i64(); }

 private:
  stats::SimTime barred_until_ = 0;
};

}  // namespace wtr::signaling
