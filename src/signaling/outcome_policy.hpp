#pragma once

// Decides how the visited core network answers a procedure: OK, or one of
// the rejection codes seen in the platform trace. The decision follows the
// commercial topology (no roaming path → RoamingNotAllowed), the agreement
// and hardware RAT scope (→ FeatureUnsupported), subscription state
// (→ UnknownSubscription), a small transient failure rate, and — when a
// FaultSchedule is installed — time-varying injected faults (outages,
// signaling storms, degraded hub paths, misprovisioning ramps).

#include <array>

#include "cellnet/rat.hpp"
#include "faults/congestion.hpp"
#include "faults/fault_schedule.hpp"
#include "signaling/result_code.hpp"
#include "stats/rng.hpp"
#include "stats/sim_time.hpp"
#include "topology/world.hpp"

namespace wtr::obs {
class Counter;
class MetricsRegistry;
}  // namespace wtr::obs

namespace wtr::signaling {

struct OutcomePolicyConfig {
  double transient_failure_rate = 0.005;  // core hiccups on otherwise-OK calls
  double unknown_subscription_rate = 0.0; // set per-fleet for bad provisioning
};

class OutcomePolicy {
 public:
  OutcomePolicy() = default;
  /// `metrics` (optional, borrowed) mirrors every decision into
  /// "signaling.evaluations" / "signaling.rejects" / "signaling.result.*"
  /// counters. Counter handles resolve once here, so the per-call cost with
  /// metrics off is a single null test and the RNG stream is untouched
  /// either way.
  /// `congestion` (optional, borrowed) closes the loop: attach-family
  /// attempts are counted into `load` (the caller's shard-local ledger) and
  /// may be rejected with kCongestion at the model's current per-operator
  /// probability. Both null = the pre-congestion build, bit-identical.
  explicit OutcomePolicy(OutcomePolicyConfig config,
                         const faults::FaultSchedule* faults = nullptr,
                         obs::MetricsRegistry* metrics = nullptr,
                         const faults::CongestionModel* congestion = nullptr,
                         faults::CongestionLedger* load = nullptr);

  /// Evaluate a procedure attempt at sim time `now` by a SIM of `home` on
  /// the radio network of `visited` using `rat`. `device_rats` is the
  /// hardware capability and `sim_rats` the SIM's provisioning scope;
  /// `subscription_ok` is false for deactivated/misprovisioned SIMs.
  /// `fault_domain` is the device's fleet tag for fault-schedule scoping
  /// (kAnyFaultDomain for untagged devices).
  ///
  /// RNG discipline: exactly two bernoulli draws on every structurally-OK
  /// attempt, fault schedule or not — an empty/absent schedule is
  /// bit-identical to the pre-fault build. With a congestion model
  /// installed, `attach_family` attempts add exactly one more draw
  /// (unconditionally, so the stream never depends on the load level).
  [[nodiscard]] ResultCode evaluate(const topology::World& world, stats::SimTime now,
                                    topology::OperatorId home,
                                    topology::OperatorId visited, cellnet::Rat rat,
                                    cellnet::RatMask device_rats,
                                    cellnet::RatMask sim_rats, bool subscription_ok,
                                    std::uint32_t fault_domain, stats::Rng& rng,
                                    bool attach_family = true) const;

  [[nodiscard]] const OutcomePolicyConfig& config() const noexcept { return config_; }
  [[nodiscard]] const faults::FaultSchedule* faults() const noexcept { return faults_; }
  [[nodiscard]] const faults::CongestionModel* congestion() const noexcept {
    return congestion_;
  }
  /// Extended access barring in force on `radio` (a *radio network* id) —
  /// a barred delay-tolerant device skips the attempt entirely.
  [[nodiscard]] bool eab_barred(topology::OperatorId radio) const noexcept {
    return congestion_ != nullptr && congestion_->eab_active(radio);
  }
  /// Network-assigned T3346 value carried on a kCongestion reject.
  [[nodiscard]] double congestion_backoff_s(topology::OperatorId radio) const noexcept {
    return congestion_ != nullptr ? congestion_->assigned_backoff_s(radio) : 0.0;
  }
  /// Record an EAB-suppressed attempt (shed load) into the shard ledger.
  void note_eab_barred(topology::OperatorId radio) const noexcept {
    if (load_ != nullptr) load_->count_barred(radio);
  }

 private:
  [[nodiscard]] ResultCode evaluate_impl(const topology::World& world,
                                         stats::SimTime now, topology::OperatorId home,
                                         topology::OperatorId visited, cellnet::Rat rat,
                                         cellnet::RatMask device_rats,
                                         cellnet::RatMask sim_rats, bool subscription_ok,
                                         std::uint32_t fault_domain, stats::Rng& rng,
                                         bool attach_family) const;

  OutcomePolicyConfig config_{};
  const faults::FaultSchedule* faults_ = nullptr;  // not owned; may be null
  const faults::CongestionModel* congestion_ = nullptr;  // not owned; may be null
  faults::CongestionLedger* load_ = nullptr;  // shard-local; not owned
  // Pre-resolved metric handles (null when observability is off). The
  // registry owns them; pointers stay valid for its lifetime.
  obs::Counter* evaluations_ = nullptr;
  obs::Counter* rejects_ = nullptr;
  std::array<obs::Counter*, kResultCodeCount> by_code_{};
};

}  // namespace wtr::signaling
