#pragma once

// Decides how the visited core network answers a procedure: OK, or one of
// the rejection codes seen in the platform trace. The decision follows the
// commercial topology (no roaming path → RoamingNotAllowed), the agreement
// and hardware RAT scope (→ FeatureUnsupported), subscription state
// (→ UnknownSubscription) and a small transient failure rate.

#include "cellnet/rat.hpp"
#include "signaling/result_code.hpp"
#include "stats/rng.hpp"
#include "topology/world.hpp"

namespace wtr::signaling {

struct OutcomePolicyConfig {
  double transient_failure_rate = 0.005;  // core hiccups on otherwise-OK calls
  double unknown_subscription_rate = 0.0; // set per-fleet for bad provisioning
};

class OutcomePolicy {
 public:
  OutcomePolicy() = default;
  explicit OutcomePolicy(OutcomePolicyConfig config) : config_(config) {}

  /// Evaluate a procedure attempt by a SIM of `home` on the radio network
  /// of `visited` using `rat`. `device_rats` is the hardware capability and
  /// `sim_rats` the SIM's provisioning scope; `subscription_ok` is false
  /// for deactivated/misprovisioned SIMs.
  [[nodiscard]] ResultCode evaluate(const topology::World& world,
                                    topology::OperatorId home,
                                    topology::OperatorId visited, cellnet::Rat rat,
                                    cellnet::RatMask device_rats,
                                    cellnet::RatMask sim_rats, bool subscription_ok,
                                    stats::Rng& rng) const;

  [[nodiscard]] const OutcomePolicyConfig& config() const noexcept { return config_; }

 private:
  OutcomePolicyConfig config_{};
};

}  // namespace wtr::signaling
