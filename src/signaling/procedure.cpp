#include "signaling/procedure.hpp"

namespace wtr::signaling {

std::string_view procedure_name(Procedure procedure) noexcept {
  switch (procedure) {
    case Procedure::kAttach: return "Attach";
    case Procedure::kDetach: return "Detach";
    case Procedure::kAuthentication: return "Authentication";
    case Procedure::kUpdateLocation: return "UpdateLocation";
    case Procedure::kCancelLocation: return "CancelLocation";
    case Procedure::kRoutingAreaUpdate: return "RoutingAreaUpdate";
    case Procedure::kTrackingAreaUpdate: return "TrackingAreaUpdate";
  }
  return "?";
}

std::optional<Procedure> procedure_from_name(std::string_view name) noexcept {
  for (int i = 0; i < kProcedureCount; ++i) {
    const auto procedure = static_cast<Procedure>(i);
    if (procedure_name(procedure) == name) return procedure;
  }
  return std::nullopt;
}

bool visible_to_platform_probes(Procedure procedure) noexcept {
  switch (procedure) {
    case Procedure::kAuthentication:
    case Procedure::kUpdateLocation:
    case Procedure::kCancelLocation: return true;
    default: return false;
  }
}

bool is_background(Procedure procedure) noexcept {
  switch (procedure) {
    case Procedure::kAttach:
    case Procedure::kDetach:
    case Procedure::kRoutingAreaUpdate:
    case Procedure::kTrackingAreaUpdate:
    case Procedure::kUpdateLocation:
    case Procedure::kCancelLocation:
    case Procedure::kAuthentication: return true;
  }
  return false;
}

}  // namespace wtr::signaling
