#include "signaling/outcome_policy.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace wtr::signaling {

OutcomePolicy::OutcomePolicy(OutcomePolicyConfig config,
                             const faults::FaultSchedule* faults,
                             obs::MetricsRegistry* metrics,
                             const faults::CongestionModel* congestion,
                             faults::CongestionLedger* load)
    : config_(config), faults_(faults), congestion_(congestion), load_(load) {
  if (metrics == nullptr) return;
  evaluations_ = &metrics->counter("signaling.evaluations");
  rejects_ = &metrics->counter("signaling.rejects");
  for (int i = 0; i < kResultCodeCount; ++i) {
    const auto code = static_cast<ResultCode>(i);
    by_code_[static_cast<std::size_t>(i)] = &metrics->counter(
        std::string("signaling.result.") + std::string(result_code_name(code)));
  }
}

ResultCode OutcomePolicy::evaluate(const topology::World& world, stats::SimTime now,
                                   topology::OperatorId home,
                                   topology::OperatorId visited, cellnet::Rat rat,
                                   cellnet::RatMask device_rats, cellnet::RatMask sim_rats,
                                   bool subscription_ok, std::uint32_t fault_domain,
                                   stats::Rng& rng, bool attach_family) const {
  const ResultCode result =
      evaluate_impl(world, now, home, visited, rat, device_rats, sim_rats,
                    subscription_ok, fault_domain, rng, attach_family);
  if (evaluations_ != nullptr) {
    evaluations_->inc();
    by_code_[static_cast<std::size_t>(result)]->inc();
    if (is_failure(result)) rejects_->inc();
  }
  return result;
}

ResultCode OutcomePolicy::evaluate_impl(const topology::World& world, stats::SimTime now,
                                        topology::OperatorId home,
                                        topology::OperatorId visited, cellnet::Rat rat,
                                        cellnet::RatMask device_rats,
                                        cellnet::RatMask sim_rats, bool subscription_ok,
                                        std::uint32_t fault_domain, stats::Rng& rng,
                                        bool attach_family) const {
  const auto& operators = world.operators();
  const auto& home_op = operators.get(home);
  const auto& visited_op = operators.get(visited);

  // Hardware without the radio cannot even try; treated as unsupported.
  if (!device_rats.has(rat)) return ResultCode::kFeatureUnsupported;

  // SIM provisioning scope: the HSS rejects technologies the subscription
  // does not cover (e.g. no LTE enablement on a legacy M2M SIM).
  if (!sim_rats.has(rat)) return ResultCode::kFeatureUnsupported;

  // The visited network must deploy the RAT.
  if (!visited_op.deployed_rats.has(rat)) return ResultCode::kFeatureUnsupported;

  const bool at_home = operators.radio_network_of(home) ==
                       operators.radio_network_of(visited);
  topology::HubId via_hub = topology::kInvalidHub;
  if (!at_home) {
    // National roaming between distinct local MNOs requires an agreement
    // just like international roaming does.
    const auto roaming = world.resolve_roaming(home, visited);
    if (roaming.path == topology::RoamingPath::kNone) {
      return ResultCode::kRoamingNotAllowed;
    }
    if (!roaming.terms.allowed_rats.has(rat)) {
      return ResultCode::kFeatureUnsupported;
    }
    via_hub = roaming.via_hub;
  }
  (void)home_op;

  // Closed-loop congestion: attach-family messages land on the visited
  // *radio* network's core. The attempt is counted whether or not it is
  // rejected (rejected messages still load the core), and the draw happens
  // unconditionally while a model is installed so the stream offset never
  // depends on the load level. No model = zero extra draws = bit-identical
  // to a build without the subsystem.
  if (congestion_ != nullptr && attach_family) {
    const auto radio = operators.radio_network_of(visited);
    if (load_ != nullptr) load_->count_attempt(radio);
    if (rng.bernoulli(congestion_->reject_probability(radio))) {
      return ResultCode::kCongestion;
    }
  }

  // Injected fault pressure at this instant. The empty/absent-schedule fast
  // path keeps the probabilities *exactly* the configured base rates so the
  // two draws below stay bit-identical to the pre-fault build.
  faults::FaultEffect effect;
  if (faults_ != nullptr && !faults_->empty()) {
    effect = faults_->effect_at(now, operators.radio_network_of(visited), via_hub,
                                fault_domain);
  }

  double p_unknown = config_.unknown_subscription_rate;
  if (effect.misprovisioned > 0.0) {
    p_unknown = 1.0 - (1.0 - p_unknown) * (1.0 - effect.misprovisioned);
  }
  if (!subscription_ok || rng.bernoulli(p_unknown)) {
    return ResultCode::kUnknownSubscription;
  }

  double p_reject = config_.transient_failure_rate;
  if (effect.any()) {
    p_reject = 1.0 - (1.0 - p_reject) * (1.0 - effect.combined_reject());
  }
  if (rng.bernoulli(p_reject)) {
    return ResultCode::kNetworkFailure;
  }
  return ResultCode::kOk;
}

}  // namespace wtr::signaling
