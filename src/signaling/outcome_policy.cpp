#include "signaling/outcome_policy.hpp"

namespace wtr::signaling {

ResultCode OutcomePolicy::evaluate(const topology::World& world,
                                   topology::OperatorId home,
                                   topology::OperatorId visited, cellnet::Rat rat,
                                   cellnet::RatMask device_rats, cellnet::RatMask sim_rats,
                                   bool subscription_ok, stats::Rng& rng) const {
  const auto& operators = world.operators();
  const auto& home_op = operators.get(home);
  const auto& visited_op = operators.get(visited);

  // Hardware without the radio cannot even try; treated as unsupported.
  if (!device_rats.has(rat)) return ResultCode::kFeatureUnsupported;

  // SIM provisioning scope: the HSS rejects technologies the subscription
  // does not cover (e.g. no LTE enablement on a legacy M2M SIM).
  if (!sim_rats.has(rat)) return ResultCode::kFeatureUnsupported;

  // The visited network must deploy the RAT.
  if (!visited_op.deployed_rats.has(rat)) return ResultCode::kFeatureUnsupported;

  const bool at_home = operators.radio_network_of(home) ==
                       operators.radio_network_of(visited);
  if (!at_home) {
    // National roaming between distinct local MNOs requires an agreement
    // just like international roaming does.
    const auto roaming = world.resolve_roaming(home, visited);
    if (roaming.path == topology::RoamingPath::kNone) {
      return ResultCode::kRoamingNotAllowed;
    }
    if (!roaming.terms.allowed_rats.has(rat)) {
      return ResultCode::kFeatureUnsupported;
    }
  }
  (void)home_op;

  if (!subscription_ok || rng.bernoulli(config_.unknown_subscription_rate)) {
    return ResultCode::kUnknownSubscription;
  }
  if (rng.bernoulli(config_.transient_failure_rate)) {
    return ResultCode::kNetworkFailure;
  }
  return ResultCode::kOk;
}

}  // namespace wtr::signaling
