#include "signaling/transaction.hpp"

#include "io/csv.hpp"

namespace wtr::signaling {

std::vector<std::string> csv_header() {
  return {"device", "time",   "sim_plmn", "visited_plmn",
          "procedure", "result", "rat",      "sector", "tac"};
}

std::vector<std::string> to_csv_fields(const SignalingTransaction& txn) {
  return {std::to_string(txn.device),
          std::to_string(txn.time),
          txn.sim_plmn.to_string(),
          txn.visited_plmn.to_string(),
          std::string(procedure_name(txn.procedure)),
          std::string(result_code_name(txn.result)),
          std::string(cellnet::rat_name(txn.rat)),
          std::to_string(txn.sector),
          std::to_string(txn.tac)};
}

std::optional<SignalingTransaction> from_csv_fields(
    std::span<const std::string> fields) {
  if (fields.size() != csv_header().size()) return std::nullopt;
  SignalingTransaction txn;
  const auto device = io::parse_u64(fields[0]);
  const auto time = io::parse_i64(fields[1]);
  const auto sim = cellnet::Plmn::parse(fields[2]);
  const auto visited = cellnet::Plmn::parse(fields[3]);
  const auto procedure = procedure_from_name(fields[4]);
  const auto result = result_code_from_name(fields[5]);
  const auto rat = cellnet::rat_from_name(fields[6]);
  const auto sector = io::parse_u64(fields[7]);
  const auto tac = io::parse_u64(fields[8]);
  if (!device || !time || !sim || !visited || !procedure || !result || !rat ||
      !sector || !tac) {
    return std::nullopt;
  }
  txn.device = *device;
  txn.time = *time;
  txn.sim_plmn = *sim;
  txn.visited_plmn = *visited;
  txn.procedure = *procedure;
  txn.result = *result;
  txn.rat = *rat;
  txn.sector = static_cast<cellnet::SectorId>(*sector);
  txn.tac = static_cast<cellnet::Tac>(*tac);
  return txn;
}

}  // namespace wtr::signaling
