#include "signaling/result_code.hpp"

namespace wtr::signaling {

std::string_view result_code_name(ResultCode code) noexcept {
  switch (code) {
    case ResultCode::kOk: return "OK";
    case ResultCode::kRoamingNotAllowed: return "RoamingNotAllowed";
    case ResultCode::kUnknownSubscription: return "UnknownSubscription";
    case ResultCode::kFeatureUnsupported: return "FeatureUnsupported";
    case ResultCode::kNetworkFailure: return "NetworkFailure";
    case ResultCode::kCongestion: return "Congestion";
  }
  return "?";
}

std::optional<ResultCode> result_code_from_name(std::string_view name) noexcept {
  for (int i = 0; i < kResultCodeCount; ++i) {
    const auto code = static_cast<ResultCode>(i);
    if (result_code_name(code) == name) return code;
  }
  return std::nullopt;
}

}  // namespace wtr::signaling
