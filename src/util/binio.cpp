#include "util/binio.hpp"

#include <stdexcept>

namespace wtr::util {

void BinReader::overrun(std::size_t n) const {
  throw std::runtime_error("binio: read past end of buffer (offset " +
                           std::to_string(offset_) + " + " + std::to_string(n) +
                           " > " + std::to_string(bytes_.size()) + ")");
}

void BinReader::varint_overflow() {
  throw std::runtime_error("binio: varint overflows 64 bits");
}

void BinReader::varint_overlong() {
  throw std::runtime_error("binio: varint longer than 10 bytes");
}

std::string BinReader::vstr() {
  const std::uint64_t size = varint();
  if (size > remaining()) {
    throw std::runtime_error("binio: vstr length " + std::to_string(size) +
                             " exceeds remaining " + std::to_string(remaining()) +
                             " bytes");
  }
  std::string out(bytes_.substr(offset_, static_cast<std::size_t>(size)));
  offset_ += static_cast<std::size_t>(size);
  return out;
}

std::string BinReader::str() {
  const std::uint64_t size = u64();
  // A corrupted length must not drive a multi-gigabyte allocation before the
  // bounds check fires.
  if (size > remaining()) {
    throw std::runtime_error("binio: string length " + std::to_string(size) +
                             " exceeds remaining " + std::to_string(remaining()) +
                             " bytes");
  }
  std::string out(bytes_.substr(offset_, static_cast<std::size_t>(size)));
  offset_ += static_cast<std::size_t>(size);
  return out;
}

void BinReader::expect_exhausted(const std::string& context) const {
  if (!exhausted()) {
    throw std::runtime_error("binio: " + context + ": " +
                             std::to_string(remaining()) +
                             " trailing bytes (format drift?)");
  }
}

}  // namespace wtr::util
