#include "util/binio.hpp"

#include <stdexcept>

namespace wtr::util {

void BinReader::need(std::size_t n) const {
  if (offset_ + n > bytes_.size()) {
    throw std::runtime_error("binio: read past end of buffer (offset " +
                             std::to_string(offset_) + " + " + std::to_string(n) +
                             " > " + std::to_string(bytes_.size()) + ")");
  }
}

std::uint8_t BinReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[offset_++]);
}

std::uint32_t BinReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 4;
  return v;
}

std::uint64_t BinReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 8;
  return v;
}

double BinReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string BinReader::str() {
  const std::uint64_t size = u64();
  // A corrupted length must not drive a multi-gigabyte allocation before the
  // bounds check fires.
  if (size > remaining()) {
    throw std::runtime_error("binio: string length " + std::to_string(size) +
                             " exceeds remaining " + std::to_string(remaining()) +
                             " bytes");
  }
  std::string out(bytes_.substr(offset_, static_cast<std::size_t>(size)));
  offset_ += static_cast<std::size_t>(size);
  return out;
}

void BinReader::expect_exhausted(const std::string& context) const {
  if (!exhausted()) {
    throw std::runtime_error("binio: " + context + ": " +
                             std::to_string(remaining()) +
                             " trailing bytes (format drift?)");
  }
}

}  // namespace wtr::util
