#pragma once

// A small reusable worker pool for the sharded simulation engine. Workers
// are spawned once and fed through a mutex-guarded queue; submit() enqueues
// a task, wait() blocks until every submitted task has finished, and the
// pool is then ready for the next submit/wait cycle. Exceptions thrown by a
// task are captured and rethrown from wait() (first one wins) so shard
// failures surface in the calling thread instead of killing the process.
//
// With zero workers (or a single-task cycle on a single-core box) submit()
// degrades gracefully: tasks queued while no worker exists are executed
// inline by wait(). That keeps threads=1 semantics available even where
// std::thread is unusable.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wtr::util {

class ThreadPool {
 public:
  /// Spawn `workers` threads. 0 is valid: tasks then run inline in wait().
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueue a task for execution. Must not be called concurrently with
  /// wait() from another thread (the pool has a single producer by design).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed, then rethrow the first
  /// captured task exception, if any. The pool is reusable afterwards.
  void wait();

  /// Reasonable default worker count for this machine (>= 1).
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();
  void run_task(std::function<void()> task) noexcept;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;  // dequeued but not yet finished
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace wtr::util
