#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace wtr::util {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::size_t ThreadPool::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::run_task(std::function<void()> task) noexcept {
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    auto task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    run_task(std::move(task));
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (threads_.empty()) {
    // Inline fallback: drain the queue on the caller's thread.
    while (!queue_.empty()) {
      auto task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      run_task(std::move(task));
      lock.lock();
    }
  } else {
    all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  if (first_error_) {
    auto error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace wtr::util
