#pragma once

// Bounds-checked binary (de)serialization primitives for the checkpoint
// subsystem. Encoding is explicit little-endian regardless of host order, so
// a snapshot written on one machine restores on any other. BinReader throws
// std::runtime_error on any overrun or malformed length — a truncated or
// corrupted buffer must surface as a loud error, never as silently wrong
// state (the checkpoint layer wraps these errors with file context).

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace wtr::util {

class BinWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Doubles round-trip bit-exactly (the resume determinism guarantee needs
  /// the restored RNG-adjacent state to be *identical*, not just close).
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view v) {
    u64(v.size());
    buffer_.append(v.data(), v.size());
  }
  void raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

class BinReader {
 public:
  explicit BinReader(std::string_view bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

  /// Remaining bytes must all be consumed by a well-formed deserializer;
  /// call this at the end of a section to catch format drift.
  void expect_exhausted(const std::string& context) const;

 private:
  void need(std::size_t n) const;

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

}  // namespace wtr::util
