#pragma once

// Bounds-checked binary (de)serialization primitives for the checkpoint
// subsystem. Encoding is explicit little-endian regardless of host order, so
// a snapshot written on one machine restores on any other. BinReader throws
// std::runtime_error on any overrun or malformed length — a truncated or
// corrupted buffer must surface as a loud error, never as silently wrong
// state (the checkpoint layer wraps these errors with file context).

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace wtr::util {

class BinWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Doubles round-trip bit-exactly (the resume determinism guarantee needs
  /// the restored RNG-adjacent state to be *identical*, not just close).
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view v) {
    u64(v.size());
    buffer_.append(v.data(), v.size());
  }
  /// LEB128 varint: 1 byte for values < 128, growing 7 bits per byte. The
  /// columnar trace format leans on this — device counters, dictionary
  /// indices and byte counts are small far more often than not.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }
  /// Zigzag-mapped signed varint (small magnitudes of either sign stay
  /// short) — used for delta-coded timestamp columns.
  void varint_signed(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }
  /// Length-prefixed string with a varint length (str() burns 8 bytes on
  /// the length; dictionary entries are short and plentiful).
  void vstr(std::string_view v) {
    varint(v.size());
    buffer_.append(v.data(), v.size());
  }
  void raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

class BinReader {
 public:
  explicit BinReader(std::string_view bytes) noexcept : bytes_(bytes) {}

  // The fixed-width reads and varint() are inline: columnar trace decoding
  // calls them per value, and an out-of-line u8() per varint byte is the
  // difference between decode being CRC-bound and call-bound.
  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[offset_++]);
  }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 8;
    return v;
  }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string str();
  /// Inverses of BinWriter::varint/varint_signed/vstr. A varint running past
  /// 10 bytes (more than 64 payload bits) is malformed and throws.
  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8();
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        // Reject non-canonical 10th bytes that would shift bits past 63.
        if (shift == 63 && (byte & 0x7E) != 0) varint_overflow();
        return v;
      }
    }
    varint_overlong();
  }
  [[nodiscard]] std::int64_t varint_signed() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  [[nodiscard]] std::string vstr();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

  /// Remaining bytes must all be consumed by a well-formed deserializer;
  /// call this at the end of a section to catch format drift.
  void expect_exhausted(const std::string& context) const;

 private:
  void need(std::size_t n) const {
    if (offset_ + n > bytes_.size()) overrun(n);
  }
  // Cold throw paths stay out of line so the checks above compile to a
  // compare-and-branch.
  [[noreturn]] void overrun(std::size_t n) const;
  [[noreturn]] static void varint_overflow();
  [[noreturn]] static void varint_overlong();

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

}  // namespace wtr::util
