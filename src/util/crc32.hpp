#pragma once

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check guarding checkpoint snapshots. Table-driven, one table shared
// process-wide; no dependency beyond the standard library.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wtr::util {

/// CRC of `data`; chainable by passing a previous result as `seed`.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes,
                                         std::uint32_t seed = 0) noexcept {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace wtr::util
