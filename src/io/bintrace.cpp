#include "io/bintrace.hpp"

#include <istream>
#include <ostream>

#include "util/crc32.hpp"

namespace wtr::io {

namespace {

constexpr std::uint8_t kKindSignaling = 1;
constexpr std::uint8_t kKindCdr = 2;
constexpr std::uint8_t kKindXdr = 3;
constexpr std::uint8_t kKindDwell = 4;
constexpr std::uint8_t kKindEnd = 0xFF;

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

}  // namespace

bool is_binary_trace(std::istream& in) {
  const int c = in.peek();
  return c != std::char_traits<char>::eof() &&
         static_cast<unsigned char>(c) ==
             static_cast<unsigned char>(kBinaryTraceMagic[0]);
}

void DwellColumns::clear() {
  device.clear();
  day.clear();
  plmn.clear();
  lat.clear();
  lon.clear();
  seconds.clear();
}

// --- Writer -----------------------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(WriteFn write)
    : BinaryTraceWriter(std::move(write), Options{}) {}

BinaryTraceWriter::BinaryTraceWriter(WriteFn write, Options options)
    : write_(std::move(write)), options_(options) {
  if (options_.block_records == 0) options_.block_records = 1;
  if (options_.emit_header) {
    std::string header{kBinaryTraceMagic};
    append_u32(header, kBinaryTraceVersion);
    emit(header);
  }
}

void BinaryTraceWriter::emit(std::string_view bytes) {
  write_(bytes);
  bytes_ += bytes.size();
}

void BinaryTraceWriter::require_open(const char* what) const {
  if (finished_) {
    throw BinaryTraceError(std::string("binary trace: ") + what +
                           " after finish()");
  }
}

void BinaryTraceWriter::write_block(std::uint8_t kind, const std::string& payload) {
  (void)kind;  // already the payload's first byte; kept for call-site clarity
  std::string frame;
  frame.reserve(8 + payload.size());
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  append_u32(frame, util::crc32(payload));
  frame += payload;
  emit(frame);
}

template <typename Columns, typename WriteColumnsFn>
void BinaryTraceWriter::flush_family(std::uint8_t kind, Columns& columns,
                                     TraceDict& dict, WriteColumnsFn write_columns) {
  if (columns.size() == 0) return;
  util::BinWriter payload;
  payload.u8(kind);
  payload.varint(columns.size());
  dict.write(payload);
  write_columns(payload, columns);
  write_block(kind, payload.bytes());
  columns.clear();
  dict.clear();
}

void BinaryTraceWriter::add_signaling(const signaling::SignalingTransaction& txn,
                                      bool data_context) {
  require_open("add_signaling");
  records::bin_append(signaling_, signaling_dict_, txn, data_context);
  ++totals_.signaling;
  if (signaling_.size() >= options_.block_records) {
    flush_family(kKindSignaling, signaling_, signaling_dict_,
                 [](util::BinWriter& out, const records::RadioColumns& c) {
                   records::bin_write(out, c);
                 });
  }
}

void BinaryTraceWriter::add_cdr(const records::Cdr& cdr) {
  require_open("add_cdr");
  records::bin_append(cdr_, cdr_dict_, cdr);
  ++totals_.cdr;
  if (cdr_.size() >= options_.block_records) {
    flush_family(kKindCdr, cdr_, cdr_dict_,
                 [](util::BinWriter& out, const records::CdrColumns& c) {
                   records::bin_write(out, c);
                 });
  }
}

void BinaryTraceWriter::add_xdr(const records::Xdr& xdr) {
  require_open("add_xdr");
  records::bin_append(xdr_, xdr_dict_, xdr);
  ++totals_.xdr;
  if (xdr_.size() >= options_.block_records) {
    flush_family(kKindXdr, xdr_, xdr_dict_,
                 [](util::BinWriter& out, const records::XdrColumns& c) {
                   records::bin_write(out, c);
                 });
  }
}

void BinaryTraceWriter::add_dwell(signaling::DeviceHash device, std::int32_t day,
                                  cellnet::Plmn visited_plmn,
                                  const cellnet::GeoPoint& location, double seconds) {
  require_open("add_dwell");
  dwell_.device.push_back(device);
  dwell_.day.push_back(day);
  dwell_.plmn.push_back(dwell_dict_.intern(visited_plmn.to_string()));
  dwell_.lat.push_back(location.lat);
  dwell_.lon.push_back(location.lon);
  dwell_.seconds.push_back(seconds);
  ++totals_.dwell;
  if (dwell_.size() >= options_.block_records) {
    flush_family(kKindDwell, dwell_, dwell_dict_,
                 [](util::BinWriter& out, const DwellColumns& c) {
                   write_varint_column(out, c.device);
                   write_delta_column(out, c.day);
                   write_dict_column(out, c.plmn);
                   write_f64_column(out, c.lat);
                   write_f64_column(out, c.lon);
                   write_f64_column(out, c.seconds);
                 });
  }
}

void BinaryTraceWriter::flush_blocks() {
  require_open("flush_blocks");
  flush_family(kKindSignaling, signaling_, signaling_dict_,
               [](util::BinWriter& out, const records::RadioColumns& c) {
                 records::bin_write(out, c);
               });
  flush_family(kKindCdr, cdr_, cdr_dict_,
               [](util::BinWriter& out, const records::CdrColumns& c) {
                 records::bin_write(out, c);
               });
  flush_family(kKindXdr, xdr_, xdr_dict_,
               [](util::BinWriter& out, const records::XdrColumns& c) {
                 records::bin_write(out, c);
               });
  flush_family(kKindDwell, dwell_, dwell_dict_,
               [](util::BinWriter& out, const DwellColumns& c) {
                 write_varint_column(out, c.device);
                 write_delta_column(out, c.day);
                 write_dict_column(out, c.plmn);
                 write_f64_column(out, c.lat);
                 write_f64_column(out, c.lon);
                 write_f64_column(out, c.seconds);
               });
}

void BinaryTraceWriter::finish() {
  if (finished_) return;
  flush_blocks();
  util::BinWriter payload;
  payload.u8(kKindEnd);
  payload.varint(totals_.signaling);
  payload.varint(totals_.cdr);
  payload.varint(totals_.xdr);
  payload.varint(totals_.dwell);
  write_block(kKindEnd, payload.bytes());
  finished_ = true;
}

void BinaryTraceWriter::restore(const TraceTotals& totals) {
  signaling_.clear();
  signaling_dict_.clear();
  cdr_.clear();
  cdr_dict_.clear();
  xdr_.clear();
  xdr_dict_.clear();
  dwell_.clear();
  dwell_dict_.clear();
  totals_ = totals;
  finished_ = false;
}

// --- Sink adapter -----------------------------------------------------------

BinaryTraceSink::BinaryTraceSink(std::ostream& out, BinaryTraceWriter::Options options)
    : writer_([&out](std::string_view bytes) {
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      },
              options) {}

BinaryTraceSink::~BinaryTraceSink() {
  try {
    writer_.finish();
  } catch (...) {
    // Destructor must not throw; an unsealed stream is detected on read.
  }
}

void BinaryTraceSink::on_signaling(const signaling::SignalingTransaction& txn,
                                   bool data_context) {
  writer_.add_signaling(txn, data_context);
}

void BinaryTraceSink::on_cdr(const records::Cdr& cdr) { writer_.add_cdr(cdr); }

void BinaryTraceSink::on_xdr(const records::Xdr& xdr) { writer_.add_xdr(xdr); }

void BinaryTraceSink::on_dwell(signaling::DeviceHash device, std::int32_t day,
                               cellnet::Plmn visited_plmn,
                               const cellnet::GeoPoint& location, double seconds) {
  writer_.add_dwell(device, day, visited_plmn, location, seconds);
}

void BinaryTraceSink::finish() { writer_.finish(); }

// --- Reader -----------------------------------------------------------------

namespace {

/// Read exactly n bytes; false on clean EOF before the first byte, throws on
/// EOF mid-read (torn frame).
bool read_exact(std::istream& in, char* out, std::size_t n, const char* what) {
  in.read(out, static_cast<std::streamsize>(n));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got == n) return true;
  if (got == 0 && in.eof()) return false;
  throw BinaryTraceError(std::string("binary trace: truncated ") + what + " (" +
                         std::to_string(got) + " of " + std::to_string(n) +
                         " bytes)");
}

std::uint32_t decode_u32(const char* bytes) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[i])) << (8 * i);
  }
  return v;
}

/// A CRC-clean payload that still fails to decode (overlong varint,
/// dangling dictionary index, trailing bytes) is structural corruption;
/// rewrap the low-level binio/column errors under the format's error type.
template <typename Fn>
auto decode_or_throw(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const BinaryTraceError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw BinaryTraceError(
        std::string("binary trace: CRC-clean block fails to decode (") +
        e.what() + ")");
  }
}

}  // namespace

BinaryTraceStats BinaryTraceReader::replay(sim::RecordSink& sink) {
  BinaryTraceStats stats;

  char header[12];
  if (!read_exact(in_, header, sizeof header, "file header")) {
    throw BinaryTraceError("binary trace: empty stream");
  }
  if (std::string_view(header, 8) != kBinaryTraceMagic) {
    throw BinaryTraceError("binary trace: bad magic (not a WTRTRC1 stream)");
  }
  const std::uint32_t version = decode_u32(header + 8);
  if (version != kBinaryTraceVersion) {
    throw BinaryTraceError("binary trace: unsupported version " +
                           std::to_string(version) + " (reader speaks " +
                           std::to_string(kBinaryTraceVersion) + ")");
  }
  stats.bytes += sizeof header;

  TraceTotals seen;
  bool sealed = false;
  std::string payload;
  while (true) {
    char frame[8];
    if (!read_exact(in_, frame, sizeof frame, "block header")) {
      if (sealed) break;  // clean EOF after the end marker
      throw BinaryTraceError(
          "binary trace: stream ends without the end marker (truncated "
          "file or writer crashed before finish())");
    }
    if (sealed) {
      throw BinaryTraceError("binary trace: trailing bytes after the end marker");
    }
    const std::uint32_t length = decode_u32(frame);
    const std::uint32_t crc = decode_u32(frame + 4);
    if (length == 0) throw BinaryTraceError("binary trace: zero-length block");
    if (length > kMaxBlockBytes) {
      throw BinaryTraceError("binary trace: block length " +
                             std::to_string(length) + " exceeds the " +
                             std::to_string(kMaxBlockBytes) +
                             "-byte cap (corrupt length?)");
    }
    payload.resize(length);
    if (!read_exact(in_, payload.data(), length, "block payload")) {
      throw BinaryTraceError("binary trace: truncated block payload (0 of " +
                             std::to_string(length) + " bytes)");
    }
    if (util::crc32(payload) != crc) {
      throw BinaryTraceError("binary trace: block CRC mismatch (bit flip or torn "
                             "write)");
    }
    stats.bytes += sizeof frame + length;

    util::BinReader block{payload};
    const std::uint8_t kind = decode_or_throw([&] { return block.u8(); });
    if (kind == kKindEnd) {
      const TraceTotals declared = decode_or_throw([&] {
        TraceTotals totals;
        totals.signaling = block.varint();
        totals.cdr = block.varint();
        totals.xdr = block.varint();
        totals.dwell = block.varint();
        block.expect_exhausted("binary trace end marker");
        return totals;
      });
      if (!(declared == seen)) {
        throw BinaryTraceError(
            "binary trace: end-marker totals disagree with decoded records "
            "(a block was dropped or duplicated)");
      }
      sealed = true;
      continue;
    }

    const std::uint64_t n = decode_or_throw([&] { return block.varint(); });
    // Every record costs at least one byte per column; a declared count
    // beyond the payload is corrupt and must not drive the reserves below.
    if (n == 0 || n > block.remaining()) {
      throw BinaryTraceError("binary trace: implausible record count " +
                             std::to_string(n) + " in a " +
                             std::to_string(length) + "-byte block");
    }
    const auto count = static_cast<std::size_t>(n);
    const TraceDict dict = decode_or_throw([&] { return TraceDict::read(block); });
    const auto strings = dict.strings();
    // Parse the dictionary once per block: a dict holds tens of strings, a
    // block thousands of rows, so per-row Plmn::parse would dominate decode.
    // An unparsable entry stays nullopt; rows referencing it are bad fields.
    std::vector<std::optional<cellnet::Plmn>> plmns;
    plmns.reserve(strings.size());
    for (const auto& s : strings) plmns.push_back(cellnet::Plmn::parse(s));

    switch (kind) {
      case kKindSignaling: {
        const auto columns = decode_or_throw([&] {
          auto c = records::bin_read_radio(block, count, dict.size());
          block.expect_exhausted("binary trace signaling block");
          return c;
        });
        for (std::size_t i = 0; i < count; ++i) {
          if (const auto row = records::bin_extract(columns, plmns, i)) {
            sink.on_signaling(row->first, row->second);
            ++stats.delivered;
          } else {
            ++stats.bad_fields;
          }
        }
        seen.signaling += n;
        break;
      }
      case kKindCdr: {
        const auto columns = decode_or_throw([&] {
          auto c = records::bin_read_cdr(block, count, dict.size());
          block.expect_exhausted("binary trace cdr block");
          return c;
        });
        for (std::size_t i = 0; i < count; ++i) {
          if (const auto cdr = records::bin_extract(columns, plmns, i)) {
            sink.on_cdr(*cdr);
            ++stats.delivered;
          } else {
            ++stats.bad_fields;
          }
        }
        seen.cdr += n;
        break;
      }
      case kKindXdr: {
        const auto columns = decode_or_throw([&] {
          auto c = records::bin_read_xdr(block, count, dict.size());
          block.expect_exhausted("binary trace xdr block");
          return c;
        });
        for (std::size_t i = 0; i < count; ++i) {
          if (const auto xdr = records::bin_extract(columns, plmns, strings, i)) {
            sink.on_xdr(*xdr);
            ++stats.delivered;
          } else {
            ++stats.bad_fields;
          }
        }
        seen.xdr += n;
        break;
      }
      case kKindDwell: {
        const DwellColumns columns = decode_or_throw([&] {
          DwellColumns c;
          c.device = read_varint_column(block, count);
          c.day = read_delta_column(block, count);
          c.plmn = read_dict_column(block, count, dict.size());
          c.lat = read_f64_column(block, count);
          c.lon = read_f64_column(block, count);
          c.seconds = read_f64_column(block, count);
          block.expect_exhausted("binary trace dwell block");
          return c;
        });
        for (std::size_t i = 0; i < count; ++i) {
          const auto& plmn = plmns[columns.plmn[i]];
          if (!plmn) {
            ++stats.bad_fields;
            continue;
          }
          sink.on_dwell(columns.device[i], static_cast<std::int32_t>(columns.day[i]),
                        *plmn, cellnet::GeoPoint{columns.lat[i], columns.lon[i]},
                        columns.seconds[i]);
          ++stats.delivered;
        }
        seen.dwell += n;
        break;
      }
      default:
        throw BinaryTraceError("binary trace: unknown block kind " +
                               std::to_string(kind));
    }
    stats.records += n;
    ++stats.blocks;
  }
  return stats;
}

}  // namespace wtr::io
