#pragma once

// Minimal streaming JSON writer for the run-manifest exporter. Emits
// pretty-printed, key-ordered output so two manifests of the same run are
// byte-diffable. No parsing — manifests are consumed by scripts/ tooling
// (python json) and by humans.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wtr::io {

/// Escape for embedding inside a JSON string literal (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Render a double the way the manifest schema wants it: shortest-ish
/// decimal ("%.9g"), with non-finite values mapped to null.
[[nodiscard]] std::string json_number(double value);

/// Structured writer: tracks nesting and comma placement so call sites read
/// linearly. Keys must be supplied for object members and only there.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent = 2) : out_(out), indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Member key; must be followed by a value or a begin_*().
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view{text}); }
  void value(double number);
  void value(std::uint64_t number);
  void value(std::int64_t number);
  void value(bool flag);
  void null();

  // Key + scalar convenience.
  template <typename T>
  void kv(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void prefix();  // comma/newline/indentation before a value or key
  void newline(int depth);

  std::ostream& out_;
  int indent_ = 2;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace wtr::io
