#include "io/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace wtr::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != '%' && c != ',' && c != 'e' && c != 'x') {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = widths[c] - cell.size();
      const bool right = align_numeric && looks_numeric(cell);
      os << ' ';
      if (right) os << std::string(pad, ' ');
      os << cell;
      if (!right) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  emit_row(headers_, false);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return os.str();
}

std::string format_percent(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_count(std::uint64_t value) {
  // Thousands separators for readability.
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string figure_banner(const std::string& figure_id, const std::string& caption) {
  std::ostringstream os;
  const std::string title = figure_id + " — " + caption;
  os << '\n' << std::string(title.size() + 4, '=') << '\n'
     << "= " << title << " =\n"
     << std::string(title.size() + 4, '=') << '\n';
  return os.str();
}

}  // namespace wtr::io
