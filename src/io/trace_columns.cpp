#include "io/trace_columns.hpp"

#include <cstring>
#include <stdexcept>

namespace wtr::io {

std::uint32_t TraceDict::intern(std::string_view s) {
  const auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), idx);
  return idx;
}

void TraceDict::clear() {
  strings_.clear();
  index_.clear();
}

void TraceDict::write(util::BinWriter& out) const {
  out.varint(strings_.size());
  for (const auto& s : strings_) out.vstr(s);
}

TraceDict TraceDict::read(util::BinReader& in) {
  const std::uint64_t count = in.varint();
  // Each entry costs at least one length byte; a corrupt count larger than
  // the remaining payload must not drive the reserve below.
  if (count > in.remaining()) {
    throw std::runtime_error("trace dict: entry count " + std::to_string(count) +
                             " exceeds remaining " + std::to_string(in.remaining()) +
                             " bytes");
  }
  TraceDict dict;
  dict.strings_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    dict.strings_.push_back(in.vstr());
    dict.index_.emplace(dict.strings_.back(),
                        static_cast<std::uint32_t>(i));
  }
  return dict;
}

void write_varint_column(util::BinWriter& out, std::span<const std::uint64_t> values) {
  for (const auto v : values) out.varint(v);
}

std::vector<std::uint64_t> read_varint_column(util::BinReader& in, std::size_t n) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(in.varint());
  return out;
}

void write_delta_column(util::BinWriter& out, std::span<const std::int64_t> values) {
  std::int64_t previous = 0;
  for (const auto v : values) {
    // Wrapping subtraction: a delta that overflows i64 still round-trips
    // because the reader adds with the same wrapping semantics.
    out.varint_signed(static_cast<std::int64_t>(
        static_cast<std::uint64_t>(v) - static_cast<std::uint64_t>(previous)));
    previous = v;
  }
}

std::vector<std::int64_t> read_delta_column(util::BinReader& in, std::size_t n) {
  std::vector<std::int64_t> out;
  out.reserve(n);
  std::int64_t previous = 0;
  for (std::size_t i = 0; i < n; ++i) {
    previous = static_cast<std::int64_t>(static_cast<std::uint64_t>(previous) +
                                         static_cast<std::uint64_t>(in.varint_signed()));
    out.push_back(previous);
  }
  return out;
}

void write_u8_column(util::BinWriter& out, std::span<const std::uint8_t> values) {
  for (const auto v : values) out.u8(v);
}

std::vector<std::uint8_t> read_u8_column(util::BinReader& in, std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(in.u8());
  return out;
}

void write_bit_column(util::BinWriter& out, const std::vector<bool>& values) {
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i]) byte |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out.u8(byte);
      byte = 0;
    }
  }
  if (values.size() % 8 != 0) out.u8(byte);
}

std::vector<bool> read_bit_column(util::BinReader& in, std::size_t n) {
  std::vector<bool> out;
  out.reserve(n);
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 8 == 0) byte = in.u8();
    out.push_back((byte >> (i % 8)) & 1u);
  }
  return out;
}

void write_f64_column(util::BinWriter& out, std::span<const double> values) {
  for (const auto v : values) out.f64(v);
}

std::vector<double> read_f64_column(util::BinReader& in, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(in.f64());
  return out;
}

void write_dict_column(util::BinWriter& out, std::span<const std::uint32_t> indices) {
  for (const auto idx : indices) out.varint(idx);
}

std::vector<std::uint32_t> read_dict_column(util::BinReader& in, std::size_t n,
                                            std::size_t dict_size) {
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t idx = in.varint();
    if (idx >= dict_size) {
      throw std::runtime_error("trace column: dictionary index " +
                               std::to_string(idx) + " out of range (dict has " +
                               std::to_string(dict_size) + " entries)");
    }
    out.push_back(static_cast<std::uint32_t>(idx));
  }
  return out;
}

}  // namespace wtr::io
