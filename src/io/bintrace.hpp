#pragma once

// WTRTRC1 — the versioned binary columnar trace format. This is the fast
// interchange path for paper-scale traces (tens of millions of records):
// where CSV replay pays getline + field split + strict reparse per row, the
// binary reader pays one CRC pass and a columnar decode per 4096-record
// block. Built on util/binio + util/crc32; per-record column codecs live
// with their record types in src/records.
//
// On-disk layout (all integers little-endian; varints are LEB128):
//
//   magic[8]   89 'W' 'T' 'R' 'T' 'R' 'C' '1'   (0x89 cannot start a CSV
//              line, so one peeked byte auto-detects the format)
//   u32        format version (kBinaryTraceVersion)
//   block*     [u32 payload_len][u32 payload_crc32][payload]
//   end block  payload = [u8 0xFF][varint total_signaling][varint total_cdr]
//                        [varint total_xdr][varint total_dwell]
//
// Data block payload:
//
//   u8         record kind (1 signaling, 2 cdr, 3 xdr, 4 dwell)
//   varint     record count n
//   dict       varint entry count, then vstr entries (PLMN/APN strings
//              interned per block — blocks are fully self-contained)
//   columns    see records/{radio_event,cdr,xdr}.hpp and DwellColumns
//
// Integrity model: framing damage (bad magic/version, torn block, CRC
// mismatch, dangling dictionary index, missing end marker, count mismatch)
// throws BinaryTraceError — after a CRC failure nothing downstream can be
// trusted, so unlike dirty CSV there is no skip-and-count. A CRC-clean row
// whose enum byte or PLMN string fails validation is counted as a bad field
// and skipped, mirroring CSV replay semantics.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "io/trace_columns.hpp"
#include "records/cdr.hpp"
#include "records/radio_event.hpp"
#include "records/xdr.hpp"
#include "sim/device_agent.hpp"

namespace wtr::io {

inline constexpr std::uint32_t kBinaryTraceVersion = 1;
inline constexpr std::string_view kBinaryTraceMagic = "\x89WTRTRC1";

/// Thrown on any structural/integrity failure of a binary trace stream.
class BinaryTraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// True when the stream starts with the binary trace magic (single peeked
/// byte; the stream is not advanced). CSV/text traces never start with 0x89.
[[nodiscard]] bool is_binary_trace(std::istream& in);

/// Dwell rows have no record struct of their own (they are a RecordSink
/// callback); their columns live here.
struct DwellColumns {
  std::vector<std::uint64_t> device;
  std::vector<std::int64_t> day;
  std::vector<std::uint32_t> plmn;  // dict index of Plmn::to_string
  std::vector<double> lat;
  std::vector<double> lon;
  std::vector<double> seconds;

  [[nodiscard]] std::size_t size() const noexcept { return device.size(); }
  void clear();
};

/// Per-family record totals (the end-marker checksum).
struct TraceTotals {
  std::uint64_t signaling = 0;
  std::uint64_t cdr = 0;
  std::uint64_t xdr = 0;
  std::uint64_t dwell = 0;

  friend bool operator==(const TraceTotals&, const TraceTotals&) = default;
};

/// Streaming encoder. Bytes go out through `write` as soon as a block
/// fills, so memory stays bounded by ~4 partial blocks regardless of trace
/// size. Records of different families may interleave freely; within a
/// family, order is preserved.
class BinaryTraceWriter {
 public:
  using WriteFn = std::function<void(std::string_view)>;

  struct Options {
    std::size_t block_records = 4096;  // records per column block
    bool emit_header = true;           // false when resuming an existing file
  };

  // Two overloads instead of `Options options = {}`: a nested struct's
  // default member initializers are not usable in the enclosing class's
  // default arguments (complete-class context rule).
  explicit BinaryTraceWriter(WriteFn write);
  BinaryTraceWriter(WriteFn write, Options options);

  void add_signaling(const signaling::SignalingTransaction& txn, bool data_context);
  void add_cdr(const records::Cdr& cdr);
  void add_xdr(const records::Xdr& xdr);
  void add_dwell(signaling::DeviceHash device, std::int32_t day,
                 cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                 double seconds);

  /// Flush every partial block to the output (deterministic family order).
  /// Called automatically by finish(); call it directly before taking a
  /// byte-offset checkpoint so the offset covers all delivered records.
  void flush_blocks();

  /// Flush and write the end marker. Idempotent; further adds throw.
  void finish();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }
  [[nodiscard]] const TraceTotals& totals() const noexcept { return totals_; }

  /// Checkpoint-restore support: drop any records buffered past the restored
  /// byte offset and reset the running totals to the snapshot's.
  void restore(const TraceTotals& totals);

 private:
  void emit(std::string_view bytes);
  void write_block(std::uint8_t kind, const std::string& payload);
  template <typename Columns, typename WriteColumnsFn>
  void flush_family(std::uint8_t kind, Columns& columns, TraceDict& dict,
                    WriteColumnsFn write_columns);
  void require_open(const char* what) const;

  WriteFn write_;
  Options options_;
  bool finished_ = false;
  std::uint64_t bytes_ = 0;
  TraceTotals totals_;

  records::RadioColumns signaling_;
  TraceDict signaling_dict_;
  records::CdrColumns cdr_;
  TraceDict cdr_dict_;
  records::XdrColumns xdr_;
  TraceDict xdr_dict_;
  DwellColumns dwell_;
  TraceDict dwell_dict_;
};

/// RecordSink adapter over a BinaryTraceWriter targeting an ostream — the
/// binary sibling of a CSV trace exporter. Call finish() (or destroy the
/// sink) to seal the stream with the end marker.
class BinaryTraceSink final : public sim::RecordSink {
 public:
  explicit BinaryTraceSink(std::ostream& out, BinaryTraceWriter::Options options = {});
  ~BinaryTraceSink() override;

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override;
  void on_cdr(const records::Cdr& cdr) override;
  void on_xdr(const records::Xdr& xdr) override;
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override;

  void finish();
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return writer_.bytes_written();
  }
  [[nodiscard]] BinaryTraceWriter& writer() noexcept { return writer_; }

 private:
  BinaryTraceWriter writer_;
};

/// Replay outcome counters (the trace_replay layer maps these onto its
/// ReplayStats / metrics mirror).
struct BinaryTraceStats {
  std::uint64_t records = 0;     // rows decoded (delivered + bad_fields)
  std::uint64_t delivered = 0;   // rows handed to the sink
  std::uint64_t bad_fields = 0;  // CRC-clean rows failing field validation
  std::uint64_t blocks = 0;      // data blocks decoded
  std::uint64_t bytes = 0;       // total bytes consumed, header included
};

/// Streaming decoder with bounded memory: one block is resident at a time.
/// Throws BinaryTraceError on any structural failure (see header comment).
class BinaryTraceReader {
 public:
  /// Largest payload the reader will buffer; a declared length beyond this
  /// is rejected before any allocation (corrupt-length defense).
  static constexpr std::uint32_t kMaxBlockBytes = 1u << 26;

  explicit BinaryTraceReader(std::istream& in) : in_(in) {}

  /// Validate the header, decode every block into `sink`, verify the end
  /// marker totals, and require EOF right after.
  BinaryTraceStats replay(sim::RecordSink& sink);

 private:
  std::istream& in_;
};

}  // namespace wtr::io
