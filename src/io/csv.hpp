#pragma once

// Minimal CSV reading/writing for trace export/import. Handles quoting of
// fields containing commas/quotes/newlines (RFC 4180 subset). Traces in this
// project are plain ASCII, so no encoding handling is needed.

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wtr::io {

/// Serialize one row, quoting fields as needed.
[[nodiscard]] std::string csv_encode_row(const std::vector<std::string>& fields);

/// Parse one logical CSV line into fields. Returns std::nullopt when the
/// line is malformed: an unterminated quoted field, text after a closing
/// quote, or a quote opening mid-way through an unquoted field — corrupted
/// rows are reported, never silently misparsed. Embedded newlines inside
/// quotes are not supported by this line-at-a-time API.
[[nodiscard]] std::optional<std::vector<std::string>> csv_decode_row(std::string_view line);

/// Strict numeric field parsers (whole-string match; nullopt otherwise).
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view text);
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Streaming writer over any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::size_t rows_ = 0;
};

}  // namespace wtr::io
