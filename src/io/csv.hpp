#pragma once

// Minimal CSV reading/writing for trace export/import. Handles quoting of
// fields containing commas/quotes/newlines (RFC 4180 subset). Traces in this
// project are plain ASCII, so no encoding handling is needed.

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wtr::io {

/// Serialize one row, quoting fields as needed.
[[nodiscard]] std::string csv_encode_row(const std::vector<std::string>& fields);

/// Parse one logical CSV row into fields. Returns std::nullopt when the
/// row is malformed: an unterminated quoted field, text after a closing
/// quote, or a quote opening mid-way through an unquoted field — corrupted
/// rows are reported, never silently misparsed. Embedded newlines inside
/// quoted fields are fine when the caller hands in a full logical row (see
/// read_logical_row); a bare physical line that ends inside a quote still
/// fails as unterminated.
[[nodiscard]] std::optional<std::vector<std::string>> csv_decode_row(std::string_view line);

/// Read one logical CSV row from `in` into `row`: physical lines are joined
/// (with the '\n' restored) while an unclosed quote is pending, so rows that
/// csv_encode_row wrote with embedded newlines round-trip instead of being
/// dropped as malformed halves. Returns false on EOF with nothing read. The
/// quote scan tracks RFC 4180 parity ("" stays inside the field), so a
/// stray quote in a corrupted row cannot swallow the rest of the file
/// beyond `max_bytes` — at the cap the oversized row is returned as-is and
/// csv_decode_row rejects it as unterminated.
bool read_logical_row(std::istream& in, std::string& row,
                      std::size_t max_bytes = 1u << 20);

/// Strict numeric field parsers (whole-string match; nullopt otherwise).
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view text);
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Streaming writer over any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::size_t rows_ = 0;
};

}  // namespace wtr::io
