#include "io/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace wtr::io {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void JsonWriter::newline(int depth) {
  out_ << '\n';
  for (int i = 0; i < depth * indent_; ++i) out_ << ' ';
}

void JsonWriter::prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key() already positioned us
  }
  if (stack_.empty()) return;  // root value
  assert(stack_.back() == Scope::kArray && "object members need a key()");
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  newline(static_cast<int>(stack_.size()));
}

void JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  newline(static_cast<int>(stack_.size()));
  out_ << '"' << json_escape(name) << "\": ";
  pending_key_ = true;
}

void JsonWriter::begin_object() {
  prefix();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline(static_cast<int>(stack_.size()));
  out_ << '}';
}

void JsonWriter::begin_array() {
  prefix();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline(static_cast<int>(stack_.size()));
  out_ << ']';
}

void JsonWriter::value(std::string_view text) {
  prefix();
  out_ << '"' << json_escape(text) << '"';
}

void JsonWriter::value(double number) {
  prefix();
  out_ << json_number(number);
}

void JsonWriter::value(std::uint64_t number) {
  prefix();
  out_ << number;
}

void JsonWriter::value(std::int64_t number) {
  prefix();
  out_ << number;
}

void JsonWriter::value(bool flag) {
  prefix();
  out_ << (flag ? "true" : "false");
}

void JsonWriter::null() {
  prefix();
  out_ << "null";
}

}  // namespace wtr::io
