#include "io/csv.hpp"

#include <charconv>

namespace wtr::io {

namespace {
bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string csv_encode_row(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out.push_back(',');
    if (needs_quoting(fields[i])) {
      out += quote(fields[i]);
    } else {
      out += fields[i];
    }
  }
  return out;
}

std::optional<std::vector<std::string>> csv_decode_row(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;  // current field was a quoted field, now closed
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          was_quoted = true;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
        was_quoted = false;
      } else if (c == '\r') {
        // tolerate CRLF line endings
      } else if (was_quoted) {
        // Text after a closing quote ("ab"x): gluing it on would silently
        // misparse a truncated/corrupted row — report it as malformed.
        return std::nullopt;
      } else if (c == '"') {
        // A quote is only legal at the start of a field (RFC 4180); one in
        // the middle of an unquoted field is corruption, not data.
        if (!current.empty()) return std::nullopt;
        in_quotes = true;
      } else {
        current.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) return std::nullopt;  // unterminated quoted field
  fields.push_back(std::move(current));
  return fields;
}

bool read_logical_row(std::istream& in, std::string& row, std::size_t max_bytes) {
  row.clear();
  std::string line;
  bool in_quotes = false;
  bool first = true;
  while (std::getline(in, line)) {
    if (!first) row.push_back('\n');  // restore the newline getline consumed
    first = false;
    // Quote parity over the new physical line only ("" toggles twice and
    // cancels out, so per-character toggling tracks RFC 4180 exactly for
    // well-formed rows).
    for (const char c : line) {
      if (c == '"') in_quotes = !in_quotes;
    }
    row += line;
    if (!in_quotes) return true;
    if (row.size() >= max_bytes) return true;  // decoder rejects it as unterminated
  }
  return !first;  // EOF inside a quote still yields the (malformed) tail
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view text) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  out_ << csv_encode_row(fields) << '\n';
  ++rows_;
}

}  // namespace wtr::io
