#pragma once

// Column-level primitives of the binary columnar trace format (see
// io/bintrace.hpp for the container). A trace block stores its records
// field-by-field: every column is encoded with the cheapest scheme for its
// shape — plain varints for ids/counters, zigzag deltas for the
// monotonically creeping timestamps, raw bit patterns for doubles (bit-exact
// round trip, same contract as the checkpoint layer), dictionary indices for
// the heavily repeated PLMN/APN strings. This header depends only on
// util/binio so the per-record codecs in src/records can use it without
// dragging in the sink/reader machinery.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/binio.hpp"

namespace wtr::io {

/// Per-block string interning table. Each block carries its own dictionary
/// (blocks stay self-contained, so a reader needs one block of memory and a
/// checkpoint truncated at a block boundary loses no shared state).
class TraceDict {
 public:
  /// Index of `s`, interning it on first sight.
  std::uint32_t intern(std::string_view s);

  [[nodiscard]] std::size_t size() const noexcept { return strings_.size(); }
  [[nodiscard]] std::span<const std::string> strings() const noexcept {
    return strings_;
  }

  void clear();

  void write(util::BinWriter& out) const;
  /// Throws std::runtime_error on truncation or an entry count that cannot
  /// fit the remaining bytes.
  static TraceDict read(util::BinReader& in);

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

// --- Column codecs ----------------------------------------------------------
// Each writes exactly `values.size()` entries; readers take the count from
// the block header. All throw std::runtime_error (from BinReader) on
// truncated input.

void write_varint_column(util::BinWriter& out, std::span<const std::uint64_t> values);
[[nodiscard]] std::vector<std::uint64_t> read_varint_column(util::BinReader& in,
                                                            std::size_t n);

/// Zigzag-coded deltas from the previous value (first value from 0).
void write_delta_column(util::BinWriter& out, std::span<const std::int64_t> values);
[[nodiscard]] std::vector<std::int64_t> read_delta_column(util::BinReader& in,
                                                          std::size_t n);

void write_u8_column(util::BinWriter& out, std::span<const std::uint8_t> values);
[[nodiscard]] std::vector<std::uint8_t> read_u8_column(util::BinReader& in,
                                                       std::size_t n);

/// Booleans packed 8 per byte, LSB first.
void write_bit_column(util::BinWriter& out, const std::vector<bool>& values);
[[nodiscard]] std::vector<bool> read_bit_column(util::BinReader& in, std::size_t n);

/// Raw IEEE-754 bit patterns — NaN/inf and every payload bit survive.
void write_f64_column(util::BinWriter& out, std::span<const double> values);
[[nodiscard]] std::vector<double> read_f64_column(util::BinReader& in, std::size_t n);

/// Dictionary-index column; validates every index against `dict_size` and
/// throws on an out-of-range reference (a CRC-clean block with a dangling
/// index is format drift, not dirty data).
void write_dict_column(util::BinWriter& out, std::span<const std::uint32_t> indices);
[[nodiscard]] std::vector<std::uint32_t> read_dict_column(util::BinReader& in,
                                                          std::size_t n,
                                                          std::size_t dict_size);

}  // namespace wtr::io
