#pragma once

// Plain-text table rendering for the figure-reproduction harnesses: every
// bench binary prints "paper vs measured" rows through this formatter so the
// output is uniform and diffable.

#include <string>
#include <vector>

namespace wtr::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment; numeric-looking cells are right-aligned.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by the harnesses.
[[nodiscard]] std::string format_percent(double fraction, int decimals = 1);
[[nodiscard]] std::string format_fixed(double value, int decimals = 2);
[[nodiscard]] std::string format_count(std::uint64_t value);

/// Banner printed at the top of each figure harness.
[[nodiscard]] std::string figure_banner(const std::string& figure_id,
                                        const std::string& caption);

}  // namespace wtr::io
