#include "topology/roaming_hub.hpp"

#include <algorithm>
#include <cassert>

namespace wtr::topology {

std::string_view roaming_path_name(RoamingPath path) noexcept {
  switch (path) {
    case RoamingPath::kNone: return "none";
    case RoamingPath::kDirect: return "direct";
    case RoamingPath::kViaHub: return "via-hub";
    case RoamingPath::kViaHubPeering: return "via-hub-peering";
  }
  return "?";
}

AgreementTerms merge_terms(const AgreementTerms& a, const AgreementTerms& b) noexcept {
  AgreementTerms out;
  out.allowed_rats = a.allowed_rats.intersect(b.allowed_rats);
  out.breakout = a.breakout == b.breakout ? a.breakout : BreakoutType::kIpxHubBreakout;
  return out;
}

HubId HubRegistry::add_hub(std::string name, AgreementTerms default_terms) {
  RoamingHub hub;
  hub.id = static_cast<HubId>(hubs_.size());
  hub.name = std::move(name);
  hubs_.push_back(std::move(hub));
  default_terms_.push_back(default_terms);
  return hubs_.back().id;
}

void HubRegistry::add_member(HubId hub, OperatorId op) {
  assert(static_cast<std::size_t>(hub) < hubs_.size());
  auto& members = hubs_[hub].members;
  if (std::find(members.begin(), members.end(), op) != members.end()) return;
  members.push_back(op);
  memberships_[op].push_back(hub);
}

void HubRegistry::peer(HubId a, HubId b) {
  assert(static_cast<std::size_t>(a) < hubs_.size());
  assert(static_cast<std::size_t>(b) < hubs_.size());
  if (a == b) return;
  peers_[a].insert(b);
  peers_[b].insert(a);
}

const RoamingHub& HubRegistry::get(HubId id) const {
  assert(static_cast<std::size_t>(id) < hubs_.size());
  return hubs_[id];
}

bool HubRegistry::is_member(HubId hub, OperatorId op) const {
  const auto it = memberships_.find(op);
  if (it == memberships_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), hub) != it->second.end();
}

std::vector<HubId> HubRegistry::hubs_of(OperatorId op) const {
  const auto it = memberships_.find(op);
  return it == memberships_.end() ? std::vector<HubId>{} : it->second;
}

AgreementTerms HubRegistry::terms_of(HubId hub) const {
  assert(static_cast<std::size_t>(hub) < default_terms_.size());
  return default_terms_[hub];
}

EffectiveRoaming HubRegistry::resolve(const RoamingAgreementGraph& bilateral,
                                      OperatorId home, OperatorId visited) const {
  if (const auto direct = bilateral.find(home, visited)) {
    return EffectiveRoaming{RoamingPath::kDirect, *direct};
  }
  const auto home_hubs = hubs_of(home);
  const auto visited_hubs = hubs_of(visited);
  // Shared hub.
  for (HubId h : home_hubs) {
    if (std::find(visited_hubs.begin(), visited_hubs.end(), h) != visited_hubs.end()) {
      return EffectiveRoaming{RoamingPath::kViaHub, terms_of(h), h};
    }
  }
  // One hop of hub peering.
  for (HubId hh : home_hubs) {
    const auto peer_it = peers_.find(hh);
    if (peer_it == peers_.end()) continue;
    for (HubId vh : visited_hubs) {
      if (peer_it->second.contains(vh)) {
        return EffectiveRoaming{RoamingPath::kViaHubPeering,
                                merge_terms(terms_of(hh), terms_of(vh)), hh};
      }
    }
  }
  return EffectiveRoaming{};
}

}  // namespace wtr::topology
