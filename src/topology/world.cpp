#include "topology/world.hpp"

#include <algorithm>
#include <cassert>

#include "cellnet/country.hpp"
#include "stats/rng.hpp"

namespace wtr::topology {

namespace {

bool contains(const std::vector<std::string>& haystack, std::string_view needle) {
  return std::any_of(haystack.begin(), haystack.end(),
                     [&](const std::string& s) { return s == needle; });
}

cellnet::RatMask full_rats() {
  cellnet::RatMask rats;
  rats.set(cellnet::Rat::kTwoG);
  rats.set(cellnet::Rat::kThreeG);
  rats.set(cellnet::Rat::kFourG);
  return rats;
}

cellnet::RatMask no_2g_rats() {
  cellnet::RatMask rats;
  rats.set(cellnet::Rat::kThreeG);
  rats.set(cellnet::Rat::kFourG);
  return rats;
}

}  // namespace

World World::build(const WorldConfig& config) {
  World world;
  world.config_ = config;
  stats::Rng rng{config.seed};

  // --- Operators: `mnos_per_country` MNOs per country, MNC = 01, 03, 05...
  // A few well-known PLMNs are pinned so traces carry recognizable codes:
  // the NL IoT provisioner is 204-04 (the paper's example APN decodes to
  // mnc004.mcc204) and the ES HMNO is 214-07.
  for (const auto& country : cellnet::all_countries()) {
    const bool sunset_2g = contains(config.two_g_sunset_isos, country.iso);
    const bool nbiot = contains(config.nbiot_isos, country.iso);
    for (std::uint32_t i = 0; i < config.mnos_per_country; ++i) {
      const auto mnc = static_cast<std::uint16_t>(1 + 2 * i);
      const cellnet::Plmn plmn{country.mcc, mnc, 2};
      const std::string name =
          std::string(country.iso) + "-MNO" + std::to_string(i + 1);
      auto rats = sunset_2g ? no_2g_rats() : full_rats();
      if (nbiot && i == 0) rats.set(cellnet::Rat::kNbIot);  // leading MNO only
      world.operators_.add_mno(plmn, name, std::string(country.iso), rats);
    }
  }

  // Pinned special operators (added on top of the per-country set).
  world.well_known_.es_hmno = world.operators_.add_mno(
      cellnet::Plmn{214, 7, 2}, "ES-GlobalIoT", "ES", full_rats());
  world.well_known_.de_hmno = world.operators_.add_mno(
      cellnet::Plmn{262, 12, 2}, "DE-GlobalIoT", "DE", full_rats());
  world.well_known_.mx_hmno = world.operators_.add_mno(
      cellnet::Plmn{334, 20, 2}, "MX-GlobalIoT", "MX", full_rats());
  world.well_known_.ar_hmno = world.operators_.add_mno(
      cellnet::Plmn{722, 34, 2}, "AR-GlobalIoT", "AR", full_rats());
  world.well_known_.nl_iot_provisioner = world.operators_.add_mno(
      cellnet::Plmn{204, 4, 2}, "NL-IoTProvisioner", "NL", full_rats());

  // The UK MNO under study is GB-MNO1; it hosts three MVNOs (the V:H label
  // population of §4.2 is about 33% of devices per day).
  const auto uk_mnos = world.operators_.mnos_in_country("GB");
  assert(!uk_mnos.empty());
  world.well_known_.uk_mno = uk_mnos.front();
  for (int v = 0; v < 3; ++v) {
    const cellnet::Plmn plmn{235, static_cast<std::uint16_t>(50 + v), 2};
    world.well_known_.uk_mvnos.push_back(world.operators_.add_mvno(
        plmn, "GB-MVNO" + std::to_string(v + 1), world.well_known_.uk_mno));
  }

  // --- Hubs. The M2M hub interconnects the HMNOs with MNOs in its direct
  // PoP countries; the partner hub covers everyone else; the two peer.
  AgreementTerms hub_terms;
  hub_terms.allowed_rats = full_rats();
  if (config.nbiot_roaming_enabled) hub_terms.allowed_rats.set(cellnet::Rat::kNbIot);
  hub_terms.breakout = BreakoutType::kIpxHubBreakout;
  world.well_known_.m2m_hub = world.hubs_.add_hub("GlobalCarrierIPX", hub_terms);

  AgreementTerms partner_terms;
  partner_terms.allowed_rats = full_rats();
  partner_terms.breakout = BreakoutType::kIpxHubBreakout;
  world.well_known_.partner_hub = world.hubs_.add_hub("PartnerCarrierIPX", partner_terms);
  world.hubs_.peer(world.well_known_.m2m_hub, world.well_known_.partner_hub);

  for (const auto& op : world.operators_.all()) {
    if (op.kind != OperatorKind::kMno) continue;
    const bool direct = contains(config.m2m_hub_direct_isos, op.country_iso);
    world.hubs_.add_member(direct ? world.well_known_.m2m_hub
                                  : world.well_known_.partner_hub,
                           op.id);
  }
  // The HMNOs are always members of the platform's hub.
  for (OperatorId hmno : {world.well_known_.es_hmno, world.well_known_.de_hmno,
                          world.well_known_.mx_hmno, world.well_known_.ar_hmno,
                          world.well_known_.nl_iot_provisioner}) {
    world.hubs_.add_member(world.well_known_.m2m_hub, hmno);
  }

  // --- Bilateral agreements. Dense intra-EU mesh (RLAH regulation makes
  // European roaming the norm; the paper finds HR is the default breakout
  // in Europe), plus sparse long-haul bilaterals between large markets.
  AgreementTerms eu_terms;
  eu_terms.allowed_rats = full_rats();
  if (config.nbiot_roaming_enabled) eu_terms.allowed_rats.set(cellnet::Rat::kNbIot);
  eu_terms.breakout = BreakoutType::kHomeRouted;

  std::vector<OperatorId> eu_mnos;
  for (const auto& op : world.operators_.all()) {
    if (op.kind != OperatorKind::kMno) continue;
    const auto country = cellnet::country_by_iso(op.country_iso);
    if (country && country->region == cellnet::Region::kEurope) {
      eu_mnos.push_back(op.id);
    }
  }
  for (std::size_t i = 0; i < eu_mnos.size(); ++i) {
    for (std::size_t j = i + 1; j < eu_mnos.size(); ++j) {
      const auto& a = world.operators_.get(eu_mnos[i]);
      const auto& b = world.operators_.get(eu_mnos[j]);
      if (a.country_iso == b.country_iso) continue;  // no national roaming here
      world.bilateral_.add_bilateral(a.id, b.id, eu_terms);
    }
  }

  // Long-haul bilaterals: the first MNO of each country pair among the big
  // markets, randomized to leave gaps (not every pair has an agreement —
  // that is what makes RoamingNotAllowed rejections possible).
  const std::vector<std::string> big_markets{"US", "MX", "BR", "AR", "CL", "CO",
                                             "AU", "JP", "CN", "IN", "ZA", "TR"};
  AgreementTerms longhaul_terms;
  longhaul_terms.allowed_rats = full_rats();
  longhaul_terms.breakout = BreakoutType::kHomeRouted;
  for (std::size_t i = 0; i < big_markets.size(); ++i) {
    for (std::size_t j = i + 1; j < big_markets.size(); ++j) {
      if (!rng.bernoulli(0.5)) continue;
      const auto a = world.operators_.mnos_in_country(big_markets[i]);
      const auto b = world.operators_.mnos_in_country(big_markets[j]);
      if (a.empty() || b.empty()) continue;
      world.bilateral_.add_bilateral(a.front(), b.front(), longhaul_terms);
    }
  }

  // Latin American restrictions (§3.2: "local restrictions on roaming in
  // countries in Latin America"): the MX and AR HMNOs keep bilateral reach
  // to a handful of neighbours only — their hub terms stay, but scenario
  // steering keeps their fleets mostly at home.
  for (const auto& iso : {"GT", "CO", "CL"}) {
    const auto partners = world.operators_.mnos_in_country(iso);
    if (!partners.empty()) {
      world.bilateral_.add_bilateral(world.well_known_.mx_hmno, partners.front(),
                                     longhaul_terms);
    }
  }
  for (const auto& iso : {"UY", "PY", "CL"}) {
    const auto partners = world.operators_.mnos_in_country(iso);
    if (!partners.empty()) {
      world.bilateral_.add_bilateral(world.well_known_.ar_hmno, partners.front(),
                                     longhaul_terms);
    }
  }

  // --- Coverage grids for every MNO.
  if (config.build_coverage) {
    for (const auto& op : world.operators_.all()) {
      if (op.kind != OperatorKind::kMno) continue;
      const auto country = cellnet::country_by_iso(op.country_iso);
      assert(country.has_value());
      const cellnet::GeoPoint anchor{country->lat, country->lon};
      world.coverage_.build_grid(op, anchor, config.grid_plan,
                                 stats::mix64(config.seed, op.plmn.key()));
    }
  }

  // --- Steering: the platform prefers the cheapest partner per country;
  // modelled as a strong preference for the first MNO of each country for
  // the ES HMNO (it concentrates 75% of signaling on 10 VMNOs, §3.2).
  for (const auto& country : cellnet::all_countries()) {
    const auto mnos = world.operators_.mnos_in_country(country.iso);
    if (mnos.empty()) continue;
    std::vector<std::pair<OperatorId, double>> prefs;
    prefs.emplace_back(mnos.front(), 10.0);
    for (std::size_t i = 1; i < mnos.size(); ++i) prefs.emplace_back(mnos[i], 1.0);
    world.steering_.set_preference(world.well_known_.es_hmno,
                                   std::string(country.iso), prefs);
  }

  return world;
}

}  // namespace wtr::topology
