#pragma once

// Data-path model for the three roaming configurations of Fig. 1:
//
//   home-routed (HR)      — user traffic tromboned to the home PGW, then to
//                           the Internet: the EU default, with "serious
//                           performance penalties" for far destinations
//                           (§3.2's Spain → Australia example);
//   local breakout (LBO)  — egress at the visited PGW;
//   IPX hub breakout      — egress inside the IPX network, at the hub PoP
//                           nearest to the visited country.
//
// The model is geometric: great-circle distances between country centroids
// (and hub PoPs) drive propagation delay; fixed terms cover EPC transit and
// Internet egress. It quantifies the A2 design discussion in DESIGN.md —
// the paper explicitly leaves QoS measurement out of scope, so this module
// is an extension, not a reproduction target.

#include <optional>
#include <string>
#include <vector>

#include "cellnet/geo.hpp"
#include "topology/world.hpp"

namespace wtr::topology {

struct PathModelConfig {
  /// One-way propagation delay per 1000 km of great-circle distance
  /// (light in fiber ≈ 5 µs/km plus routing detours).
  double ms_per_1000km = 10.0;
  double core_processing_ms = 8.0;   // RAN + EPC transit, per direction pair
  double internet_egress_ms = 5.0;   // PGW → nearby service
};

struct DataPath {
  BreakoutType breakout = BreakoutType::kHomeRouted;
  double rtt_ms = 0.0;     // device → Internet service → device
  double path_km = 0.0;    // one-way geographic path length
  std::string egress_iso;  // country hosting the egress PGW
};

class PathModel {
 public:
  explicit PathModel(const World& world, PathModelConfig config = {});

  /// The data path for a SIM of `home` attached to `visited`, under the
  /// given breakout configuration. For IHBO the egress is the hub PoP
  /// (member-country centroid) nearest to the visited country, picked from
  /// the hubs `home` belongs to; falls back to HR when `home` is hubless.
  [[nodiscard]] DataPath data_path(OperatorId home, OperatorId visited,
                                   BreakoutType breakout) const;

  /// The path under the *effective* roaming configuration between the two
  /// operators (bilateral terms or hub default). Native attachments are
  /// always local. nullopt when no commercial path exists.
  [[nodiscard]] std::optional<DataPath> effective_data_path(OperatorId home,
                                                            OperatorId visited) const;

  /// Great-circle km between two operators' country centroids.
  [[nodiscard]] double operator_distance_km(OperatorId a, OperatorId b) const;

 private:
  [[nodiscard]] cellnet::GeoPoint anchor_of(OperatorId op) const;
  [[nodiscard]] double rtt_for_km(double one_way_km) const;

  const World* world_;
  PathModelConfig config_;
};

}  // namespace wtr::topology
