#pragma once

// Per-operator radio coverage: each MNO owns a SectorGrid anchored at its
// country's centroid. MVNOs have no grid of their own — their customers use
// the host's sectors (OperatorRegistry::radio_network_of).

#include <optional>
#include <unordered_map>

#include "cellnet/sector.hpp"
#include "topology/operator_registry.hpp"

namespace wtr::topology {

class CoverageMap {
 public:
  struct GridPlan {
    std::uint32_t cols = 24;
    std::uint32_t rows = 24;
    double spacing_m = 2'500.0;
    double share_4g = 0.55;
    double share_3g = 0.85;
    double share_2g = 0.97;
    double share_nbiot = 0.85;  // applied only when the operator deploys NB-IoT
  };

  /// Build a grid for an MNO. The anchor should be the operator's country
  /// centroid (World does this). Replaces any existing grid.
  void build_grid(const Operator& op, cellnet::GeoPoint anchor, const GridPlan& plan,
                  std::uint64_t seed);

  [[nodiscard]] bool has_grid(OperatorId id) const noexcept { return grids_.contains(id); }
  [[nodiscard]] const cellnet::SectorGrid& grid(OperatorId id) const;

  [[nodiscard]] std::size_t total_sectors() const;

 private:
  std::unordered_map<OperatorId, cellnet::SectorGrid> grids_;
};

}  // namespace wtr::topology
