#include "topology/operator_registry.hpp"

#include <cassert>

namespace wtr::topology {

OperatorId OperatorRegistry::add_mno(cellnet::Plmn plmn, std::string name,
                                     std::string country_iso,
                                     cellnet::RatMask deployed_rats) {
  assert(plmn.valid());
  assert(!by_plmn_.contains(plmn));
  Operator op;
  op.id = static_cast<OperatorId>(operators_.size());
  op.plmn = plmn;
  op.name = std::move(name);
  op.country_iso = std::move(country_iso);
  op.kind = OperatorKind::kMno;
  op.deployed_rats = deployed_rats;
  by_plmn_.emplace(plmn, op.id);
  operators_.push_back(std::move(op));
  return operators_.back().id;
}

OperatorId OperatorRegistry::add_mvno(cellnet::Plmn plmn, std::string name,
                                      OperatorId host) {
  assert(plmn.valid());
  assert(!by_plmn_.contains(plmn));
  const Operator& host_op = get(host);
  assert(host_op.kind == OperatorKind::kMno);
  Operator op;
  op.id = static_cast<OperatorId>(operators_.size());
  op.plmn = plmn;
  op.name = std::move(name);
  op.country_iso = host_op.country_iso;
  op.kind = OperatorKind::kMvno;
  op.host = host;
  op.deployed_rats = host_op.deployed_rats;
  by_plmn_.emplace(plmn, op.id);
  operators_.push_back(std::move(op));
  return operators_.back().id;
}

const Operator& OperatorRegistry::get(OperatorId id) const {
  assert(static_cast<std::size_t>(id) < operators_.size());
  return operators_[id];
}

std::optional<OperatorId> OperatorRegistry::by_plmn(cellnet::Plmn plmn) const {
  const auto it = by_plmn_.find(plmn);
  if (it == by_plmn_.end()) return std::nullopt;
  return it->second;
}

std::vector<OperatorId> OperatorRegistry::mnos_in_country(std::string_view iso) const {
  std::vector<OperatorId> out;
  for (const auto& op : operators_) {
    if (op.kind == OperatorKind::kMno && op.country_iso == iso) out.push_back(op.id);
  }
  return out;
}

OperatorId OperatorRegistry::radio_network_of(OperatorId id) const {
  const Operator& op = get(id);
  return op.kind == OperatorKind::kMvno ? op.host : op.id;
}

}  // namespace wtr::topology
