#pragma once

// The world model: every operator, agreement, hub and coverage grid the
// scenarios run on, plus named handles to the actors the paper's datasets
// revolve around — the UK MNO under study (§4), the four HMNOs behind the
// M2M platform (§3: ES, DE, MX, AR), and the Dutch operator that provisions
// the roaming smart-meter SIMs (§4.4).

#include <cstdint>
#include <string>
#include <vector>

#include "topology/coverage.hpp"
#include "topology/operator_registry.hpp"
#include "topology/roaming_agreements.hpp"
#include "topology/roaming_hub.hpp"
#include "topology/steering.hpp"

namespace wtr::topology {

struct WellKnownOperators {
  OperatorId uk_mno = kInvalidOperator;           // the visited MNO under study
  std::vector<OperatorId> uk_mvnos;               // MVNOs riding on it
  OperatorId es_hmno = kInvalidOperator;          // M2M platform HMNOs
  OperatorId de_hmno = kInvalidOperator;
  OperatorId mx_hmno = kInvalidOperator;
  OperatorId ar_hmno = kInvalidOperator;
  OperatorId nl_iot_provisioner = kInvalidOperator;  // smart-meter SIM issuer
  HubId m2m_hub = kInvalidHub;                    // the platform's carrier/IPX
  HubId partner_hub = kInvalidHub;                // peered carrier extending reach
};

struct WorldConfig {
  std::uint64_t seed = 42;
  std::uint32_t mnos_per_country = 3;
  bool build_coverage = true;                     // grids are the memory cost
  CoverageMap::GridPlan grid_plan{};
  // Countries whose MNOs have retired 2G (the paper names JP/KR/SG/AU).
  std::vector<std::string> two_g_sunset_isos{"JP", "KR", "SG", "AU"};
  // §8 extension: countries whose first MNO deploys an NB-IoT overlay, and
  // whether the carriers' agreements cover NB-IoT roaming (the GSMA's 2018
  // "first international NB-IoT roaming trial").
  std::vector<std::string> nbiot_isos{};
  bool nbiot_roaming_enabled = false;
  // Countries directly interconnected to the M2M hub's PoPs (the carrier in
  // §3 peers directly with MNOs in 19 countries, mostly Europe + LatAm).
  std::vector<std::string> m2m_hub_direct_isos{
      "ES", "DE", "MX", "AR", "GB", "NL", "PT", "FR", "IT", "BE",
      "IE", "AT", "PL", "RO", "BR", "CL", "CO", "PE", "UY"};
};

class World {
 public:
  static World build(const WorldConfig& config);

  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] const OperatorRegistry& operators() const noexcept { return operators_; }
  [[nodiscard]] const RoamingAgreementGraph& bilateral() const noexcept { return bilateral_; }
  [[nodiscard]] const HubRegistry& hubs() const noexcept { return hubs_; }
  [[nodiscard]] const CoverageMap& coverage() const noexcept { return coverage_; }
  [[nodiscard]] const SteeringPolicy& steering() const noexcept { return steering_; }
  [[nodiscard]] const WellKnownOperators& well_known() const noexcept { return well_known_; }

  /// Mutable steering access (scenarios install platform preferences).
  [[nodiscard]] SteeringPolicy& mutable_steering() noexcept { return steering_; }

  /// Effective roaming relation, bilateral-first then hubs.
  [[nodiscard]] EffectiveRoaming resolve_roaming(OperatorId home,
                                                 OperatorId visited) const {
    return hubs_.resolve(bilateral_, home, visited);
  }

  /// Country ISO of an operator.
  [[nodiscard]] const std::string& country_of(OperatorId id) const {
    return operators_.get(id).country_iso;
  }

 private:
  WorldConfig config_{};
  OperatorRegistry operators_;
  RoamingAgreementGraph bilateral_;
  HubRegistry hubs_;
  CoverageMap coverage_;
  SteeringPolicy steering_;
  WellKnownOperators well_known_;
};

}  // namespace wtr::topology
