#include "topology/roaming_agreements.hpp"

#include <algorithm>

namespace wtr::topology {

std::string_view breakout_name(BreakoutType type) noexcept {
  switch (type) {
    case BreakoutType::kHomeRouted: return "home-routed";
    case BreakoutType::kLocalBreakout: return "local-breakout";
    case BreakoutType::kIpxHubBreakout: return "ipx-hub-breakout";
  }
  return "?";
}

void RoamingAgreementGraph::add(OperatorId home, OperatorId visited,
                                AgreementTerms terms) {
  const auto [it, inserted] = terms_.insert_or_assign(key(home, visited), terms);
  (void)it;
  if (inserted) {
    auto& list = partners_[home];
    if (std::find(list.begin(), list.end(), visited) == list.end()) {
      list.push_back(visited);
    }
  }
}

void RoamingAgreementGraph::add_bilateral(OperatorId a, OperatorId b,
                                          AgreementTerms terms) {
  add(a, b, terms);
  add(b, a, terms);
}

std::optional<AgreementTerms> RoamingAgreementGraph::find(OperatorId home,
                                                          OperatorId visited) const {
  const auto it = terms_.find(key(home, visited));
  if (it == terms_.end()) return std::nullopt;
  return it->second;
}

bool RoamingAgreementGraph::allows(OperatorId home, OperatorId visited,
                                   cellnet::Rat rat) const {
  const auto terms = find(home, visited);
  return terms && terms->allowed_rats.has(rat);
}

std::vector<OperatorId> RoamingAgreementGraph::partners_of(OperatorId home) const {
  const auto it = partners_.find(home);
  if (it == partners_.end()) return {};
  auto out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wtr::topology
