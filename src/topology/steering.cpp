#include "topology/steering.hpp"

#include <algorithm>

namespace wtr::topology {

std::string SteeringPolicy::override_key(OperatorId home, std::string_view country_iso) {
  return std::to_string(home) + ":" + std::string(country_iso);
}

void SteeringPolicy::set_preference(OperatorId home, std::string country_iso,
                                    std::vector<std::pair<OperatorId, double>> weights) {
  auto& map = overrides_[override_key(home, country_iso)];
  for (const auto& [visited, weight] : weights) map[visited] = weight;
}

double SteeringPolicy::weight_for(OperatorId home, std::string_view country_iso,
                                  OperatorId visited) const {
  const auto it = overrides_.find(override_key(home, country_iso));
  if (it == overrides_.end()) return 1.0;
  const auto weight_it = it->second.find(visited);
  return weight_it == it->second.end() ? 1.0 : weight_it->second;
}

std::vector<VisitedCandidate> SteeringPolicy::candidates(
    const OperatorRegistry& operators, const RoamingAgreementGraph& bilateral,
    const HubRegistry& hubs, OperatorId home, std::string_view country_iso,
    std::optional<cellnet::Rat> rat) const {
  std::vector<VisitedCandidate> out;
  for (OperatorId visited : operators.mnos_in_country(country_iso)) {
    if (visited == home) continue;
    const EffectiveRoaming roaming = hubs.resolve(bilateral, home, visited);
    if (roaming.path == RoamingPath::kNone) continue;
    if (rat && !roaming.terms.allowed_rats.has(*rat)) continue;
    VisitedCandidate candidate;
    candidate.visited = visited;
    candidate.weight = weight_for(home, country_iso, visited);
    candidate.roaming = roaming;
    out.push_back(candidate);
  }
  std::sort(out.begin(), out.end(), [](const VisitedCandidate& a, const VisitedCandidate& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.visited < b.visited;
  });
  return out;
}

std::optional<VisitedCandidate> SteeringPolicy::pick(
    const OperatorRegistry& operators, const RoamingAgreementGraph& bilateral,
    const HubRegistry& hubs, OperatorId home, std::string_view country_iso,
    std::optional<cellnet::Rat> rat, stats::Rng& rng) const {
  const auto options = candidates(operators, bilateral, hubs, home, country_iso, rat);
  if (options.empty()) return std::nullopt;
  std::vector<double> weights;
  weights.reserve(options.size());
  for (const auto& option : options) weights.push_back(option.weight);
  return options[rng.weighted_index(weights)];
}

}  // namespace wtr::topology
