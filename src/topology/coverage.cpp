#include "topology/coverage.hpp"

#include <cassert>

namespace wtr::topology {

void CoverageMap::build_grid(const Operator& op, cellnet::GeoPoint anchor,
                             const GridPlan& plan, std::uint64_t seed) {
  assert(op.kind == OperatorKind::kMno);
  cellnet::SectorGrid::Config config;
  config.operator_plmn = op.plmn;
  config.anchor = anchor;
  config.cols = plan.cols;
  config.rows = plan.rows;
  config.spacing_m = plan.spacing_m;
  config.seed = seed;
  config.share_4g = op.deployed_rats.has(cellnet::Rat::kFourG) ? plan.share_4g : 0.0;
  config.share_3g = op.deployed_rats.has(cellnet::Rat::kThreeG) ? plan.share_3g : 0.0;
  config.share_2g = op.deployed_rats.has(cellnet::Rat::kTwoG) ? plan.share_2g : 0.0;
  config.share_nbiot =
      op.deployed_rats.has(cellnet::Rat::kNbIot) ? plan.share_nbiot : 0.0;
  grids_.insert_or_assign(op.id, cellnet::SectorGrid{config});
}

const cellnet::SectorGrid& CoverageMap::grid(OperatorId id) const {
  const auto it = grids_.find(id);
  assert(it != grids_.end());
  return it->second;
}

std::size_t CoverageMap::total_sectors() const {
  std::size_t total = 0;
  for (const auto& [_, grid] : grids_) total += grid.size();
  return total;
}

}  // namespace wtr::topology
