#pragma once

// Bilateral roaming agreements: the classic model (§2.1) in which two MNOs
// negotiate terms directly. An agreement is directional (home → visited):
// it lets the home operator's SIMs attach to the visited network, with a
// RAT scope and a data breakout configuration (Fig. 1).

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cellnet/rat.hpp"
#include "topology/operator_registry.hpp"

namespace wtr::topology {

/// The three roaming data-path configurations of Fig. 1.
enum class BreakoutType : std::uint8_t {
  kHomeRouted,     // HR: data egresses at the home PGW (the EU default)
  kLocalBreakout,  // LBO: egress at the visited PGW
  kIpxHubBreakout, // IHBO: egress inside the IPX network
};

[[nodiscard]] std::string_view breakout_name(BreakoutType type) noexcept;

struct AgreementTerms {
  cellnet::RatMask allowed_rats{};  // technologies covered by the agreement
  BreakoutType breakout = BreakoutType::kHomeRouted;
};

class RoamingAgreementGraph {
 public:
  /// Directional agreement home → visited. Overwrites existing terms.
  void add(OperatorId home, OperatorId visited, AgreementTerms terms);

  /// Symmetric convenience: adds both directions with the same terms.
  void add_bilateral(OperatorId a, OperatorId b, AgreementTerms terms);

  [[nodiscard]] std::optional<AgreementTerms> find(OperatorId home,
                                                   OperatorId visited) const;

  /// True when home's SIMs may use `rat` on visited's network directly.
  [[nodiscard]] bool allows(OperatorId home, OperatorId visited,
                            cellnet::Rat rat) const;

  [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }

  /// All visited operators home has a direct agreement with.
  [[nodiscard]] std::vector<OperatorId> partners_of(OperatorId home) const;

 private:
  static std::uint64_t key(OperatorId home, OperatorId visited) noexcept {
    return (static_cast<std::uint64_t>(home) << 32) | visited;
  }

  std::unordered_map<std::uint64_t, AgreementTerms> terms_;
  std::unordered_map<OperatorId, std::vector<OperatorId>> partners_;
};

}  // namespace wtr::topology
