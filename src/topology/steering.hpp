#pragma once

// Steering of roaming: when a SIM finds itself in a foreign country, the
// home operator ranks which visited networks it should prefer (commercial
// preferences, not radio conditions). §3.3's inter-VMNO switch analysis is
// driven by how sticky this choice is per device.

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cellnet/rat.hpp"
#include "stats/rng.hpp"
#include "topology/operator_registry.hpp"
#include "topology/roaming_agreements.hpp"
#include "topology/roaming_hub.hpp"

namespace wtr::topology {

struct VisitedCandidate {
  OperatorId visited = kInvalidOperator;
  double weight = 1.0;             // steering preference weight
  EffectiveRoaming roaming{};      // resolved commercial path
};

class SteeringPolicy {
 public:
  /// Install explicit preference weights for (home operator, country).
  /// Candidates not mentioned keep weight 1.0.
  void set_preference(OperatorId home, std::string country_iso,
                      std::vector<std::pair<OperatorId, double>> weights);

  /// Visited-network candidates for a home SIM in a country: every MNO in
  /// the country reachable through some commercial path (and supporting
  /// `rat` under the effective terms when `rat` is given), weighted by
  /// steering preference. Sorted by descending weight (ties by id).
  [[nodiscard]] std::vector<VisitedCandidate> candidates(
      const OperatorRegistry& operators, const RoamingAgreementGraph& bilateral,
      const HubRegistry& hubs, OperatorId home, std::string_view country_iso,
      std::optional<cellnet::Rat> rat = std::nullopt) const;

  /// Weighted random pick among candidates(); nullopt when none exist.
  [[nodiscard]] std::optional<VisitedCandidate> pick(
      const OperatorRegistry& operators, const RoamingAgreementGraph& bilateral,
      const HubRegistry& hubs, OperatorId home, std::string_view country_iso,
      std::optional<cellnet::Rat> rat, stats::Rng& rng) const;

 private:
  [[nodiscard]] double weight_for(OperatorId home, std::string_view country_iso,
                                  OperatorId visited) const;

  // (home, country) → per-visited weight overrides
  std::unordered_map<std::string, std::unordered_map<OperatorId, double>> overrides_;

  static std::string override_key(OperatorId home, std::string_view country_iso);
};

}  // namespace wtr::topology
