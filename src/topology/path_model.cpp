#include "topology/path_model.hpp"

#include <cassert>
#include <limits>

#include "cellnet/country.hpp"

namespace wtr::topology {

PathModel::PathModel(const World& world, PathModelConfig config)
    : world_(&world), config_(config) {}

cellnet::GeoPoint PathModel::anchor_of(OperatorId op) const {
  const auto& iso = world_->operators().get(op).country_iso;
  const auto country = cellnet::country_by_iso(iso);
  assert(country.has_value());
  return cellnet::GeoPoint{country->lat, country->lon};
}

double PathModel::operator_distance_km(OperatorId a, OperatorId b) const {
  return cellnet::haversine_m(anchor_of(a), anchor_of(b)) / 1000.0;
}

double PathModel::rtt_for_km(double one_way_km) const {
  // Round trip: propagation both ways plus the fixed processing terms.
  return 2.0 * one_way_km / 1000.0 * config_.ms_per_1000km +
         config_.core_processing_ms + config_.internet_egress_ms;
}

DataPath PathModel::data_path(OperatorId home, OperatorId visited,
                              BreakoutType breakout) const {
  DataPath path;
  path.breakout = breakout;
  switch (breakout) {
    case BreakoutType::kHomeRouted: {
      path.path_km = operator_distance_km(visited, home);
      path.egress_iso = world_->operators().get(home).country_iso;
      break;
    }
    case BreakoutType::kLocalBreakout: {
      path.path_km = 0.0;
      path.egress_iso = world_->operators().get(visited).country_iso;
      break;
    }
    case BreakoutType::kIpxHubBreakout: {
      // Egress at the nearest PoP of a hub the home operator belongs to;
      // PoPs are modeled at member-country centroids.
      const auto visited_anchor = anchor_of(visited);
      double best_km = std::numeric_limits<double>::infinity();
      std::string best_iso;
      for (const HubId hub : world_->hubs().hubs_of(home)) {
        for (const OperatorId member : world_->hubs().get(hub).members) {
          const double km =
              cellnet::haversine_m(visited_anchor, anchor_of(member)) / 1000.0;
          if (km < best_km) {
            best_km = km;
            best_iso = world_->operators().get(member).country_iso;
          }
        }
      }
      if (best_iso.empty()) {
        // Hubless home operator: the only possible path is home-routed.
        return data_path(home, visited, BreakoutType::kHomeRouted);
      }
      path.path_km = best_km;
      path.egress_iso = best_iso;
      break;
    }
  }
  path.rtt_ms = rtt_for_km(path.path_km);
  return path;
}

std::optional<DataPath> PathModel::effective_data_path(OperatorId home,
                                                       OperatorId visited) const {
  const auto& operators = world_->operators();
  if (operators.radio_network_of(home) == operators.radio_network_of(visited)) {
    // Native attachment: always local egress.
    return data_path(home, visited, BreakoutType::kLocalBreakout);
  }
  const auto roaming = world_->resolve_roaming(home, visited);
  if (roaming.path == RoamingPath::kNone) return std::nullopt;
  return data_path(home, visited, roaming.terms.breakout);
}

}  // namespace wtr::topology
