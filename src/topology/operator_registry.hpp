#pragma once

// Registry of mobile operators: MNOs with their own radio network and PLMN,
// and MVNOs that ride a host MNO's network under their own PLMN. The MNO
// dataset's roaming labels (§4.2) distinguish home / virtual / national /
// international SIMs — all of which are relations between entries here.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cellnet/plmn.hpp"
#include "cellnet/rat.hpp"

namespace wtr::topology {

using OperatorId = std::uint32_t;
inline constexpr OperatorId kInvalidOperator = ~OperatorId{0};

enum class OperatorKind : std::uint8_t { kMno, kMvno };

struct Operator {
  OperatorId id = kInvalidOperator;
  cellnet::Plmn plmn{};
  std::string name;
  std::string country_iso;  // ISO alpha-2 of the home country
  OperatorKind kind = OperatorKind::kMno;
  OperatorId host = kInvalidOperator;  // hosting MNO, for MVNOs
  cellnet::RatMask deployed_rats{};    // technologies on the radio network
};

class OperatorRegistry {
 public:
  /// Register a facilities-based MNO. PLMN must be unique.
  OperatorId add_mno(cellnet::Plmn plmn, std::string name, std::string country_iso,
                     cellnet::RatMask deployed_rats);

  /// Register an MVNO hosted on an existing MNO (same country; inherits the
  /// host's radio network).
  OperatorId add_mvno(cellnet::Plmn plmn, std::string name, OperatorId host);

  [[nodiscard]] const Operator& get(OperatorId id) const;
  [[nodiscard]] std::optional<OperatorId> by_plmn(cellnet::Plmn plmn) const;
  [[nodiscard]] std::size_t size() const noexcept { return operators_.size(); }
  [[nodiscard]] const std::vector<Operator>& all() const noexcept { return operators_; }

  /// MNOs (not MVNOs) whose home country matches.
  [[nodiscard]] std::vector<OperatorId> mnos_in_country(std::string_view iso) const;

  /// The MNO whose radio network an operator's customers use at home:
  /// itself for an MNO, the host for an MVNO.
  [[nodiscard]] OperatorId radio_network_of(OperatorId id) const;

 private:
  std::vector<Operator> operators_;
  std::unordered_map<cellnet::Plmn, OperatorId> by_plmn_;
};

}  // namespace wtr::topology
