#pragma once

// Roaming hubs / IPX providers (§2.1–2.2): an operator connects once to a
// hub and gains reach to every other member; hubs peer with each other to
// extend reach further (the paper's carrier interconnects MNOs in 19
// countries directly and reaches the rest of the globe through other
// carriers). The M2M platform in §3 is built on exactly this function.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/operator_registry.hpp"
#include "topology/roaming_agreements.hpp"

namespace wtr::topology {

using HubId = std::uint32_t;
inline constexpr HubId kInvalidHub = ~HubId{0};

struct RoamingHub {
  HubId id = kInvalidHub;
  std::string name;
  std::vector<OperatorId> members;  // insertion order preserved
};

/// How an effective roaming relation between two operators is realized.
enum class RoamingPath : std::uint8_t {
  kNone,            // no commercial path: attach attempts are rejected
  kDirect,          // bilateral agreement
  kViaHub,          // both members of the same hub
  kViaHubPeering,   // members of two peered hubs
};

[[nodiscard]] std::string_view roaming_path_name(RoamingPath path) noexcept;

struct EffectiveRoaming {
  RoamingPath path = RoamingPath::kNone;
  AgreementTerms terms{};  // effective terms on that path
  /// Hub carrying the relation: the shared hub for kViaHub, the home-side
  /// hub for kViaHubPeering, kInvalidHub for direct/none. Fault injection
  /// scopes degraded-path episodes by this id.
  HubId via_hub = kInvalidHub;
};

class HubRegistry {
 public:
  HubId add_hub(std::string name, AgreementTerms default_terms);

  void add_member(HubId hub, OperatorId op);

  /// Symmetric peering between hubs; members of peered hubs can reach each
  /// other with the more restrictive of the two hubs' default terms.
  void peer(HubId a, HubId b);

  [[nodiscard]] const RoamingHub& get(HubId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return hubs_.size(); }
  [[nodiscard]] bool is_member(HubId hub, OperatorId op) const;
  [[nodiscard]] std::vector<HubId> hubs_of(OperatorId op) const;

  /// Resolve the effective roaming relation home → visited, considering the
  /// direct bilateral graph first (it can carry bespoke terms), then shared
  /// hub membership, then one hop of hub peering.
  [[nodiscard]] EffectiveRoaming resolve(const RoamingAgreementGraph& bilateral,
                                         OperatorId home, OperatorId visited) const;

 private:
  [[nodiscard]] AgreementTerms terms_of(HubId hub) const;

  std::vector<RoamingHub> hubs_;
  std::vector<AgreementTerms> default_terms_;
  std::unordered_map<OperatorId, std::vector<HubId>> memberships_;
  std::unordered_map<HubId, std::unordered_set<HubId>> peers_;
};

/// Intersection of two terms: RAT sets intersect; breakout degrades to the
/// hub-mediated IHBO when the two disagree.
[[nodiscard]] AgreementTerms merge_terms(const AgreementTerms& a,
                                         const AgreementTerms& b) noexcept;

}  // namespace wtr::topology
