#pragma once

// Builds homogeneous fleets of devices from a spec: N devices of one
// profile, provisioned by one home operator, deployed in one country.
// Scenarios compose many fleets (e.g. the MNO scenario builds ~20 fleets:
// native smartphones, MVNO smartphones, inbound-roaming smart meters, ...).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cellnet/tac_catalog.hpp"
#include "devices/device.hpp"
#include "topology/world.hpp"

namespace wtr::devices {

/// How the fleet's data APN is chosen.
enum class ApnPolicy : std::uint8_t {
  kVerticalCompany,  // drawn from the vertical's company catalog
  kConsumer,         // operator consumer APN ("internet", "payandgo", ...)
  kM2MPlatform,      // global IoT SIM platform APN
  kNone,             // no APN even if the device uses data (voice-only SIMs)
};

struct FleetSpec {
  std::size_t count = 0;
  topology::OperatorId home_operator = topology::kInvalidOperator;
  BehaviorProfile profile{};
  std::string deployment_iso;        // country the devices physically sit in
  double deployment_spread_m = 20'000.0;  // scatter radius around the anchor
  ApnPolicy apn_policy = ApnPolicy::kConsumer;
  double subscription_ok_rate = 1.0;
  std::int32_t horizon_days = 22;    // observation window length
  /// Dedicated IMSI pool (e.g. the SMIP-native range); when absent, MSINs
  /// are allocated from the operator's general counter.
  std::optional<cellnet::ImsiRange> imsi_range;
  /// Restrict module vendors (SMIP-roaming meters are Gemalto/Telit only).
  std::vector<std::string> restrict_vendors;
  /// Bands guaranteed on the hardware regardless of the drawn TAC (the M2M
  /// platform fleets are all 4G-capable by construction).
  cellnet::RatMask force_bands{};
  /// Restrict hardware to exactly these bands when non-empty (SMIP-roaming
  /// meters are 2G-only modules).
  cellnet::RatMask cap_bands{};
  /// Fraction of SIMs provisioned without LTE enablement: their 4G attempts
  /// fail with FeatureUnsupported (§3.3's pure-failure population in the
  /// platform's 4G-only view).
  double lte_sim_disabled_rate = 0.0;
  /// Use long-tail OEM equipment (unknown GSMA label): the classifier's
  /// m2m-maybe residue.
  bool use_filler_equipment = false;
  /// Fault-schedule scope tag stamped on every device of the fleet
  /// (faults::kAnyFaultDomain = 0 leaves the fleet untagged).
  std::uint32_t fault_domain = 0;
};

class FleetBuilder {
 public:
  FleetBuilder(const topology::World& world, const cellnet::TacPools& tac_pools,
               std::uint64_t seed);

  /// Build a fleet; appends nothing anywhere — returns the devices. Device
  /// ids and IMSIs are unique across all build() calls on this builder.
  [[nodiscard]] std::vector<Device> build(const FleetSpec& spec);

  [[nodiscard]] std::uint64_t devices_built() const noexcept { return next_device_; }

 private:
  [[nodiscard]] cellnet::Imsi allocate_imsi(const FleetSpec& spec, std::size_t index);

  const topology::World& world_;
  const cellnet::TacPools& tac_pools_;
  stats::Rng rng_;
  std::uint64_t seed_;
  std::uint64_t next_device_ = 0;
  std::unordered_map<topology::OperatorId, std::uint64_t> msin_counters_;
};

}  // namespace wtr::devices
