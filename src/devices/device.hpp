#pragma once

// A simulated device: identity (IMSI/IMEI), home operator, ground-truth
// class, behavioural realization (each device samples its own rates from
// its profile's distributions — the heavy tails in Figs. 3 and 10 come from
// this per-device dispersion), and physical location state.

#include <cstdint>
#include <string>

#include "cellnet/apn.hpp"
#include "cellnet/imei.hpp"
#include "cellnet/imsi.hpp"
#include "devices/behavior_profile.hpp"
#include "signaling/transaction.hpp"
#include "topology/operator_registry.hpp"

namespace wtr::devices {

struct Device {
  signaling::DeviceHash id = 0;  // one-way hash, as the datasets expose it
  cellnet::Imsi imsi{};
  cellnet::Imei imei{};
  topology::OperatorId home_operator = topology::kInvalidOperator;

  BehaviorProfile profile{};
  cellnet::RatMask capability{};  // hardware bands (from the TAC catalog)
  /// SIM provisioning scope: technologies the subscription is enabled for.
  /// An LTE-capable module on a SIM without LTE enablement is rejected with
  /// FeatureUnsupported on 4G — in the platform's 4G-only trace such
  /// devices appear as pure-failure devices (§3.3's 40%).
  cellnet::RatMask sim_allowed_rats{0b1111};
  cellnet::Apn apn{};             // data APN; empty when the device has none
  bool subscription_ok = true;
  /// Fleet tag for fault-schedule scoping (faults::kAnyFaultDomain = 0 for
  /// untagged devices): misprovisioning ramps target a specific fleet.
  std::uint32_t fault_domain = 0;

  // Per-device realizations sampled at fleet build time.
  double sessions_per_day = 1.0;
  double bytes_per_day = 0.0;  // 0 when the device never moves data
  double calls_per_day = 0.0;  // 0 when the device never uses voice
  std::int32_t arrival_day = 0;
  std::int32_t departure_day = 1;  // exclusive

  // Physical placement: ISO country the device currently sits in, and its
  // position in meters east/north of that country's anchor.
  std::string current_country;
  double east_m = 0.0;
  double north_m = 0.0;
  // Base (deployment) location, for mobility models that orbit a home point.
  std::string home_country;
  double home_east_m = 0.0;
  double home_north_m = 0.0;

  [[nodiscard]] bool active_on_day(std::int32_t day) const noexcept {
    return day >= arrival_day && day < departure_day;
  }
  [[nodiscard]] bool uses_data() const noexcept { return bytes_per_day > 0.0; }
  [[nodiscard]] bool uses_voice() const noexcept { return calls_per_day > 0.0; }
};

}  // namespace wtr::devices
