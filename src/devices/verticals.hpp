#pragma once

// IoT verticals and the APN vocabulary they leave in traces. §4.3 finds
// 4,603 distinct APN strings, identifies 26 vertical keywords (scania →
// automotive, rwe → energy, intelligent.m2m → global IoT SIM platform, …),
// and maps 1,719 APNs to M2M via those keywords. We generate APNs from the
// same grammar: <service>.<company domain>[.mncXXX.mccYYY.gprs].

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "cellnet/apn.hpp"
#include "cellnet/plmn.hpp"
#include "stats/rng.hpp"

namespace wtr::devices {

enum class Vertical : std::uint8_t {
  kNone = 0,         // phones
  kSmartMeter,       // energy (§7's SMIP population)
  kConnectedCar,     // automotive (§7.2's comparison vertical)
  kLogisticsTracker,
  kWearable,
  kPosTerminal,      // payment terminals (§2.2's reliability-first example)
  kVendingMachine,
  kSecurityAlarm,    // the voice-only M2M devices of §6.2
  kFleetTelematics,
  kEbookReader,
};

inline constexpr int kVerticalCount = 10;

[[nodiscard]] std::string_view vertical_name(Vertical vertical) noexcept;

/// A company operating devices within a vertical; its domain shows up in
/// APN network identifiers. `keyworded` companies embed a keyword that the
/// classifier's vocabulary covers; non-keyworded ones model the "other IoT
/// services we could [not] clearly identify" the paper mentions — their
/// devices must be caught by device-property propagation instead.
struct VerticalCompany {
  std::string_view domain;   // "centricaplc.com"
  std::string_view keyword;  // "centrica" — empty when not in the vocabulary
  double weight = 1.0;       // relative share of the vertical's fleet
};

/// Companies for a vertical (static catalog).
[[nodiscard]] std::span<const VerticalCompany> companies_of(Vertical vertical) noexcept;

/// The five energy companies §4.4 identifies in SMIP-roaming APNs.
[[nodiscard]] std::span<const VerticalCompany> smip_energy_companies() noexcept;

/// Build a vertical APN for a company: "<service>.<domain>" with the home
/// operator identifier appended. The service token varies per device batch.
[[nodiscard]] cellnet::Apn make_vertical_apn(const VerticalCompany& company,
                                             cellnet::Plmn home, stats::Rng& rng);

/// Consumer APN ("internet", "payandgo.mobile", ...) used by phones.
[[nodiscard]] cellnet::Apn make_consumer_apn(cellnet::Plmn home, stats::Rng& rng);

/// Generic operator M2M platform APN ("intelligent.m2m.provider.net") used
/// by global IoT SIMs that do not expose the end customer.
[[nodiscard]] cellnet::Apn make_platform_apn(cellnet::Plmn home, stats::Rng& rng);

}  // namespace wtr::devices
