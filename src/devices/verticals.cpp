#include "devices/verticals.hpp"

#include <array>

namespace wtr::devices {

std::string_view vertical_name(Vertical vertical) noexcept {
  switch (vertical) {
    case Vertical::kNone: return "none";
    case Vertical::kSmartMeter: return "smart-meter";
    case Vertical::kConnectedCar: return "connected-car";
    case Vertical::kLogisticsTracker: return "logistics";
    case Vertical::kWearable: return "wearable";
    case Vertical::kPosTerminal: return "pos-terminal";
    case Vertical::kVendingMachine: return "vending";
    case Vertical::kSecurityAlarm: return "security-alarm";
    case Vertical::kFleetTelematics: return "telematics";
    case Vertical::kEbookReader: return "ebook-reader";
  }
  return "?";
}

namespace {

// The keyword column must stay in sync with core/classifier.cpp's
// vocabulary (a test cross-checks the two). Companies with an empty keyword
// are deliberately NOT in the vocabulary.
constexpr std::array<VerticalCompany, 6> kEnergy{{
    {"centricaplc.com", "centrica", 0.30},
    {"rwe.com", "rwe", 0.22},
    {"elster.co.uk", "elster", 0.18},
    {"generalelectric.com", "generalelectric", 0.15},
    {"bglobalservices.co.uk", "bglobal", 0.10},
    {"edfmetering.net", "", 0.05},
}};

constexpr std::array<VerticalCompany, 5> kAutomotive{{
    {"scania.com", "scania", 0.30},
    {"vwcarnet.de", "carnet", 0.25},
    {"bmw-connecteddrive.de", "connecteddrive", 0.20},
    {"psa-connect.fr", "psa-connect", 0.15},
    {"autolinkservices.net", "", 0.10},
}};

constexpr std::array<VerticalCompany, 4> kLogistics{{
    {"trackunit.com", "trackunit", 0.35},
    {"geotracking.net", "geotrack", 0.30},
    {"assetflux.io", "assetflux", 0.20},
    {"cargosense.net", "", 0.15},
}};

constexpr std::array<VerticalCompany, 3> kWearables{{
    {"wearlink.net", "wearlink", 0.5},
    {"kidwatch.io", "kidwatch", 0.3},
    {"fitsync.net", "", 0.2},
}};

constexpr std::array<VerticalCompany, 3> kPayments{{
    {"paynet-terminals.com", "paynet", 0.5},
    {"cardstream.net", "cardstream", 0.3},
    {"tillpoint.io", "", 0.2},
}};

constexpr std::array<VerticalCompany, 3> kVending{{
    {"vendtelemetry.com", "vendtelemetry", 0.5},
    {"snackwire.net", "snackwire", 0.3},
    {"coolermetrics.io", "", 0.2},
}};

constexpr std::array<VerticalCompany, 3> kSecurity{{
    {"alarmnet.com", "alarmnet", 0.5},
    {"liftline.net", "liftline", 0.3},
    {"guardwire.io", "", 0.2},
}};

constexpr std::array<VerticalCompany, 3> kTelematics{{
    {"fleetmatics.com", "fleetmatics", 0.5},
    {"tachonet.eu", "tachonet", 0.3},
    {"haulsense.net", "", 0.2},
}};

constexpr std::array<VerticalCompany, 2> kEreaders{{
    {"whisperlink.net", "whisperlink", 0.7},
    {"pagecloud.io", "", 0.3},
}};

constexpr std::array<std::string_view, 6> kServiceTokens{
    "smhp", "telemetry", "m2m", "iot", "data", "remote"};

constexpr std::array<std::string_view, 8> kConsumerNames{
    "internet",       "payandgo.mobile", "mobile.web", "broadband.home",
    "prepay.surf", "wap.consumer",    "mms.media",  "go.mobile"};

constexpr std::array<std::string_view, 4> kPlatformNames{
    "intelligent.m2m.provider.net", "global.iotsim.net", "m2m-platform.carrier.com",
    "roamiot.services.net"};

}  // namespace

std::span<const VerticalCompany> companies_of(Vertical vertical) noexcept {
  switch (vertical) {
    case Vertical::kNone: return {};
    case Vertical::kSmartMeter: return kEnergy;
    case Vertical::kConnectedCar: return kAutomotive;
    case Vertical::kLogisticsTracker: return kLogistics;
    case Vertical::kWearable: return kWearables;
    case Vertical::kPosTerminal: return kPayments;
    case Vertical::kVendingMachine: return kVending;
    case Vertical::kSecurityAlarm: return kSecurity;
    case Vertical::kFleetTelematics: return kTelematics;
    case Vertical::kEbookReader: return kEreaders;
  }
  return {};
}

std::span<const VerticalCompany> smip_energy_companies() noexcept {
  // The first five energy companies carry the recognizable keywords.
  return std::span<const VerticalCompany>{kEnergy}.first(5);
}

cellnet::Apn make_vertical_apn(const VerticalCompany& company, cellnet::Plmn home,
                               stats::Rng& rng) {
  const std::string_view service = kServiceTokens[rng.below(kServiceTokens.size())];
  return cellnet::Apn{std::string(service) + "." + std::string(company.domain), home};
}

cellnet::Apn make_consumer_apn(cellnet::Plmn home, stats::Rng& rng) {
  const std::string_view name = kConsumerNames[rng.below(kConsumerNames.size())];
  // Consumer APNs frequently omit the operator identifier.
  if (rng.bernoulli(0.5)) return cellnet::Apn{std::string(name)};
  return cellnet::Apn{std::string(name), home};
}

cellnet::Apn make_platform_apn(cellnet::Plmn home, stats::Rng& rng) {
  const std::string_view name = kPlatformNames[rng.below(kPlatformNames.size())];
  return cellnet::Apn{std::string(name), home};
}

}  // namespace wtr::devices
