#include "devices/fleet_builder.hpp"

#include <cassert>
#include <cmath>

#include "stats/distributions.hpp"

namespace wtr::devices {

FleetBuilder::FleetBuilder(const topology::World& world,
                           const cellnet::TacPools& tac_pools, std::uint64_t seed)
    : world_(world), tac_pools_(tac_pools), rng_(seed), seed_(seed) {}

cellnet::Imsi FleetBuilder::allocate_imsi(const FleetSpec& spec, std::size_t index) {
  if (spec.imsi_range) {
    assert(index < spec.imsi_range->size());
    return spec.imsi_range->at(index);
  }
  const auto plmn = world_.operators().get(spec.home_operator).plmn;
  // General pool: MSINs from 1e8 upward, per home operator.
  auto& counter = msin_counters_[spec.home_operator];
  return cellnet::Imsi{plmn, 100'000'000ULL + counter++};
}

std::vector<Device> FleetBuilder::build(const FleetSpec& spec) {
  assert(spec.home_operator != topology::kInvalidOperator);
  assert(spec.horizon_days > 0);
  std::vector<Device> fleet;
  fleet.reserve(spec.count);

  const auto home_plmn = world_.operators().get(spec.home_operator).plmn;
  const auto companies = companies_of(spec.profile.vertical);
  std::vector<double> company_weights;
  for (const auto& company : companies) company_weights.push_back(company.weight);

  for (std::size_t i = 0; i < spec.count; ++i) {
    Device device;
    device.id = stats::mix64(seed_ ^ 0x9ddfea08eb382d69ULL, next_device_);
    ++next_device_;
    device.imsi = allocate_imsi(spec, i);
    device.home_operator = spec.home_operator;
    device.profile = spec.profile;
    device.subscription_ok = rng_.bernoulli(spec.subscription_ok_rate);
    device.fault_domain = spec.fault_domain;

    // Equipment: TAC from the category pool (optionally vendor-restricted),
    // hardware capability from the catalog entry.
    cellnet::Tac tac;
    if (spec.use_filler_equipment) {
      tac = tac_pools_.draw_filler(rng_);
    } else if (!spec.restrict_vendors.empty()) {
      const auto& vendor =
          spec.restrict_vendors[rng_.below(spec.restrict_vendors.size())];
      tac = tac_pools_.draw_vendor(rng_, spec.profile.equipment, vendor);
    } else {
      tac = tac_pools_.draw(rng_, spec.profile.equipment);
    }
    device.imei = cellnet::Imei{tac, static_cast<std::uint32_t>(rng_.below(1'000'000))};
    const auto* info = tac_pools_.catalog().lookup(tac);
    assert(info != nullptr);
    device.capability = info->bands;
    device.capability = cellnet::RatMask{
        static_cast<std::uint8_t>(device.capability.bits() | spec.force_bands.bits())};
    if (spec.cap_bands.any()) {
      device.capability = device.capability.intersect(spec.cap_bands);
      if (device.capability.none()) device.capability = spec.cap_bands;
    }
    if (rng_.bernoulli(spec.lte_sim_disabled_rate)) {
      device.sim_allowed_rats =
          cellnet::RatMask{static_cast<std::uint8_t>(0b011)};  // 2G+3G only
    }

    // Behavioural realizations.
    device.sessions_per_day = stats::clamped(
        stats::sample_lognormal(rng_, spec.profile.sessions_per_day_mu,
                                spec.profile.sessions_per_day_sigma),
        0.05, 2'000.0);
    device.bytes_per_day =
        rng_.bernoulli(spec.profile.p_no_data)
            ? 0.0
            : stats::clamped(stats::sample_lognormal(rng_, spec.profile.bytes_per_day_mu,
                                                     spec.profile.bytes_per_day_sigma),
                             16.0, 5.0e10);
    device.calls_per_day =
        rng_.bernoulli(spec.profile.p_no_voice)
            ? 0.0
            : stats::clamped(
                  stats::sample_exponential(
                      rng_, 1.0 / std::max(0.01, spec.profile.calls_per_day_mean)),
                  0.02, 200.0);

    // Presence window.
    if (rng_.bernoulli(spec.profile.p_full_period)) {
      device.arrival_day = 0;
      device.departure_day = spec.horizon_days;
    } else {
      device.arrival_day =
          static_cast<std::int32_t>(rng_.below(static_cast<std::uint64_t>(spec.horizon_days)));
      const double span = 1.0 + stats::sample_exponential(
                                    rng_, 1.0 / spec.profile.active_span_days_mean);
      device.departure_day = std::min<std::int32_t>(
          spec.horizon_days,
          device.arrival_day + static_cast<std::int32_t>(std::ceil(span)));
    }

    // APN assignment. A data-less device keeps an empty APN regardless of
    // policy (§4.3: 21% of devices expose no APN — voice-only usage).
    if (device.uses_data() && spec.apn_policy != ApnPolicy::kNone) {
      switch (spec.apn_policy) {
        case ApnPolicy::kVerticalCompany: {
          if (!companies.empty()) {
            const auto& company = companies[rng_.weighted_index(company_weights)];
            device.apn = make_vertical_apn(company, home_plmn, rng_);
          } else {
            device.apn = make_platform_apn(home_plmn, rng_);
          }
          break;
        }
        case ApnPolicy::kConsumer:
          device.apn = make_consumer_apn(home_plmn, rng_);
          break;
        case ApnPolicy::kM2MPlatform:
          device.apn = make_platform_apn(home_plmn, rng_);
          break;
        case ApnPolicy::kNone:
          break;
      }
    }

    // Placement: scattered around the deployment country's anchor.
    device.home_country = spec.deployment_iso;
    device.current_country = spec.deployment_iso;
    const double angle = rng_.uniform(0.0, 6.283185307179586);
    const double radius = spec.deployment_spread_m * std::sqrt(rng_.uniform());
    device.home_east_m = radius * std::cos(angle);
    device.home_north_m = radius * std::sin(angle);
    device.east_m = device.home_east_m;
    device.north_m = device.home_north_m;

    fleet.push_back(std::move(device));
  }
  return fleet;
}

}  // namespace wtr::devices
