#pragma once

// Ground-truth device classes. The paper splits the MNO population into
// smart (smartphones), feat (feature phones) and m2m (§4.3); the simulator
// assigns these as ground truth, and the classifier in core/ must recover
// them from observable properties only.

#include <cstdint>
#include <string_view>

namespace wtr::devices {

enum class DeviceClass : std::uint8_t {
  kSmartphone = 0,
  kFeaturePhone = 1,
  kM2M = 2,
};

inline constexpr int kDeviceClassCount = 3;

[[nodiscard]] std::string_view device_class_name(DeviceClass device_class) noexcept;

}  // namespace wtr::devices
