#include "devices/device.hpp"

// Device is a plain aggregate; behaviour lives in sim/device_agent. This
// translation unit exists to anchor the header in the build.
