#pragma once

// Per-class behavioural parameters. Each figure the paper draws is the
// image of one of these knobs: per-device session intensity (Fig. 3-left /
// Fig. 10-left), activity longevity (Fig. 7 / 11), mobility (Fig. 8 / 12),
// RAT dependence (Fig. 9), data/voice volumes (Fig. 10). Individual devices
// sample their own parameters from the distributions described here.

#include <cstdint>

#include "cellnet/tac_catalog.hpp"
#include "devices/device_class.hpp"
#include "devices/verticals.hpp"

namespace wtr::devices {

enum class MobilityKind : std::uint8_t {
  kStationary,     // smart meters, vending, POS: fixed location + cell jitter
  kLocalCommuter,  // phones, wearables: daily movement within a metro radius
  kLongHaul,       // cars, trackers: cross-region, sometimes cross-country
};

[[nodiscard]] std::string_view mobility_kind_name(MobilityKind kind) noexcept;

struct BehaviorProfile {
  DeviceClass device_class = DeviceClass::kM2M;
  Vertical vertical = Vertical::kNone;
  cellnet::EquipmentCategory equipment = cellnet::EquipmentCategory::kM2MModule;

  // --- Activity intensity: sessions per active day, log-normal across
  // devices (mu/sigma of the underlying normal).
  double sessions_per_day_mu = 1.0;
  double sessions_per_day_sigma = 1.0;
  // Diurnal modulation floor: 1.0 = flat (machine traffic), lower values
  // concentrate activity in human waking hours.
  double diurnal_floor = 1.0;

  // --- Presence: fraction of the observation window the device is active.
  // Devices sample an arrival day and an active-span; `p_full_period`
  // devices are active throughout (deployed before the window).
  double p_full_period = 0.5;
  double active_span_days_mean = 8.0;

  // --- Data usage.
  double p_no_data = 0.0;          // device never opens a data session
  double bytes_per_day_mu = 10.0;  // log-normal daily volume when it does
  double bytes_per_day_sigma = 1.5;

  // --- Voice usage (M2M "voice" = SMS-like supervisory contact, §6.1).
  double p_no_voice = 0.3;
  double calls_per_day_mean = 0.5;
  double call_seconds_mean = 60.0;

  // --- Mobility.
  MobilityKind mobility = MobilityKind::kStationary;
  double commute_radius_m = 8'000.0;   // local movement scale
  double stationary_jitter_m = 150.0;  // cell-reselection wobble for fixed devices
  double p_cross_country_trip = 0.0;   // per-day chance a long-haul device changes country

  // --- Network behaviour.
  double p_vmno_switch = 0.02;   // chance a (roaming) session reselects the VMNO
  double area_updates_per_session = 2.0;  // RAU/TAU volume riding on each session
  double p_detach_after_session = 0.3;    // otherwise stays attached
};

/// Canonical profiles (population-level defaults; fleets may override).
[[nodiscard]] BehaviorProfile smartphone_profile() noexcept;
[[nodiscard]] BehaviorProfile feature_phone_profile() noexcept;
[[nodiscard]] BehaviorProfile m2m_profile(Vertical vertical) noexcept;

}  // namespace wtr::devices
