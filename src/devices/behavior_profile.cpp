#include "devices/behavior_profile.hpp"

namespace wtr::devices {

std::string_view mobility_kind_name(MobilityKind kind) noexcept {
  switch (kind) {
    case MobilityKind::kStationary: return "stationary";
    case MobilityKind::kLocalCommuter: return "commuter";
    case MobilityKind::kLongHaul: return "long-haul";
  }
  return "?";
}

BehaviorProfile smartphone_profile() noexcept {
  BehaviorProfile p;
  p.device_class = DeviceClass::kSmartphone;
  p.vertical = Vertical::kNone;
  p.equipment = cellnet::EquipmentCategory::kSmartphone;
  p.sessions_per_day_mu = 3.0;   // exp(3.0) ≈ 20 sessions/day median
  p.sessions_per_day_sigma = 0.7;
  p.diurnal_floor = 0.15;        // strong human diurnal pattern
  p.p_full_period = 0.85;        // native phones live on the network
  p.active_span_days_mean = 10.0;
  p.p_no_data = 0.02;
  p.bytes_per_day_mu = 18.0;     // ≈ 65 MB/day median
  p.bytes_per_day_sigma = 1.2;
  p.p_no_voice = 0.05;
  p.calls_per_day_mean = 4.0;
  p.call_seconds_mean = 110.0;
  p.mobility = MobilityKind::kLocalCommuter;
  p.commute_radius_m = 9'000.0;
  p.p_vmno_switch = 0.01;
  p.area_updates_per_session = 1.5;
  p.p_detach_after_session = 0.1;
  return p;
}

BehaviorProfile feature_phone_profile() noexcept {
  BehaviorProfile p;
  p.device_class = DeviceClass::kFeaturePhone;
  p.vertical = Vertical::kNone;
  p.equipment = cellnet::EquipmentCategory::kFeaturePhone;
  p.sessions_per_day_mu = 1.3;   // ≈ 4 sessions/day median
  p.sessions_per_day_sigma = 0.7;
  p.diurnal_floor = 0.2;
  p.p_full_period = 0.8;
  p.active_span_days_mean = 9.0;
  p.p_no_data = 0.57;            // §6.1: 56.8% of feature phones move no data
  p.bytes_per_day_mu = 11.0;     // ≈ 60 KB/day when they do
  p.bytes_per_day_sigma = 1.3;
  p.p_no_voice = 0.07;           // §6.1: only 7.3% make no calls
  p.calls_per_day_mean = 2.5;
  p.call_seconds_mean = 90.0;
  p.mobility = MobilityKind::kLocalCommuter;
  p.commute_radius_m = 5'000.0;
  p.p_vmno_switch = 0.01;
  p.area_updates_per_session = 1.0;
  p.p_detach_after_session = 0.15;
  return p;
}

BehaviorProfile m2m_profile(Vertical vertical) noexcept {
  BehaviorProfile p;
  p.device_class = DeviceClass::kM2M;
  p.vertical = vertical;
  p.equipment = cellnet::EquipmentCategory::kM2MModule;
  // Machine traffic: no diurnal pattern, stationary, low-rate by default.
  p.diurnal_floor = 1.0;
  p.mobility = MobilityKind::kStationary;
  p.p_full_period = 0.55;
  p.active_span_days_mean = 10.0;
  p.p_detach_after_session = 0.5;
  p.p_vmno_switch = 0.001;  // fixed devices essentially never churn VMNOs
  p.area_updates_per_session = 0.4;  // stationary boxes barely produce RAU/TAU
  switch (vertical) {
    case Vertical::kSmartMeter:
      p.sessions_per_day_mu = 0.7;  // ≈ 2 reporting sessions/day
      p.sessions_per_day_sigma = 0.5;
      p.p_no_data = 0.05;
      p.bytes_per_day_mu = 9.0;     // ≈ 8 KB/day of register reads
      p.bytes_per_day_sigma = 0.8;
      p.p_no_voice = 0.25;          // SMS-like supervisory contact (§6.1: most
      p.calls_per_day_mean = 0.45;  // M2M devices do register "voice" activity)
      p.call_seconds_mean = 8.0;
      p.stationary_jitter_m = 100.0;  // meters are bolted to a wall
      p.area_updates_per_session = 0.3;
      break;
    case Vertical::kConnectedCar:
      p.sessions_per_day_mu = 2.6;  // cars chat constantly while moving
      p.sessions_per_day_sigma = 0.8;
      p.p_no_data = 0.02;
      p.bytes_per_day_mu = 15.0;    // ≈ 3 MB/day
      p.bytes_per_day_sigma = 1.2;
      p.p_no_voice = 0.4;           // eCall test traffic
      p.calls_per_day_mean = 0.3;
      p.call_seconds_mean = 20.0;
      p.mobility = MobilityKind::kLongHaul;
      p.commute_radius_m = 60'000.0;
      p.p_cross_country_trip = 0.08;
      p.p_vmno_switch = 0.05;       // seamless-coverage requirement (§3.2)
      p.area_updates_per_session = 3.0;
      p.p_detach_after_session = 0.2;
      break;
    case Vertical::kLogisticsTracker:
      p.sessions_per_day_mu = 1.6;
      p.sessions_per_day_sigma = 0.9;
      p.p_no_data = 0.05;
      p.bytes_per_day_mu = 10.5;
      p.bytes_per_day_sigma = 1.0;
      p.p_no_voice = 0.25;
      p.calls_per_day_mean = 0.35;
      p.call_seconds_mean = 8.0;
      p.mobility = MobilityKind::kLongHaul;
      p.commute_radius_m = 40'000.0;
      p.p_cross_country_trip = 0.05;
      p.p_vmno_switch = 0.005;
      p.area_updates_per_session = 1.5;
      break;
    case Vertical::kWearable:
      p.sessions_per_day_mu = 1.8;
      p.sessions_per_day_sigma = 0.7;
      p.diurnal_floor = 0.4;        // worn by humans: partial diurnality
      p.p_no_data = 0.08;
      p.bytes_per_day_mu = 12.0;
      p.bytes_per_day_sigma = 1.0;
      p.p_no_voice = 0.3;
      p.calls_per_day_mean = 0.3;
      p.call_seconds_mean = 30.0;
      p.mobility = MobilityKind::kLocalCommuter;
      p.commute_radius_m = 7'000.0;
      p.p_vmno_switch = 0.002;
      break;
    case Vertical::kPosTerminal:
      p.sessions_per_day_mu = 1.9;  // one session per transaction batch
      p.sessions_per_day_sigma = 0.6;
      p.diurnal_floor = 0.3;        // shops have opening hours
      p.p_no_data = 0.03;
      p.bytes_per_day_mu = 9.5;
      p.bytes_per_day_sigma = 0.7;
      p.p_no_voice = 0.25;
      p.calls_per_day_mean = 0.4;
      p.call_seconds_mean = 5.0;
      p.p_vmno_switch = 0.002;      // failover-driven reselection (§2.2)
      break;
    case Vertical::kVendingMachine:
      p.sessions_per_day_mu = -0.7; // ≈ 0.5 sessions/day (stock report)
      p.sessions_per_day_sigma = 0.6;
      p.p_no_data = 0.10;
      p.bytes_per_day_mu = 7.5;
      p.bytes_per_day_sigma = 0.8;
      p.p_no_voice = 0.3;
      p.calls_per_day_mean = 0.35;
      p.call_seconds_mean = 5.0;
      break;
    case Vertical::kSecurityAlarm:
      p.sessions_per_day_mu = 0.3;
      p.sessions_per_day_sigma = 0.6;
      p.p_no_data = 0.85;           // the voice-only M2M population of §6.1
      p.bytes_per_day_mu = 7.0;
      p.bytes_per_day_sigma = 0.7;
      p.p_no_voice = 0.1;           // supervisory "calls" are their channel
      p.calls_per_day_mean = 0.8;
      p.call_seconds_mean = 12.0;
      break;
    case Vertical::kFleetTelematics:
      p.sessions_per_day_mu = 2.0;
      p.sessions_per_day_sigma = 0.8;
      p.p_no_data = 0.04;
      p.bytes_per_day_mu = 12.5;
      p.bytes_per_day_sigma = 1.0;
      p.p_no_voice = 0.35;
      p.calls_per_day_mean = 0.2;
      p.call_seconds_mean = 10.0;
      p.mobility = MobilityKind::kLongHaul;
      p.commute_radius_m = 30'000.0;
      p.p_cross_country_trip = 0.03;
      p.p_vmno_switch = 0.008;
      p.area_updates_per_session = 1.5;
      break;
    case Vertical::kEbookReader:
      p.sessions_per_day_mu = -0.4;
      p.sessions_per_day_sigma = 0.9;
      p.diurnal_floor = 0.3;
      p.p_no_data = 0.05;
      p.bytes_per_day_mu = 11.0;
      p.bytes_per_day_sigma = 1.4;
      p.p_no_voice = 0.98;
      p.calls_per_day_mean = 0.0;
      p.call_seconds_mean = 0.0;
      p.mobility = MobilityKind::kLocalCommuter;
      p.commute_radius_m = 4'000.0;
      break;
    case Vertical::kNone:
      break;
  }
  return p;
}

}  // namespace wtr::devices
