#include "devices/device_class.hpp"

namespace wtr::devices {

std::string_view device_class_name(DeviceClass device_class) noexcept {
  switch (device_class) {
    case DeviceClass::kSmartphone: return "smart";
    case DeviceClass::kFeaturePhone: return "feat";
    case DeviceClass::kM2M: return "m2m";
  }
  return "?";
}

}  // namespace wtr::devices
