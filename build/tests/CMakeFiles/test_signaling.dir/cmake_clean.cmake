file(REMOVE_RECURSE
  "CMakeFiles/test_signaling.dir/test_signaling.cpp.o"
  "CMakeFiles/test_signaling.dir/test_signaling.cpp.o.d"
  "test_signaling"
  "test_signaling.pdb"
  "test_signaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
