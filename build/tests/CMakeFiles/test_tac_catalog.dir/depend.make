# Empty dependencies file for test_tac_catalog.
# This may be replaced when dependencies are built.
