file(REMOVE_RECURSE
  "CMakeFiles/test_tac_catalog.dir/test_tac_catalog.cpp.o"
  "CMakeFiles/test_tac_catalog.dir/test_tac_catalog.cpp.o.d"
  "test_tac_catalog"
  "test_tac_catalog.pdb"
  "test_tac_catalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tac_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
