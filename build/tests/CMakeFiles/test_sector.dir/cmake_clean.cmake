file(REMOVE_RECURSE
  "CMakeFiles/test_sector.dir/test_sector.cpp.o"
  "CMakeFiles/test_sector.dir/test_sector.cpp.o.d"
  "test_sector"
  "test_sector.pdb"
  "test_sector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
