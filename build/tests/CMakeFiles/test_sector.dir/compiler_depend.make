# Empty compiler generated dependencies file for test_sector.
# This may be replaced when dependencies are built.
