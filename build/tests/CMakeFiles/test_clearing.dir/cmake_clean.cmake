file(REMOVE_RECURSE
  "CMakeFiles/test_clearing.dir/test_clearing.cpp.o"
  "CMakeFiles/test_clearing.dir/test_clearing.cpp.o.d"
  "test_clearing"
  "test_clearing.pdb"
  "test_clearing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clearing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
