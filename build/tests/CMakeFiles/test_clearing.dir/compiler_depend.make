# Empty compiler generated dependencies file for test_clearing.
# This may be replaced when dependencies are built.
