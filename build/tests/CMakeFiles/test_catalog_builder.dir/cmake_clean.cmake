file(REMOVE_RECURSE
  "CMakeFiles/test_catalog_builder.dir/test_catalog_builder.cpp.o"
  "CMakeFiles/test_catalog_builder.dir/test_catalog_builder.cpp.o.d"
  "test_catalog_builder"
  "test_catalog_builder.pdb"
  "test_catalog_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalog_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
