# Empty dependencies file for test_catalog_builder.
# This may be replaced when dependencies are built.
