# Empty dependencies file for test_apn.
# This may be replaced when dependencies are built.
