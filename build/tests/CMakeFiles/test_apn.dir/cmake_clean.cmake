file(REMOVE_RECURSE
  "CMakeFiles/test_apn.dir/test_apn.cpp.o"
  "CMakeFiles/test_apn.dir/test_apn.cpp.o.d"
  "test_apn"
  "test_apn.pdb"
  "test_apn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
