file(REMOVE_RECURSE
  "CMakeFiles/test_rat.dir/test_rat.cpp.o"
  "CMakeFiles/test_rat.dir/test_rat.cpp.o.d"
  "test_rat"
  "test_rat.pdb"
  "test_rat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
