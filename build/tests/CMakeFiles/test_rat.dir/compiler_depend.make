# Empty compiler generated dependencies file for test_rat.
# This may be replaced when dependencies are built.
