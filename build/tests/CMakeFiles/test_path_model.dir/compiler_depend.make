# Empty compiler generated dependencies file for test_path_model.
# This may be replaced when dependencies are built.
