file(REMOVE_RECURSE
  "CMakeFiles/test_path_model.dir/test_path_model.cpp.o"
  "CMakeFiles/test_path_model.dir/test_path_model.cpp.o.d"
  "test_path_model"
  "test_path_model.pdb"
  "test_path_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
