file(REMOVE_RECURSE
  "CMakeFiles/test_mobility_metrics.dir/test_mobility_metrics.cpp.o"
  "CMakeFiles/test_mobility_metrics.dir/test_mobility_metrics.cpp.o.d"
  "test_mobility_metrics"
  "test_mobility_metrics.pdb"
  "test_mobility_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobility_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
