# Empty compiler generated dependencies file for test_plmn.
# This may be replaced when dependencies are built.
