file(REMOVE_RECURSE
  "CMakeFiles/test_plmn.dir/test_plmn.cpp.o"
  "CMakeFiles/test_plmn.dir/test_plmn.cpp.o.d"
  "test_plmn"
  "test_plmn.pdb"
  "test_plmn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plmn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
