file(REMOVE_RECURSE
  "CMakeFiles/test_smip_integration.dir/test_smip_integration.cpp.o"
  "CMakeFiles/test_smip_integration.dir/test_smip_integration.cpp.o.d"
  "test_smip_integration"
  "test_smip_integration.pdb"
  "test_smip_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smip_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
