file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_determinism.dir/test_scenario_determinism.cpp.o"
  "CMakeFiles/test_scenario_determinism.dir/test_scenario_determinism.cpp.o.d"
  "test_scenario_determinism"
  "test_scenario_determinism.pdb"
  "test_scenario_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
