# Empty compiler generated dependencies file for test_scenario_determinism.
# This may be replaced when dependencies are built.
