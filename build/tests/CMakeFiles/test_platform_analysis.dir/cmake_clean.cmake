file(REMOVE_RECURSE
  "CMakeFiles/test_platform_analysis.dir/test_platform_analysis.cpp.o"
  "CMakeFiles/test_platform_analysis.dir/test_platform_analysis.cpp.o.d"
  "test_platform_analysis"
  "test_platform_analysis.pdb"
  "test_platform_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
