# Empty compiler generated dependencies file for test_platform_analysis.
# This may be replaced when dependencies are built.
