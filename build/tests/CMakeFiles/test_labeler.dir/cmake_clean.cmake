file(REMOVE_RECURSE
  "CMakeFiles/test_labeler.dir/test_labeler.cpp.o"
  "CMakeFiles/test_labeler.dir/test_labeler.cpp.o.d"
  "test_labeler"
  "test_labeler.pdb"
  "test_labeler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_labeler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
