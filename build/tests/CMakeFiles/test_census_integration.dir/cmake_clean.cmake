file(REMOVE_RECURSE
  "CMakeFiles/test_census_integration.dir/test_census_integration.cpp.o"
  "CMakeFiles/test_census_integration.dir/test_census_integration.cpp.o.d"
  "test_census_integration"
  "test_census_integration.pdb"
  "test_census_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_census_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
