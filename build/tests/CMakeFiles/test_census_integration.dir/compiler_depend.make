# Empty compiler generated dependencies file for test_census_integration.
# This may be replaced when dependencies are built.
