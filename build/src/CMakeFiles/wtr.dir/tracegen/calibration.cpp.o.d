src/CMakeFiles/wtr.dir/tracegen/calibration.cpp.o: \
 /root/repo/src/tracegen/calibration.cpp /usr/include/stdc-predef.h \
 /root/repo/src/tracegen/calibration.hpp
