# Empty dependencies file for wtr.
# This may be replaced when dependencies are built.
