file(REMOVE_RECURSE
  "libwtr.a"
)
