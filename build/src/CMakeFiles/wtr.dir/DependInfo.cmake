
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellnet/apn.cpp" "src/CMakeFiles/wtr.dir/cellnet/apn.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/cellnet/apn.cpp.o.d"
  "/root/repo/src/cellnet/country.cpp" "src/CMakeFiles/wtr.dir/cellnet/country.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/cellnet/country.cpp.o.d"
  "/root/repo/src/cellnet/geo.cpp" "src/CMakeFiles/wtr.dir/cellnet/geo.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/cellnet/geo.cpp.o.d"
  "/root/repo/src/cellnet/imei.cpp" "src/CMakeFiles/wtr.dir/cellnet/imei.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/cellnet/imei.cpp.o.d"
  "/root/repo/src/cellnet/imsi.cpp" "src/CMakeFiles/wtr.dir/cellnet/imsi.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/cellnet/imsi.cpp.o.d"
  "/root/repo/src/cellnet/plmn.cpp" "src/CMakeFiles/wtr.dir/cellnet/plmn.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/cellnet/plmn.cpp.o.d"
  "/root/repo/src/cellnet/rat.cpp" "src/CMakeFiles/wtr.dir/cellnet/rat.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/cellnet/rat.cpp.o.d"
  "/root/repo/src/cellnet/sector.cpp" "src/CMakeFiles/wtr.dir/cellnet/sector.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/cellnet/sector.cpp.o.d"
  "/root/repo/src/cellnet/tac_catalog.cpp" "src/CMakeFiles/wtr.dir/cellnet/tac_catalog.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/cellnet/tac_catalog.cpp.o.d"
  "/root/repo/src/core/activity_metrics.cpp" "src/CMakeFiles/wtr.dir/core/activity_metrics.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/activity_metrics.cpp.o.d"
  "/root/repo/src/core/baseline_classifier.cpp" "src/CMakeFiles/wtr.dir/core/baseline_classifier.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/baseline_classifier.cpp.o.d"
  "/root/repo/src/core/catalog_builder.cpp" "src/CMakeFiles/wtr.dir/core/catalog_builder.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/catalog_builder.cpp.o.d"
  "/root/repo/src/core/census.cpp" "src/CMakeFiles/wtr.dir/core/census.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/census.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/CMakeFiles/wtr.dir/core/classifier.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/classifier.cpp.o.d"
  "/root/repo/src/core/classifier_validation.cpp" "src/CMakeFiles/wtr.dir/core/classifier_validation.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/classifier_validation.cpp.o.d"
  "/root/repo/src/core/clearing.cpp" "src/CMakeFiles/wtr.dir/core/clearing.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/clearing.cpp.o.d"
  "/root/repo/src/core/mobility_metrics.cpp" "src/CMakeFiles/wtr.dir/core/mobility_metrics.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/mobility_metrics.cpp.o.d"
  "/root/repo/src/core/platform_analysis.cpp" "src/CMakeFiles/wtr.dir/core/platform_analysis.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/platform_analysis.cpp.o.d"
  "/root/repo/src/core/rat_usage.cpp" "src/CMakeFiles/wtr.dir/core/rat_usage.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/rat_usage.cpp.o.d"
  "/root/repo/src/core/revenue.cpp" "src/CMakeFiles/wtr.dir/core/revenue.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/revenue.cpp.o.d"
  "/root/repo/src/core/roaming_labeler.cpp" "src/CMakeFiles/wtr.dir/core/roaming_labeler.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/roaming_labeler.cpp.o.d"
  "/root/repo/src/core/smip_analysis.cpp" "src/CMakeFiles/wtr.dir/core/smip_analysis.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/smip_analysis.cpp.o.d"
  "/root/repo/src/core/trace_replay.cpp" "src/CMakeFiles/wtr.dir/core/trace_replay.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/trace_replay.cpp.o.d"
  "/root/repo/src/core/traffic_metrics.cpp" "src/CMakeFiles/wtr.dir/core/traffic_metrics.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/traffic_metrics.cpp.o.d"
  "/root/repo/src/core/vertical_analysis.cpp" "src/CMakeFiles/wtr.dir/core/vertical_analysis.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/core/vertical_analysis.cpp.o.d"
  "/root/repo/src/devices/behavior_profile.cpp" "src/CMakeFiles/wtr.dir/devices/behavior_profile.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/devices/behavior_profile.cpp.o.d"
  "/root/repo/src/devices/device.cpp" "src/CMakeFiles/wtr.dir/devices/device.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/devices/device.cpp.o.d"
  "/root/repo/src/devices/device_class.cpp" "src/CMakeFiles/wtr.dir/devices/device_class.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/devices/device_class.cpp.o.d"
  "/root/repo/src/devices/fleet_builder.cpp" "src/CMakeFiles/wtr.dir/devices/fleet_builder.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/devices/fleet_builder.cpp.o.d"
  "/root/repo/src/devices/verticals.cpp" "src/CMakeFiles/wtr.dir/devices/verticals.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/devices/verticals.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/wtr.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/CMakeFiles/wtr.dir/io/table.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/io/table.cpp.o.d"
  "/root/repo/src/records/cdr.cpp" "src/CMakeFiles/wtr.dir/records/cdr.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/records/cdr.cpp.o.d"
  "/root/repo/src/records/devices_catalog.cpp" "src/CMakeFiles/wtr.dir/records/devices_catalog.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/records/devices_catalog.cpp.o.d"
  "/root/repo/src/records/platform_transaction.cpp" "src/CMakeFiles/wtr.dir/records/platform_transaction.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/records/platform_transaction.cpp.o.d"
  "/root/repo/src/records/radio_event.cpp" "src/CMakeFiles/wtr.dir/records/radio_event.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/records/radio_event.cpp.o.d"
  "/root/repo/src/records/xdr.cpp" "src/CMakeFiles/wtr.dir/records/xdr.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/records/xdr.cpp.o.d"
  "/root/repo/src/signaling/emm_state.cpp" "src/CMakeFiles/wtr.dir/signaling/emm_state.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/signaling/emm_state.cpp.o.d"
  "/root/repo/src/signaling/outcome_policy.cpp" "src/CMakeFiles/wtr.dir/signaling/outcome_policy.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/signaling/outcome_policy.cpp.o.d"
  "/root/repo/src/signaling/procedure.cpp" "src/CMakeFiles/wtr.dir/signaling/procedure.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/signaling/procedure.cpp.o.d"
  "/root/repo/src/signaling/result_code.cpp" "src/CMakeFiles/wtr.dir/signaling/result_code.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/signaling/result_code.cpp.o.d"
  "/root/repo/src/signaling/transaction.cpp" "src/CMakeFiles/wtr.dir/signaling/transaction.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/signaling/transaction.cpp.o.d"
  "/root/repo/src/sim/device_agent.cpp" "src/CMakeFiles/wtr.dir/sim/device_agent.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/sim/device_agent.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/wtr.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/wtr.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/CMakeFiles/wtr.dir/sim/mobility.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/sim/mobility.cpp.o.d"
  "/root/repo/src/sim/network_selection.cpp" "src/CMakeFiles/wtr.dir/sim/network_selection.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/sim/network_selection.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/CMakeFiles/wtr.dir/stats/distributions.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/stats/distributions.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/CMakeFiles/wtr.dir/stats/ecdf.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/stats/ecdf.cpp.o.d"
  "/root/repo/src/stats/heatmap.cpp" "src/CMakeFiles/wtr.dir/stats/heatmap.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/stats/heatmap.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/wtr.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/CMakeFiles/wtr.dir/stats/rng.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/stats/rng.cpp.o.d"
  "/root/repo/src/stats/sim_time.cpp" "src/CMakeFiles/wtr.dir/stats/sim_time.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/stats/sim_time.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/wtr.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/stats/summary.cpp.o.d"
  "/root/repo/src/topology/coverage.cpp" "src/CMakeFiles/wtr.dir/topology/coverage.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/topology/coverage.cpp.o.d"
  "/root/repo/src/topology/operator_registry.cpp" "src/CMakeFiles/wtr.dir/topology/operator_registry.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/topology/operator_registry.cpp.o.d"
  "/root/repo/src/topology/path_model.cpp" "src/CMakeFiles/wtr.dir/topology/path_model.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/topology/path_model.cpp.o.d"
  "/root/repo/src/topology/roaming_agreements.cpp" "src/CMakeFiles/wtr.dir/topology/roaming_agreements.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/topology/roaming_agreements.cpp.o.d"
  "/root/repo/src/topology/roaming_hub.cpp" "src/CMakeFiles/wtr.dir/topology/roaming_hub.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/topology/roaming_hub.cpp.o.d"
  "/root/repo/src/topology/steering.cpp" "src/CMakeFiles/wtr.dir/topology/steering.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/topology/steering.cpp.o.d"
  "/root/repo/src/topology/world.cpp" "src/CMakeFiles/wtr.dir/topology/world.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/topology/world.cpp.o.d"
  "/root/repo/src/tracegen/calibration.cpp" "src/CMakeFiles/wtr.dir/tracegen/calibration.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/tracegen/calibration.cpp.o.d"
  "/root/repo/src/tracegen/m2m_platform_scenario.cpp" "src/CMakeFiles/wtr.dir/tracegen/m2m_platform_scenario.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/tracegen/m2m_platform_scenario.cpp.o.d"
  "/root/repo/src/tracegen/mno_scenario.cpp" "src/CMakeFiles/wtr.dir/tracegen/mno_scenario.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/tracegen/mno_scenario.cpp.o.d"
  "/root/repo/src/tracegen/scenario.cpp" "src/CMakeFiles/wtr.dir/tracegen/scenario.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/tracegen/scenario.cpp.o.d"
  "/root/repo/src/tracegen/smip_scenario.cpp" "src/CMakeFiles/wtr.dir/tracegen/smip_scenario.cpp.o" "gcc" "src/CMakeFiles/wtr.dir/tracegen/smip_scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
