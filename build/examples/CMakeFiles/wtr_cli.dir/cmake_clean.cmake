file(REMOVE_RECURSE
  "CMakeFiles/wtr_cli.dir/wtr_cli.cpp.o"
  "CMakeFiles/wtr_cli.dir/wtr_cli.cpp.o.d"
  "wtr_cli"
  "wtr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
