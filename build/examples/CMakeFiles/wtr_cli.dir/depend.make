# Empty dependencies file for wtr_cli.
# This may be replaced when dependencies are built.
