file(REMOVE_RECURSE
  "CMakeFiles/platform_footprint.dir/platform_footprint.cpp.o"
  "CMakeFiles/platform_footprint.dir/platform_footprint.cpp.o.d"
  "platform_footprint"
  "platform_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
