# Empty dependencies file for platform_footprint.
# This may be replaced when dependencies are built.
