file(REMOVE_RECURSE
  "CMakeFiles/export_traces.dir/export_traces.cpp.o"
  "CMakeFiles/export_traces.dir/export_traces.cpp.o.d"
  "export_traces"
  "export_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
