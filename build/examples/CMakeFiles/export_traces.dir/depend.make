# Empty dependencies file for export_traces.
# This may be replaced when dependencies are built.
