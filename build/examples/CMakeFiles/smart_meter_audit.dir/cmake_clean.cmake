file(REMOVE_RECURSE
  "CMakeFiles/smart_meter_audit.dir/smart_meter_audit.cpp.o"
  "CMakeFiles/smart_meter_audit.dir/smart_meter_audit.cpp.o.d"
  "smart_meter_audit"
  "smart_meter_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_meter_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
