# Empty dependencies file for smart_meter_audit.
# This may be replaced when dependencies are built.
