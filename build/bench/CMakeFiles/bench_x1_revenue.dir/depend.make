# Empty dependencies file for bench_x1_revenue.
# This may be replaced when dependencies are built.
