file(REMOVE_RECURSE
  "CMakeFiles/bench_x1_revenue.dir/bench_x1_revenue.cpp.o"
  "CMakeFiles/bench_x1_revenue.dir/bench_x1_revenue.cpp.o.d"
  "bench_x1_revenue"
  "bench_x1_revenue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x1_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
