# Empty dependencies file for bench_fig05_home_country.
# This may be replaced when dependencies are built.
