# Empty dependencies file for bench_fig03_device_dynamics.
# This may be replaced when dependencies are built.
