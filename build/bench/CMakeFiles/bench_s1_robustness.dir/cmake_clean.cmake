file(REMOVE_RECURSE
  "CMakeFiles/bench_s1_robustness.dir/bench_s1_robustness.cpp.o"
  "CMakeFiles/bench_s1_robustness.dir/bench_s1_robustness.cpp.o.d"
  "bench_s1_robustness"
  "bench_s1_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s1_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
