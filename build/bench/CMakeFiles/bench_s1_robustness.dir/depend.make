# Empty dependencies file for bench_s1_robustness.
# This may be replaced when dependencies are built.
