# Empty dependencies file for bench_x2_sunset.
# This may be replaced when dependencies are built.
