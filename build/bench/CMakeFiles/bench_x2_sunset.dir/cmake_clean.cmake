file(REMOVE_RECURSE
  "CMakeFiles/bench_x2_sunset.dir/bench_x2_sunset.cpp.o"
  "CMakeFiles/bench_x2_sunset.dir/bench_x2_sunset.cpp.o.d"
  "bench_x2_sunset"
  "bench_x2_sunset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x2_sunset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
