file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_pipeline_perf.dir/bench_p1_pipeline_perf.cpp.o"
  "CMakeFiles/bench_p1_pipeline_perf.dir/bench_p1_pipeline_perf.cpp.o.d"
  "bench_p1_pipeline_perf"
  "bench_p1_pipeline_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_pipeline_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
