# Empty dependencies file for bench_p1_pipeline_perf.
# This may be replaced when dependencies are built.
