# Empty compiler generated dependencies file for bench_x5_breakout_paths.
# This may be replaced when dependencies are built.
