file(REMOVE_RECURSE
  "CMakeFiles/bench_x5_breakout_paths.dir/bench_x5_breakout_paths.cpp.o"
  "CMakeFiles/bench_x5_breakout_paths.dir/bench_x5_breakout_paths.cpp.o.d"
  "bench_x5_breakout_paths"
  "bench_x5_breakout_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x5_breakout_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
