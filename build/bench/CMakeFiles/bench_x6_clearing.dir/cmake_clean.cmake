file(REMOVE_RECURSE
  "CMakeFiles/bench_x6_clearing.dir/bench_x6_clearing.cpp.o"
  "CMakeFiles/bench_x6_clearing.dir/bench_x6_clearing.cpp.o.d"
  "bench_x6_clearing"
  "bench_x6_clearing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x6_clearing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
