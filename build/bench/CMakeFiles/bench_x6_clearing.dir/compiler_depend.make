# Empty compiler generated dependencies file for bench_x6_clearing.
# This may be replaced when dependencies are built.
