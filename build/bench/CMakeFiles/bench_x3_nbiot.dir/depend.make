# Empty dependencies file for bench_x3_nbiot.
# This may be replaced when dependencies are built.
