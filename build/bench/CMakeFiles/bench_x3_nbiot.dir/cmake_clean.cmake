file(REMOVE_RECURSE
  "CMakeFiles/bench_x3_nbiot.dir/bench_x3_nbiot.cpp.o"
  "CMakeFiles/bench_x3_nbiot.dir/bench_x3_nbiot.cpp.o.d"
  "bench_x3_nbiot"
  "bench_x3_nbiot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x3_nbiot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
