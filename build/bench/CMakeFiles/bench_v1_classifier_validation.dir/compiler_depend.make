# Empty compiler generated dependencies file for bench_v1_classifier_validation.
# This may be replaced when dependencies are built.
