# Empty compiler generated dependencies file for bench_fig11_smip.
# This may be replaced when dependencies are built.
