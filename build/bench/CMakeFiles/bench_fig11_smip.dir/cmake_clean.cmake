file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_smip.dir/bench_fig11_smip.cpp.o"
  "CMakeFiles/bench_fig11_smip.dir/bench_fig11_smip.cpp.o.d"
  "bench_fig11_smip"
  "bench_fig11_smip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_smip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
