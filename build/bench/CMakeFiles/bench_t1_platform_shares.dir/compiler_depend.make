# Empty compiler generated dependencies file for bench_t1_platform_shares.
# This may be replaced when dependencies are built.
