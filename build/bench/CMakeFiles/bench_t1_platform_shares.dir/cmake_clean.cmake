file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_platform_shares.dir/bench_t1_platform_shares.cpp.o"
  "CMakeFiles/bench_t1_platform_shares.dir/bench_t1_platform_shares.cpp.o.d"
  "bench_t1_platform_shares"
  "bench_t1_platform_shares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_platform_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
