file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_hmno_footprint.dir/bench_fig02_hmno_footprint.cpp.o"
  "CMakeFiles/bench_fig02_hmno_footprint.dir/bench_fig02_hmno_footprint.cpp.o.d"
  "bench_fig02_hmno_footprint"
  "bench_fig02_hmno_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_hmno_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
