file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_class_vs_label.dir/bench_fig06_class_vs_label.cpp.o"
  "CMakeFiles/bench_fig06_class_vs_label.dir/bench_fig06_class_vs_label.cpp.o.d"
  "bench_fig06_class_vs_label"
  "bench_fig06_class_vs_label.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_class_vs_label.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
