# Empty compiler generated dependencies file for bench_fig06_class_vs_label.
# This may be replaced when dependencies are built.
