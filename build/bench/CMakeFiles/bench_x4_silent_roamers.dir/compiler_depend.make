# Empty compiler generated dependencies file for bench_x4_silent_roamers.
# This may be replaced when dependencies are built.
