file(REMOVE_RECURSE
  "CMakeFiles/bench_x4_silent_roamers.dir/bench_x4_silent_roamers.cpp.o"
  "CMakeFiles/bench_x4_silent_roamers.dir/bench_x4_silent_roamers.cpp.o.d"
  "bench_x4_silent_roamers"
  "bench_x4_silent_roamers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x4_silent_roamers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
