file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_verticals.dir/bench_fig12_verticals.cpp.o"
  "CMakeFiles/bench_fig12_verticals.dir/bench_fig12_verticals.cpp.o.d"
  "bench_fig12_verticals"
  "bench_fig12_verticals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_verticals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
