# Empty dependencies file for bench_fig12_verticals.
# This may be replaced when dependencies are built.
