# Empty compiler generated dependencies file for bench_fig07_active_days.
# This may be replaced when dependencies are built.
