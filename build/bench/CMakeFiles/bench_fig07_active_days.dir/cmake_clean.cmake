file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_active_days.dir/bench_fig07_active_days.cpp.o"
  "CMakeFiles/bench_fig07_active_days.dir/bench_fig07_active_days.cpp.o.d"
  "bench_fig07_active_days"
  "bench_fig07_active_days.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_active_days.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
