file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_gyration.dir/bench_fig08_gyration.cpp.o"
  "CMakeFiles/bench_fig08_gyration.dir/bench_fig08_gyration.cpp.o.d"
  "bench_fig08_gyration"
  "bench_fig08_gyration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_gyration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
