file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_smip_provenance.dir/bench_t3_smip_provenance.cpp.o"
  "CMakeFiles/bench_t3_smip_provenance.dir/bench_t3_smip_provenance.cpp.o.d"
  "bench_t3_smip_provenance"
  "bench_t3_smip_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_smip_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
