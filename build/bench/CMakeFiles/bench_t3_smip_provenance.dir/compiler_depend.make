# Empty compiler generated dependencies file for bench_t3_smip_provenance.
# This may be replaced when dependencies are built.
