#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wtr::io {
namespace {

TEST(Csv, EncodePlain) {
  EXPECT_EQ(csv_encode_row({"a", "b", "c"}), "a,b,c");
}

TEST(Csv, EncodeEmptyFields) {
  EXPECT_EQ(csv_encode_row({"", "", ""}), ",,");
  EXPECT_EQ(csv_encode_row({}), "");
}

TEST(Csv, EncodeQuoting) {
  EXPECT_EQ(csv_encode_row({"a,b"}), "\"a,b\"");
  EXPECT_EQ(csv_encode_row({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_encode_row({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(Csv, DecodePlain) {
  const auto row = csv_decode_row("a,b,c");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Csv, DecodeQuoted) {
  const auto row = csv_decode_row("\"a,b\",c");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (std::vector<std::string>{"a,b", "c"}));
}

TEST(Csv, DecodeEscapedQuotes) {
  const auto row = csv_decode_row("\"say \"\"hi\"\"\"");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->front(), "say \"hi\"");
}

TEST(Csv, DecodeToleratesCr) {
  const auto row = csv_decode_row("a,b\r");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, DecodeMalformedUnterminatedQuote) {
  EXPECT_FALSE(csv_decode_row("\"unterminated").has_value());
  EXPECT_FALSE(csv_decode_row("a,\"unterminated,b").has_value());
}

TEST(Csv, DecodeMalformedTextAfterClosingQuote) {
  // "ab"x — a truncated/corrupted row; gluing the tail on would misparse.
  EXPECT_FALSE(csv_decode_row("\"ab\"x").has_value());
  EXPECT_FALSE(csv_decode_row("\"ab\"x,c").has_value());
  EXPECT_FALSE(csv_decode_row("a,\"b\"\"c\"tail").has_value());
  // A closing quote followed directly by a delimiter or CR is still fine.
  EXPECT_TRUE(csv_decode_row("\"ab\",c").has_value());
  EXPECT_TRUE(csv_decode_row("\"ab\"\r").has_value());
}

TEST(Csv, DecodeMalformedQuoteMidUnquotedField) {
  EXPECT_FALSE(csv_decode_row("a\"b,c").has_value());
  EXPECT_FALSE(csv_decode_row("x,214-\"07,y").has_value());
  // A quote at the start of a field opens quoting as usual.
  const auto row = csv_decode_row("a,\"b,c\"");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (std::vector<std::string>{"a", "b,c"}));
}

TEST(Csv, DecodeEmptyLine) {
  const auto row = csv_decode_row("");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->size(), 1u);
  EXPECT_EQ(row->front(), "");
}

TEST(Csv, RoundTrip) {
  const std::vector<std::string> fields{"plain", "with,comma", "with \"quote\"",
                                        "", "multi\nline"};
  const auto decoded = csv_decode_row(csv_encode_row(fields));
  ASSERT_TRUE(decoded.has_value());
  // Note: line-at-a-time decode cannot round-trip embedded newlines; drop it.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ((*decoded)[i], fields[i]);
}

TEST(CsvWriter, WritesRowsWithNewlines) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.write_row({"h1", "h2"});
  writer.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "h1,h2\n1,2\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

}  // namespace
}  // namespace wtr::io
