#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wtr::io {
namespace {

TEST(Csv, EncodePlain) {
  EXPECT_EQ(csv_encode_row({"a", "b", "c"}), "a,b,c");
}

TEST(Csv, EncodeEmptyFields) {
  EXPECT_EQ(csv_encode_row({"", "", ""}), ",,");
  EXPECT_EQ(csv_encode_row({}), "");
}

TEST(Csv, EncodeQuoting) {
  EXPECT_EQ(csv_encode_row({"a,b"}), "\"a,b\"");
  EXPECT_EQ(csv_encode_row({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_encode_row({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(Csv, DecodePlain) {
  const auto row = csv_decode_row("a,b,c");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Csv, DecodeQuoted) {
  const auto row = csv_decode_row("\"a,b\",c");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (std::vector<std::string>{"a,b", "c"}));
}

TEST(Csv, DecodeEscapedQuotes) {
  const auto row = csv_decode_row("\"say \"\"hi\"\"\"");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->front(), "say \"hi\"");
}

TEST(Csv, DecodeToleratesCr) {
  const auto row = csv_decode_row("a,b\r");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, DecodeMalformedUnterminatedQuote) {
  EXPECT_FALSE(csv_decode_row("\"unterminated").has_value());
  EXPECT_FALSE(csv_decode_row("a,\"unterminated,b").has_value());
}

TEST(Csv, DecodeMalformedTextAfterClosingQuote) {
  // "ab"x — a truncated/corrupted row; gluing the tail on would misparse.
  EXPECT_FALSE(csv_decode_row("\"ab\"x").has_value());
  EXPECT_FALSE(csv_decode_row("\"ab\"x,c").has_value());
  EXPECT_FALSE(csv_decode_row("a,\"b\"\"c\"tail").has_value());
  // A closing quote followed directly by a delimiter or CR is still fine.
  EXPECT_TRUE(csv_decode_row("\"ab\",c").has_value());
  EXPECT_TRUE(csv_decode_row("\"ab\"\r").has_value());
}

TEST(Csv, DecodeMalformedQuoteMidUnquotedField) {
  EXPECT_FALSE(csv_decode_row("a\"b,c").has_value());
  EXPECT_FALSE(csv_decode_row("x,214-\"07,y").has_value());
  // A quote at the start of a field opens quoting as usual.
  const auto row = csv_decode_row("a,\"b,c\"");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (std::vector<std::string>{"a", "b,c"}));
}

TEST(Csv, DecodeEmptyLine) {
  const auto row = csv_decode_row("");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->size(), 1u);
  EXPECT_EQ(row->front(), "");
}

TEST(Csv, RoundTrip) {
  const std::vector<std::string> fields{"plain", "with,comma", "with \"quote\"",
                                        "", "multi\nline"};
  const auto decoded = csv_decode_row(csv_encode_row(fields));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, fields);
}

TEST(CsvLogicalRow, PlainLines) {
  std::istringstream in{"a,b\nc,d\n"};
  std::string row;
  ASSERT_TRUE(read_logical_row(in, row));
  EXPECT_EQ(row, "a,b");
  ASSERT_TRUE(read_logical_row(in, row));
  EXPECT_EQ(row, "c,d");
  EXPECT_FALSE(read_logical_row(in, row));
}

TEST(CsvLogicalRow, QuotedNewlineSpansPhysicalLines) {
  // The writer quotes fields containing '\n'; the reader must rejoin the
  // physical lines into one logical row or the row parses as two bad halves.
  std::istringstream in{"\"multi\nline\",x\nnext,row\n"};
  std::string row;
  ASSERT_TRUE(read_logical_row(in, row));
  EXPECT_EQ(row, "\"multi\nline\",x");
  const auto fields = csv_decode_row(row);
  ASSERT_TRUE(fields.has_value());
  EXPECT_EQ(*fields, (std::vector<std::string>{"multi\nline", "x"}));
  ASSERT_TRUE(read_logical_row(in, row));
  EXPECT_EQ(row, "next,row");
}

TEST(CsvLogicalRow, EscapedQuotesDoNotToggleJoining) {
  // "" toggles the quote parity twice, so it cancels out and must not make
  // the reader swallow the following line.
  std::istringstream in{"\"say \"\"hi\"\"\",b\nplain\n"};
  std::string row;
  ASSERT_TRUE(read_logical_row(in, row));
  EXPECT_EQ(row, "\"say \"\"hi\"\"\",b");
  ASSERT_TRUE(read_logical_row(in, row));
  EXPECT_EQ(row, "plain");
}

TEST(CsvLogicalRow, MultipleEmbeddedNewlines) {
  std::istringstream in{"\"a\nb\nc\",tail\n"};
  std::string row;
  ASSERT_TRUE(read_logical_row(in, row));
  const auto fields = csv_decode_row(row);
  ASSERT_TRUE(fields.has_value());
  EXPECT_EQ(fields->front(), "a\nb\nc");
}

TEST(CsvLogicalRow, UnterminatedQuoteEofReturnsWhatItHas) {
  // A dirty tail (file truncated inside a quoted field) still surfaces as a
  // row — csv_decode_row then rejects it as malformed, keeping the lenient
  // skip-and-count replay contract.
  std::istringstream in{"\"never closed\nmore"};
  std::string row;
  ASSERT_TRUE(read_logical_row(in, row));
  EXPECT_EQ(row, "\"never closed\nmore");
  EXPECT_FALSE(csv_decode_row(row).has_value());
  EXPECT_FALSE(read_logical_row(in, row));
}

TEST(CsvLogicalRow, CapStopsRunawayJoin) {
  // A stray opening quote must not make the reader swallow the whole file:
  // past max_bytes it gives up and returns the (malformed) row as-is.
  std::string text = "\"stray\n";
  for (int i = 0; i < 64; ++i) text += "line,of,data\n";
  std::istringstream in{text};
  std::string row;
  ASSERT_TRUE(read_logical_row(in, row, /*max_bytes=*/32));
  EXPECT_GE(row.size(), 32u);
  EXPECT_LT(row.size(), text.size());  // did not eat the entire stream
  ASSERT_TRUE(read_logical_row(in, row, /*max_bytes=*/32));  // stream continues
}

TEST(CsvLogicalRow, RoundTripThroughWriter) {
  // Property: any fields -> CsvWriter -> read_logical_row -> csv_decode_row
  // is the identity, embedded newlines and CRLF included.
  const std::vector<std::vector<std::string>> rows{
      {"plain", "with,comma", "with \"quote\""},
      {"multi\nline", "", "x"},
      {"crlf\r\nfield", "\"\"", ","},
      {"\n", "\"", "a\nb\nc\n"},
  };
  std::ostringstream out;
  {
    CsvWriter writer{out};
    for (const auto& fields : rows) writer.write_row(fields);
  }
  std::istringstream in{out.str()};
  std::string row;
  for (const auto& expected : rows) {
    ASSERT_TRUE(read_logical_row(in, row));
    const auto decoded = csv_decode_row(row);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, expected);
  }
  EXPECT_FALSE(read_logical_row(in, row));
}

TEST(CsvWriter, WritesRowsWithNewlines) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.write_row({"h1", "h2"});
  writer.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "h1,h2\n1,2\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

}  // namespace
}  // namespace wtr::io
