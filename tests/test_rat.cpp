#include "cellnet/rat.hpp"

#include <gtest/gtest.h>

namespace wtr::cellnet {
namespace {

TEST(RatMask, EmptyByDefault) {
  RatMask mask;
  EXPECT_TRUE(mask.none());
  EXPECT_FALSE(mask.any());
  EXPECT_EQ(mask.count(), 0);
}

TEST(RatMask, SetAndTest) {
  RatMask mask;
  mask.set(Rat::kTwoG);
  mask.set(Rat::kFourG);
  EXPECT_TRUE(mask.has(Rat::kTwoG));
  EXPECT_FALSE(mask.has(Rat::kThreeG));
  EXPECT_TRUE(mask.has(Rat::kFourG));
  EXPECT_EQ(mask.count(), 2);
}

TEST(RatMask, Only) {
  EXPECT_TRUE(RatMask::of(Rat::kTwoG).only(Rat::kTwoG));
  RatMask both{0b011};
  EXPECT_FALSE(both.only(Rat::kTwoG));
  EXPECT_FALSE(RatMask{}.only(Rat::kTwoG));
}

TEST(RatMask, Intersect) {
  const RatMask a{0b011};
  const RatMask b{0b110};
  EXPECT_EQ(a.intersect(b).bits(), 0b010);
  EXPECT_EQ(a.intersect(RatMask{}).bits(), 0);
}

TEST(RatMask, ConstructorMasksHighBits) {
  EXPECT_EQ(RatMask{0xFF}.bits(), 0b1111);  // four RATs incl. NB-IoT
}

TEST(RatMask, Labels) {
  EXPECT_EQ(rat_mask_label(RatMask{0b000}), "none");
  EXPECT_EQ(rat_mask_label(RatMask{0b001}), "2G");
  EXPECT_EQ(rat_mask_label(RatMask{0b010}), "3G");
  EXPECT_EQ(rat_mask_label(RatMask{0b011}), "2G+3G");
  EXPECT_EQ(rat_mask_label(RatMask{0b100}), "4G");
  EXPECT_EQ(rat_mask_label(RatMask{0b111}), "2G+3G+4G");
  EXPECT_EQ(rat_mask_label(RatMask{0b1000}), "NB-IoT");
  EXPECT_EQ(rat_mask_label(RatMask{0b1001}), "2G+NB-IoT");
  EXPECT_EQ(rat_mask_label(RatMask{0b1111}), "2G+3G+4G+NB-IoT");
}

TEST(Rat, NbIotProperties) {
  EXPECT_EQ(rat_name(Rat::kNbIot), "NB-IoT");
  EXPECT_EQ(rat_from_name("NB-IoT"), Rat::kNbIot);
  // NB-IoT rides the LTE core's S1 interface.
  EXPECT_EQ(interface_for(Rat::kNbIot, true), RadioInterface::kS1);
  RatMask nb = RatMask::of(Rat::kNbIot);
  EXPECT_TRUE(nb.only(Rat::kNbIot));
  EXPECT_EQ(nb.count(), 1);
}

TEST(Rat, Names) {
  EXPECT_EQ(rat_name(Rat::kTwoG), "2G");
  EXPECT_EQ(rat_name(Rat::kThreeG), "3G");
  EXPECT_EQ(rat_name(Rat::kFourG), "4G");
}

TEST(RadioInterface, RatMapping) {
  EXPECT_EQ(radio_interface_rat(RadioInterface::kA), Rat::kTwoG);
  EXPECT_EQ(radio_interface_rat(RadioInterface::kGb), Rat::kTwoG);
  EXPECT_EQ(radio_interface_rat(RadioInterface::kIuCS), Rat::kThreeG);
  EXPECT_EQ(radio_interface_rat(RadioInterface::kIuPS), Rat::kThreeG);
  EXPECT_EQ(radio_interface_rat(RadioInterface::kS1), Rat::kFourG);
}

TEST(RadioInterface, DataVsVoice) {
  EXPECT_FALSE(radio_interface_is_data(RadioInterface::kA));
  EXPECT_TRUE(radio_interface_is_data(RadioInterface::kGb));
  EXPECT_FALSE(radio_interface_is_data(RadioInterface::kIuCS));
  EXPECT_TRUE(radio_interface_is_data(RadioInterface::kIuPS));
  EXPECT_TRUE(radio_interface_is_data(RadioInterface::kS1));
}

TEST(RadioInterface, InterfaceForIsConsistent) {
  for (Rat rat : {Rat::kTwoG, Rat::kThreeG, Rat::kFourG}) {
    for (bool data : {false, true}) {
      const auto iface = interface_for(rat, data);
      EXPECT_EQ(radio_interface_rat(iface), rat);
      if (rat != Rat::kFourG) {
        EXPECT_EQ(radio_interface_is_data(iface), data);
      }
    }
  }
}

TEST(RadioInterface, Names) {
  EXPECT_EQ(radio_interface_name(RadioInterface::kIuCS), "IuCS");
  EXPECT_EQ(radio_interface_name(RadioInterface::kGb), "Gb");
  EXPECT_EQ(radio_interface_name(RadioInterface::kS1), "S1");
}

}  // namespace
}  // namespace wtr::cellnet
