#include "topology/path_model.hpp"

#include <gtest/gtest.h>

namespace wtr::topology {
namespace {

class PathModelTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      WorldConfig config;
      config.build_coverage = false;
      return World::build(config);
    }();
    return w;
  }

  PathModel model_{world()};

  OperatorId mno(const char* iso) const {
    return world().operators().mnos_in_country(iso).front();
  }
};

TEST_F(PathModelTest, DistancesArePlausible) {
  // Madrid to London ≈ 1260 km; Madrid to Sydney ≈ 17,600 km.
  EXPECT_NEAR(model_.operator_distance_km(mno("ES"), mno("GB")), 1'260.0, 200.0);
  EXPECT_GT(model_.operator_distance_km(mno("ES"), mno("AU")), 15'000.0);
  EXPECT_DOUBLE_EQ(model_.operator_distance_km(mno("ES"), mno("ES")), 0.0);
}

TEST_F(PathModelTest, LocalBreakoutIsDistanceFree) {
  const auto path = model_.data_path(mno("ES"), mno("AU"),
                                     BreakoutType::kLocalBreakout);
  EXPECT_DOUBLE_EQ(path.path_km, 0.0);
  EXPECT_EQ(path.egress_iso, "AU");
  EXPECT_GT(path.rtt_ms, 0.0);  // fixed terms remain
}

TEST_F(PathModelTest, HomeRoutedPaysTheDistance) {
  const auto near = model_.data_path(mno("ES"), mno("PT"), BreakoutType::kHomeRouted);
  const auto far = model_.data_path(mno("ES"), mno("AU"), BreakoutType::kHomeRouted);
  EXPECT_GT(far.rtt_ms, 5.0 * near.rtt_ms);
  EXPECT_EQ(far.egress_iso, "ES");
}

TEST_F(PathModelTest, OrderingHoldsEverywhere) {
  const auto& wk = world().well_known();
  for (const auto* iso : {"GB", "DE", "US", "BR", "AU", "JP", "KE"}) {
    const auto visited = mno(iso);
    const auto hr = model_.data_path(wk.es_hmno, visited, BreakoutType::kHomeRouted);
    const auto lbo = model_.data_path(wk.es_hmno, visited, BreakoutType::kLocalBreakout);
    const auto ihbo =
        model_.data_path(wk.es_hmno, visited, BreakoutType::kIpxHubBreakout);
    EXPECT_LE(lbo.rtt_ms, ihbo.rtt_ms + 1e-9) << iso;
    EXPECT_LE(ihbo.rtt_ms, hr.rtt_ms + 1e-9) << iso;
  }
}

TEST_F(PathModelTest, HubBreakoutEgressesNearVisited) {
  // An ES platform SIM in Brazil: the M2M hub has LatAm PoPs, so the IHBO
  // egress must be far closer than Spain.
  const auto& wk = world().well_known();
  const auto ihbo =
      model_.data_path(wk.es_hmno, mno("BR"), BreakoutType::kIpxHubBreakout);
  const auto hr = model_.data_path(wk.es_hmno, mno("BR"), BreakoutType::kHomeRouted);
  EXPECT_LT(ihbo.path_km, hr.path_km / 2.0);
  EXPECT_NE(ihbo.egress_iso, "ES");
}

TEST_F(PathModelTest, EffectivePathFollowsAgreements) {
  const auto& wk = world().well_known();
  // Intra-EU bilateral: home-routed by regulation-era default.
  const auto eu = model_.effective_data_path(mno("ES"), mno("FR"));
  ASSERT_TRUE(eu.has_value());
  EXPECT_EQ(eu->breakout, BreakoutType::kHomeRouted);
  // Hub-mediated reach: IPX breakout.
  const auto hub = model_.effective_data_path(wk.es_hmno, mno("VN"));
  ASSERT_TRUE(hub.has_value());
  EXPECT_EQ(hub->breakout, BreakoutType::kIpxHubBreakout);
}

TEST_F(PathModelTest, NativeAttachmentIsAlwaysLocal) {
  const auto& wk = world().well_known();
  const auto native = model_.effective_data_path(wk.uk_mvnos.front(), wk.uk_mno);
  ASSERT_TRUE(native.has_value());
  EXPECT_EQ(native->breakout, BreakoutType::kLocalBreakout);
  EXPECT_DOUBLE_EQ(native->path_km, 0.0);
}

TEST_F(PathModelTest, ConfigScalesRtt) {
  PathModelConfig slow;
  slow.ms_per_1000km = 20.0;
  const PathModel slow_model{world(), slow};
  const auto fast = model_.data_path(mno("ES"), mno("AU"), BreakoutType::kHomeRouted);
  const auto slower = slow_model.data_path(mno("ES"), mno("AU"),
                                           BreakoutType::kHomeRouted);
  EXPECT_GT(slower.rtt_ms, fast.rtt_ms * 1.5);
}

}  // namespace
}  // namespace wtr::topology
