// Round-trip tests: export records to CSV, replay them through a sink, and
// check they reconstruct identically — plus malformed-input tolerance.

#include "core/trace_replay.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.hpp"
#include "records/cdr.hpp"
#include "records/xdr.hpp"

namespace wtr::core {
namespace {

class CaptureSink final : public sim::RecordSink {
 public:
  std::vector<signaling::SignalingTransaction> txns;
  std::vector<records::Cdr> cdrs;
  std::vector<records::Xdr> xdrs;

  void on_signaling(const signaling::SignalingTransaction& txn, bool) override {
    txns.push_back(txn);
  }
  void on_cdr(const records::Cdr& cdr) override { cdrs.push_back(cdr); }
  void on_xdr(const records::Xdr& xdr) override { xdrs.push_back(xdr); }
};

signaling::SignalingTransaction sample_txn() {
  signaling::SignalingTransaction txn;
  txn.device = 0xDEADBEEFCAFEULL;
  txn.time = 123'456;
  txn.sim_plmn = cellnet::Plmn{214, 7, 2};
  txn.visited_plmn = cellnet::Plmn{234, 1, 2};
  txn.procedure = signaling::Procedure::kUpdateLocation;
  txn.result = signaling::ResultCode::kRoamingNotAllowed;
  txn.rat = cellnet::Rat::kFourG;
  txn.sector = 77;
  txn.tac = 35'700'012;
  return txn;
}

TEST(TraceReplay, SignalingRoundTrip) {
  const auto original = sample_txn();
  std::ostringstream out;
  io::CsvWriter writer{out};
  writer.write_row(signaling::csv_header());
  writer.write_row(signaling::to_csv_fields(original));

  std::istringstream in{out.str()};
  CaptureSink sink;
  const auto stats = replay_signaling_csv(in, sink);
  EXPECT_EQ(stats.rows, 1u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_TRUE(stats.clean());
  ASSERT_EQ(sink.txns.size(), 1u);
  const auto& replayed = sink.txns.front();
  EXPECT_EQ(replayed.device, original.device);
  EXPECT_EQ(replayed.time, original.time);
  EXPECT_EQ(replayed.sim_plmn, original.sim_plmn);
  EXPECT_EQ(replayed.visited_plmn, original.visited_plmn);
  EXPECT_EQ(replayed.procedure, original.procedure);
  EXPECT_EQ(replayed.result, original.result);
  EXPECT_EQ(replayed.rat, original.rat);
  EXPECT_EQ(replayed.sector, original.sector);
  EXPECT_EQ(replayed.tac, original.tac);
}

TEST(TraceReplay, CdrRoundTrip) {
  records::Cdr cdr;
  cdr.device = 42;
  cdr.time = 999;
  cdr.sim_plmn = cellnet::Plmn{204, 4, 2};
  cdr.visited_plmn = cellnet::Plmn{234, 1, 2};
  cdr.duration_s = 37.5;
  cdr.rat = cellnet::Rat::kThreeG;

  std::ostringstream out;
  io::CsvWriter writer{out};
  writer.write_row(records::cdr_csv_header());
  writer.write_row(records::to_csv_fields(cdr));

  std::istringstream in{out.str()};
  CaptureSink sink;
  const auto stats = replay_cdr_csv(in, sink);
  EXPECT_TRUE(stats.clean());
  ASSERT_EQ(sink.cdrs.size(), 1u);
  EXPECT_EQ(sink.cdrs.front().device, 42u);
  EXPECT_NEAR(sink.cdrs.front().duration_s, 37.5, 0.1);
  EXPECT_EQ(sink.cdrs.front().rat, cellnet::Rat::kThreeG);
}

TEST(TraceReplay, XdrRoundTripPreservesApn) {
  records::Xdr xdr;
  xdr.device = 7;
  xdr.time = 10;
  xdr.sim_plmn = cellnet::Plmn{204, 4, 2};
  xdr.visited_plmn = cellnet::Plmn{234, 1, 2};
  xdr.bytes_up = 100;
  xdr.bytes_down = 900;
  xdr.apn = "smhp.centricaplc.com.mnc004.mcc204.gprs";
  xdr.rat = cellnet::Rat::kTwoG;

  std::ostringstream out;
  io::CsvWriter writer{out};
  writer.write_row(records::xdr_csv_header());
  writer.write_row(records::to_csv_fields(xdr));

  std::istringstream in{out.str()};
  CaptureSink sink;
  replay_xdr_csv(in, sink);
  ASSERT_EQ(sink.xdrs.size(), 1u);
  EXPECT_EQ(sink.xdrs.front().apn, xdr.apn);
  EXPECT_EQ(sink.xdrs.front().bytes_total(), 1000u);
}

TEST(TraceReplay, MalformedRowsSkippedNotFatal) {
  std::istringstream in{
      "device,time,sim_plmn,visited_plmn,procedure,result,rat,sector,tac\n"
      "not,a,valid,row\n"
      "1,2,214-07,234-01,Authentication,OK,4G,0,35000000\n"
      "1,2,214-07,234-01,NoSuchProcedure,OK,4G,0,35000000\n"
      "\"unterminated,quote\n"};
  CaptureSink sink;
  const auto stats = replay_signaling_csv(in, sink);
  EXPECT_EQ(stats.rows, 4u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.malformed(), 3u);
  EXPECT_EQ(stats.bad_csv, 1u);     // the unterminated quote
  EXPECT_EQ(stats.bad_fields, 2u);  // wrong arity + unknown procedure
  EXPECT_FALSE(stats.clean());
}

TEST(TraceReplay, StrayQuoteRowsCountAsBadCsv) {
  std::istringstream in{
      "device,time,sim_plmn,visited_plmn,procedure,result,rat,sector,tac\n"
      "\"1\"x,2,214-07,234-01,Authentication,OK,4G,0,35000000\n"
      "1,2,214-\"07,234-01,Authentication,OK,4G,0,35000000\n"};
  CaptureSink sink;
  const auto stats = replay_signaling_csv(in, sink);
  EXPECT_EQ(stats.rows, 2u);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.bad_csv, 2u);
  EXPECT_EQ(stats.bad_fields, 0u);
}

TEST(TraceReplay, MissingHeaderStillParsesData) {
  std::istringstream in{"1,2,214-07,234-01,Authentication,OK,4G,0,35000000\n"};
  CaptureSink sink;
  const auto stats = replay_signaling_csv(in, sink);
  EXPECT_EQ(stats.delivered, 1u);
}

TEST(TraceReplay, EmptyStream) {
  std::istringstream in{""};
  CaptureSink sink;
  const auto stats = replay_cdr_csv(in, sink);
  EXPECT_EQ(stats.rows, 0u);
  EXPECT_TRUE(stats.clean());
}

TEST(CsvNumericParsers, StrictWholeString) {
  EXPECT_EQ(io::parse_u64("123"), 123u);
  EXPECT_FALSE(io::parse_u64("123x").has_value());
  EXPECT_FALSE(io::parse_u64("-1").has_value());
  EXPECT_FALSE(io::parse_u64("").has_value());
  EXPECT_EQ(io::parse_i64("-42"), -42);
  EXPECT_EQ(io::parse_double("3.5"), 3.5);
  EXPECT_FALSE(io::parse_double("3.5 ").has_value());
}

TEST(EnumRoundTrips, AllValuesSurviveNameCycle) {
  for (int i = 0; i < signaling::kProcedureCount; ++i) {
    const auto procedure = static_cast<signaling::Procedure>(i);
    EXPECT_EQ(signaling::procedure_from_name(signaling::procedure_name(procedure)),
              procedure);
  }
  for (int i = 0; i < signaling::kResultCodeCount; ++i) {
    const auto code = static_cast<signaling::ResultCode>(i);
    EXPECT_EQ(signaling::result_code_from_name(signaling::result_code_name(code)), code);
  }
  for (int i = 0; i < cellnet::kRatCount; ++i) {
    const auto rat = static_cast<cellnet::Rat>(i);
    EXPECT_EQ(cellnet::rat_from_name(cellnet::rat_name(rat)), rat);
  }
  EXPECT_FALSE(signaling::procedure_from_name("Bogus").has_value());
  EXPECT_FALSE(cellnet::rat_from_name("5G").has_value());
}

}  // namespace
}  // namespace wtr::core
