// FaultSchedule window/scoping semantics, OutcomePolicy integration, the
// empty-schedule bit-identity guarantee, and ResilienceReport bookkeeping.

#include "faults/fault_schedule.hpp"

#include <gtest/gtest.h>

#include "faults/resilience_report.hpp"
#include "signaling/outcome_policy.hpp"
#include "stats/rng.hpp"
#include "tracegen/mno_scenario.hpp"

namespace wtr::faults {
namespace {

constexpr stats::SimTime kDay = stats::kSecondsPerDay;

TEST(FaultEpisode, WindowIsHalfOpen) {
  FaultEpisode episode;
  episode.begin = 100;
  episode.end = 200;
  EXPECT_FALSE(episode.active_at(99));
  EXPECT_TRUE(episode.active_at(100));   // begin inclusive
  EXPECT_TRUE(episode.active_at(199));
  EXPECT_FALSE(episode.active_at(200));  // end exclusive
}

TEST(FaultEpisode, ZeroLengthWindowIsInert) {
  FaultEpisode episode;
  episode.begin = 100;
  episode.end = 100;
  EXPECT_FALSE(episode.active_at(100));
  EXPECT_EQ(episode.severity_at(100), 0.0);

  // Inverted windows are equally inert, not UB.
  episode.end = 50;
  EXPECT_FALSE(episode.active_at(75));
}

TEST(FaultEpisode, RampScalesWithProgress) {
  FaultEpisode episode;
  episode.begin = 0;
  episode.end = 1000;
  episode.severity = 0.8;
  episode.ramp = true;
  EXPECT_DOUBLE_EQ(episode.severity_at(0), 0.0);
  EXPECT_DOUBLE_EQ(episode.severity_at(500), 0.4);
  EXPECT_NEAR(episode.severity_at(999), 0.8, 0.001);
  EXPECT_EQ(episode.severity_at(1000), 0.0);  // outside
}

TEST(FaultSchedule, SeverityClampedOnAdd) {
  FaultSchedule schedule;
  schedule.add_outage(1, 0, 10, 3.0);
  schedule.add_storm(1, 0, 10, -0.5);
  EXPECT_EQ(schedule.episodes()[0].severity, 1.0);
  EXPECT_EQ(schedule.episodes()[1].severity, 0.0);
}

TEST(FaultSchedule, OverlappingEpisodesCombineIndependently) {
  FaultSchedule schedule;
  schedule.add_outage(1, 0, 100, 0.5);
  schedule.add_outage(1, 50, 150, 0.5);
  // Inside the overlap: 1 - (1-0.5)(1-0.5) = 0.75.
  const auto both = schedule.effect_at(60, 1, topology::kInvalidHub, kAnyFaultDomain);
  EXPECT_DOUBLE_EQ(both.outage, 0.75);
  // Only the first active.
  const auto one = schedule.effect_at(10, 1, topology::kInvalidHub, kAnyFaultDomain);
  EXPECT_DOUBLE_EQ(one.outage, 0.5);
  // combined_reject folds channels the same way.
  FaultEffect effect;
  effect.outage = 0.5;
  effect.storm_reject = 0.5;
  EXPECT_DOUBLE_EQ(effect.combined_reject(), 0.75);
}

TEST(FaultSchedule, OperatorScoping) {
  FaultSchedule schedule;
  schedule.add_outage(7, 0, 100, 1.0);
  EXPECT_EQ(schedule.effect_at(50, 7, topology::kInvalidHub, 0).outage, 1.0);
  EXPECT_EQ(schedule.effect_at(50, 8, topology::kInvalidHub, 0).outage, 0.0);

  // kInvalidOperator episodes hit every network.
  FaultSchedule global;
  global.add_outage(topology::kInvalidOperator, 0, 100, 1.0);
  EXPECT_EQ(global.effect_at(50, 8, topology::kInvalidHub, 0).outage, 1.0);
}

TEST(FaultSchedule, DegradedPathRequiresHubRoutedAttempt) {
  FaultSchedule schedule;
  schedule.add_degraded_path(3, 0, 100, 0.9);
  // Home / bilateral attempts (no hub) are untouched.
  EXPECT_EQ(schedule.effect_at(50, 1, topology::kInvalidHub, 0).path_degraded, 0.0);
  EXPECT_EQ(schedule.effect_at(50, 1, 3, 0).path_degraded, 0.9);
  EXPECT_EQ(schedule.effect_at(50, 1, 4, 0).path_degraded, 0.0);  // other hub

  FaultSchedule any_hub;
  any_hub.add_degraded_path(topology::kInvalidHub, 0, 100, 0.9);
  EXPECT_EQ(any_hub.effect_at(50, 1, 4, 0).path_degraded, 0.9);
  EXPECT_EQ(any_hub.effect_at(50, 1, topology::kInvalidHub, 0).path_degraded, 0.0);
}

TEST(FaultSchedule, MisprovisioningDomainScoping) {
  FaultSchedule schedule;
  FaultEpisode episode;
  episode.kind = FaultKind::kMisprovisioning;
  episode.begin = 0;
  episode.end = 100;
  episode.severity = 0.3;
  episode.fault_domain = 7;
  schedule.add(episode);
  EXPECT_DOUBLE_EQ(schedule.effect_at(50, 1, topology::kInvalidHub, 7).misprovisioned,
                   0.3);
  EXPECT_EQ(schedule.effect_at(50, 1, topology::kInvalidHub, 8).misprovisioned, 0.0);
  // Untagged devices (domain 0) only match wildcard episodes.
  EXPECT_EQ(schedule.effect_at(50, 1, topology::kInvalidHub, kAnyFaultDomain)
                .misprovisioned,
            0.0);

  FaultSchedule wildcard;
  episode.fault_domain = kAnyFaultDomain;
  wildcard.add(episode);
  EXPECT_DOUBLE_EQ(wildcard.effect_at(50, 1, topology::kInvalidHub, 7).misprovisioned,
                   0.3);
  EXPECT_DOUBLE_EQ(wildcard.effect_at(50, 1, topology::kInvalidHub, kAnyFaultDomain)
                       .misprovisioned,
                   0.3);
}

TEST(FaultSchedule, HorizonHelpers) {
  FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.first_begin(), 0);
  EXPECT_EQ(schedule.last_end(), 0);
  schedule.add_outage(1, 3 * kDay, 4 * kDay);
  schedule.add_storm(1, kDay, 2 * kDay, 0.5);
  EXPECT_EQ(schedule.first_begin(), kDay);
  EXPECT_EQ(schedule.last_end(), 4 * kDay);
  EXPECT_EQ(schedule.size(), 2u);
}

// ---- Property tests: composition algebra over random schedules -----------

TEST(FaultScheduleProperty, OverlapCompositionMatchesIndependenceProduct) {
  // Against arbitrary overlapping episode sets, every channel of effect_at
  // must equal 1 - Π(1 - p_i) over the episodes active for that attempt,
  // and capacity_scale_at must equal Π(1 - s_i) over active capacity drops
  // — computed here with an independent reference fold.
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    stats::Rng rng{seed};
    FaultSchedule schedule;
    std::vector<FaultEpisode> reference;
    const auto episodes = 3 + rng.below(12);
    for (std::uint32_t i = 0; i < episodes; ++i) {
      FaultEpisode episode;
      episode.kind = static_cast<FaultKind>(rng.below(5));
      episode.begin = static_cast<stats::SimTime>(rng.below(5'000));
      episode.end = episode.begin + static_cast<stats::SimTime>(rng.below(5'000));
      episode.severity = rng.uniform(0.0, 1.0);
      episode.op = rng.bernoulli(0.3)
                       ? topology::kInvalidOperator
                       : static_cast<topology::OperatorId>(1 + rng.below(3));
      episode.hub = rng.bernoulli(0.3)
                        ? topology::kInvalidHub
                        : static_cast<topology::HubId>(1 + rng.below(2));
      episode.fault_domain = rng.below(3);  // 0 = wildcard
      episode.ramp = rng.bernoulli(0.5);
      schedule.add(episode);
      reference.push_back(episode);
    }

    for (int probe = 0; probe < 200; ++probe) {
      const auto now = static_cast<stats::SimTime>(rng.below(11'000));
      const auto radio = static_cast<topology::OperatorId>(1 + rng.below(3));
      const auto hub = rng.bernoulli(0.5)
                           ? topology::kInvalidHub
                           : static_cast<topology::HubId>(1 + rng.below(2));
      const std::uint32_t domain = rng.below(3);

      double keep_outage = 1.0, keep_storm = 1.0, keep_path = 1.0;
      double keep_misprov = 1.0, capacity_scale = 1.0;
      for (const auto& episode : reference) {
        const double p = episode.severity_at(now);
        if (p <= 0.0) continue;
        const bool op_match =
            episode.op == topology::kInvalidOperator || episode.op == radio;
        switch (episode.kind) {
          case FaultKind::kOutage:
            if (op_match) keep_outage *= 1.0 - p;
            break;
          case FaultKind::kSignalingStorm:
            if (op_match) keep_storm *= 1.0 - p;
            break;
          case FaultKind::kDegradedPath:
            if (hub != topology::kInvalidHub &&
                (episode.hub == topology::kInvalidHub || episode.hub == hub)) {
              keep_path *= 1.0 - p;
            }
            break;
          case FaultKind::kMisprovisioning:
            if (episode.fault_domain == kAnyFaultDomain ||
                (domain != kAnyFaultDomain && episode.fault_domain == domain)) {
              keep_misprov *= 1.0 - p;
            }
            break;
          case FaultKind::kCapacityDrop:
            if (op_match) capacity_scale *= 1.0 - p;
            break;
        }
      }

      const auto effect = schedule.effect_at(now, radio, hub, domain);
      EXPECT_DOUBLE_EQ(effect.outage, 1.0 - keep_outage);
      EXPECT_DOUBLE_EQ(effect.storm_reject, 1.0 - keep_storm);
      EXPECT_DOUBLE_EQ(effect.path_degraded, 1.0 - keep_path);
      EXPECT_DOUBLE_EQ(effect.misprovisioned, 1.0 - keep_misprov);
      EXPECT_DOUBLE_EQ(schedule.capacity_scale_at(now, radio), capacity_scale);
    }
  }
}

TEST(FaultScheduleProperty, RampBoundariesAreExactAtBeginAndEnd) {
  // For arbitrary windows: ramped severity starts at exactly 0 at `begin`,
  // grows monotonically, stays strictly below the peak, and snaps to 0 at
  // the exclusive `end`; flat episodes hold the full severity across
  // [begin, end) and are 0 at `end`.
  stats::Rng rng{99};
  for (int trial = 0; trial < 200; ++trial) {
    FaultEpisode episode;
    episode.begin = static_cast<stats::SimTime>(rng.below(100'000));
    episode.end = episode.begin + 1 + static_cast<stats::SimTime>(rng.below(100'000));
    episode.severity = rng.uniform(0.01, 1.0);

    episode.ramp = true;
    EXPECT_EQ(episode.severity_at(episode.begin - 1), 0.0);
    EXPECT_EQ(episode.severity_at(episode.begin), 0.0);  // ramp starts from zero
    EXPECT_EQ(episode.severity_at(episode.end), 0.0);    // end exclusive
    double last = 0.0;
    for (int step = 0; step < 8; ++step) {
      const auto now = episode.begin + (episode.end - episode.begin) * step / 8;
      const double s = episode.severity_at(now);
      EXPECT_GE(s, last);
      EXPECT_LT(s, episode.severity);
      last = s;
    }

    episode.ramp = false;
    EXPECT_EQ(episode.severity_at(episode.begin), episode.severity);
    EXPECT_EQ(episode.severity_at(episode.end - 1), episode.severity);
    EXPECT_EQ(episode.severity_at(episode.end), 0.0);
  }
}

TEST(FaultScheduleProperty, ZeroLengthWindowsNeverPerturbTheSchedule) {
  // Mixing arbitrarily many zero-length and inverted windows into a real
  // schedule must leave every query — effect_at across all scopes and
  // capacity_scale_at — identical to the schedule without them.
  stats::Rng rng{2026};
  FaultSchedule real;
  real.add_outage(1, 100, 400, 0.6);
  real.add_storm(2, 50, 300, 0.4);
  real.add_degraded_path(1, 0, 250, 0.7);
  real.add_misprovisioning_ramp(7, 150, 500, 0.9);
  real.add_capacity_drop(1, 200, 600, 0.5);

  FaultSchedule padded;
  for (const auto& episode : real.episodes()) padded.add(episode);
  for (int i = 0; i < 40; ++i) {
    FaultEpisode inert;
    inert.kind = static_cast<FaultKind>(rng.below(5));
    inert.begin = static_cast<stats::SimTime>(rng.below(700));
    // Half zero-length, half inverted: both must be inert, not UB.
    const bool inverted = rng.bernoulli(0.5);
    const auto span = static_cast<stats::SimTime>(1 + rng.below(300));
    inert.end = inverted ? inert.begin - span : inert.begin;
    inert.severity = 1.0;
    inert.op = topology::kInvalidOperator;  // widest possible scope
    inert.hub = topology::kInvalidHub;
    inert.fault_domain = kAnyFaultDomain;
    inert.ramp = rng.bernoulli(0.5);
    padded.add(inert);
  }
  ASSERT_EQ(padded.size(), real.size() + 40);

  for (int probe = 0; probe < 400; ++probe) {
    const auto now = static_cast<stats::SimTime>(rng.below(700));
    const auto radio = static_cast<topology::OperatorId>(1 + rng.below(3));
    const auto hub = rng.bernoulli(0.5)
                         ? topology::kInvalidHub
                         : static_cast<topology::HubId>(1 + rng.below(2));
    const std::uint32_t domain = rng.below(2) == 0 ? kAnyFaultDomain : 7;
    const auto a = real.effect_at(now, radio, hub, domain);
    const auto b = padded.effect_at(now, radio, hub, domain);
    EXPECT_EQ(a.outage, b.outage);
    EXPECT_EQ(a.storm_reject, b.storm_reject);
    EXPECT_EQ(a.path_degraded, b.path_degraded);
    EXPECT_EQ(a.misprovisioned, b.misprovisioned);
    EXPECT_EQ(real.capacity_scale_at(now, radio), padded.capacity_scale_at(now, radio));
  }
}

// ---- OutcomePolicy integration ------------------------------------------

class FaultPolicyTest : public ::testing::Test {
 protected:
  static const topology::World& world() {
    static const topology::World w = [] {
      topology::WorldConfig config;
      config.build_coverage = false;
      return topology::World::build(config);
    }();
    return w;
  }

  cellnet::RatMask all_{0b111};
  stats::Rng rng_{1};
};

TEST_F(FaultPolicyTest, HardOutageFailsEveryAttemptInWindow) {
  const auto uk = world().well_known().uk_mno;
  FaultSchedule schedule;
  schedule.add_outage(uk, 2 * kDay, 3 * kDay, 1.0);
  signaling::OutcomePolicy policy{
      signaling::OutcomePolicyConfig{.transient_failure_rate = 0.0}, &schedule};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.evaluate(world(), 2 * kDay + i, uk, uk, cellnet::Rat::kFourG,
                              all_, all_, true, 0, rng_),
              signaling::ResultCode::kNetworkFailure);
  }
  // Outside the window the same policy is clean.
  EXPECT_EQ(policy.evaluate(world(), 3 * kDay, uk, uk, cellnet::Rat::kFourG, all_,
                            all_, true, 0, rng_),
            signaling::ResultCode::kOk);
}

TEST_F(FaultPolicyTest, MisprovisioningMapsToUnknownSubscription) {
  const auto uk = world().well_known().uk_mno;
  FaultSchedule schedule;
  FaultEpisode episode;
  episode.kind = FaultKind::kMisprovisioning;
  episode.begin = 0;
  episode.end = kDay;
  episode.severity = 1.0;
  episode.fault_domain = 7;
  schedule.add(episode);
  signaling::OutcomePolicy policy{
      signaling::OutcomePolicyConfig{.transient_failure_rate = 0.0}, &schedule};
  EXPECT_EQ(policy.evaluate(world(), 100, uk, uk, cellnet::Rat::kFourG, all_, all_,
                            true, 7, rng_),
            signaling::ResultCode::kUnknownSubscription);
  EXPECT_EQ(policy.evaluate(world(), 100, uk, uk, cellnet::Rat::kFourG, all_, all_,
                            true, 8, rng_),
            signaling::ResultCode::kOk);
}

TEST_F(FaultPolicyTest, StructuralChecksStillPrecedeFaults) {
  const auto uk = world().well_known().uk_mno;
  FaultSchedule schedule;
  schedule.add_outage(uk, 0, kDay, 1.0);
  signaling::OutcomePolicy policy{signaling::OutcomePolicyConfig{}, &schedule};
  cellnet::RatMask two_g{0b001};
  // An incapable device never reaches the fault roll.
  EXPECT_EQ(policy.evaluate(world(), 100, uk, uk, cellnet::Rat::kFourG, two_g, all_,
                            true, 0, rng_),
            signaling::ResultCode::kFeatureUnsupported);
}

// ---- Empty-schedule bit-identity and faulted determinism -----------------

struct TraceDigest {
  std::uint64_t signaling = 0;
  std::uint64_t hash = 0;

  friend bool operator==(const TraceDigest&, const TraceDigest&) = default;
};

class DigestSink final : public sim::RecordSink {
 public:
  TraceDigest digest;

  void on_signaling(const signaling::SignalingTransaction& txn, bool) override {
    ++digest.signaling;
    digest.hash = stats::mix64(
        digest.hash, stats::mix64(txn.device ^ static_cast<std::uint64_t>(txn.time),
                                  txn.visited_plmn.key() ^
                                      static_cast<std::uint64_t>(txn.result)));
  }
};

TraceDigest run_mno(const FaultSchedule* faults) {
  tracegen::MnoScenarioConfig config;
  config.seed = 42;
  config.total_devices = 800;
  config.build_coverage = false;
  config.faults = faults;
  tracegen::MnoScenario scenario{config};
  DigestSink sink;
  scenario.run({&sink});
  return sink.digest;
}

TEST(FaultDeterminism, EmptyScheduleIsBitIdenticalToNullptr) {
  const FaultSchedule empty;
  EXPECT_EQ(run_mno(&empty), run_mno(nullptr));
}

TEST(FaultDeterminism, FaultedRunReplaysAndDiffersFromBaseline) {
  // Operator ids are deterministic across identically-configured worlds, so
  // a probe scenario can supply them for the faulted ones.
  FaultSchedule schedule;
  {
    tracegen::MnoScenarioConfig probe_config;
    probe_config.seed = 42;
    probe_config.total_devices = 10;
    probe_config.build_coverage = false;
    tracegen::MnoScenario probe{probe_config};
    schedule.add_outage(probe.world().well_known().uk_mno, 2 * kDay, 3 * kDay, 1.0);
  }
  const auto a = run_mno(&schedule);
  const auto b = run_mno(&schedule);
  EXPECT_EQ(a, b);
  const auto baseline = run_mno(nullptr);
  EXPECT_NE(a.hash, baseline.hash);
  // Failed attaches trigger retries, so the outage *inflates* the stream —
  // the §5 storm mechanism emerging rather than a modelling artefact.
  EXPECT_GT(a.signaling, baseline.signaling);
}

// ---- ResilienceReport ----------------------------------------------------

TEST(ResilienceReportTest, CountsFailuresAndClosesRecovery) {
  topology::WorldConfig wc;
  wc.build_coverage = false;
  const auto world = topology::World::build(wc);
  const auto uk = world.well_known().uk_mno;
  const auto uk_plmn = world.operators().get(uk).plmn;

  FaultSchedule schedule;
  schedule.add_outage(uk, kDay, 2 * kDay, 1.0);
  ResilienceReport report{world, schedule};
  ASSERT_EQ(report.summary().recoveries.size(), 1u);
  EXPECT_FALSE(report.summary().recoveries.front().first_success_after.has_value());

  signaling::SignalingTransaction txn;
  txn.visited_plmn = uk_plmn;
  txn.procedure = signaling::Procedure::kUpdateLocation;

  // A failure during the outage.
  txn.time = kDay + 100;
  txn.result = signaling::ResultCode::kNetworkFailure;
  report.on_signaling(txn, true);

  // An OK *before* the window ends must not close the recovery.
  txn.time = 2 * kDay - 1;
  txn.result = signaling::ResultCode::kOk;
  report.on_signaling(txn, true);
  EXPECT_FALSE(report.summary().recoveries.front().first_success_after.has_value());

  // First OK registration after the window closes it; later ones don't move it.
  txn.time = 2 * kDay + 30;
  report.on_signaling(txn, true);
  txn.time = 2 * kDay + 500;
  report.on_signaling(txn, true);

  const auto& summary = report.summary();
  EXPECT_EQ(summary.procedures, 4u);
  EXPECT_EQ(summary.failures, 1u);
  EXPECT_EQ(summary.by_code[static_cast<std::size_t>(
                signaling::ResultCode::kNetworkFailure)],
            1u);
  EXPECT_EQ(summary.failures_by_day.at(1), 1u);
  EXPECT_EQ(summary.failures_by_operator.at(uk), 1u);
  ASSERT_TRUE(summary.recoveries.front().first_success_after.has_value());
  EXPECT_EQ(*summary.recoveries.front().first_success_after, 2 * kDay + 30);
  EXPECT_DOUBLE_EQ(*summary.recoveries.front().recovery_seconds(), 30.0);
}

}  // namespace
}  // namespace wtr::faults
