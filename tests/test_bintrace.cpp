// WTRTRC1 binary trace tests: write→read round-trips (bit-exact doubles,
// hostile APN strings, multi-block streams), the structural-corruption
// error model, checkpointed truncate-on-restore for BinaryTraceFileSink,
// and CSV↔binary replay equivalence. The corruption suites are named
// BinaryTrace* so the scripts/check.sh corruption lane picks them up.

#include "io/bintrace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "ckpt/file_sink.hpp"
#include "core/trace_replay.hpp"
#include "stats/rng.hpp"
#include "util/binio.hpp"
#include "util/crc32.hpp"

namespace wtr::io {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

struct DwellRow {
  signaling::DeviceHash device;
  std::int32_t day;
  cellnet::Plmn plmn;
  cellnet::GeoPoint location;
  double seconds;
};

class CaptureSink final : public sim::RecordSink {
 public:
  std::vector<std::pair<signaling::SignalingTransaction, bool>> txns;
  std::vector<records::Cdr> cdrs;
  std::vector<records::Xdr> xdrs;
  std::vector<DwellRow> dwells;

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    txns.emplace_back(txn, data_context);
  }
  void on_cdr(const records::Cdr& cdr) override { cdrs.push_back(cdr); }
  void on_xdr(const records::Xdr& xdr) override { xdrs.push_back(xdr); }
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override {
    dwells.push_back({device, day, visited_plmn, location, seconds});
  }
};

signaling::SignalingTransaction random_txn(stats::Rng& rng) {
  signaling::SignalingTransaction txn;
  txn.device = rng.next();
  txn.time = rng.between(-1'000'000, 100'000'000);
  txn.sim_plmn = cellnet::Plmn{214, static_cast<std::uint16_t>(rng.below(99)), 2};
  txn.visited_plmn = cellnet::Plmn{234, static_cast<std::uint16_t>(rng.below(99)), 2};
  txn.procedure = static_cast<signaling::Procedure>(rng.below(signaling::kProcedureCount));
  txn.result = static_cast<signaling::ResultCode>(rng.below(signaling::kResultCodeCount));
  txn.rat = static_cast<cellnet::Rat>(rng.below(cellnet::kRatCount));
  txn.sector = rng.below(1u << 20);
  txn.tac = static_cast<cellnet::Tac>(35'000'000 + rng.below(1'000'000));
  return txn;
}

void expect_txn_eq(const signaling::SignalingTransaction& a,
                   const signaling::SignalingTransaction& b) {
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.sim_plmn, b.sim_plmn);
  EXPECT_EQ(a.visited_plmn, b.visited_plmn);
  EXPECT_EQ(a.procedure, b.procedure);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.rat, b.rat);
  EXPECT_EQ(a.sector, b.sector);
  EXPECT_EQ(a.tac, b.tac);
}

TEST(BinaryTraceRoundTrip, MixedFamiliesMultiBlock) {
  stats::Rng rng{0xB17BA5Eu};
  std::ostringstream out;
  std::vector<std::pair<signaling::SignalingTransaction, bool>> txns;
  std::vector<records::Cdr> cdrs;
  std::vector<records::Xdr> xdrs;
  {
    BinaryTraceWriter::Options options;
    options.block_records = 7;  // force many blocks from few records
    BinaryTraceSink sink{out, options};
    for (int i = 0; i < 100; ++i) {
      const auto txn = random_txn(rng);
      const bool dc = rng.bernoulli(0.5);
      txns.emplace_back(txn, dc);
      sink.on_signaling(txn, dc);

      records::Cdr cdr;
      cdr.device = rng.next();
      cdr.time = rng.between(0, 1'000'000);
      cdr.sim_plmn = cellnet::Plmn{204, 4, 2};
      cdr.visited_plmn = cellnet::Plmn{234, 1, 2};
      cdr.duration_s = rng.uniform(0.0, 7200.0);
      cdr.rat = static_cast<cellnet::Rat>(rng.below(cellnet::kRatCount));
      cdrs.push_back(cdr);
      sink.on_cdr(cdr);

      records::Xdr xdr;
      xdr.device = rng.next();
      xdr.time = rng.between(0, 1'000'000);
      xdr.sim_plmn = cellnet::Plmn{214, 7, 2};
      xdr.visited_plmn = cellnet::Plmn{310, 410, 3};
      xdr.bytes_up = rng.below(1u << 30);
      xdr.bytes_down = rng.below(1u << 30);
      xdr.apn = "apn-" + std::to_string(rng.below(5)) + ".example.gprs";
      xdr.rat = static_cast<cellnet::Rat>(rng.below(cellnet::kRatCount));
      xdrs.push_back(xdr);
      sink.on_xdr(xdr);
    }
    sink.finish();
  }

  std::istringstream in{out.str()};
  CaptureSink sink;
  BinaryTraceReader reader{in};
  const auto stats = reader.replay(sink);
  EXPECT_EQ(stats.records, 300u);
  EXPECT_EQ(stats.delivered, 300u);
  EXPECT_EQ(stats.bad_fields, 0u);
  EXPECT_GT(stats.blocks, 40u);  // block_records=7 ⇒ ~15 blocks per family
  EXPECT_EQ(stats.bytes, out.str().size());

  ASSERT_EQ(sink.txns.size(), txns.size());
  for (std::size_t i = 0; i < txns.size(); ++i) {
    expect_txn_eq(sink.txns[i].first, txns[i].first);
    EXPECT_EQ(sink.txns[i].second, txns[i].second);
  }
  ASSERT_EQ(sink.cdrs.size(), cdrs.size());
  for (std::size_t i = 0; i < cdrs.size(); ++i) {
    EXPECT_EQ(sink.cdrs[i].device, cdrs[i].device);
    EXPECT_EQ(sink.cdrs[i].time, cdrs[i].time);
    EXPECT_EQ(sink.cdrs[i].sim_plmn, cdrs[i].sim_plmn);
    EXPECT_EQ(sink.cdrs[i].visited_plmn, cdrs[i].visited_plmn);
    // Bit-exact, not approximately-equal: the binary format's contract.
    EXPECT_EQ(bits_of(sink.cdrs[i].duration_s), bits_of(cdrs[i].duration_s));
    EXPECT_EQ(sink.cdrs[i].rat, cdrs[i].rat);
  }
  ASSERT_EQ(sink.xdrs.size(), xdrs.size());
  for (std::size_t i = 0; i < xdrs.size(); ++i) {
    EXPECT_EQ(sink.xdrs[i].device, xdrs[i].device);
    EXPECT_EQ(sink.xdrs[i].bytes_up, xdrs[i].bytes_up);
    EXPECT_EQ(sink.xdrs[i].bytes_down, xdrs[i].bytes_down);
    EXPECT_EQ(sink.xdrs[i].apn, xdrs[i].apn);
    EXPECT_EQ(sink.xdrs[i].rat, xdrs[i].rat);
  }
}

TEST(BinaryTraceRoundTrip, CongestionResultSurvivesBothCodecs) {
  // kCongestion is the newest ResultCode: pin its round-trip explicitly
  // (random_txn only covers it probabilistically) through the binary codec
  // and the CSV path, which serializes the enum by name.
  stats::Rng rng{0xC0 /* ngestion */};
  auto txn = random_txn(rng);
  txn.procedure = signaling::Procedure::kAttach;
  txn.result = signaling::ResultCode::kCongestion;
  EXPECT_EQ(signaling::result_code_name(txn.result), "Congestion");

  std::ostringstream bin_out;
  {
    BinaryTraceSink sink{bin_out};
    sink.on_signaling(txn, false);
  }
  std::ostringstream csv_out;
  io::CsvWriter writer{csv_out};
  writer.write_row(signaling::csv_header());
  writer.write_row(signaling::to_csv_fields(txn));

  for (const auto& text : {bin_out.str(), csv_out.str()}) {
    std::istringstream in{text};
    CaptureSink sink;
    const auto stats = core::replay_signaling_trace(in, sink);
    EXPECT_EQ(stats.delivered, 1u);
    ASSERT_EQ(sink.txns.size(), 1u);
    expect_txn_eq(sink.txns.front().first, txn);
    EXPECT_EQ(sink.txns.front().first.result, signaling::ResultCode::kCongestion);
  }
}

TEST(BinaryTraceRoundTrip, HostileApnStrings) {
  // The dictionary is length-prefixed, so strings that would wreck CSV
  // (commas, quotes, newlines, NULs) must travel verbatim.
  const std::vector<std::string> apns{
      "with,comma.gprs", "with\"quote\".gprs", "multi\nline.gprs",
      std::string("nul\0byte.gprs", 13), "", "plain.mnc004.mcc204.gprs"};
  std::ostringstream out;
  {
    BinaryTraceSink sink{out};
    for (std::size_t i = 0; i < apns.size(); ++i) {
      records::Xdr xdr;
      xdr.device = i + 1;
      xdr.time = static_cast<stats::SimTime>(i);
      xdr.sim_plmn = cellnet::Plmn{214, 7, 2};
      xdr.visited_plmn = cellnet::Plmn{234, 1, 2};
      xdr.bytes_up = 1;
      xdr.bytes_down = 2;
      xdr.apn = apns[i];
      xdr.rat = cellnet::Rat::kFourG;
      sink.on_xdr(xdr);
    }
  }
  std::istringstream in{out.str()};
  CaptureSink sink;
  BinaryTraceReader{in}.replay(sink);
  ASSERT_EQ(sink.xdrs.size(), apns.size());
  for (std::size_t i = 0; i < apns.size(); ++i) EXPECT_EQ(sink.xdrs[i].apn, apns[i]);
}

TEST(BinaryTraceRoundTrip, DwellDoublesBitExactIncludingNanInf) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> values{0.0, -0.0, 1e-308, nan, inf, -inf, 86399.999};
  std::ostringstream out;
  {
    BinaryTraceSink sink{out};
    for (std::size_t i = 0; i < values.size(); ++i) {
      sink.on_dwell(i + 1, static_cast<std::int32_t>(i), cellnet::Plmn{262, 1, 2},
                    cellnet::GeoPoint{values[i], -values[i]}, values[i]);
    }
  }
  std::istringstream in{out.str()};
  CaptureSink sink;
  const auto stats = BinaryTraceReader{in}.replay(sink);
  EXPECT_EQ(stats.delivered, values.size());
  ASSERT_EQ(sink.dwells.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // NaN != NaN, -0.0 == 0.0: compare the bit patterns, not the values.
    EXPECT_EQ(bits_of(sink.dwells[i].seconds), bits_of(values[i]));
    EXPECT_EQ(bits_of(sink.dwells[i].location.lat), bits_of(values[i]));
    EXPECT_EQ(bits_of(sink.dwells[i].location.lon), bits_of(-values[i]));
    EXPECT_EQ(sink.dwells[i].plmn, (cellnet::Plmn{262, 1, 2}));
  }
}

TEST(BinaryTraceRoundTrip, EmptyTraceIsJustHeaderAndEndMarker) {
  std::ostringstream out;
  { BinaryTraceSink sink{out}; }
  std::istringstream in{out.str()};
  CaptureSink sink;
  const auto stats = BinaryTraceReader{in}.replay(sink);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.blocks, 0u);
}

TEST(BinaryTraceRoundTrip, FinishIsIdempotentAndAddsAfterFinishThrow) {
  std::ostringstream out;
  BinaryTraceSink sink{out};
  sink.on_dwell(1, 0, cellnet::Plmn{262, 1, 2}, cellnet::GeoPoint{0, 0}, 1.0);
  sink.finish();
  const auto size = out.str().size();
  sink.finish();  // idempotent: no second end marker
  EXPECT_EQ(out.str().size(), size);
  EXPECT_THROW(sink.on_cdr(records::Cdr{}), BinaryTraceError);
}

// --- Field-level validation (CRC-clean but semantically bad rows) -----------

/// Hand-frame a stream: header + the given payloads (each gets length+CRC
/// framing) + optionally an end marker with the given totals.
std::string frame_stream(const std::vector<std::string>& payloads,
                         const TraceTotals* totals) {
  std::string out{kBinaryTraceMagic};
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>(kBinaryTraceVersion >> (8 * i)));
  auto frame = [&out](const std::string& payload) {
    const auto len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = util::crc32(payload);
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(len >> (8 * i)));
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(crc >> (8 * i)));
    out += payload;
  };
  for (const auto& payload : payloads) frame(payload);
  if (totals != nullptr) {
    util::BinWriter end;
    end.u8(0xFF);
    end.varint(totals->signaling);
    end.varint(totals->cdr);
    end.varint(totals->xdr);
    end.varint(totals->dwell);
    frame(end.bytes());
  }
  return out;
}

/// One signaling block whose dictionary holds `plmn_str` for both PLMN
/// columns — lets tests feed unparsable dictionary strings.
std::string signaling_block_payload(const std::string& plmn_str) {
  util::BinWriter payload;
  payload.u8(1);      // kind: signaling
  payload.varint(1);  // one record
  TraceDict dict;
  (void)dict.intern(plmn_str);
  dict.write(payload);
  records::RadioColumns columns;
  columns.device.push_back(42);
  columns.time.push_back(100);
  columns.sim_plmn.push_back(0);
  columns.visited_plmn.push_back(0);
  columns.procedure.push_back(0);
  columns.result.push_back(0);
  columns.rat.push_back(0);
  columns.sector.push_back(1);
  columns.tac.push_back(35'000'000);
  columns.data_context.push_back(true);
  records::bin_write(payload, columns);
  return payload.bytes();
}

TEST(BinaryTraceValidation, UnparsablePlmnIsBadFieldNotFatal) {
  TraceTotals totals;
  totals.signaling = 2;
  const auto stream = frame_stream(
      {signaling_block_payload("not-a-plmn"), signaling_block_payload("214-07")},
      &totals);
  std::istringstream in{stream};
  CaptureSink sink;
  const auto stats = BinaryTraceReader{in}.replay(sink);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.bad_fields, 1u);
  ASSERT_EQ(sink.txns.size(), 1u);
  EXPECT_EQ(sink.txns.front().first.device, 42u);
}

TEST(BinaryTraceValidation, OutOfRangeEnumIsBadField) {
  util::BinWriter payload;
  payload.u8(2);      // kind: cdr
  payload.varint(1);
  TraceDict dict;
  (void)dict.intern("214-07");
  dict.write(payload);
  records::CdrColumns columns;
  columns.device.push_back(1);
  columns.time.push_back(1);
  columns.sim_plmn.push_back(0);
  columns.visited_plmn.push_back(0);
  columns.duration_s.push_back(10.0);
  columns.rat.push_back(99);  // no such RAT
  records::bin_write(payload, columns);
  TraceTotals totals;
  totals.cdr = 1;
  std::istringstream in{frame_stream({payload.bytes()}, &totals)};
  CaptureSink sink;
  const auto stats = BinaryTraceReader{in}.replay(sink);
  EXPECT_EQ(stats.bad_fields, 1u);
  EXPECT_EQ(stats.delivered, 0u);
}

// --- Structural corruption (must throw, never deliver garbage) --------------

std::string valid_trace(int records = 20) {
  std::ostringstream out;
  BinaryTraceWriter::Options options;
  options.block_records = 8;
  BinaryTraceSink sink{out, options};
  stats::Rng rng{7};
  for (int i = 0; i < records; ++i) sink.on_signaling(random_txn(rng), true);
  sink.finish();
  return out.str();
}

void expect_rejected(const std::string& bytes) {
  std::istringstream in{bytes};
  CaptureSink sink;
  EXPECT_THROW(BinaryTraceReader{in}.replay(sink), BinaryTraceError);
}

TEST(BinaryTraceCorruption, EmptyStream) { expect_rejected(""); }

TEST(BinaryTraceCorruption, BadMagic) {
  auto bytes = valid_trace();
  bytes[3] ^= 0x01;
  expect_rejected(bytes);
  // A CSV file fed to the binary reader is the same failure mode.
  expect_rejected("device,time,sim_plmn\n1,2,214-07\n");
}

TEST(BinaryTraceCorruption, UnsupportedVersion) {
  auto bytes = valid_trace();
  bytes[8] = 0x7F;  // version LSB
  expect_rejected(bytes);
}

TEST(BinaryTraceCorruption, TruncatedAnywhere) {
  const auto bytes = valid_trace();
  // Cut at several points: inside the header, a block header, a payload,
  // and just before the end marker completes.
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{14}, bytes.size() / 2, bytes.size() - 1}) {
    expect_rejected(bytes.substr(0, keep));
  }
}

TEST(BinaryTraceCorruption, EveryBitFlipIsDetected) {
  // CRC + framing must catch a single flipped bit anywhere past the magic.
  const auto bytes = valid_trace(10);
  stats::Rng rng{13};
  for (int trial = 0; trial < 200; ++trial) {
    const auto pos = 8 + static_cast<std::size_t>(rng.below(bytes.size() - 8));
    auto corrupted = bytes;
    corrupted[pos] ^= static_cast<char>(1u << rng.below(8));
    std::istringstream in{corrupted};
    CaptureSink sink;
    try {
      const auto stats = BinaryTraceReader{in}.replay(sink);
      // A flip that survives replay may only have hit a dictionary string
      // (CRC would catch it...) — no: CRC covers everything. Any clean
      // replay here means the flip produced an identical byte, impossible
      // with XOR. So reaching this line is a real detection failure.
      ADD_FAILURE() << "bit flip at byte " << pos << " went undetected (records="
                    << stats.records << ")";
    } catch (const BinaryTraceError&) {
      // expected
    } catch (const std::runtime_error&) {
      // binio-level truncation surfaced mid-payload decode — also a loud
      // rejection, acceptable.
    }
  }
}

TEST(BinaryTraceCorruption, OversizedBlockLengthRejectedBeforeAllocation) {
  std::string bytes{kBinaryTraceMagic};
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<char>(kBinaryTraceVersion >> (8 * i)));
  const std::uint32_t huge = BinaryTraceReader::kMaxBlockBytes + 1;
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(huge >> (8 * i)));
  for (int i = 0; i < 4; ++i) bytes.push_back(0);  // crc
  expect_rejected(bytes);
}

TEST(BinaryTraceCorruption, MissingEndMarker) {
  // A writer that crashed before finish(): structurally valid blocks, no
  // seal. Must throw, not silently return a partial record set.
  const auto payload = signaling_block_payload("214-07");
  expect_rejected(frame_stream({payload}, nullptr));
}

TEST(BinaryTraceCorruption, EndMarkerTotalsMismatch) {
  TraceTotals wrong;
  wrong.signaling = 5;  // stream carries 1
  expect_rejected(frame_stream({signaling_block_payload("214-07")}, &wrong));
}

TEST(BinaryTraceCorruption, TrailingBytesAfterEndMarker) {
  auto bytes = valid_trace();
  bytes += "extra";
  expect_rejected(bytes);
}

TEST(BinaryTraceCorruption, DanglingDictIndex) {
  util::BinWriter payload;
  payload.u8(4);      // kind: dwell
  payload.varint(1);
  TraceDict dict;     // EMPTY dictionary
  dict.write(payload);
  DwellColumns columns;
  columns.device.push_back(1);
  columns.day.push_back(0);
  columns.plmn.push_back(0);  // index into empty dict
  columns.lat.push_back(0.0);
  columns.lon.push_back(0.0);
  columns.seconds.push_back(1.0);
  write_varint_column(payload, columns.device);
  write_delta_column(payload, columns.day);
  write_dict_column(payload, columns.plmn);
  write_f64_column(payload, columns.lat);
  write_f64_column(payload, columns.lon);
  write_f64_column(payload, columns.seconds);
  TraceTotals totals;
  totals.dwell = 1;
  expect_rejected(frame_stream({payload.bytes()}, &totals));
}

// --- Checkpointable file sink ----------------------------------------------

TEST(BinaryTraceFileSink, TruncateOnRestoreSplicesByteIdentically) {
  namespace fs = std::filesystem;
  const auto path = (fs::temp_directory_path() / "wtr_test_bintrace_sink.bin").string();
  stats::Rng rng{21};
  std::vector<signaling::SignalingTransaction> before;
  std::vector<signaling::SignalingTransaction> after;
  for (int i = 0; i < 10; ++i) before.push_back(random_txn(rng));
  for (int i = 0; i < 10; ++i) after.push_back(random_txn(rng));

  util::BinWriter snapshot;
  {
    ckpt::BinaryTraceFileSink sink{path};
    for (const auto& txn : before) sink.on_signaling(txn, true);
    sink.save_state(snapshot);
    // Records delivered after the snapshot must vanish on restore.
    for (int i = 0; i < 5; ++i) sink.on_signaling(random_txn(rng), false);
    sink.flush_and_sync();
    util::BinReader in{snapshot.bytes()};
    sink.restore_state(in);
    for (const auto& txn : after) sink.on_signaling(txn, true);
    sink.finish();
  }

  std::ifstream file{path, std::ios::binary};
  CaptureSink sink;
  const auto stats = BinaryTraceReader{file}.replay(sink);
  fs::remove(path);
  EXPECT_EQ(stats.delivered, before.size() + after.size());
  ASSERT_EQ(sink.txns.size(), 20u);
  for (std::size_t i = 0; i < before.size(); ++i) {
    expect_txn_eq(sink.txns[i].first, before[i]);
  }
  for (std::size_t i = 0; i < after.size(); ++i) {
    expect_txn_eq(sink.txns[10 + i].first, after[i]);
  }
}

TEST(BinaryTraceFileSink, CrashWithoutFinishIsDetectedOnRead) {
  namespace fs = std::filesystem;
  const auto path = (fs::temp_directory_path() / "wtr_test_bintrace_unsealed.bin").string();
  stats::Rng rng{22};
  {
    ckpt::BinaryTraceFileSink sink{path};
    sink.on_signaling(random_txn(rng), true);
    sink.flush_and_sync();
    // Simulate a crash: drop the sink's writer state without finish() by
    // reading the file as it exists mid-run.
    std::ifstream file{path, std::ios::binary};
    CaptureSink capture;
    EXPECT_THROW(BinaryTraceReader{file}.replay(capture), BinaryTraceError);
  }
  fs::remove(path);
}

// --- Interop with the replay layer ------------------------------------------

TEST(BinaryTraceReplay, AutoDetectDispatchesBothFormats) {
  stats::Rng rng{31};
  const auto txn = random_txn(rng);

  std::ostringstream bin_out;
  {
    BinaryTraceSink sink{bin_out};
    sink.on_signaling(txn, true);
  }
  std::ostringstream csv_out;
  io::CsvWriter writer{csv_out};
  writer.write_row(signaling::csv_header());
  writer.write_row(signaling::to_csv_fields(txn));

  for (const auto& text : {bin_out.str(), csv_out.str()}) {
    std::istringstream in{text};
    CaptureSink sink;
    const auto stats = core::replay_signaling_trace(in, sink);
    EXPECT_EQ(stats.delivered, 1u);
    ASSERT_EQ(sink.txns.size(), 1u);
    expect_txn_eq(sink.txns.front().first, txn);
  }
}

TEST(BinaryTraceReplay, CsvAndBinaryReplayEquivalently) {
  // The same records exported to CSV and (via CSV replay, so both carry the
  // post-rounding values) to binary must replay into identical captures.
  stats::Rng rng{41};
  std::ostringstream csv_out;
  io::CsvWriter writer{csv_out};
  writer.write_row(signaling::csv_header());
  std::vector<signaling::SignalingTransaction> txns;
  for (int i = 0; i < 50; ++i) {
    txns.push_back(random_txn(rng));
    writer.write_row(signaling::to_csv_fields(txns.back()));
  }

  std::ostringstream bin_out;
  {
    BinaryTraceSink bin_sink{bin_out};
    std::istringstream in{csv_out.str()};
    core::replay_signaling_csv(in, bin_sink);
  }

  CaptureSink from_csv;
  CaptureSink from_bin;
  {
    std::istringstream in{csv_out.str()};
    core::replay_signaling_trace(in, from_csv);
  }
  {
    std::istringstream in{bin_out.str()};
    core::replay_signaling_trace(in, from_bin);
  }
  ASSERT_EQ(from_csv.txns.size(), txns.size());
  ASSERT_EQ(from_bin.txns.size(), txns.size());
  for (std::size_t i = 0; i < txns.size(); ++i) {
    expect_txn_eq(from_csv.txns[i].first, from_bin.txns[i].first);
    EXPECT_EQ(from_csv.txns[i].second, from_bin.txns[i].second);
  }
}

TEST(BinaryTraceReplay, EmbeddedNewlineApnSurvivesCsvReplay) {
  // Satellite regression: the CSV writer quotes an APN containing '\n';
  // line-at-a-time decode used to split it into two bad rows. With logical
  // rows the record replays intact through BOTH formats.
  records::Xdr xdr;
  xdr.device = 9;
  xdr.time = 5;
  xdr.sim_plmn = cellnet::Plmn{214, 7, 2};
  xdr.visited_plmn = cellnet::Plmn{234, 1, 2};
  xdr.bytes_up = 10;
  xdr.bytes_down = 20;
  xdr.apn = "weird\nnewline.gprs";
  xdr.rat = cellnet::Rat::kFourG;

  std::ostringstream csv_out;
  io::CsvWriter writer{csv_out};
  writer.write_row(records::xdr_csv_header());
  writer.write_row(records::to_csv_fields(xdr));

  CaptureSink sink;
  std::istringstream in{csv_out.str()};
  const auto stats = core::replay_xdr_trace(in, sink);
  EXPECT_EQ(stats.rows, 1u);
  EXPECT_TRUE(stats.clean());
  ASSERT_EQ(sink.xdrs.size(), 1u);
  EXPECT_EQ(sink.xdrs.front().apn, "weird\nnewline.gprs");

  std::ostringstream bin_out;
  {
    BinaryTraceSink bin_sink{bin_out};
    bin_sink.on_xdr(xdr);
  }
  CaptureSink bin_capture;
  std::istringstream bin_in{bin_out.str()};
  core::replay_xdr_trace(bin_in, bin_capture);
  ASSERT_EQ(bin_capture.xdrs.size(), 1u);
  EXPECT_EQ(bin_capture.xdrs.front().apn, "weird\nnewline.gprs");
}

}  // namespace
}  // namespace wtr::io
