#include "core/catalog_builder.hpp"

#include <gtest/gtest.h>

namespace wtr::core {
namespace {

const cellnet::Plmn kObserver{234, 10, 2};
const cellnet::Plmn kMvno{235, 50, 2};
const cellnet::Plmn kForeign{204, 4, 2};

CatalogAccumulator make_accumulator() {
  return CatalogAccumulator{{kObserver, {kObserver, kMvno}}};
}

signaling::SignalingTransaction txn(signaling::DeviceHash device, stats::SimTime time,
                                    cellnet::Plmn sim, cellnet::Plmn visited,
                                    signaling::ResultCode result = signaling::ResultCode::kOk,
                                    cellnet::Rat rat = cellnet::Rat::kTwoG) {
  signaling::SignalingTransaction t;
  t.device = device;
  t.time = time;
  t.sim_plmn = sim;
  t.visited_plmn = visited;
  t.procedure = signaling::Procedure::kAuthentication;
  t.result = result;
  t.rat = rat;
  t.tac = 35'000'001;
  return t;
}

TEST(CatalogAccumulator, RadioEventsRequireObserverNetwork) {
  auto acc = make_accumulator();
  acc.on_signaling(txn(1, 10, kForeign, kObserver), true);   // inbound: kept
  acc.on_signaling(txn(2, 10, kObserver, kForeign), true);   // outbound radio: dropped
  EXPECT_EQ(acc.accepted_records(), 1u);
  const auto catalog = acc.finalize();
  ASSERT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.records().front().device, 1u);
}

TEST(CatalogAccumulator, CdrXdrVisibleForFamilyAbroad) {
  auto acc = make_accumulator();
  records::Cdr cdr;
  cdr.device = 3;
  cdr.time = 20;
  cdr.sim_plmn = kMvno;      // family SIM
  cdr.visited_plmn = kForeign;  // abroad
  cdr.duration_s = 30.0;
  cdr.rat = cellnet::Rat::kThreeG;
  acc.on_cdr(cdr);

  records::Cdr foreign_cdr = cdr;
  foreign_cdr.device = 4;
  foreign_cdr.sim_plmn = kForeign;  // foreign SIM abroad: invisible
  acc.on_cdr(foreign_cdr);

  const auto catalog = acc.finalize();
  ASSERT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.records().front().device, 3u);
  EXPECT_EQ(catalog.records().front().calls, 1u);
  EXPECT_TRUE(catalog.records().front().voice_rats.has(cellnet::Rat::kThreeG));
}

TEST(CatalogAccumulator, XdrAggregatesBytesAndApns) {
  auto acc = make_accumulator();
  records::Xdr xdr;
  xdr.device = 5;
  xdr.time = 100;
  xdr.sim_plmn = kForeign;
  xdr.visited_plmn = kObserver;
  xdr.bytes_up = 10;
  xdr.bytes_down = 90;
  xdr.apn = "smhp.centricaplc.com.mnc004.mcc204.gprs";
  xdr.rat = cellnet::Rat::kTwoG;
  acc.on_xdr(xdr);
  acc.on_xdr(xdr);  // same APN again: bytes add, APN deduplicates

  const auto catalog = acc.finalize();
  ASSERT_EQ(catalog.size(), 1u);
  const auto& record = catalog.records().front();
  EXPECT_EQ(record.bytes, 200u);
  ASSERT_EQ(record.apns.size(), 1u);
  EXPECT_TRUE(record.data_rats.has(cellnet::Rat::kTwoG));
}

TEST(CatalogAccumulator, FailedEventsDontSetRadioFlags) {
  auto acc = make_accumulator();
  acc.on_signaling(txn(6, 10, kForeign, kObserver,
                       signaling::ResultCode::kRoamingNotAllowed, cellnet::Rat::kFourG),
                   true);
  const auto catalog = acc.finalize();
  ASSERT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.records().front().failed_events, 1u);
  EXPECT_TRUE(catalog.records().front().radio_flags.none());
}

TEST(CatalogAccumulator, SplitsByDay) {
  auto acc = make_accumulator();
  acc.on_signaling(txn(7, 10, kForeign, kObserver), true);
  acc.on_signaling(txn(7, stats::kSecondsPerDay + 10, kForeign, kObserver), true);
  const auto catalog = acc.finalize();
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.records()[0].day, 0);
  EXPECT_EQ(catalog.records()[1].day, 1);
}

TEST(CatalogAccumulator, DwellOnlyRecordsAreDropped) {
  auto acc = make_accumulator();
  acc.on_dwell(8, 0, kObserver, cellnet::GeoPoint{51.5, 0.0}, 600.0);
  EXPECT_EQ(acc.finalize().size(), 0u);
}

TEST(CatalogAccumulator, DwellAttachesMobilityMetrics) {
  auto acc = make_accumulator();
  acc.on_signaling(txn(9, 10, kForeign, kObserver), true);
  acc.on_dwell(9, 0, kObserver, cellnet::GeoPoint{51.5, 0.0}, 600.0);
  acc.on_dwell(9, 0, kObserver, cellnet::GeoPoint{51.52, 0.0}, 600.0);
  // Foreign-network dwell is invisible to the observer.
  acc.on_dwell(9, 0, kForeign, cellnet::GeoPoint{40.0, 0.0}, 600.0);
  const auto catalog = acc.finalize();
  ASSERT_EQ(catalog.size(), 1u);
  const auto& record = catalog.records().front();
  ASSERT_TRUE(record.has_position);
  EXPECT_GT(record.gyration_m, 500.0);
  EXPECT_LT(record.gyration_m, 2'500.0);
  EXPECT_NEAR(record.centroid.lat, 51.51, 0.01);
}

TEST(CatalogAccumulator, FinalizeOrdersDeterministically) {
  auto acc = make_accumulator();
  acc.on_signaling(txn(20, stats::kSecondsPerDay + 1, kForeign, kObserver), true);
  acc.on_signaling(txn(10, 5, kForeign, kObserver), true);
  acc.on_signaling(txn(20, 5, kForeign, kObserver), true);
  const auto catalog = acc.finalize();
  ASSERT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog.records()[0].device, 10u);
  EXPECT_EQ(catalog.records()[1].device, 20u);
  EXPECT_EQ(catalog.records()[1].day, 0);
  EXPECT_EQ(catalog.records()[2].day, 1);
}

TEST(DevicesCatalog, IndexAndSpan) {
  records::DevicesCatalog catalog;
  records::DailyDeviceRecord r1;
  r1.device = 1;
  r1.day = 3;
  records::DailyDeviceRecord r2;
  r2.device = 1;
  r2.day = 1;
  records::DailyDeviceRecord r3;
  r3.device = 2;
  r3.day = 2;
  catalog.add(r1);
  catalog.add(r2);
  catalog.add(r3);
  EXPECT_EQ(catalog.distinct_devices(), 2u);
  EXPECT_EQ(catalog.day_span(), (std::pair<std::int32_t, std::int32_t>{1, 3}));
  const auto of_one = catalog.of_device(1);
  ASSERT_EQ(of_one.size(), 2u);
  EXPECT_EQ(of_one[0]->day, 1);
  EXPECT_EQ(of_one[1]->day, 3);
  EXPECT_TRUE(catalog.of_device(99).empty());
}

TEST(DailyDeviceRecord, RoamedInternationally) {
  records::DailyDeviceRecord record;
  record.sim_plmn = kForeign;
  record.visited_plmns = {kObserver};
  EXPECT_TRUE(record.roamed_internationally());
  record.sim_plmn = kObserver;
  EXPECT_FALSE(record.roamed_internationally());
}

TEST(Summarize, RollsUpAcrossDays) {
  auto acc = make_accumulator();
  acc.on_signaling(txn(30, 10, kForeign, kObserver), true);
  acc.on_signaling(txn(30, stats::kSecondsPerDay + 10, kForeign, kObserver,
                       signaling::ResultCode::kNetworkFailure),
                   true);
  records::Xdr xdr;
  xdr.device = 30;
  xdr.time = 20;
  xdr.sim_plmn = kForeign;
  xdr.visited_plmn = kObserver;
  xdr.bytes_up = 50;
  xdr.apn = "a.b";
  acc.on_xdr(xdr);

  const auto catalog = acc.finalize();
  const auto summaries = summarize(catalog);
  ASSERT_EQ(summaries.size(), 1u);
  const auto& s = summaries.front();
  EXPECT_EQ(s.device, 30u);
  EXPECT_EQ(s.active_days, 2u);
  EXPECT_EQ(s.first_day, 0);
  EXPECT_EQ(s.last_day, 1);
  EXPECT_EQ(s.signaling_events, 2u);
  EXPECT_EQ(s.failed_events, 1u);
  EXPECT_EQ(s.bytes, 50u);
  EXPECT_DOUBLE_EQ(s.signaling_per_day(), 1.0);
  EXPECT_TRUE(s.attached_to(kObserver));
  EXPECT_FALSE(s.attached_to(kForeign));
  EXPECT_EQ(s.tac, 35'000'001u);
}

TEST(Summarize, EmptyCatalog) {
  records::DevicesCatalog catalog;
  EXPECT_TRUE(summarize(catalog).empty());
  EXPECT_EQ(catalog.day_span(), (std::pair<std::int32_t, std::int32_t>{0, -1}));
}

}  // namespace
}  // namespace wtr::core
