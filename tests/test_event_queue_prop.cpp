// Differential property test for the DES scheduler core: EventQueue (the
// hierarchical timing wheel with seq tie-breaking) is fuzzed against a
// reference model built on std::priority_queue over randomized
// push/pop/reserve sequences. The reference orders by the same (time, seq)
// key, so any divergence — ordering, size accounting, snapshot contents —
// is a scheduler bug, not a modelling choice. snapshot_events() is checked
// at random points too: it must list the pending events in exact pop order
// without disturbing the queue (the checkpoint subsystem relies on both
// halves).
//
// The unconstrained fuzz exercises past-dated scheduling (events behind
// the open bucket); the engine-shaped fuzz below drives the wheel the way
// run() does — monotone pop times, same-tick wake bursts, and far-future
// parks beyond the wheel span that force far-tier rebases.

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"

namespace wtr {
namespace {

struct RefEvent {
  stats::SimTime time = 0;
  std::uint64_t seq = 0;
  sim::AgentIndex agent = 0;
};

struct RefLater {
  bool operator()(const RefEvent& a, const RefEvent& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

using RefQueue =
    std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater>;

/// Drain a copy of the reference queue into pop order (the expected
/// snapshot_events() image).
std::vector<RefEvent> ref_snapshot(RefQueue queue) {
  std::vector<RefEvent> out;
  out.reserve(queue.size());
  while (!queue.empty()) {
    out.push_back(queue.top());
    queue.pop();
  }
  return out;
}

void expect_event_eq(const sim::Event& got, const RefEvent& want, std::size_t step) {
  ASSERT_EQ(got.time, want.time) << "at op " << step;
  ASSERT_EQ(got.seq, want.seq) << "at op " << step;
  ASSERT_EQ(got.agent, want.agent) << "at op " << step;
}

TEST(EventQueueProp, DifferentialFuzzAgainstPriorityQueue) {
  std::mt19937_64 rng{0x5eed'e4e7'9u};
  // Time values drawn from a small range on purpose: collisions are the
  // interesting case (tie-breaking by seq is what the engine's determinism
  // rests on).
  std::uniform_int_distribution<stats::SimTime> time_dist{0, 499};
  std::uniform_int_distribution<sim::AgentIndex> agent_dist{0, 9999};
  std::uniform_int_distribution<int> op_dist{0, 99};

  constexpr std::size_t kOps = 10'000;
  sim::EventQueue queue;
  RefQueue ref;
  std::uint64_t next_seq = 0;

  for (std::size_t step = 0; step < kOps; ++step) {
    const int op = op_dist(rng);
    if (op < 55) {
      // push (55%)
      const auto time = time_dist(rng);
      const auto agent = agent_dist(rng);
      queue.schedule(time, agent);
      ref.push(RefEvent{time, next_seq++, agent});
    } else if (op < 90) {
      // pop (35%) — on both queues, comparing the full event
      ASSERT_EQ(queue.empty(), ref.empty()) << "at op " << step;
      if (ref.empty()) continue;
      const auto want = ref.top();
      ref.pop();
      ASSERT_EQ(queue.next_time().value(), want.time) << "at op " << step;
      expect_event_eq(queue.pop(), want, step);
    } else if (op < 95) {
      // reserve (5%) — must never change observable state
      queue.reserve(queue.size() + static_cast<std::size_t>(op_dist(rng)));
    } else {
      // snapshot (5%) — pop-order image without disturbing the queue
      const auto snap = queue.snapshot_events();
      const auto want = ref_snapshot(ref);
      ASSERT_EQ(snap.size(), want.size()) << "at op " << step;
      for (std::size_t i = 0; i < snap.size(); ++i) {
        expect_event_eq(snap[i], want[i], step);
      }
    }
    ASSERT_EQ(queue.size(), ref.size()) << "at op " << step;
    if (!ref.empty()) {
      ASSERT_EQ(queue.next_time().value(), ref.top().time) << "at op " << step;
    } else {
      ASSERT_FALSE(queue.next_time().has_value()) << "at op " << step;
    }
  }

  // Drain both completely: the tail must agree event-for-event.
  while (!ref.empty()) {
    const auto want = ref.top();
    ref.pop();
    ASSERT_FALSE(queue.empty());
    expect_event_eq(queue.pop(), want, kOps);
  }
  EXPECT_TRUE(queue.empty());
}

// Engine-shaped differential fuzz: like Engine::run, every schedule lands
// at or after the time of the event just popped. Delays are drawn to cover
// all wheel tiers — 0 (same-tick bursts: a fleet waking in lockstep), a few
// seconds (open-bucket inserts, the fold_pending fast path), minutes-hours
// (near buckets), and multi-day parks far beyond the 18h wheel span
// (dormant devices; these sit in the far tier until a rebase re-buckets
// them). 30-day parks across a long drain force many rebases.
TEST(EventQueueProp, EngineShapedMonotoneFuzz) {
  std::mt19937_64 rng{0xabcdef12345ULL};
  sim::EventQueue queue;
  RefQueue ref;
  std::uint64_t next_seq = 0;

  constexpr std::size_t kSeedAgents = 64;
  std::uniform_int_distribution<stats::SimTime> seed_dist{0, 86'400};
  for (std::size_t i = 0; i < kSeedAgents; ++i) {
    const auto t = seed_dist(rng);
    queue.schedule(t, static_cast<sim::AgentIndex>(i));
    ref.push(RefEvent{t, next_seq++, static_cast<sim::AgentIndex>(i)});
  }

  std::uniform_int_distribution<int> kind_dist{0, 99};
  std::uniform_int_distribution<stats::SimTime> open_dist{1, 63};
  std::uniform_int_distribution<stats::SimTime> near_dist{64, 65'535};
  std::uniform_int_distribution<stats::SimTime> far_dist{65'536,
                                                         30ll * 86'400};
  std::uniform_int_distribution<int> burst_dist{0, 3};

  constexpr std::size_t kPops = 50'000;
  for (std::size_t step = 0; step < kPops && !ref.empty(); ++step) {
    const auto want = ref.top();
    ref.pop();
    ASSERT_EQ(queue.next_time().value(), want.time) << "at pop " << step;
    expect_event_eq(queue.pop(), want, step);

    // Reschedule 0..3 successors at or after the popped time.
    const int burst = burst_dist(rng);
    for (int i = 0; i < burst; ++i) {
      const int kind = kind_dist(rng);
      stats::SimTime delay = 0;
      if (kind < 15) {
        delay = 0;  // same tick — seq order must carry the day
      } else if (kind < 45) {
        delay = open_dist(rng);
      } else if (kind < 85) {
        delay = near_dist(rng);
      } else {
        delay = far_dist(rng);
      }
      const stats::SimTime t = want.time + delay;
      queue.schedule(t, want.agent);
      ref.push(RefEvent{t, next_seq++, want.agent});
    }
    ASSERT_EQ(queue.size(), ref.size()) << "at pop " << step;
  }

  while (!ref.empty()) {
    const auto want = ref.top();
    ref.pop();
    expect_event_eq(queue.pop(), want, kPops);
  }
  EXPECT_TRUE(queue.empty());
  // The far parks span ~30 days against an 18h wheel window: a drain that
  // never rebased would mean the far tier was never exercised.
  EXPECT_GT(queue.rebases(), 0u);
}

// Checkpoint-shaped round trip: snapshot_events() mid-drain, reschedule the
// image in pop order into a fresh wheel (exactly what Engine::resume_from
// does), and finish the drain on the new queue — the tail must agree with
// the reference event-for-event modulo seq renumbering (resume reassigns
// seq 0..n-1, preserving relative order).
TEST(EventQueueProp, SnapshotRescheduleResumesIdentically) {
  std::mt19937_64 rng{0x5eed'0f'ca11u};
  sim::EventQueue queue;
  RefQueue ref;
  std::uint64_t next_seq = 0;

  std::uniform_int_distribution<stats::SimTime> time_dist{0, 40ll * 86'400};
  std::uniform_int_distribution<sim::AgentIndex> agent_dist{0, 999};
  constexpr std::size_t kEvents = 4'096;
  for (std::size_t i = 0; i < kEvents; ++i) {
    const auto t = time_dist(rng);
    const auto agent = agent_dist(rng);
    queue.schedule(t, agent);
    ref.push(RefEvent{t, next_seq++, agent});
  }

  // Drain a prefix (forces bucket opens and at least one rebase given the
  // 40-day spread), then checkpoint.
  for (std::size_t i = 0; i < kEvents / 2; ++i) {
    const auto want = ref.top();
    ref.pop();
    expect_event_eq(queue.pop(), want, i);
  }
  const auto image = queue.snapshot_events();
  ASSERT_EQ(image.size(), ref.size());

  sim::EventQueue resumed;
  RefQueue ref_resumed;
  std::uint64_t resumed_seq = 0;
  for (const auto& event : image) {
    resumed.schedule(event.time, event.agent);
    ref_resumed.push(RefEvent{event.time, resumed_seq++, event.agent});
  }

  while (!ref_resumed.empty()) {
    const auto want = ref_resumed.top();
    ref_resumed.pop();
    ASSERT_FALSE(resumed.empty());
    expect_event_eq(resumed.pop(), want, resumed_seq);
  }
  EXPECT_TRUE(resumed.empty());
}

TEST(EventQueueProp, SnapshotOfFreshQueueIsEmpty) {
  sim::EventQueue queue;
  EXPECT_TRUE(queue.snapshot_events().empty());
  queue.schedule(5, 1);
  queue.schedule(5, 2);
  queue.schedule(3, 7);
  const auto snap = queue.snapshot_events();
  ASSERT_EQ(snap.size(), 3u);
  // (3,seq2) then the two time-5 events in scheduling order.
  EXPECT_EQ(snap[0].agent, 7u);
  EXPECT_EQ(snap[1].agent, 1u);
  EXPECT_EQ(snap[2].agent, 2u);
  EXPECT_EQ(queue.size(), 3u);  // snapshot must not consume events
}

}  // namespace
}  // namespace wtr
