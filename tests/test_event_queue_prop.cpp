// Differential property test for the DES scheduler core: EventQueue (the
// explicit binary heap with seq tie-breaking) is fuzzed against a reference
// model built on std::priority_queue over randomized push/pop/reserve
// sequences. The reference orders by the same (time, seq) key, so any
// divergence — ordering, size accounting, snapshot contents — is a heap
// bug, not a modelling choice. snapshot_events() is checked at random
// points too: it must list the pending events in exact pop order without
// disturbing the queue (the checkpoint subsystem relies on both halves).

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"

namespace wtr {
namespace {

struct RefEvent {
  stats::SimTime time = 0;
  std::uint64_t seq = 0;
  sim::AgentIndex agent = 0;
};

struct RefLater {
  bool operator()(const RefEvent& a, const RefEvent& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

using RefQueue =
    std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater>;

/// Drain a copy of the reference queue into pop order (the expected
/// snapshot_events() image).
std::vector<RefEvent> ref_snapshot(RefQueue queue) {
  std::vector<RefEvent> out;
  out.reserve(queue.size());
  while (!queue.empty()) {
    out.push_back(queue.top());
    queue.pop();
  }
  return out;
}

void expect_event_eq(const sim::Event& got, const RefEvent& want, std::size_t step) {
  ASSERT_EQ(got.time, want.time) << "at op " << step;
  ASSERT_EQ(got.seq, want.seq) << "at op " << step;
  ASSERT_EQ(got.agent, want.agent) << "at op " << step;
}

TEST(EventQueueProp, DifferentialFuzzAgainstPriorityQueue) {
  std::mt19937_64 rng{0x5eed'e4e7'9u};
  // Time values drawn from a small range on purpose: collisions are the
  // interesting case (tie-breaking by seq is what the engine's determinism
  // rests on).
  std::uniform_int_distribution<stats::SimTime> time_dist{0, 499};
  std::uniform_int_distribution<sim::AgentIndex> agent_dist{0, 9999};
  std::uniform_int_distribution<int> op_dist{0, 99};

  constexpr std::size_t kOps = 10'000;
  sim::EventQueue queue;
  RefQueue ref;
  std::uint64_t next_seq = 0;

  for (std::size_t step = 0; step < kOps; ++step) {
    const int op = op_dist(rng);
    if (op < 55) {
      // push (55%)
      const auto time = time_dist(rng);
      const auto agent = agent_dist(rng);
      queue.schedule(time, agent);
      ref.push(RefEvent{time, next_seq++, agent});
    } else if (op < 90) {
      // pop (35%) — on both queues, comparing the full event
      ASSERT_EQ(queue.empty(), ref.empty()) << "at op " << step;
      if (ref.empty()) continue;
      const auto want = ref.top();
      ref.pop();
      ASSERT_EQ(queue.next_time().value(), want.time) << "at op " << step;
      expect_event_eq(queue.pop(), want, step);
    } else if (op < 95) {
      // reserve (5%) — must never change observable state
      queue.reserve(queue.size() + static_cast<std::size_t>(op_dist(rng)));
    } else {
      // snapshot (5%) — pop-order image without disturbing the queue
      const auto snap = queue.snapshot_events();
      const auto want = ref_snapshot(ref);
      ASSERT_EQ(snap.size(), want.size()) << "at op " << step;
      for (std::size_t i = 0; i < snap.size(); ++i) {
        expect_event_eq(snap[i], want[i], step);
      }
    }
    ASSERT_EQ(queue.size(), ref.size()) << "at op " << step;
    if (!ref.empty()) {
      ASSERT_EQ(queue.next_time().value(), ref.top().time) << "at op " << step;
    } else {
      ASSERT_FALSE(queue.next_time().has_value()) << "at op " << step;
    }
  }

  // Drain both completely: the tail must agree event-for-event.
  while (!ref.empty()) {
    const auto want = ref.top();
    ref.pop();
    ASSERT_FALSE(queue.empty());
    expect_event_eq(queue.pop(), want, kOps);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueProp, SnapshotOfFreshQueueIsEmpty) {
  sim::EventQueue queue;
  EXPECT_TRUE(queue.snapshot_events().empty());
  queue.schedule(5, 1);
  queue.schedule(5, 2);
  queue.schedule(3, 7);
  const auto snap = queue.snapshot_events();
  ASSERT_EQ(snap.size(), 3u);
  // (3,seq2) then the two time-5 events in scheduling order.
  EXPECT_EQ(snap[0].agent, 7u);
  EXPECT_EQ(snap[1].agent, 1u);
  EXPECT_EQ(snap[2].agent, 2u);
  EXPECT_EQ(queue.size(), 3u);  // snapshot must not consume events
}

}  // namespace
}  // namespace wtr
