// Wholesale clearing (§2.1) and the vendor-baseline classifier (§4.3's
// naive approach).

#include <gtest/gtest.h>

#include "core/baseline_classifier.hpp"
#include "core/clearing.hpp"

namespace wtr::core {
namespace {

const cellnet::Plmn kUk{234, 10, 2};
const cellnet::Plmn kUkMvno{235, 50, 2};
const cellnet::Plmn kUkRival{234, 30, 2};
const cellnet::Plmn kNl{204, 4, 2};
const cellnet::Plmn kEs{214, 7, 2};

records::Xdr xdr(signaling::DeviceHash device, cellnet::Plmn sim, cellnet::Plmn visited,
                 std::uint64_t bytes) {
  records::Xdr x;
  x.device = device;
  x.sim_plmn = sim;
  x.visited_plmn = visited;
  x.bytes_up = bytes;
  return x;
}

records::Cdr cdr(signaling::DeviceHash device, cellnet::Plmn sim, cellnet::Plmn visited,
                 double seconds) {
  records::Cdr c;
  c.device = device;
  c.sim_plmn = sim;
  c.visited_plmn = visited;
  c.duration_s = seconds;
  return c;
}

ClearingHouse visited_books() {
  return ClearingHouse{{.self = kUk,
                        .family = {kUk, kUkMvno},
                        .side = ClearingHouse::Side::kVisited}};
}

TEST(ClearingHouse, BillsInternationalInboundOnly) {
  auto books = visited_books();
  books.on_xdr(xdr(1, kNl, kUk, 1024 * 1024));      // inbound: billed
  books.on_xdr(xdr(2, kUk, kUk, 1024 * 1024));      // native: not billed
  books.on_xdr(xdr(3, kUkMvno, kUk, 1024 * 1024));  // own MVNO: not billed
  books.on_xdr(xdr(4, kUkRival, kUk, 1024 * 1024)); // national: not billed
  books.on_xdr(xdr(5, kNl, kEs, 1024 * 1024));      // not my network: ignored
  const auto statements = books.statements();
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements.front().partner, kNl);
  EXPECT_EQ(statements.front().devices, 1u);
  EXPECT_NEAR(statements.front().data_mb, 1.0, 1e-9);
}

TEST(ClearingHouse, AggregatesUsageAndDevices) {
  auto books = visited_books();
  books.on_xdr(xdr(1, kNl, kUk, 2 * 1024 * 1024));
  books.on_xdr(xdr(1, kNl, kUk, 1024 * 1024));  // same device again
  books.on_cdr(cdr(2, kNl, kUk, 120.0));
  books.on_xdr(xdr(3, kEs, kUk, 1024 * 1024));
  const auto statements = books.statements();
  ASSERT_EQ(statements.size(), 2u);
  const auto* nl = find_statement(statements, kNl);
  ASSERT_NE(nl, nullptr);
  EXPECT_EQ(nl->devices, 2u);
  EXPECT_NEAR(nl->data_mb, 3.0, 1e-9);
  EXPECT_NEAR(nl->voice_minutes, 2.0, 1e-9);
  // Default tariffs: 3 MB * 0.4 + 2 min * 2.0.
  EXPECT_NEAR(nl->amount, 3.0 * 0.4 + 2.0 * 2.0, 1e-9);
  EXPECT_NEAR(books.total_billed(), nl->amount + 1.0 * 0.4, 1e-9);
}

TEST(ClearingHouse, HomeSideAccruesPerVisitedNetwork) {
  ClearingHouse books{{.self = kNl, .family = {kNl},
                       .side = ClearingHouse::Side::kHome}};
  books.on_xdr(xdr(1, kNl, kUk, 1024 * 1024));   // my SIM abroad: accrued
  books.on_xdr(xdr(2, kNl, kNl, 1024 * 1024));   // my SIM at home: not
  books.on_xdr(xdr(3, kEs, kUk, 1024 * 1024));   // not my SIM: ignored
  const auto statements = books.statements();
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements.front().partner, kUk);
}

TEST(ClearingHouse, ReconciliationCleanOnSharedStream) {
  auto claims = visited_books();
  ClearingHouse accruals{{.self = kNl, .family = {kNl},
                          .side = ClearingHouse::Side::kHome}};
  for (int i = 0; i < 20; ++i) {
    const auto x = xdr(static_cast<unsigned>(i), kNl, kUk, 512 * 1024);
    claims.on_xdr(x);
    accruals.on_xdr(x);
    const auto c = cdr(static_cast<unsigned>(i), kNl, kUk, 30.0);
    claims.on_cdr(c);
    accruals.on_cdr(c);
  }
  const auto report = reconcile_pair(claims.statements(), kNl, accruals.statements(), kUk);
  EXPECT_TRUE(report.both_sides_present);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.claim_amount, 0.0);
}

TEST(ClearingHouse, ReconciliationFlagsDroppedRecords) {
  auto claims = visited_books();
  ClearingHouse accruals{{.self = kNl, .family = {kNl},
                          .side = ClearingHouse::Side::kHome}};
  for (int i = 0; i < 10; ++i) {
    const auto x = xdr(static_cast<unsigned>(i), kNl, kUk, 1024 * 1024);
    claims.on_xdr(x);
    if (i % 2 == 0) accruals.on_xdr(x);  // home side loses half the records
  }
  const auto report = reconcile_pair(claims.statements(), kNl, accruals.statements(), kUk);
  EXPECT_TRUE(report.both_sides_present);
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.amount_gap, 0.0);
  EXPECT_EQ(report.device_gap, 5u);
}

TEST(ClearingHouse, ReconciliationMissingSide) {
  auto claims = visited_books();
  claims.on_xdr(xdr(1, kNl, kUk, 1024));
  const auto report =
      reconcile_pair(claims.statements(), kEs, claims.statements(), kUk);
  EXPECT_FALSE(report.both_sides_present);
  EXPECT_FALSE(report.clean());
}

// --- Baseline classifier.

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() {
    catalog_.add({.tac = 1, .vendor = "Samsung", .model = "S",
                  .os = cellnet::DeviceOs::kAndroid,
                  .label = cellnet::GsmaLabel::kSmartphone,
                  .bands = cellnet::RatMask{0b111}});
    catalog_.add({.tac = 2, .vendor = "Nokia", .model = "F",
                  .os = cellnet::DeviceOs::kProprietary,
                  .label = cellnet::GsmaLabel::kFeaturePhone,
                  .bands = cellnet::RatMask{0b001}});
    catalog_.add({.tac = 3, .vendor = "Gemalto", .model = "M",
                  .os = cellnet::DeviceOs::kProprietary,
                  .label = cellnet::GsmaLabel::kModule,
                  .bands = cellnet::RatMask{0b001}});
    catalog_.add({.tac = 4, .vendor = "NoName", .model = "X",
                  .os = cellnet::DeviceOs::kProprietary,
                  .label = cellnet::GsmaLabel::kModem,
                  .bands = cellnet::RatMask{0b001}});
    catalog_.add({.tac = 5, .vendor = "ObscureCo", .model = "Y",
                  .os = cellnet::DeviceOs::kProprietary,
                  .label = cellnet::GsmaLabel::kUnknown,
                  .bands = cellnet::RatMask{0b001}});
  }

  static DeviceSummary device(cellnet::Tac tac) {
    DeviceSummary summary;
    summary.device = tac;
    summary.tac = tac;
    return summary;
  }

  cellnet::TacCatalog catalog_;
};

TEST_F(BaselineTest, RulesInOrder) {
  const BaselineVendorClassifier baseline{catalog_};
  const std::vector<DeviceSummary> devices{device(1), device(2), device(3),
                                           device(4), device(5), device(0)};
  const auto result = baseline.classify(devices);
  EXPECT_EQ(result.labels[0], ClassLabel::kSmart);     // smartphone label/OS
  EXPECT_EQ(result.labels[1], ClassLabel::kFeat);      // feature label
  EXPECT_EQ(result.labels[2], ClassLabel::kM2M);       // vendor list
  EXPECT_EQ(result.labels[3], ClassLabel::kM2M);       // modem label
  EXPECT_EQ(result.labels[4], ClassLabel::kM2MMaybe);  // unknown label
  EXPECT_EQ(result.labels[5], ClassLabel::kM2MMaybe);  // no TAC at all
}

TEST_F(BaselineTest, IgnoresApns) {
  const BaselineVendorClassifier baseline{catalog_};
  auto dongle = device(3);  // Gemalto module hardware...
  dongle.apns = {"payandgo.mobile"};  // ...on a consumer APN
  const auto result = baseline.classify({{dongle}});
  // The baseline cannot see the APN evidence: still m2m. This is the §4.3
  // criticism the V1 harness quantifies.
  EXPECT_EQ(result.labels[0], ClassLabel::kM2M);
}

TEST_F(BaselineTest, CustomVendorList) {
  BaselineClassifierConfig config;
  config.m2m_vendors = {"ObscureCo"};
  const BaselineVendorClassifier baseline{catalog_, config};
  EXPECT_TRUE(baseline.is_m2m_vendor("ObscureCo"));
  EXPECT_FALSE(baseline.is_m2m_vendor("Gemalto"));
  const auto result = baseline.classify({{device(5)}});
  EXPECT_EQ(result.labels[0], ClassLabel::kM2M);
}

TEST(BaselineDefaults, BigThreeCovered) {
  const auto vendors = default_m2m_vendor_list();
  for (const auto* name : {"Gemalto", "Telit", "Sierra Wireless"}) {
    EXPECT_NE(std::find(vendors.begin(), vendors.end(), name), vendors.end()) << name;
  }
}

}  // namespace
}  // namespace wtr::core
