// IMSI and IMEI identity tests.

#include <gtest/gtest.h>

#include "cellnet/imei.hpp"
#include "cellnet/imsi.hpp"

namespace wtr::cellnet {
namespace {

TEST(Imsi, ToStringPads) {
  const Imsi imsi{Plmn{214, 7, 2}, 42};
  EXPECT_EQ(imsi.to_string(), "214070000000042");
  EXPECT_EQ(imsi.to_string().size(), 15u);
}

TEST(Imsi, ParseRoundTrip) {
  // 3-digit MNC leaves 9 digits for the MSIN (15-digit budget).
  const Imsi original{Plmn{310, 410, 3}, 987'654'321ULL};
  ASSERT_TRUE(original.valid());
  EXPECT_EQ(original.to_string().size(), 15u);
  const auto parsed = Imsi::parse(original.to_string(), 3);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(Imsi, MsinLimitDependsOnMncWidth) {
  EXPECT_FALSE((Imsi{Plmn{310, 410, 3}, 1'000'000'000ULL}.valid()));
  EXPECT_TRUE((Imsi{Plmn{214, 7, 2}, 9'999'999'999ULL}.valid()));
}

TEST(Imsi, ParseRejectsBadInput) {
  EXPECT_FALSE(Imsi::parse("abc", 2).has_value());
  EXPECT_FALSE(Imsi::parse("12345", 2).has_value());
  EXPECT_FALSE(Imsi::parse("2140700000000421234567", 2).has_value());  // too long
  EXPECT_FALSE(Imsi::parse("214070000000042", 4).has_value());        // bad width
}

TEST(Imsi, Validity) {
  EXPECT_TRUE((Imsi{Plmn{214, 7, 2}, 1}.valid()));
  EXPECT_FALSE((Imsi{Plmn{}, 1}.valid()));
  EXPECT_FALSE((Imsi{Plmn{214, 7, 2}, 10'000'000'000ULL}.valid()));
}

TEST(ImsiRange, ContainsAndAt) {
  const Plmn plmn{234, 10, 2};
  const ImsiRange range{plmn, 100, 200};
  EXPECT_EQ(range.size(), 100u);
  EXPECT_TRUE(range.contains(Imsi{plmn, 100}));
  EXPECT_TRUE(range.contains(Imsi{plmn, 199}));
  EXPECT_FALSE(range.contains(Imsi{plmn, 200}));
  EXPECT_FALSE(range.contains(Imsi{plmn, 99}));
  EXPECT_FALSE(range.contains(Imsi{Plmn{214, 7, 2}, 150}));
  EXPECT_EQ(range.at(0).msin(), 100u);
  EXPECT_EQ(range.at(99).msin(), 199u);
}

TEST(Luhn, KnownCheckDigits) {
  // Classic Luhn example: 7992739871 → check digit 3.
  EXPECT_EQ(luhn_check_digit("7992739871"), 3);
  // IMEI example: 49015420323751 → check digit 8.
  EXPECT_EQ(luhn_check_digit("49015420323751"), 8);
}

TEST(Imei, ToStringAppendsValidLuhn) {
  const Imei imei{49015420, 323751};
  const auto text = imei.to_string();
  EXPECT_EQ(text, "490154203237518");
  EXPECT_EQ(text.size(), 15u);
}

TEST(Imei, ParseValidatesLuhn) {
  EXPECT_TRUE(Imei::parse("490154203237518").has_value());
  EXPECT_FALSE(Imei::parse("490154203237519").has_value());  // wrong check digit
}

TEST(Imei, Parse14DigitsSkipsCheck) {
  const auto imei = Imei::parse("49015420323751");
  ASSERT_TRUE(imei.has_value());
  EXPECT_EQ(imei->tac(), 49015420u);
  EXPECT_EQ(imei->serial(), 323751u);
}

TEST(Imei, ParseRejectsBadInput) {
  EXPECT_FALSE(Imei::parse("").has_value());
  EXPECT_FALSE(Imei::parse("4901542032375x").has_value());
  EXPECT_FALSE(Imei::parse("1234567890123456").has_value());
}

TEST(Imei, RoundTrip) {
  const Imei original{35'000'123, 456};
  const auto parsed = Imei::parse(original.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

}  // namespace
}  // namespace wtr::cellnet
