// Closed-loop overload model: the CongestionModel's reject curve, barrier
// semantics (absorb-order invariance, idempotent rolls), T3346 assignment,
// EAB thresholds and snapshot round-trips — then scenario-level guarantees
// on the StormScenario: threads=N byte-identity with the model installed,
// RNG-invisibility of the firmware flags while no model is installed, the
// mitigated/unmitigated A/B divergence, and deterministic checkpoint/resume
// through a storm window.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "faults/congestion.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/resilience_report.hpp"
#include "obs/observability.hpp"
#include "signaling/t3346.hpp"
#include "stats/sim_time.hpp"
#include "tracegen/storm_scenario.hpp"
#include "util/binio.hpp"

namespace wtr {
namespace {

namespace fs = std::filesystem;

// --- CongestionModel unit tests ---------------------------------------------

faults::CongestionConfig unit_config(double capacity) {
  faults::CongestionConfig config;
  config.bucket_s = 60;
  config.default_capacity = capacity;
  return config;
}

/// Feed `attempts` on operator `op` through a ledger and close the bucket.
void load_bucket(faults::CongestionModel& model, topology::OperatorId op,
                 std::uint64_t attempts, stats::SimTime boundary) {
  faults::CongestionLedger ledger{model.op_count()};
  for (std::uint64_t i = 0; i < attempts; ++i) ledger.count_attempt(op);
  model.absorb(ledger);
  model.roll_to(boundary);
}

TEST(CongestionModel, RejectProbabilityFollowsLoadCurve) {
  faults::CongestionModel model{unit_config(100.0), 3};
  // Twice the capacity: f = 2, p = 1 - 1/2 at the default exponent of 1.
  load_bucket(model, 1, 200, 60);
  EXPECT_DOUBLE_EQ(model.overload_factor(1), 2.0);
  EXPECT_DOUBLE_EQ(model.reject_probability(1), 0.5);
  // Unloaded operators stay clean.
  EXPECT_DOUBLE_EQ(model.reject_probability(0), 0.0);
  EXPECT_DOUBLE_EQ(model.reject_probability(2), 0.0);
  EXPECT_EQ(model.congested_buckets(), 1u);
  EXPECT_EQ(model.first_congested_at(), 60);
}

TEST(CongestionModel, AtOrBelowCapacityNeverRejects) {
  faults::CongestionModel model{unit_config(100.0), 1};
  load_bucket(model, 0, 100, 60);  // exactly at capacity: f = 1, no rejects
  EXPECT_DOUBLE_EQ(model.reject_probability(0), 0.0);
  load_bucket(model, 0, 40, 120);
  EXPECT_DOUBLE_EQ(model.reject_probability(0), 0.0);
  EXPECT_EQ(model.congested_buckets(), 0u);
  EXPECT_EQ(model.first_congested_at(), -1);
}

TEST(CongestionModel, MaxRejectCapsTheCurve) {
  auto config = unit_config(1.0);
  config.max_reject = 0.9;
  faults::CongestionModel model{config, 1};
  load_bucket(model, 0, 1'000'000, 60);  // f = 1e6: curve would say ~1.0
  EXPECT_DOUBLE_EQ(model.reject_probability(0), 0.9);
  EXPECT_DOUBLE_EQ(model.peak_reject(), 0.9);
}

TEST(CongestionModel, OverloadExponentSharpensOnset) {
  auto config = unit_config(100.0);
  config.overload_exponent = 2.0;
  faults::CongestionModel model{config, 1};
  load_bucket(model, 0, 200, 60);  // f = 2: p = 1 - (1/2)^2
  EXPECT_DOUBLE_EQ(model.reject_probability(0), 0.75);
}

TEST(CongestionModel, UncongestibleByDefaultWithPerOperatorOptIn) {
  auto config = unit_config(0.0);  // default: infinite capacity
  config.capacities = {{1, 10.0}};
  faults::CongestionModel model{config, 2};
  faults::CongestionLedger ledger{2};
  for (int i = 0; i < 500; ++i) {
    ledger.count_attempt(0);
    ledger.count_attempt(1);
  }
  model.absorb(ledger);
  model.roll_to(60);
  EXPECT_DOUBLE_EQ(model.reject_probability(0), 0.0);  // opted out
  EXPECT_GT(model.reject_probability(1), 0.9);         // f = 50
}

TEST(CongestionModel, AssignedBackoffScalesWithOverloadAndClamps) {
  faults::CongestionModel model{unit_config(100.0), 1};
  // Not overloaded: the base value.
  EXPECT_DOUBLE_EQ(model.assigned_backoff_s(0), 900.0);
  load_bucket(model, 0, 200, 60);  // f = 2
  EXPECT_DOUBLE_EQ(model.assigned_backoff_s(0), 1800.0);
  load_bucket(model, 0, 100'000, 120);  // f = 1000: clamp at t3346_max_s
  EXPECT_DOUBLE_EQ(model.assigned_backoff_s(0), 3600.0);
}

TEST(CongestionModel, EabEngagesAtThresholdOnly) {
  auto config = unit_config(100.0);
  config.eab_threshold = 1.5;
  faults::CongestionModel model{config, 1};
  load_bucket(model, 0, 140, 60);  // f = 1.4: congested but below threshold
  EXPECT_GT(model.reject_probability(0), 0.0);
  EXPECT_FALSE(model.eab_active(0));
  load_bucket(model, 0, 160, 120);  // f = 1.6: barred
  EXPECT_TRUE(model.eab_active(0));
  load_bucket(model, 0, 10, 180);  // load gone: barring lifts
  EXPECT_FALSE(model.eab_active(0));
}

TEST(CongestionModel, EabDisabledByNonPositiveThreshold) {
  auto config = unit_config(1.0);
  config.eab_threshold = 0.0;
  faults::CongestionModel model{config, 1};
  load_bucket(model, 0, 1'000, 60);
  EXPECT_FALSE(model.eab_active(0));
}

TEST(CongestionModel, CapacityDropScalesEffectiveCapacity) {
  faults::FaultSchedule schedule;
  schedule.add_capacity_drop(0, 0, 600, 0.5);  // half the core, first 10 min
  faults::CongestionModel model{unit_config(100.0), 1, &schedule};
  // 100 attempts against 100 * 0.5 effective capacity: f = 2.
  load_bucket(model, 0, 100, 60);
  EXPECT_DOUBLE_EQ(model.overload_factor(0), 2.0);
  // After the episode the full capacity is back (bucket start 600 is past
  // the window end, which is exclusive).
  faults::CongestionModel late{unit_config(100.0), 1, &schedule};
  faults::CongestionLedger ledger{1};
  for (int i = 0; i < 100; ++i) ledger.count_attempt(0);
  late.absorb(ledger);
  late.roll_to(660);  // bucket [600, 660)
  EXPECT_DOUBLE_EQ(late.overload_factor(0), 1.0);
}

TEST(CongestionModel, AbsorbOrderIsInvariant) {
  faults::CongestionLedger a{2};
  faults::CongestionLedger b{2};
  for (int i = 0; i < 150; ++i) a.count_attempt(0);
  for (int i = 0; i < 70; ++i) b.count_attempt(0);
  b.count_barred(0);

  auto run = [](faults::CongestionLedger first, faults::CongestionLedger second) {
    faults::CongestionModel model{unit_config(100.0), 2};
    model.absorb(first);
    model.absorb(second);
    model.roll_to(60);
    return model;
  };
  const auto ab = run(a, b);
  const auto ba = run(b, a);
  EXPECT_DOUBLE_EQ(ab.reject_probability(0), ba.reject_probability(0));
  EXPECT_EQ(ab.total_attempts(), ba.total_attempts());
  EXPECT_EQ(ab.total_barred(), ba.total_barred());
  EXPECT_EQ(ab.total_attempts(), 220u);
  EXPECT_EQ(ab.total_barred(), 1u);
}

TEST(CongestionModel, AbsorbClearsTheLedger) {
  faults::CongestionModel model{unit_config(100.0), 1};
  faults::CongestionLedger ledger{1};
  ledger.count_attempt(0);
  ledger.count_barred(0);
  model.absorb(ledger);
  EXPECT_EQ(ledger.attempts()[0], 0u);
  EXPECT_EQ(ledger.barred(), 0u);
}

TEST(CongestionModel, RollsAreIdempotentPerBoundary) {
  faults::CongestionModel model{unit_config(100.0), 1};
  load_bucket(model, 0, 200, 60);
  const double p = model.reject_probability(0);
  ASSERT_GT(p, 0.0);
  // A replayed barrier at (or before) the last roll must be a no-op even
  // with pending counts absorbed in between — this is what makes resume
  // replay-safe.
  faults::CongestionLedger ledger{1};
  for (int i = 0; i < 500; ++i) ledger.count_attempt(0);
  model.absorb(ledger);
  model.roll_to(60);
  EXPECT_DOUBLE_EQ(model.reject_probability(0), p);
  model.roll_to(120);  // the *next* boundary closes the pending bucket
  EXPECT_DOUBLE_EQ(model.overload_factor(0), 5.0);
}

TEST(CongestionModel, SnapshotRoundTripsExactly) {
  faults::CongestionModel model{unit_config(100.0), 2};
  load_bucket(model, 0, 333, 60);
  load_bucket(model, 1, 170, 120);
  faults::CongestionLedger open{2};
  for (int i = 0; i < 12; ++i) open.count_attempt(1);
  model.absorb(open);  // leave an open bucket pending

  util::BinWriter out;
  model.save_state(out);
  faults::CongestionModel restored{unit_config(100.0), 2};
  util::BinReader in{out.bytes()};
  restored.restore_state(in);
  EXPECT_TRUE(in.exhausted());

  EXPECT_DOUBLE_EQ(restored.reject_probability(0), model.reject_probability(0));
  EXPECT_DOUBLE_EQ(restored.reject_probability(1), model.reject_probability(1));
  EXPECT_DOUBLE_EQ(restored.peak_overload(), model.peak_overload());
  EXPECT_EQ(restored.congested_buckets(), model.congested_buckets());
  EXPECT_EQ(restored.total_attempts(), model.total_attempts());
  EXPECT_EQ(restored.first_congested_at(), model.first_congested_at());
  // The open bucket travelled too: the next roll sees the 12 attempts.
  restored.roll_to(180);
  EXPECT_DOUBLE_EQ(restored.overload_factor(1), 0.12);
}

TEST(CongestionModel, SnapshotRejectsOperatorCountMismatch) {
  faults::CongestionModel model{unit_config(100.0), 2};
  util::BinWriter out;
  model.save_state(out);
  faults::CongestionModel other{unit_config(100.0), 3};
  util::BinReader in{out.bytes()};
  EXPECT_THROW(other.restore_state(in), std::runtime_error);
}

TEST(CongestionModel, RejectsNonPositiveBucket) {
  auto config = unit_config(100.0);
  config.bucket_s = 0;
  EXPECT_THROW((faults::CongestionModel{config, 1}), std::invalid_argument);
}

// --- T3346 timer -------------------------------------------------------------

TEST(T3346Timer, StartKeepsTheLaterExpiry) {
  signaling::T3346Timer timer;
  EXPECT_FALSE(timer.running(0));
  timer.start(1000);
  EXPECT_TRUE(timer.running(999));
  EXPECT_FALSE(timer.running(1000));  // expiry instant: free to retry
  timer.start(500);                   // an earlier assignment must not shorten
  EXPECT_EQ(timer.expiry(), 1000);
  timer.start(2000);
  EXPECT_EQ(timer.expiry(), 2000);
  timer.stop();
  EXPECT_FALSE(timer.running(0));
}

TEST(T3346Timer, StateRoundTrips) {
  signaling::T3346Timer timer;
  timer.start(123456);
  util::BinWriter out;
  timer.save_state(out);
  signaling::T3346Timer restored;
  util::BinReader in{out.bytes()};
  restored.restore_state(in);
  EXPECT_EQ(restored.expiry(), 123456);
  EXPECT_TRUE(in.exhausted());
}

// --- StormScenario determinism ----------------------------------------------

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

class StreamSerializer final : public sim::RecordSink, public ckpt::Checkpointable {
 public:
  std::string stream;

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    stream += "S:";
    for (const auto& field : signaling::to_csv_fields(txn)) {
      stream += field;
      stream += ',';
    }
    stream += data_context ? "dc\n" : "-\n";
  }
  void on_cdr(const records::Cdr& cdr) override {
    stream += "C:";
    for (const auto& field : records::to_csv_fields(cdr)) {
      stream += field;
      stream += ',';
    }
    stream += '\n';
  }
  void on_xdr(const records::Xdr& xdr) override {
    stream += "X:";
    for (const auto& field : records::to_csv_fields(xdr)) {
      stream += field;
      stream += ',';
    }
    stream += '\n';
  }

  // Checkpointable: a byte offset, so a resumed run truncates back to the
  // snapshot instant exactly like a persisted file sink would.
  void save_state(util::BinWriter& out) const override { out.u64(stream.size()); }
  void restore_state(util::BinReader& in) override {
    const auto size = in.u64();
    if (size > stream.size()) {
      throw std::runtime_error("stream shorter than snapshot offset");
    }
    stream.resize(size);
  }
};

std::string dump_metrics(const obs::MetricsRegistry& metrics) {
  std::string out;
  for (const auto& [name, counter] : metrics.counters()) {
    out += name + "=" + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    out += name + "=" + hex_double(gauge.value()) + "\n";
  }
  return out;
}

constexpr std::uint64_t kStormSeed = 77;

tracegen::StormScenarioConfig storm_config(unsigned threads,
                                           faults::CongestionModel* model,
                                           bool mitigated) {
  tracegen::StormScenarioConfig config;
  config.seed = kStormSeed;
  config.meters = 240;
  config.trackers = 60;
  config.days = 1;
  config.threads = threads;
  config.checkin_jitter_s = 150.0;
  config.fota_start_s = 8 * 3600;
  config.fota_failure_p = 0.4;
  config.backoff.enabled = true;
  config.congestion = model;
  config.honor_congestion_control = mitigated;
  config.eab_meters = mitigated;
  return config;
}

faults::CongestionConfig storm_congestion_config(
    const tracegen::StormScenario& probe) {
  faults::CongestionConfig config;
  config.bucket_s = 60;
  config.capacities = {{probe.observer_radio(), 48.0}};
  return config;
}

/// Throwaway tiny scenario: operator ids and count are world properties, so
/// an identically seeded world reads them without paying for a real fleet.
tracegen::StormScenario probe_scenario() {
  auto config = storm_config(1, nullptr, true);
  config.meters = 8;
  config.trackers = 2;
  return tracegen::StormScenario{config};
}

struct StormRun {
  std::string stream;
  std::string metrics;
  std::uint64_t attempts = 0;
  std::uint64_t barred = 0;
  std::uint64_t congested_buckets = 0;
  double peak_overload = 0.0;
  double peak_reject = 0.0;
};

StormRun run_storm(unsigned threads, bool mitigated,
                   const faults::CongestionConfig& congestion_config,
                   std::size_t op_count) {
  obs::RunObservation observation;
  faults::CongestionModel model{congestion_config, op_count, nullptr,
                                &observation.metrics()};
  auto config = storm_config(threads, &model, mitigated);
  config.obs = observation.view();
  tracegen::StormScenario scenario{config};
  StreamSerializer sink;
  scenario.run({&sink});
  StormRun run;
  run.stream = std::move(sink.stream);
  run.metrics = dump_metrics(observation.metrics());
  run.attempts = model.total_attempts();
  run.barred = model.total_barred();
  run.congested_buckets = model.congested_buckets();
  run.peak_overload = model.peak_overload();
  run.peak_reject = model.peak_reject();
  return run;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(StormScenario, CongestedRunIsByteIdenticalAcrossThreads) {
  const auto probe = probe_scenario();
  const auto congestion = storm_congestion_config(probe);
  const auto op_count = probe.operator_count();

  const auto base = run_storm(1, /*mitigated=*/true, congestion, op_count);
  ASSERT_FALSE(base.stream.empty());
  // The storm must actually congest, or the test proves nothing about the
  // closed loop under sharding.
  ASSERT_GT(base.congested_buckets, 0u);
  for (const unsigned threads : {2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto sharded = run_storm(threads, /*mitigated=*/true, congestion, op_count);
    EXPECT_EQ(base.stream, sharded.stream);
    EXPECT_EQ(base.metrics, sharded.metrics);
    EXPECT_EQ(base.attempts, sharded.attempts);
    EXPECT_EQ(base.barred, sharded.barred);
    EXPECT_EQ(base.congested_buckets, sharded.congested_buckets);
    EXPECT_DOUBLE_EQ(base.peak_overload, sharded.peak_overload);
    EXPECT_DOUBLE_EQ(base.peak_reject, sharded.peak_reject);
  }
}

TEST(StormScenario, FirmwareFlagsAreRngInvisibleWithoutModel) {
  // honor_congestion_control / eab_member must not consume randomness or
  // change behaviour while no CongestionModel is installed — the opt-in
  // contract that keeps every existing scenario byte-identical.
  auto run = [](bool mitigated) {
    tracegen::StormScenario scenario{storm_config(1, nullptr, mitigated)};
    StreamSerializer sink;
    scenario.run({&sink});
    return sink.stream;
  };
  const auto honored = run(true);
  const auto legacy = run(false);
  ASSERT_FALSE(honored.empty());
  EXPECT_EQ(honored, legacy);
  EXPECT_EQ(count_occurrences(honored, "Congestion"), 0u);
}

TEST(StormScenario, MitigationBoundsTheStorm) {
  const auto probe = probe_scenario();
  const auto congestion = storm_congestion_config(probe);
  const auto op_count = probe.operator_count();

  const auto mitigated = run_storm(1, true, congestion, op_count);
  const auto unmitigated = run_storm(1, false, congestion, op_count);
  ASSERT_NE(mitigated.stream, unmitigated.stream);

  // Congestion rejects reach the signaling stream as the kCongestion result.
  const auto rejects_mitigated = count_occurrences(mitigated.stream, "Congestion");
  const auto rejects_unmitigated = count_occurrences(unmitigated.stream, "Congestion");
  EXPECT_GT(rejects_unmitigated, 0u);
  // The death spiral: ignoring the backoff means more attach pressure and
  // more rejects; honoring T3346+EAB sheds and spreads the load.
  EXPECT_LT(rejects_mitigated, rejects_unmitigated);
  EXPECT_LT(mitigated.congested_buckets, unmitigated.congested_buckets);
  EXPECT_GE(mitigated.attempts, 1u);
  EXPECT_GT(unmitigated.attempts, mitigated.attempts);
  // EAB actually shed load in the mitigated arm, and the unmitigated arm
  // (no EAB membership) never barred anything.
  EXPECT_GT(mitigated.barred, 0u);
  EXPECT_EQ(unmitigated.barred, 0u);
}

TEST(StormScenario, CongestionRejectsLandInResilienceReport) {
  const auto probe = probe_scenario();
  const auto congestion = storm_congestion_config(probe);
  faults::CongestionModel model{congestion, probe.operator_count()};
  auto config = storm_config(1, &model, /*mitigated=*/false);
  tracegen::StormScenario scenario{config};
  static const faults::FaultSchedule kNoFaults{};
  faults::ResilienceReport report{scenario.world(), kNoFaults};
  StreamSerializer sink;
  scenario.run({&report, &sink});
  EXPECT_GT(report.summary().congestion_rejects(), 0u);
  EXPECT_EQ(report.summary().congestion_rejects(),
            count_occurrences(sink.stream, "Congestion"));
}

TEST(StormScenario, ResumeThroughStormWindowIsDeterministic) {
  const auto probe = probe_scenario();
  const auto congestion = storm_congestion_config(probe);
  const auto op_count = probe.operator_count();

  // Golden uninterrupted run (threads=1), stream registered as a
  // checkpointable so resumed runs can truncate to the snapshot offset.
  std::string golden;
  {
    faults::CongestionModel model{congestion, op_count};
    tracegen::StormScenario scenario{storm_config(1, &model, true)};
    StreamSerializer sink;
    scenario.engine().register_checkpointable("stream", &sink);
    scenario.run({&sink});
    golden = std::move(sink.stream);
  }
  ASSERT_FALSE(golden.empty());
  ASSERT_GT(count_occurrences(golden, "Congestion"), 0u);

  for (const unsigned threads : {1u, 2u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto dir = fs::temp_directory_path() /
                     ("wtr_storm_resume_" + std::to_string(threads));
    fs::create_directories(dir);
    const std::string ckpt = (dir / "ckpt.bin").string();

    // Phase 1: interrupt at hour 4 — in the middle of the second check-in
    // herd, with T3346 timers live and a half-open congestion bucket.
    std::string partial;
    {
      faults::CongestionModel model{congestion, op_count};
      auto config = storm_config(threads, &model, true);
      config.ckpt.path = ckpt;
      config.ckpt.stop_after_sim_hours = 4;
      tracegen::StormScenario scenario{config};
      StreamSerializer sink;
      scenario.engine().register_checkpointable("stream", &sink);
      scenario.run({&sink});
      ASSERT_TRUE(scenario.engine().interrupted());
      partial = std::move(sink.stream);
    }
    ASSERT_FALSE(partial.empty());
    ASSERT_LT(partial.size(), golden.size());
    EXPECT_EQ(partial, golden.substr(0, partial.size()));

    // Phase 2: identical construction (fresh model), restore, run out.
    faults::CongestionModel model{congestion, op_count};
    tracegen::StormScenario scenario{storm_config(threads, &model, true)};
    StreamSerializer sink;
    sink.stream = partial;
    scenario.engine().register_checkpointable("stream", &sink);
    scenario.resume_from(ckpt);
    EXPECT_TRUE(scenario.engine().resumed());
    scenario.run({&sink});
    EXPECT_EQ(sink.stream, golden);

    fs::remove_all(dir);
  }
}

TEST(StormScenario, ResumeRejectsMissingCongestionModel) {
  // A snapshot written with the model installed must refuse to restore into
  // an engine without one (and vice versa) — silently diverging streams are
  // the alternative.
  const auto probe = probe_scenario();
  const auto congestion = storm_congestion_config(probe);
  const auto dir = fs::temp_directory_path() / "wtr_storm_mismatch";
  fs::create_directories(dir);
  const std::string ckpt = (dir / "ckpt.bin").string();
  {
    faults::CongestionModel model{congestion, probe.operator_count()};
    auto config = storm_config(1, &model, true);
    config.ckpt.path = ckpt;
    config.ckpt.stop_after_sim_hours = 2;
    tracegen::StormScenario scenario{config};
    StreamSerializer sink;
    scenario.run({&sink});
    ASSERT_TRUE(scenario.engine().interrupted());
  }
  tracegen::StormScenario scenario{storm_config(1, nullptr, true)};
  EXPECT_THROW(scenario.resume_from(ckpt), ckpt::SnapshotError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wtr
