#include "stats/sim_time.hpp"

#include <gtest/gtest.h>

namespace wtr::stats {
namespace {

TEST(SimTime, DayOf) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(86399), 0);
  EXPECT_EQ(day_of(86400), 1);
  EXPECT_EQ(day_of(10 * kSecondsPerDay + 5), 10);
}

TEST(SimTime, NegativeTimesFloor) {
  EXPECT_EQ(day_of(-1), -1);
  EXPECT_EQ(day_of(-kSecondsPerDay), -1);
  EXPECT_EQ(day_of(-kSecondsPerDay - 1), -2);
}

TEST(SimTime, DayStartInvertsDayOf) {
  for (std::int32_t day : {-3, 0, 1, 7, 100}) {
    EXPECT_EQ(day_of(day_start(day)), day);
    EXPECT_EQ(day_of(day_start(day) + kSecondsPerDay - 1), day);
  }
}

TEST(SimTime, HourOfDay) {
  EXPECT_DOUBLE_EQ(hour_of_day(0), 0.0);
  EXPECT_DOUBLE_EQ(hour_of_day(kSecondsPerHour * 6), 6.0);
  EXPECT_DOUBLE_EQ(hour_of_day(kSecondsPerDay + kSecondsPerHour * 23), 23.0);
  EXPECT_NEAR(hour_of_day(kSecondsPerHour / 2), 0.5, 1e-9);
}

TEST(SimTime, Format) {
  EXPECT_EQ(format_sim_time(0), "d00 00:00:00");
  EXPECT_EQ(format_sim_time(3 * kSecondsPerDay + 7 * kSecondsPerHour + 15 * 60 + 42),
            "d03 07:15:42");
}

TEST(Diurnal, BoundsRespectFloor) {
  for (double floor : {0.0, 0.2, 0.5, 1.0}) {
    for (SimTime t = 0; t < kSecondsPerDay; t += 900) {
      const double w = diurnal_weight(t, floor);
      EXPECT_GE(w, floor - 1e-12);
      EXPECT_LE(w, 1.0 + 1e-12);
    }
  }
}

TEST(Diurnal, FlatWhenFloorIsOne) {
  for (SimTime t = 0; t < kSecondsPerDay; t += 3600) {
    EXPECT_DOUBLE_EQ(diurnal_weight(t, 1.0), 1.0);
  }
}

TEST(Diurnal, NightLowerThanEvening) {
  const SimTime night = 4 * kSecondsPerHour;
  const SimTime evening = 19 * kSecondsPerHour;
  EXPECT_LT(diurnal_weight(night, 0.1), diurnal_weight(evening, 0.1));
}

TEST(Diurnal, PeriodicAcrossDays) {
  const SimTime t = 13 * kSecondsPerHour;
  EXPECT_NEAR(diurnal_weight(t, 0.2), diurnal_weight(t + 5 * kSecondsPerDay, 0.2), 1e-9);
}

}  // namespace
}  // namespace wtr::stats
