// Sharded-engine determinism: Engine::Config::threads must never change a
// single output byte. Every test here serializes the full record stream
// (all four record families, doubles rendered with %a so equality means
// bit-equality), the metrics dump and the probe trajectory, and asserts
// exact string equality between threads=1 and threads∈{2,8} — across all
// three scenarios and under a non-empty FaultSchedule.
//
// Manifests are compared with timers detached: phase wall-times are the
// one inherently volatile manifest section (they measure the host, not the
// simulation), so "manifest byte-identity" means everything else —
// identity, results, metrics and probe blocks.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/observability.hpp"
#include "obs/run_manifest.hpp"
#include "stats/sim_time.hpp"
#include "tracegen/m2m_platform_scenario.hpp"
#include "tracegen/mno_scenario.hpp"
#include "tracegen/smip_scenario.hpp"
#include "util/thread_pool.hpp"

namespace wtr {
namespace {

// --- byte-exact record stream serialization --------------------------------

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);  // bit-exact round trip
  return buf;
}

class StreamSerializer final : public sim::RecordSink {
 public:
  std::string stream;

  void on_signaling(const signaling::SignalingTransaction& txn,
                    bool data_context) override {
    stream += "S:";
    for (const auto& field : signaling::to_csv_fields(txn)) {
      stream += field;
      stream += ',';
    }
    stream += data_context ? "dc\n" : "-\n";
  }
  void on_cdr(const records::Cdr& cdr) override {
    stream += "C:";
    for (const auto& field : records::to_csv_fields(cdr)) {
      stream += field;
      stream += ',';
    }
    stream += '\n';
  }
  void on_xdr(const records::Xdr& xdr) override {
    stream += "X:";
    for (const auto& field : records::to_csv_fields(xdr)) {
      stream += field;
      stream += ',';
    }
    stream += '\n';
  }
  void on_dwell(signaling::DeviceHash device, std::int32_t day,
                cellnet::Plmn visited_plmn, const cellnet::GeoPoint& location,
                double seconds) override {
    stream += "D:";
    stream += std::to_string(device);
    stream += ',';
    stream += std::to_string(day);
    stream += ',';
    stream += std::to_string(visited_plmn.key());
    stream += ',';
    stream += hex_double(location.lat);
    stream += ',';
    stream += hex_double(location.lon);
    stream += ',';
    stream += hex_double(seconds);
    stream += '\n';
  }
};

std::string dump_metrics(const obs::MetricsRegistry& metrics) {
  std::string out;
  for (const auto& [name, counter] : metrics.counters()) {
    out += name + "=" + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    out += name + "=" + hex_double(gauge.value()) + "\n";
  }
  for (const auto& [name, hist] : metrics.histograms()) {
    out += name + ": n=" + std::to_string(hist.count()) +
           " sum=" + hex_double(hist.sum()) + " buckets=";
    for (const auto b : hist.bucket_counts()) out += std::to_string(b) + ",";
    out += "\n";
  }
  return out;
}

std::string dump_probe(const obs::EngineProbe& probe) {
  std::string out;
  for (const auto& s : probe.samples()) {
    out += std::to_string(s.sim_time) + "|" + std::to_string(s.wakes) + "|" +
           std::to_string(s.queue_depth) + "|" + std::to_string(s.records) + "|" +
           std::to_string(s.attach_attempts) + "|" +
           std::to_string(s.attach_failures) + "|" +
           std::to_string(s.active_fault_episodes) + "\n";
  }
  out += "max=" + std::to_string(probe.queue_depth_max());
  out += " records=" + std::to_string(probe.records_total());
  out += " failures=" + std::to_string(probe.attach_failures());
  return out;
}

/// Everything a run produces, serialized for exact comparison. The manifest
/// is built with metrics and probe attached but timers detached (see file
/// header) and a fixed git-describe so the comparison is build-independent.
struct RunCapture {
  std::string stream;
  std::string metrics;
  std::string probe;
  std::string manifest;
  std::uint64_t wakes = 0;
  std::size_t shards = 0;
  std::uint64_t shard_wake_sum = 0;
};

template <typename Scenario>
RunCapture capture(Scenario& scenario, const obs::RunObservation& observation) {
  StreamSerializer sink;
  scenario.run({&sink});
  RunCapture cap;
  cap.stream = std::move(sink.stream);
  cap.metrics = dump_metrics(observation.metrics());
  cap.probe = dump_probe(observation.probe());
  obs::RunManifest manifest{"parallel-test"};
  manifest.set_git_describe("fixed");
  manifest.attach_metrics(&observation.metrics());
  manifest.attach_probe(&observation.probe());
  manifest.add_result("records_total", observation.probe().records_total());
  cap.manifest = manifest.to_json();
  cap.wakes = scenario.engine().wakes_processed();
  cap.shards = scenario.engine().shards_used();
  for (const auto w : scenario.engine().shard_wakes()) cap.shard_wake_sum += w;
  return cap;
}

RunCapture run_mno(unsigned threads, const faults::FaultSchedule* faults = nullptr,
                   bool backoff = false) {
  obs::RunObservation observation;
  tracegen::MnoScenarioConfig config;
  config.seed = 42;
  config.total_devices = 600;
  config.threads = threads;
  config.build_coverage = false;
  config.faults = faults;
  config.backoff.enabled = backoff;
  config.obs = observation.view();
  tracegen::MnoScenario scenario{config};
  return capture(scenario, observation);
}

RunCapture run_platform(unsigned threads) {
  obs::RunObservation observation;
  tracegen::M2MPlatformConfig config;
  config.seed = 7;
  config.total_devices = 600;
  config.threads = threads;
  config.obs = observation.view();
  tracegen::M2MPlatformScenario scenario{config};
  return capture(scenario, observation);
}

RunCapture run_smip(unsigned threads) {
  obs::RunObservation observation;
  tracegen::SmipScenarioConfig config;
  config.seed = 9;
  config.total_devices = 400;
  config.threads = threads;
  // Default coverage stays on: SMIP exercises the dwell-record path, so the
  // stream comparison covers all four record families.
  config.obs = observation.view();
  tracegen::SmipScenario scenario{config};
  return capture(scenario, observation);
}

void expect_identical(const RunCapture& base, const RunCapture& sharded,
                      unsigned threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(base.stream, sharded.stream);
  EXPECT_EQ(base.metrics, sharded.metrics);
  EXPECT_EQ(base.probe, sharded.probe);
  EXPECT_EQ(base.manifest, sharded.manifest);
  EXPECT_EQ(base.wakes, sharded.wakes);
}

// --- scenario-level byte identity ------------------------------------------

TEST(ParallelEngine, MnoScenarioByteIdentical) {
  const auto base = run_mno(1);
  ASSERT_FALSE(base.stream.empty());
  EXPECT_EQ(base.shards, 1u);
  for (const unsigned threads : {2u, 8u}) {
    const auto sharded = run_mno(threads);
    expect_identical(base, sharded, threads);
    EXPECT_EQ(sharded.shards, threads);
    EXPECT_EQ(sharded.shard_wake_sum, sharded.wakes);
  }
}

TEST(ParallelEngine, PlatformScenarioByteIdentical) {
  const auto base = run_platform(1);
  ASSERT_FALSE(base.stream.empty());
  for (const unsigned threads : {2u, 8u}) {
    expect_identical(base, run_platform(threads), threads);
  }
}

TEST(ParallelEngine, SmipScenarioByteIdentical) {
  const auto base = run_smip(1);
  ASSERT_FALSE(base.stream.empty());
  // Coverage is on, so dwell records must actually be present in the stream.
  EXPECT_NE(base.stream.find("D:"), std::string::npos);
  for (const unsigned threads : {2u, 8u}) {
    expect_identical(base, run_smip(threads), threads);
  }
}

TEST(ParallelEngine, FaultScheduleByteIdentical) {
  // Faults + mechanistic backoff stress the merge hardest: rejected attaches
  // reschedule on backoff timers, so wake patterns are irregular.
  constexpr stats::SimTime kHour = 3600;
  auto make_schedule = [&](const tracegen::MnoScenario& scenario,
                           faults::FaultSchedule& schedule) {
    const auto& wk = scenario.world().well_known();
    schedule.add_outage(wk.uk_mno, stats::day_start(3) + 8 * kHour,
                        stats::day_start(3) + 14 * kHour, 1.0);
    schedule.add_storm(wk.uk_mno, stats::day_start(5) + 10 * kHour,
                       stats::day_start(5) + 16 * kHour, 0.35);
  };
  // Identically-configured worlds build identically, so a throwaway scenario
  // supplies the operator ids the schedule targets.
  faults::FaultSchedule schedule;
  {
    tracegen::MnoScenarioConfig config;
    config.seed = 42;
    config.total_devices = 10;
    config.build_coverage = false;
    tracegen::MnoScenario probe_scenario{config};
    make_schedule(probe_scenario, schedule);
  }
  ASSERT_GT(schedule.size(), 0u);

  const auto base = run_mno(1, &schedule, /*backoff=*/true);
  for (const unsigned threads : {2u, 8u}) {
    const auto sharded = run_mno(threads, &schedule, /*backoff=*/true);
    expect_identical(base, sharded, threads);
  }
  // The schedule must have actually perturbed the run, or this test proves
  // nothing about fault replay.
  EXPECT_NE(base.stream, run_mno(1).stream);
}

// --- engine accounting ------------------------------------------------------

TEST(ParallelEngine, ShardAccountingConsistent) {
  const auto sharded = run_mno(4);
  EXPECT_EQ(sharded.shards, 4u);
  EXPECT_EQ(sharded.shard_wake_sum, sharded.wakes);
}

TEST(ParallelEngine, ThreadsClampToAgentCount) {
  // More threads than agents must clamp, not spawn empty shards.
  obs::RunObservation observation;
  tracegen::MnoScenarioConfig config;
  config.seed = 5;
  config.total_devices = 40;
  config.threads = 1024;
  config.build_coverage = false;
  config.obs = observation.view();
  tracegen::MnoScenario scenario{config};
  ASSERT_GT(scenario.engine().agent_count(), 0u);
  ASSERT_LT(scenario.engine().agent_count(), 1024u);
  StreamSerializer sink;
  scenario.run({&sink});
  EXPECT_LE(scenario.engine().shards_used(), scenario.engine().agent_count());
}

// --- ThreadPool unit tests --------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReusableAcrossWaitCycles) {
  util::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  util::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("shard failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  util::ThreadPool pool(0);
  int value = 0;
  pool.submit([&value] { value = 41; });
  pool.submit([&value] { ++value; });
  pool.wait();
  EXPECT_EQ(value, 42);
}

}  // namespace
}  // namespace wtr
