// NB-IoT extension (§8) — world plumbing, selection behaviour, the
// classifier's stage-0 RAT rule, and the X3 scenario knob.

#include <gtest/gtest.h>

#include "core/census.hpp"
#include "core/classifier_validation.hpp"
#include "sim/network_selection.hpp"
#include "tracegen/mno_scenario.hpp"

namespace wtr {
namespace {

topology::WorldConfig nbiot_world_config() {
  topology::WorldConfig config;
  config.build_coverage = false;
  config.nbiot_isos = {"GB", "NL"};
  config.nbiot_roaming_enabled = true;
  return config;
}

TEST(NbIotWorld, LeadingMnoDeploysIt) {
  const auto world = topology::World::build(nbiot_world_config());
  const auto gb = world.operators().mnos_in_country("GB");
  EXPECT_TRUE(world.operators().get(gb[0]).deployed_rats.has(cellnet::Rat::kNbIot));
  EXPECT_FALSE(world.operators().get(gb[1]).deployed_rats.has(cellnet::Rat::kNbIot));
  const auto fr = world.operators().mnos_in_country("FR");
  EXPECT_FALSE(world.operators().get(fr[0]).deployed_rats.has(cellnet::Rat::kNbIot));
}

TEST(NbIotWorld, RoamingTrialCoversNbIot) {
  const auto world = topology::World::build(nbiot_world_config());
  const auto& wk = world.well_known();
  const auto gb = world.operators().mnos_in_country("GB").front();
  const auto resolved = world.resolve_roaming(wk.nl_iot_provisioner, gb);
  EXPECT_TRUE(resolved.terms.allowed_rats.has(cellnet::Rat::kNbIot));
}

TEST(NbIotWorld, DisabledByDefault) {
  topology::WorldConfig config;
  config.build_coverage = false;
  const auto world = topology::World::build(config);
  for (const auto& op : world.operators().all()) {
    EXPECT_FALSE(op.deployed_rats.has(cellnet::Rat::kNbIot)) << op.name;
  }
}

TEST(NbIotSelection, LpwaOnlyDeviceCampsOnNbIot) {
  const auto world = topology::World::build(nbiot_world_config());
  sim::NetworkSelector selector{world};
  devices::Device device;
  device.home_operator = world.well_known().nl_iot_provisioner;
  device.capability = cellnet::RatMask::of(cellnet::Rat::kNbIot);
  device.home_country = "NL";
  device.current_country = "GB";
  const auto gb = world.operators().mnos_in_country("GB");
  EXPECT_EQ(selector.radio_rat(device, gb[0]), cellnet::Rat::kNbIot);
  EXPECT_FALSE(selector.radio_rat(device, gb[1]).has_value());  // no NB there
  // Conventional hardware never prefers NB-IoT.
  device.capability = cellnet::RatMask{0b1111};
  EXPECT_EQ(selector.radio_rat(device, gb[0]), cellnet::Rat::kFourG);
}

TEST(NbIotClassifier, RatRuleStageZero) {
  cellnet::TacCatalog catalog;
  core::DeviceSummary nb_device;
  nb_device.device = 1;
  nb_device.radio_flags = cellnet::RatMask::of(cellnet::Rat::kNbIot);
  core::DeviceSummary plain;
  plain.device = 2;
  plain.radio_flags = cellnet::RatMask{0b001};
  const std::vector<core::DeviceSummary> devices{nb_device, plain};

  const core::DeviceClassifier classifier{catalog};
  const auto result = classifier.classify(devices);
  EXPECT_EQ(result.labels[0], core::ClassLabel::kM2M);
  EXPECT_EQ(result.m2m_by_nbiot_rat, 1u);
  EXPECT_NE(result.labels[1], core::ClassLabel::kM2M);

  core::ClassifierConfig no_rule;
  no_rule.use_nbiot_rat_rule = false;
  const core::DeviceClassifier ablated{catalog, no_rule};
  const auto ablated_result = ablated.classify(devices);
  EXPECT_EQ(ablated_result.m2m_by_nbiot_rat, 0u);
  EXPECT_NE(ablated_result.labels[0], core::ClassLabel::kM2M);
}

TEST(NbIotScenario, MeterCohortShowsNbIotFlags) {
  tracegen::MnoScenarioConfig config;
  config.seed = 77;
  config.total_devices = 2'000;
  config.nbiot_meter_share = 1.0;  // the whole NL meter fleet migrates
  tracegen::MnoScenario scenario{config};

  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        scenario.family_plmns()}};
  scenario.run({&accumulator});
  const auto catalog = accumulator.finalize();
  const auto population = core::run_census(catalog, scenario.observer_plmn(),
                                           scenario.mvno_plmns(), scenario.tac_catalog());

  EXPECT_GT(population.classification.m2m_by_nbiot_rat, 30u);
  // Every stage-0 device really is M2M (perfect precision by construction).
  const auto truth = tracegen::class_truth(scenario.ground_truth());
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population.summaries[i].radio_flags.has(cellnet::Rat::kNbIot)) continue;
    const auto it = truth.find(population.summaries[i].device);
    ASSERT_NE(it, truth.end());
    EXPECT_EQ(it->second, devices::DeviceClass::kM2M);
  }
}

TEST(NbIotScenario, ZeroShareIsTodaysWorld) {
  tracegen::MnoScenarioConfig config;
  config.seed = 78;
  config.total_devices = 1'000;
  config.nbiot_meter_share = 0.0;
  tracegen::MnoScenario scenario{config};
  core::CatalogAccumulator accumulator{{scenario.observer_plmn(),
                                        scenario.family_plmns()}};
  scenario.run({&accumulator});
  const auto catalog = accumulator.finalize();
  for (const auto& record : catalog.records()) {
    EXPECT_FALSE(record.radio_flags.has(cellnet::Rat::kNbIot));
  }
}

}  // namespace
}  // namespace wtr
