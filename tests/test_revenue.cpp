#include "core/revenue.hpp"

#include <gtest/gtest.h>

namespace wtr::core {
namespace {

const cellnet::Plmn kObserver{234, 10, 2};
const cellnet::Plmn kForeign{204, 4, 2};

ClassifiedPopulation make_population() {
  ClassifiedPopulation population{
      .summaries = {},
      .labels = {},
      .classes = {},
      .classification = {},
      .labeler = RoamingLabeler{kObserver, {}},
  };
  auto add = [&](cellnet::Plmn sim, ClassLabel cls, std::uint64_t bytes,
                 double call_seconds, std::uint64_t events, std::uint32_t days) {
    DeviceSummary summary;
    summary.device = population.summaries.size() + 1;
    summary.sim_plmn = sim;
    summary.visited_plmns = {kObserver};
    summary.bytes = bytes;
    summary.call_seconds = call_seconds;
    summary.signaling_events = events;
    summary.active_days = days;
    population.summaries.push_back(std::move(summary));
    population.labels.push_back(
        population.labeler.label(sim, population.summaries.back().visited_plmns));
    population.classes.push_back(cls);
  };
  // Native smartphone: 10 MB, 10 minutes, 100 events, 10 days.
  add(kObserver, ClassLabel::kSmart, 10 * 1024 * 1024, 600.0, 100, 10);
  // Inbound m2m: 1 MB, 1 minute, 200 events, 10 days.
  add(kForeign, ClassLabel::kM2M, 1 * 1024 * 1024, 60.0, 200, 10);
  // Inbound m2m-maybe: must be excluded.
  add(kForeign, ClassLabel::kM2MMaybe, 1024, 0.0, 50, 5);
  return population;
}

TEST(Revenue, GroupsAndExclusions) {
  const auto population = make_population();
  const auto groups = revenue_by_group(population);
  ASSERT_EQ(groups.size(), 2u);
  ASSERT_TRUE(groups.contains("smart/native"));
  ASSERT_TRUE(groups.contains("m2m/inbound"));
}

TEST(Revenue, TariffArithmetic) {
  TariffSchedule tariffs;
  tariffs.wholesale_data_per_mb = 2.0;
  tariffs.wholesale_voice_per_minute = 3.0;
  tariffs.retail_data_per_mb = 0.5;
  tariffs.retail_voice_per_minute = 1.0;
  tariffs.cost_per_signaling_event = 0.01;

  const auto groups = revenue_by_group(make_population(), tariffs);
  const auto& smart = groups.at("smart/native");
  EXPECT_EQ(smart.devices, 1u);
  EXPECT_EQ(smart.device_days, 10u);
  EXPECT_NEAR(smart.data_revenue, 10.0 * 0.5, 1e-9);   // retail
  EXPECT_NEAR(smart.voice_revenue, 10.0 * 1.0, 1e-9);
  EXPECT_NEAR(smart.signaling_cost, 1.0, 1e-9);
  EXPECT_NEAR(smart.gross(), 15.0, 1e-9);
  EXPECT_NEAR(smart.net(), 14.0, 1e-9);
  EXPECT_NEAR(smart.revenue_per_device_day(), 1.5, 1e-9);

  const auto& m2m = groups.at("m2m/inbound");
  EXPECT_NEAR(m2m.data_revenue, 1.0 * 2.0, 1e-9);  // wholesale
  EXPECT_NEAR(m2m.voice_revenue, 1.0 * 3.0, 1e-9);
  EXPECT_NEAR(m2m.signaling_cost, 2.0, 1e-9);
  EXPECT_NEAR(m2m.revenue_to_load(), 2.5, 1e-9);
}

TEST(Revenue, EmptyBreakdownSafe) {
  RevenueBreakdown empty;
  EXPECT_DOUBLE_EQ(empty.revenue_per_device_day(), 0.0);
  EXPECT_DOUBLE_EQ(empty.cost_per_device_day(), 0.0);
  EXPECT_DOUBLE_EQ(empty.revenue_to_load(), 0.0);
}

TEST(Revenue, WholesaleBeatsRetailForSameUsage) {
  // The same usage priced inbound yields more revenue than native — the
  // roaming-revenue mechanism of §2.1.
  auto population = make_population();
  // Make the m2m device's usage identical to the smartphone's.
  population.summaries[1].bytes = population.summaries[0].bytes;
  population.summaries[1].call_seconds = population.summaries[0].call_seconds;
  const auto groups = revenue_by_group(population);
  EXPECT_GT(groups.at("m2m/inbound").gross(), groups.at("smart/native").gross());
}

}  // namespace
}  // namespace wtr::core
