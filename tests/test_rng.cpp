#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace wtr::stats {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{11};
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BelowStaysBelow) {
  Rng rng{5};
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng{13};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{17};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng{19};
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, WeightedIndexHonorsWeights) {
  Rng rng{23};
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kN = 40'000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  const Rng base{99};
  Rng fork1 = base.fork(1);
  Rng fork1_again = base.fork(1);
  Rng fork2 = base.fork(2);
  EXPECT_EQ(fork1.next(), fork1_again.next());
  // Different tags give different streams.
  Rng f1{base.fork(1)};
  Rng f2{base.fork(2)};
  (void)fork2;
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next() == f2.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{31};
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng{37};
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);
}

TEST(Mix64, DeterministicAndSpread) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), mix64(0, 1));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 123;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(DiscreteSampler, MatchesWeights) {
  const std::vector<double> weights{2.0, 1.0, 1.0};
  DiscreteSampler sampler{weights};
  ASSERT_EQ(sampler.size(), 3u);
  Rng rng{41};
  std::array<int, 3> counts{};
  constexpr int kN = 40'000;
  for (int i = 0; i < kN; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.25, 0.02);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  const std::vector<double> weights{1.0, 0.0, 1.0};
  DiscreteSampler sampler{weights};
  Rng rng{43};
  for (int i = 0; i < 10'000; ++i) EXPECT_NE(sampler.sample(rng), 1u);
}

// Property sweep: below(n) is unbiased enough across a range of moduli.
class RngBelowSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelowSweep, MeanNearHalfOfRange) {
  const std::uint64_t n = GetParam();
  Rng rng{n ^ 0xabcdef};
  double sum = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.below(n));
  const double expected = (static_cast<double>(n) - 1.0) / 2.0;
  EXPECT_NEAR(sum / kN, expected, std::max(0.5, expected * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Moduli, RngBelowSweep,
                         ::testing::Values(2, 3, 10, 17, 100, 1'000, 65'536,
                                           1'000'003));

}  // namespace
}  // namespace wtr::stats
