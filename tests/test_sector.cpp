#include "cellnet/sector.hpp"

#include <gtest/gtest.h>

namespace wtr::cellnet {
namespace {

SectorGrid::Config base_config() {
  SectorGrid::Config config;
  config.operator_plmn = Plmn{234, 10, 2};
  config.anchor = GeoPoint{51.5, -0.1};
  config.cols = 10;
  config.rows = 8;
  config.spacing_m = 2'000.0;
  config.seed = 99;
  return config;
}

TEST(SectorGrid, SizeMatchesPlan) {
  const SectorGrid grid{base_config()};
  EXPECT_EQ(grid.size(), 80u);
  EXPECT_DOUBLE_EQ(grid.half_extent_east_m(), 10'000.0);
  EXPECT_DOUBLE_EQ(grid.half_extent_north_m(), 8'000.0);
}

TEST(SectorGrid, SectorsCarryOwnerAndLocation) {
  const SectorGrid grid{base_config()};
  for (const auto& sector : grid.sectors()) {
    EXPECT_EQ(sector.operator_plmn, (Plmn{234, 10, 2}));
    EXPECT_TRUE(sector.rats.any());  // no dead sectors
    EXPECT_NEAR(sector.location.lat, 51.5, 0.5);
  }
}

TEST(SectorGrid, DeterministicForSeed) {
  const SectorGrid a{base_config()};
  const SectorGrid b{base_config()};
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sectors()[i].location, b.sectors()[i].location);
    EXPECT_EQ(a.sectors()[i].rats, b.sectors()[i].rats);
  }
}

TEST(SectorGrid, ServingSectorIsNearby) {
  const SectorGrid grid{base_config()};
  const auto& sector = grid.serving_sector(1'000.0, -2'000.0);
  const GeoPoint position = offset_m(grid.anchor(), 1'000.0, -2'000.0);
  // The serving sector should be within ~1.5 cells of the position.
  EXPECT_LT(haversine_m(sector.location, position), 3'500.0);
}

TEST(SectorGrid, ClampsOutOfBoundsPositions) {
  const SectorGrid grid{base_config()};
  const auto& sector = grid.serving_sector(1e9, -1e9);
  EXPECT_LT(sector.id, grid.size());
}

TEST(SectorGrid, RatSearchFindsDeployedRat) {
  auto config = base_config();
  config.share_4g = 0.3;
  const SectorGrid grid{config};
  const auto found = grid.serving_sector_with_rat(0.0, 0.0, Rat::kFourG);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(grid.sector(*found).rats.has(Rat::kFourG));
}

TEST(SectorGrid, RatSearchFailsWhenNotDeployed) {
  auto config = base_config();
  config.share_4g = 0.0;
  const SectorGrid grid{config};
  EXPECT_FALSE(grid.serving_sector_with_rat(0.0, 0.0, Rat::kFourG).has_value());
}

TEST(SectorGrid, RatSharesRoughlyHonored) {
  auto config = base_config();
  config.cols = 40;
  config.rows = 40;
  config.share_4g = 0.5;
  const SectorGrid grid{config};
  std::size_t with_4g = 0;
  for (const auto& sector : grid.sectors()) {
    if (sector.rats.has(Rat::kFourG)) ++with_4g;
  }
  EXPECT_NEAR(static_cast<double>(with_4g) / grid.size(), 0.5, 0.05);
}

TEST(SectorGrid, NoTwoGWhenShareZero) {
  auto config = base_config();
  config.share_2g = 0.0;
  config.share_3g = 1.0;
  const SectorGrid grid{config};
  for (const auto& sector : grid.sectors()) {
    EXPECT_FALSE(sector.rats.has(Rat::kTwoG));
    EXPECT_TRUE(sector.rats.has(Rat::kThreeG));
  }
}

}  // namespace
}  // namespace wtr::cellnet
