#include "cellnet/country.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wtr::cellnet {
namespace {

TEST(Country, TableIsSortedByIso) {
  const auto countries = all_countries();
  for (std::size_t i = 1; i < countries.size(); ++i) {
    EXPECT_LT(countries[i - 1].iso, countries[i].iso);
  }
}

TEST(Country, UniqueMccs) {
  std::set<std::uint16_t> mccs;
  for (const auto& country : all_countries()) {
    EXPECT_TRUE(mccs.insert(country.mcc).second) << country.iso;
  }
}

TEST(Country, WellKnownAssignments) {
  EXPECT_EQ(country_by_iso("ES")->mcc, 214);
  EXPECT_EQ(country_by_iso("GB")->mcc, 234);
  EXPECT_EQ(country_by_iso("NL")->mcc, 204);
  EXPECT_EQ(country_by_iso("DE")->mcc, 262);
  EXPECT_EQ(country_by_iso("MX")->mcc, 334);
  EXPECT_EQ(country_by_iso("AR")->mcc, 722);
  EXPECT_EQ(country_by_iso("SE")->mcc, 240);
}

TEST(Country, LookupByMcc) {
  const auto es = country_by_mcc(214);
  ASSERT_TRUE(es.has_value());
  EXPECT_EQ(es->iso, "ES");
  EXPECT_FALSE(country_by_mcc(1).has_value());
}

TEST(Country, IsoOfMccFallsBack) {
  EXPECT_EQ(iso_of_mcc(234), "GB");
  EXPECT_EQ(iso_of_mcc(999), "??");
}

TEST(Country, UnknownIso) {
  EXPECT_FALSE(country_by_iso("XX").has_value());
  EXPECT_FALSE(country_by_iso("").has_value());
}

TEST(Country, RegionsAssigned) {
  EXPECT_EQ(country_by_iso("ES")->region, Region::kEurope);
  EXPECT_EQ(country_by_iso("CH")->region, Region::kEuropeNonEu);
  EXPECT_EQ(country_by_iso("MX")->region, Region::kLatinAmerica);
  EXPECT_EQ(country_by_iso("US")->region, Region::kNorthAmerica);
  EXPECT_EQ(country_by_iso("JP")->region, Region::kAsiaPacific);
  EXPECT_EQ(country_by_iso("ZA")->region, Region::kMiddleEastAfrica);
}

TEST(Country, RegionNames) {
  EXPECT_EQ(region_name(Region::kEurope), "Europe(EU)");
  EXPECT_EQ(region_name(Region::kLatinAmerica), "LatinAmerica");
}

TEST(Country, CoordinatesPlausible) {
  for (const auto& country : all_countries()) {
    EXPECT_GE(country.lat, -90.0) << country.iso;
    EXPECT_LE(country.lat, 90.0) << country.iso;
    EXPECT_GE(country.lon, -180.0) << country.iso;
    EXPECT_LE(country.lon, 180.0) << country.iso;
  }
}

TEST(Country, CoversPaperFootprint) {
  // Countries the paper's analyses name explicitly.
  for (const auto* iso : {"ES", "DE", "MX", "AR", "GB", "NL", "SE", "AU", "JP"}) {
    EXPECT_TRUE(country_by_iso(iso).has_value()) << iso;
  }
  EXPECT_GE(all_countries().size(), 70u);  // §3: devices active in 77 countries
}

}  // namespace
}  // namespace wtr::cellnet
